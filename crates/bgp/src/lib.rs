//! # sdx-bgp — the BGP substrate for the SDX reproduction
//!
//! The paper's SDX controller embeds a *route server* (their prototype
//! extends ExaBGP). This crate is that substrate built from scratch:
//!
//! * [`attrs`] — BGP path attributes: ORIGIN, AS_PATH (sets & sequences),
//!   NEXT_HOP, MED, LOCAL_PREF, communities.
//! * [`msg`] — the four RFC 4271 message types, as plain data.
//! * [`wire`] — binary encode/decode of those messages (RFC 4271 framing),
//!   used to exercise real message handling and failure injection.
//! * [`rib`] — Adj-RIB-In / Loc-RIB / Adj-RIB-Out structures over the
//!   prefix trie.
//! * [`decision`] — the BGP best-path decision process as a total order.
//! * [`route_server`] — a multi-participant IXP route server computing one
//!   best route per (participant, prefix), honouring per-participant export
//!   policies, and exposing the *reachability sets* the SDX consistency
//!   filters are built from (§3.2, §4.1 of the paper).
//! * [`aspath_re`] — an AS-path regular-expression engine backing the
//!   paper's `RIB.filter('as_path', '.*43515$')` idiom.
//! * [`session`] — a simplified BGP finite-state machine over an in-memory
//!   transport, used for session-reset failure injection (Table 1 discards
//!   updates caused by session resets).
//! * [`clock`] — a monotonic millisecond [`Clock`](clock::Clock) trait with
//!   real ([`SystemClock`](clock::SystemClock)) and virtual
//!   ([`MockClock`](clock::MockClock)) implementations, so the supervisor
//!   and the `sdx-runtime` daemon share one testable notion of time.
//! * [`supervisor`] — the operational layer over the session FSMs:
//!   hold-timer bookkeeping, reconnect with exponential backoff, and
//!   route-flap damping so a flapping peer costs O(1) recompilations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aspath_re;
pub mod attrs;
pub mod clock;
pub mod decision;
pub mod msg;
pub mod rib;
pub mod route_server;
pub mod session;
pub mod supervisor;
pub mod wire;

pub use attrs::{AsPath, Origin, PathAttributes};
pub use clock::{Clock, MockClock, SystemClock};
pub use decision::best_route;
pub use msg::{BgpMessage, NotificationCode, OpenMessage, UpdateMessage};
pub use rib::{AdjRibIn, AdjRibOut, LocRib, Route, RouteSource};
pub use route_server::{ExportPolicy, RouteServer, RouteServerEvent};
pub use session::{Session, SessionEvent, SessionState};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorOutput};
