//! Deterministic time for the supervisor and the daemon runtime.
//!
//! The [`Supervisor`](crate::Supervisor) has always taken a caller-supplied
//! millisecond timestamp, which keeps its unit tests free of real sleeps.
//! The socket runtime (`sdx-runtime`) needs a source for those timestamps
//! that it can swap out under test: [`SystemClock`] reads a monotonic
//! `Instant`, [`MockClock`] is advanced by hand, and everything downstream
//! — hold timers, keepalive cadence, flap-damping decay, reconnect backoff
//! — behaves identically under either.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic millisecond clock. Implementations must be cheap to call
/// and safe to share across threads.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary (per-clock) epoch. Must never go
    /// backwards.
    fn now_ms(&self) -> u64;
}

/// Real time: milliseconds since the clock was constructed, backed by a
/// monotonic [`Instant`] so wall-clock adjustments cannot run timers
/// backwards.
#[derive(Clone, Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// Virtual time for tests: starts at zero, moves only when told to. Clones
/// share the same underlying instant, so a test can hand one copy to the
/// runtime and keep another to advance.
#[derive(Clone, Debug, Default)]
pub struct MockClock {
    now: Arc<AtomicU64>,
}

impl MockClock {
    /// A mock clock at t=0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances virtual time by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }

    /// Jumps virtual time to an absolute value. Panics if that would move
    /// time backwards — the `Clock` contract is monotonic.
    pub fn set(&self, ms: u64) {
        let prev = self.now.swap(ms, Ordering::SeqCst);
        assert!(prev <= ms, "MockClock::set would move time backwards");
    }
}

impl Clock for MockClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now_ms(&self) -> u64 {
        (**self).now_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances_and_shares_state() {
        let clock = MockClock::new();
        let other = clock.clone();
        assert_eq!(clock.now_ms(), 0);
        clock.advance(250);
        assert_eq!(other.now_ms(), 250);
        other.set(1000);
        assert_eq!(clock.now_ms(), 1000);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn mock_clock_rejects_time_travel() {
        let clock = MockClock::new();
        clock.advance(10);
        clock.set(5);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn arc_dyn_clock_works() {
        let mock = MockClock::new();
        mock.advance(7);
        let shared: Arc<dyn Clock> = Arc::new(mock);
        assert_eq!(shared.now_ms(), 7);
    }
}
