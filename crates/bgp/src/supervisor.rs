//! Peer-session supervision: reconnect, liveness, and flap damping.
//!
//! The paper's prototype delegates session handling to ExaBGP; a deployed
//! exchange additionally needs the *operational* layer around each session
//! — noticing silent peers, re-establishing dropped sessions without
//! thundering herds, and preventing a flapping peer from driving the
//! policy compiler into a recompilation storm. [`Supervisor`] is that
//! layer. It owns one [`Session`] FSM per peer and is driven by two calls:
//!
//! * [`handle_message`](Supervisor::handle_message) — a message arrived
//!   from a peer; step its FSM, feed delivered UPDATEs to the
//!   [`RouteServer`], and translate any session reset into an immediate
//!   RIB flush.
//! * [`tick`](Supervisor::tick) — time passed; expire hold timers, send
//!   keepalives, retry connections (exponential backoff plus deterministic
//!   jitter), decay flap penalties, and release suppressed peers.
//!
//! Time is a caller-supplied `u64` of milliseconds, so the supervisor is
//! fully deterministic and directly unit-testable — the same philosophy as
//! the session FSM itself.
//!
//! # Route-flap damping
//!
//! Each session reset adds [`SupervisorConfig::flap_penalty`] to the
//! peer's penalty, which decays exponentially with half-life
//! [`SupervisorConfig::half_life_ms`]. When the penalty reaches
//! [`SupervisorConfig::suppress_threshold`] the peer is *suppressed*:
//!
//! * the reset that crossed the threshold still flushes the fabric — its
//!   withdrawal prefixes are emitted immediately, so a dying peer's routes
//!   never linger in the data plane;
//! * every subsequent prefix change from the peer (re-announcements after
//!   reconnect, further flap flushes) accumulates in a pending set and
//!   produces **no** recompilation;
//! * once the penalty decays below
//!   [`SupervisorConfig::reuse_threshold`], the pending set is drained in
//!   one batch — a single recompilation reinstates the peer's routes.
//!
//! A peer that flaps N times inside a half-life therefore costs O(1)
//! recompilations, not O(N). While a peer is suppressed the route server's
//! RIB may be ahead of the installed fabric for the pending prefixes; the
//! batch release (or any full reoptimize) reconverges them.

use std::collections::{BTreeMap, BTreeSet};

use sdx_net::{ParticipantId, Prefix};
use sdx_telemetry::{Event, SharedRegistry};

use crate::msg::{BgpMessage, OpenMessage};
use crate::route_server::{RouteServer, RouteServerEvent};
use crate::session::{Session, SessionEvent, SessionState};

/// Tunables for reconnect backoff and route-flap damping.
///
/// The damping defaults follow RFC 2439's commonly deployed values
/// (penalty 1000, suppress 2000, reuse 750, half-life 15 s scaled for the
/// simulator's compressed clock).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SupervisorConfig {
    /// First reconnect delay after a session drop, milliseconds.
    pub reconnect_base_ms: u64,
    /// Ceiling on the exponential reconnect backoff, milliseconds.
    pub reconnect_max_ms: u64,
    /// Penalty added to a peer for each session reset.
    pub flap_penalty: f64,
    /// Penalty at or above which the peer is suppressed.
    pub suppress_threshold: f64,
    /// Penalty below which a suppressed peer is released.
    pub reuse_threshold: f64,
    /// Exponential-decay half-life of the penalty, milliseconds.
    pub half_life_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            reconnect_base_ms: 1_000,
            reconnect_max_ms: 60_000,
            flap_penalty: 1_000.0,
            suppress_threshold: 2_000.0,
            reuse_threshold: 750.0,
            half_life_ms: 15_000,
        }
    }
}

/// What a supervision step produced.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SupervisorOutput {
    /// Messages to transmit, in order, per peer.
    pub send: Vec<(ParticipantId, BgpMessage)>,
    /// Prefixes whose best route changed and should be pushed through the
    /// controller's fast path now (already de-duplicated, sorted).
    pub changed_prefixes: Vec<Prefix>,
    /// Peers whose session dropped during this step.
    pub resets: Vec<ParticipantId>,
}

impl SupervisorOutput {
    fn push_changed(&mut self, prefixes: impl IntoIterator<Item = Prefix>) {
        self.changed_prefixes.extend(prefixes);
        self.changed_prefixes.sort();
        self.changed_prefixes.dedup();
    }
}

/// Per-peer supervision state.
#[derive(Clone, Debug)]
struct PeerState {
    session: Session,
    /// Flap penalty as of `penalty_at_ms` (decays exponentially).
    penalty: f64,
    penalty_at_ms: u64,
    suppressed: bool,
    /// Consecutive failed/dropped connections since the last establish.
    attempts: u32,
    /// When to (re)try connecting, if the session is down.
    next_reconnect_at: Option<u64>,
    /// Last time we heard anything from the peer.
    last_heard_ms: u64,
    /// Last time we sent a keepalive.
    last_keepalive_ms: u64,
    /// Prefix changes withheld while suppressed.
    pending: BTreeSet<Prefix>,
}

/// Supervises every peer session of the exchange (see module docs).
#[derive(Clone, Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    rng: u64,
    peers: BTreeMap<ParticipantId, PeerState>,
    telemetry: SharedRegistry,
}

impl Supervisor {
    /// A supervisor with the given tunables; `seed` drives the reconnect
    /// jitter deterministically (0 folds to a fixed odd constant).
    pub fn new(cfg: SupervisorConfig, seed: u64) -> Self {
        Supervisor {
            cfg,
            rng: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
            peers: BTreeMap::new(),
            telemetry: SharedRegistry::default(),
        }
    }

    /// Points session-lifecycle events and counters at `reg`.
    pub fn with_telemetry(mut self, reg: SharedRegistry) -> Self {
        self.telemetry = reg;
        self
    }

    /// The registry this supervisor emits into.
    pub fn telemetry(&self) -> &SharedRegistry {
        &self.telemetry
    }

    /// Registers a peer; the session starts connecting on the next
    /// [`tick`](Supervisor::tick). The peer must already be registered
    /// with the route server that is later passed to
    /// [`handle_message`](Supervisor::handle_message).
    pub fn add_peer(&mut self, id: ParticipantId, local: OpenMessage, now_ms: u64) {
        self.peers.insert(
            id,
            PeerState {
                session: Session::new(local),
                penalty: 0.0,
                penalty_at_ms: now_ms,
                suppressed: false,
                attempts: 0,
                next_reconnect_at: Some(now_ms),
                last_heard_ms: now_ms,
                last_keepalive_ms: now_ms,
                pending: BTreeSet::new(),
            },
        );
    }

    /// The supervised session of `id`, if registered.
    pub fn session(&self, id: ParticipantId) -> Option<&Session> {
        self.peers.get(&id).map(|p| &p.session)
    }

    /// The peer's flap penalty decayed to `now_ms`.
    pub fn penalty(&self, id: ParticipantId, now_ms: u64) -> f64 {
        self.peers
            .get(&id)
            .map(|p| decay(&self.cfg, p.penalty, now_ms.saturating_sub(p.penalty_at_ms)))
            .unwrap_or(0.0)
    }

    /// Whether the peer's prefix changes are currently being withheld.
    pub fn is_suppressed(&self, id: ParticipantId) -> bool {
        self.peers.get(&id).is_some_and(|p| p.suppressed)
    }

    /// Prefix changes withheld from the fabric while `id` is suppressed.
    pub fn pending(&self, id: ParticipantId) -> Vec<Prefix> {
        self.peers
            .get(&id)
            .map(|p| p.pending.iter().copied().collect())
            .unwrap_or_default()
    }

    /// A message arrived from peer `id` at `now_ms`: steps the FSM,
    /// forwards delivered UPDATEs to `rs`, and handles any reset
    /// (penalize, flush, schedule reconnect).
    pub fn handle_message(
        &mut self,
        now_ms: u64,
        id: ParticipantId,
        msg: BgpMessage,
        rs: &mut RouteServer,
    ) -> SupervisorOutput {
        let mut out = SupervisorOutput::default();
        let Some(peer) = self.peers.get_mut(&id) else {
            return out;
        };
        peer.last_heard_ms = now_ms;
        let step = peer.session.handle(SessionEvent::Received(msg));
        out.send.extend(step.send.into_iter().map(|m| (id, m)));
        if step.established {
            peer.attempts = 0;
            peer.next_reconnect_at = None;
            peer.last_keepalive_ms = now_ms;
            self.telemetry.inc("session.established.count");
            self.telemetry
                .record_event(Event::SessionEstablished { peer: id.0 });
        }
        let suppressed = peer.suppressed;
        let mut changed: Vec<Prefix> = Vec::new();
        for update in &step.updates {
            changed.extend(prefixes_of(rs.process_update(id, update)));
        }
        if suppressed {
            let peer = self.peers.get_mut(&id).expect("peer present");
            peer.pending.extend(changed);
        } else {
            out.push_changed(changed);
        }
        if step.reset {
            self.on_reset(now_ms, id, rs, &mut out);
        }
        out
    }

    /// A transport connection to peer `id` came up (inbound accept or
    /// outbound connect) at `now_ms`: (re)starts the FSM over the new
    /// connection, emitting our OPEN. If a session was already up or
    /// mid-handshake on a previous connection, the stale session is torn
    /// down first with full reset accounting — the old transport is gone,
    /// whether or not we noticed it die.
    ///
    /// This is the socket-liveness generalization of the timer-driven
    /// reconnect in [`tick`](Supervisor::tick): a daemon calls it from its
    /// accept loop instead of waiting for the backoff schedule.
    pub fn connection_up(
        &mut self,
        now_ms: u64,
        id: ParticipantId,
        rs: &mut RouteServer,
    ) -> SupervisorOutput {
        let mut out = SupervisorOutput::default();
        let Some(peer) = self.peers.get_mut(&id) else {
            return out;
        };
        peer.last_heard_ms = now_ms;
        peer.last_keepalive_ms = now_ms;
        match peer.session.state() {
            SessionState::Idle | SessionState::Connect => {}
            SessionState::OpenSent => {
                // Our OPEN went out on a connection that has since been
                // replaced; re-offer it on this one without re-stepping
                // the FSM.
                out.send
                    .push((id, BgpMessage::Open(peer.session.local().clone())));
                return out;
            }
            SessionState::OpenConfirm | SessionState::Established => {
                // The previous transport died without us noticing. Tear
                // the stale session down (flap-accounted) before starting
                // fresh on the new connection; the Cease the FSM queues
                // has no transport left to carry it.
                let step = peer.session.handle(SessionEvent::ManualStop);
                debug_assert!(step.reset);
                self.on_reset(now_ms, id, rs, &mut out);
            }
        }
        let peer = self.peers.get_mut(&id).expect("peer present");
        peer.next_reconnect_at = None;
        if peer.session.state() == SessionState::Idle {
            peer.session.handle(SessionEvent::ManualStart);
        }
        let step = peer.session.handle(SessionEvent::Connected);
        out.send.extend(step.send.into_iter().map(|m| (id, m)));
        out
    }

    /// The transport to peer `id` dropped (TCP reset / EOF) at `now_ms`:
    /// tears down any in-progress or established session with the same
    /// handling as a NOTIFICATION-driven reset — flap penalty, possible
    /// suppression, RIB flush, reconnect backoff. Idle peers are
    /// untouched, so spurious connect/close cycles before `ManualStart`
    /// cost nothing.
    pub fn peer_disconnected(
        &mut self,
        now_ms: u64,
        id: ParticipantId,
        rs: &mut RouteServer,
    ) -> SupervisorOutput {
        let mut out = SupervisorOutput::default();
        let Some(peer) = self.peers.get_mut(&id) else {
            return out;
        };
        if peer.session.state() == SessionState::Idle {
            return out;
        }
        // ManualStop queues a Cease, but there is no transport left to
        // carry it; drop the session silently and run reset handling.
        let step = peer.session.handle(SessionEvent::ManualStop);
        debug_assert!(step.reset);
        self.on_reset(now_ms, id, rs, &mut out);
        out
    }

    /// Advances time to `now_ms`: expires hold timers, emits keepalives,
    /// retries due connections, and releases peers whose penalty decayed
    /// below the reuse threshold (draining their pending prefix set).
    pub fn tick(&mut self, now_ms: u64, rs: &mut RouteServer) -> SupervisorOutput {
        let mut out = SupervisorOutput::default();
        let ids: Vec<ParticipantId> = self.peers.keys().copied().collect();
        for id in ids {
            self.tick_peer(now_ms, id, rs, &mut out);
        }
        out
    }

    fn tick_peer(
        &mut self,
        now_ms: u64,
        id: ParticipantId,
        rs: &mut RouteServer,
        out: &mut SupervisorOutput,
    ) {
        let cfg = self.cfg;
        let peer = self.peers.get_mut(&id).expect("peer present");

        // Hold-timer bookkeeping: a negotiated hold time of 0 disables it.
        if matches!(
            peer.session.state(),
            SessionState::Established | SessionState::OpenConfirm
        ) {
            if let Some(hold) = peer.session.negotiated_hold_time() {
                let hold_ms = u64::from(hold) * 1_000;
                if hold > 0 && now_ms.saturating_sub(peer.last_heard_ms) >= hold_ms {
                    let step = peer.session.handle(SessionEvent::HoldTimerExpired);
                    out.send.extend(step.send.into_iter().map(|m| (id, m)));
                    if step.reset {
                        self.on_reset(now_ms, id, rs, out);
                    }
                    return;
                }
                // RFC 4271 §4.4: keepalives at a third of the hold time.
                let peer = self.peers.get_mut(&id).expect("peer present");
                if peer.session.state() == SessionState::Established
                    && hold > 0
                    && now_ms.saturating_sub(peer.last_keepalive_ms) >= hold_ms / 3
                {
                    peer.last_keepalive_ms = now_ms;
                    out.send.push((id, BgpMessage::Keepalive));
                    self.telemetry.inc("session.keepalive.count");
                }
            }
        }

        // Reconnect when due, with exponential backoff.
        let idle_unscheduled = self.peers.get(&id).is_some_and(|p| {
            p.session.state() == SessionState::Idle && p.next_reconnect_at.is_none()
        });
        if idle_unscheduled {
            // Dropped outside our control (e.g. the FSM was driven
            // directly); schedule as if we just observed the drop.
            let attempts = self.peers[&id].attempts;
            let delay = self.backoff_delay(attempts);
            let peer = self.peers.get_mut(&id).expect("peer present");
            peer.next_reconnect_at = Some(now_ms + delay);
        }
        let peer = self.peers.get_mut(&id).expect("peer present");
        if peer.session.state() == SessionState::Idle {
            let peer = self.peers.get_mut(&id).expect("peer present");
            if peer.next_reconnect_at.is_some_and(|at| now_ms >= at) {
                peer.next_reconnect_at = None;
                let mut step = peer.session.handle(SessionEvent::ManualStart);
                let connected = peer.session.handle(SessionEvent::Connected);
                step.send.extend(connected.send);
                out.send.extend(step.send.into_iter().map(|m| (id, m)));
            }
        }

        // Penalty decay and release from suppression.
        let peer = self.peers.get_mut(&id).expect("peer present");
        peer.penalty = decay(
            &cfg,
            peer.penalty,
            now_ms.saturating_sub(peer.penalty_at_ms),
        );
        peer.penalty_at_ms = now_ms;
        if peer.suppressed && peer.penalty < cfg.reuse_threshold {
            peer.suppressed = false;
            let pending = std::mem::take(&mut peer.pending);
            self.telemetry.record_event(Event::SessionReleased {
                peer: id.0,
                pending: pending.len(),
            });
            out.push_changed(pending);
        }
    }

    /// Common reset handling: penalize, maybe suppress, flush the route
    /// server, and schedule the reconnect.
    fn on_reset(
        &mut self,
        now_ms: u64,
        id: ParticipantId,
        rs: &mut RouteServer,
        out: &mut SupervisorOutput,
    ) {
        let cfg = self.cfg;
        let delay = {
            let peer = self.peers.get_mut(&id).expect("peer present");
            let was_suppressed = peer.suppressed;
            peer.penalty = decay(
                &cfg,
                peer.penalty,
                now_ms.saturating_sub(peer.penalty_at_ms),
            ) + cfg.flap_penalty;
            peer.penalty_at_ms = now_ms;
            if peer.penalty >= cfg.suppress_threshold && !peer.suppressed {
                peer.suppressed = true;
                self.telemetry
                    .record_event(Event::SessionSuppressed { peer: id.0 });
            }
            let flushed = prefixes_of(rs.reset_session(id));
            if was_suppressed {
                // The fabric holds nothing from this peer (it was flushed
                // when suppression began), so the flush needs no
                // recompilation now; replay it at release instead.
                peer.pending.extend(flushed);
            } else {
                out.push_changed(flushed);
            }
            peer.attempts = peer.attempts.saturating_add(1);
            self.backoff_delay(self.peers[&id].attempts)
        };
        let peer = self.peers.get_mut(&id).expect("peer present");
        peer.next_reconnect_at = Some(now_ms + delay);
        self.telemetry.inc("session.reset.count");
        self.telemetry
            .record_event(Event::SessionReset { peer: id.0 });
        out.resets.push(id);
    }

    /// Exponential backoff with deterministic jitter: `base * 2^(n-1)`
    /// capped at `reconnect_max_ms`, plus up to half a base interval.
    fn backoff_delay(&mut self, attempts: u32) -> u64 {
        let exp = attempts.saturating_sub(1).min(16);
        let base = self
            .cfg
            .reconnect_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.cfg.reconnect_max_ms);
        let jitter_span = self.cfg.reconnect_base_ms / 2 + 1;
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        base + self.rng % jitter_span
    }
}

/// Exponential decay of `penalty` after `elapsed_ms`.
fn decay(cfg: &SupervisorConfig, penalty: f64, elapsed_ms: u64) -> f64 {
    if cfg.half_life_ms == 0 {
        return 0.0;
    }
    penalty * 0.5f64.powf(elapsed_ms as f64 / cfg.half_life_ms as f64)
}

/// The prefixes touched by a batch of route-server events.
fn prefixes_of(events: Vec<RouteServerEvent>) -> Vec<Prefix> {
    events
        .into_iter()
        .filter_map(|e| match e {
            RouteServerEvent::PrefixChanged(p) => Some(p),
            RouteServerEvent::SessionReset(_) => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{simple_announce, NotificationCode};
    use crate::route_server::ExportPolicy;
    use sdx_net::{ip, prefix, Asn, RouterId};

    fn open(asn: u32, hold: u16) -> OpenMessage {
        OpenMessage {
            version: 4,
            asn: Asn(asn),
            hold_time: hold,
            router_id: RouterId(asn),
        }
    }

    fn rs_with(peers: &[u32]) -> RouteServer {
        let mut rs = RouteServer::default();
        for &p in peers {
            rs.add_peer(
                crate::rib::RouteSource {
                    participant: ParticipantId(p),
                    asn: Asn(65000 + p),
                    router_id: RouterId(p),
                    peer_addr: sdx_net::Ipv4Addr(0xac10_0000 + p),
                },
                ExportPolicy::allow_all(),
            );
        }
        rs
    }

    /// Drives the supervised side to Established by playing the peer's
    /// half of the handshake.
    fn establish(sup: &mut Supervisor, rs: &mut RouteServer, id: ParticipantId, now: u64) {
        let out = sup.tick(now, rs);
        assert!(
            out.send
                .iter()
                .any(|(p, m)| *p == id && matches!(m, BgpMessage::Open(_))),
            "supervisor must initiate the connection"
        );
        sup.handle_message(now, id, BgpMessage::Open(open(60000 + id.0, 90)), rs);
        let out = sup.handle_message(now, id, BgpMessage::Keepalive, rs);
        assert!(out.changed_prefixes.is_empty());
        assert_eq!(sup.session(id).unwrap().state(), SessionState::Established);
    }

    #[test]
    fn supervisor_establishes_and_routes_updates() {
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(SupervisorConfig::default(), 7);
        sup.add_peer(ParticipantId(1), open(65001, 90), 0);
        establish(&mut sup, &mut rs, ParticipantId(1), 0);
        let u = simple_announce(prefix("10.0.0.0/8"), &[65001], ip("1.1.1.1"));
        let out = sup.handle_message(10, ParticipantId(1), BgpMessage::Update(u), &mut rs);
        assert_eq!(out.changed_prefixes, vec![prefix("10.0.0.0/8")]);
        assert!(out.resets.is_empty());
    }

    #[test]
    fn reset_flushes_immediately_when_not_suppressed() {
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(SupervisorConfig::default(), 7);
        sup.add_peer(ParticipantId(1), open(65001, 90), 0);
        establish(&mut sup, &mut rs, ParticipantId(1), 0);
        let u = simple_announce(prefix("10.0.0.0/8"), &[65001], ip("1.1.1.1"));
        sup.handle_message(10, ParticipantId(1), BgpMessage::Update(u), &mut rs);
        let out = sup.handle_message(
            20,
            ParticipantId(1),
            BgpMessage::Notification {
                code: NotificationCode::Cease,
                subcode: 0,
            },
            &mut rs,
        );
        assert_eq!(out.resets, vec![ParticipantId(1)]);
        assert_eq!(out.changed_prefixes, vec![prefix("10.0.0.0/8")]);
        assert!(sup.penalty(ParticipantId(1), 20) > 0.0);
    }

    #[test]
    fn flapping_peer_is_suppressed_then_released() {
        let cfg = SupervisorConfig {
            reconnect_base_ms: 10,
            reconnect_max_ms: 100,
            flap_penalty: 1_000.0,
            suppress_threshold: 1_500.0,
            reuse_threshold: 750.0,
            half_life_ms: 1_000,
        };
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(cfg, 7);
        let id = ParticipantId(1);
        sup.add_peer(id, open(65001, 90), 0);
        establish(&mut sup, &mut rs, id, 0);

        let mut recompiles = 0u32;
        let mut now = 10;
        for _ in 0..6 {
            // Flap: notification drops the session.
            let out = sup.handle_message(
                now,
                id,
                BgpMessage::Notification {
                    code: NotificationCode::Cease,
                    subcode: 0,
                },
                &mut rs,
            );
            recompiles += u32::from(!out.changed_prefixes.is_empty());
            // Let the backoff elapse, reconnect, re-announce.
            now += 200;
            let mut t = sup.tick(now, &mut rs);
            while !t.send.iter().any(|(_, m)| matches!(m, BgpMessage::Open(_))) {
                now += 200;
                t = sup.tick(now, &mut rs);
            }
            sup.handle_message(now, id, BgpMessage::Open(open(60001, 90)), &mut rs);
            sup.handle_message(now, id, BgpMessage::Keepalive, &mut rs);
            let u = simple_announce(prefix("10.0.0.0/8"), &[65001], ip("1.1.1.1"));
            let out = sup.handle_message(now, id, BgpMessage::Update(u), &mut rs);
            recompiles += u32::from(!out.changed_prefixes.is_empty());
            now += 10;
        }
        assert!(sup.is_suppressed(id), "six rapid flaps must suppress");
        assert!(
            recompiles <= 3,
            "suppression must bound recompilations, got {recompiles}"
        );
        assert_eq!(sup.pending(id), vec![prefix("10.0.0.0/8")]);

        // Far in the future the penalty has decayed below reuse: the
        // pending announcement is released in one batch.
        let out = sup.tick(now + 60_000, &mut rs);
        assert!(!sup.is_suppressed(id));
        assert_eq!(out.changed_prefixes, vec![prefix("10.0.0.0/8")]);
        assert!(sup.pending(id).is_empty());
    }

    #[test]
    fn hold_timer_expiry_is_driven_by_tick() {
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(SupervisorConfig::default(), 7);
        let id = ParticipantId(1);
        sup.add_peer(id, open(65001, 9), 0);
        establish(&mut sup, &mut rs, id, 0);
        // Negotiated hold is min(9, 90) = 9 s. Nothing heard for 10 s.
        let out = sup.tick(10_000, &mut rs);
        assert_eq!(out.resets, vec![id]);
        assert!(out.send.iter().any(|(_, m)| matches!(
            m,
            BgpMessage::Notification {
                code: NotificationCode::HoldTimerExpired,
                ..
            }
        )));
        assert_eq!(sup.session(id).unwrap().state(), SessionState::Idle);
    }

    #[test]
    fn keepalives_flow_while_established() {
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(SupervisorConfig::default(), 7);
        let id = ParticipantId(1);
        sup.add_peer(id, open(65001, 9), 0);
        establish(&mut sup, &mut rs, id, 0);
        // A third of the 9 s hold time has passed: keepalive goes out.
        let out = sup.tick(3_000, &mut rs);
        assert!(out.send.contains(&(id, BgpMessage::Keepalive)));
        // But not again immediately.
        let out = sup.tick(3_100, &mut rs);
        assert!(!out.send.contains(&(id, BgpMessage::Keepalive)));
    }

    #[test]
    fn connection_up_starts_handshake_without_waiting_for_tick() {
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(SupervisorConfig::default(), 7);
        let id = ParticipantId(1);
        sup.add_peer(id, open(65001, 90), 0);
        // A peer dialed in: the supervisor must offer its OPEN immediately,
        // not on the next reconnect-due tick.
        let out = sup.connection_up(5, id, &mut rs);
        assert!(
            out.send
                .iter()
                .any(|(p, m)| *p == id && matches!(m, BgpMessage::Open(_))),
            "accept must emit our OPEN"
        );
        sup.handle_message(5, id, BgpMessage::Open(open(60001, 90)), &mut rs);
        sup.handle_message(5, id, BgpMessage::Keepalive, &mut rs);
        assert_eq!(sup.session(id).unwrap().state(), SessionState::Established);
    }

    #[test]
    fn connection_up_reoffers_open_when_mid_handshake() {
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(SupervisorConfig::default(), 7);
        let id = ParticipantId(1);
        sup.add_peer(id, open(65001, 90), 0);
        sup.connection_up(0, id, &mut rs);
        assert_eq!(sup.session(id).unwrap().state(), SessionState::OpenSent);
        // The peer reconnected before answering: re-offer the OPEN on the
        // new connection, keeping the FSM where it was.
        let out = sup.connection_up(10, id, &mut rs);
        assert!(out
            .send
            .iter()
            .any(|(_, m)| matches!(m, BgpMessage::Open(o) if o.asn == Asn(65001))));
        assert_eq!(sup.session(id).unwrap().state(), SessionState::OpenSent);
        assert!(out.resets.is_empty());
    }

    #[test]
    fn connection_up_resets_stale_established_session() {
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(SupervisorConfig::default(), 7);
        let id = ParticipantId(1);
        sup.add_peer(id, open(65001, 90), 0);
        establish(&mut sup, &mut rs, id, 0);
        let u = simple_announce(prefix("10.0.0.0/8"), &[65001], ip("1.1.1.1"));
        sup.handle_message(1, id, BgpMessage::Update(u), &mut rs);
        // The peer shows up on a brand-new connection: the old session is
        // stale. It must be flap-accounted, its routes flushed, and a
        // fresh handshake started.
        let out = sup.connection_up(10, id, &mut rs);
        assert_eq!(out.resets, vec![id]);
        assert_eq!(out.changed_prefixes, vec![prefix("10.0.0.0/8")]);
        assert!(sup.penalty(id, 10) > 0.0);
        assert!(out
            .send
            .iter()
            .any(|(_, m)| matches!(m, BgpMessage::Open(_))));
        assert_eq!(sup.session(id).unwrap().state(), SessionState::OpenSent);
    }

    #[test]
    fn tcp_reset_is_flap_accounted_like_a_notification() {
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(SupervisorConfig::default(), 7);
        let id = ParticipantId(1);
        sup.add_peer(id, open(65001, 90), 0);
        establish(&mut sup, &mut rs, id, 0);
        let u = simple_announce(prefix("10.0.0.0/8"), &[65001], ip("1.1.1.1"));
        sup.handle_message(1, id, BgpMessage::Update(u), &mut rs);
        let out = sup.peer_disconnected(20, id, &mut rs);
        assert_eq!(out.resets, vec![id]);
        assert_eq!(out.changed_prefixes, vec![prefix("10.0.0.0/8")]);
        assert!(
            out.send.is_empty(),
            "nothing can be sent on a dead connection"
        );
        assert!(sup.penalty(id, 20) > 0.0);
        assert_eq!(sup.session(id).unwrap().state(), SessionState::Idle);
        // A second disconnect while idle is a no-op.
        let out = sup.peer_disconnected(21, id, &mut rs);
        assert!(out.resets.is_empty());
        assert_eq!(sup.penalty(id, 21), sup.penalty(id, 21));
    }

    #[test]
    fn repeated_tcp_resets_suppress_the_peer() {
        let cfg = SupervisorConfig {
            reconnect_base_ms: 10,
            reconnect_max_ms: 100,
            flap_penalty: 1_000.0,
            suppress_threshold: 1_500.0,
            reuse_threshold: 750.0,
            half_life_ms: 60_000,
        };
        let mut rs = rs_with(&[1]);
        let mut sup = Supervisor::new(cfg, 7);
        let id = ParticipantId(1);
        sup.add_peer(id, open(65001, 90), 0);
        establish(&mut sup, &mut rs, id, 0);
        sup.peer_disconnected(10, id, &mut rs);
        sup.connection_up(20, id, &mut rs);
        sup.handle_message(20, id, BgpMessage::Open(open(60001, 90)), &mut rs);
        sup.handle_message(20, id, BgpMessage::Keepalive, &mut rs);
        sup.peer_disconnected(30, id, &mut rs);
        assert!(
            sup.is_suppressed(id),
            "two rapid TCP resets within a long half-life must suppress"
        );
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = SupervisorConfig {
            reconnect_base_ms: 100,
            reconnect_max_ms: 1_000,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(cfg, 42);
        let jitter_max = cfg.reconnect_base_ms / 2;
        for (attempts, floor) in [
            (1u32, 100u64),
            (2, 200),
            (3, 400),
            (4, 800),
            (5, 1_000),
            (9, 1_000),
        ] {
            let d = sup.backoff_delay(attempts);
            assert!(
                d >= floor && d <= floor + jitter_max,
                "attempt {attempts}: delay {d} outside [{floor}, {}]",
                floor + jitter_max
            );
        }
    }
}
