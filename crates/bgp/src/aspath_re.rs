//! AS-path regular expressions.
//!
//! §3.2 of the paper: *"The SDX allows a policy to specify a match
//! indirectly based on regular expressions on BGP route attributes"*, with
//! the example `RIB.filter('as_path', '.*43515$')`. The `regex` crate is
//! not on the offline allowlist, and a general text regex is the wrong tool
//! anyway — AS paths are token sequences, not strings (`.` must match one
//! *AS number*, not one digit). This module is a small Thompson-NFA engine
//! over the ASN alphabet.
//!
//! Supported syntax (a practical subset of Cisco/Quagga AS-path regexps):
//!
//! * `123` — literal ASN (whitespace separates adjacent literals)
//! * `.` — any single ASN
//! * `[10 20 30]` / `[^10 20]` — ASN set / negated set
//! * `(...)` — grouping, `|` — alternation
//! * `*` `+` `?` — postfix repetition
//! * `^` / `$` — anchor at path start / end. Unanchored patterns match any
//!   contiguous subsequence, like grep.

use std::collections::BTreeSet;

use sdx_net::Asn;

use crate::attrs::AsPath;

/// Errors from [`AsPathRegex::compile`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsPathReError {
    /// Unexpected character at byte offset.
    UnexpectedChar(usize, char),
    /// Unbalanced parenthesis or bracket.
    Unbalanced,
    /// A repetition operator with nothing to repeat.
    DanglingRepeat,
    /// Empty pattern / empty group.
    Empty,
    /// `^`/`$` in a non-anchor position.
    MisplacedAnchor,
}

impl core::fmt::Display for AsPathReError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsPathReError::UnexpectedChar(i, c) => write!(f, "unexpected {c:?} at offset {i}"),
            AsPathReError::Unbalanced => write!(f, "unbalanced ( ) or [ ]"),
            AsPathReError::DanglingRepeat => write!(f, "repetition with nothing to repeat"),
            AsPathReError::Empty => write!(f, "empty pattern"),
            AsPathReError::MisplacedAnchor => write!(f, "misplaced ^ or $"),
        }
    }
}

impl std::error::Error for AsPathReError {}

#[derive(Clone, Debug)]
enum Ast {
    Lit(u32),
    Any,
    Set(BTreeSet<u32>, bool),
    Concat(Vec<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'_')) {
            // `_` in router regexps separates ASNs; treat like whitespace.
            self.pos += 1;
        }
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    /// alt := concat ('|' concat)*
    fn alt(&mut self) -> Result<Ast, AsPathReError> {
        let mut left = self.concat()?;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.bump();
                let right = self.concat()?;
                left = Ast::Alt(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    /// concat := repeat+
    fn concat(&mut self) -> Result<Ast, AsPathReError> {
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some(b')') | Some(b'|') | Some(b'$') => break,
                _ => items.push(self.repeat()?),
            }
        }
        match items.len() {
            0 => Err(AsPathReError::Empty),
            1 => Ok(items.pop().expect("len checked")),
            _ => Ok(Ast::Concat(items)),
        }
    }

    /// repeat := atom ('*'|'+'|'?')*
    fn repeat(&mut self) -> Result<Ast, AsPathReError> {
        let mut a = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    a = Ast::Star(Box::new(a));
                }
                Some(b'+') => {
                    self.bump();
                    a = Ast::Plus(Box::new(a));
                }
                Some(b'?') => {
                    self.bump();
                    a = Ast::Opt(Box::new(a));
                }
                _ => return Ok(a),
            }
        }
    }

    fn atom(&mut self) -> Result<Ast, AsPathReError> {
        self.skip_ws();
        match self.peek() {
            Some(b'.') => {
                self.bump();
                Ok(Ast::Any)
            }
            Some(b'(') => {
                self.bump();
                let inner = self.alt()?;
                if self.bump() != Some(b')') {
                    return Err(AsPathReError::Unbalanced);
                }
                Ok(inner)
            }
            Some(b'[') => {
                self.bump();
                let negated = if self.peek() == Some(b'^') {
                    self.bump();
                    true
                } else {
                    false
                };
                let mut set = BTreeSet::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b']') => {
                            self.bump();
                            break;
                        }
                        Some(c) if c.is_ascii_digit() => {
                            set.insert(self.number().ok_or(AsPathReError::Unbalanced)?);
                        }
                        Some(c) => return Err(AsPathReError::UnexpectedChar(self.pos, c as char)),
                        None => return Err(AsPathReError::Unbalanced),
                    }
                }
                if set.is_empty() {
                    return Err(AsPathReError::Empty);
                }
                Ok(Ast::Set(set, negated))
            }
            Some(c) if c.is_ascii_digit() => {
                Ok(Ast::Lit(self.number().ok_or(AsPathReError::Empty)?))
            }
            Some(b'*') | Some(b'+') | Some(b'?') => Err(AsPathReError::DanglingRepeat),
            Some(b'^') | Some(b'$') => Err(AsPathReError::MisplacedAnchor),
            Some(c) => Err(AsPathReError::UnexpectedChar(self.pos, c as char)),
            None => Err(AsPathReError::Empty),
        }
    }
}

// ------------------------------------------------------------------- NFA

#[derive(Clone, Debug)]
enum Edge {
    Eps,
    Any,
    Lit(u32),
    Set(BTreeSet<u32>, bool),
}

impl Edge {
    fn accepts(&self, asn: u32) -> bool {
        match self {
            Edge::Eps => false,
            Edge::Any => true,
            Edge::Lit(v) => *v == asn,
            Edge::Set(s, neg) => s.contains(&asn) != *neg,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Nfa {
    /// edges[s] = outgoing (edge, target) pairs from state s.
    edges: Vec<Vec<(Edge, usize)>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    fn add_state(&mut self) -> usize {
        self.edges.push(Vec::new());
        self.edges.len() - 1
    }

    fn add_edge(&mut self, from: usize, edge: Edge, to: usize) {
        self.edges[from].push((edge, to));
    }

    /// Thompson construction: returns (start, accept) for `ast`.
    fn build(&mut self, ast: &Ast) -> (usize, usize) {
        match ast {
            Ast::Lit(v) => {
                let s = self.add_state();
                let a = self.add_state();
                self.add_edge(s, Edge::Lit(*v), a);
                (s, a)
            }
            Ast::Any => {
                let s = self.add_state();
                let a = self.add_state();
                self.add_edge(s, Edge::Any, a);
                (s, a)
            }
            Ast::Set(set, neg) => {
                let s = self.add_state();
                let a = self.add_state();
                self.add_edge(s, Edge::Set(set.clone(), *neg), a);
                (s, a)
            }
            Ast::Concat(items) => {
                let mut cur: Option<(usize, usize)> = None;
                for item in items {
                    let (s, a) = self.build(item);
                    cur = Some(match cur {
                        None => (s, a),
                        Some((s0, a0)) => {
                            self.add_edge(a0, Edge::Eps, s);
                            (s0, a)
                        }
                    });
                }
                cur.expect("concat is non-empty by construction")
            }
            Ast::Alt(l, r) => {
                let s = self.add_state();
                let a = self.add_state();
                let (ls, la) = self.build(l);
                let (rs, ra) = self.build(r);
                self.add_edge(s, Edge::Eps, ls);
                self.add_edge(s, Edge::Eps, rs);
                self.add_edge(la, Edge::Eps, a);
                self.add_edge(ra, Edge::Eps, a);
                (s, a)
            }
            Ast::Star(inner) => {
                let s = self.add_state();
                let a = self.add_state();
                let (is, ia) = self.build(inner);
                self.add_edge(s, Edge::Eps, is);
                self.add_edge(s, Edge::Eps, a);
                self.add_edge(ia, Edge::Eps, is);
                self.add_edge(ia, Edge::Eps, a);
                (s, a)
            }
            Ast::Plus(inner) => {
                let (is, ia) = self.build(inner);
                let a = self.add_state();
                self.add_edge(ia, Edge::Eps, is);
                self.add_edge(ia, Edge::Eps, a);
                (is, a)
            }
            Ast::Opt(inner) => {
                let s = self.add_state();
                let a = self.add_state();
                let (is, ia) = self.build(inner);
                self.add_edge(s, Edge::Eps, is);
                self.add_edge(s, Edge::Eps, a);
                self.add_edge(ia, Edge::Eps, a);
                (s, a)
            }
        }
    }

    fn eps_closure(&self, states: &mut BTreeSet<usize>) {
        let mut stack: Vec<usize> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for (e, t) in &self.edges[s] {
                if matches!(e, Edge::Eps) && states.insert(*t) {
                    stack.push(*t);
                }
            }
        }
    }

    fn is_match(&self, tokens: &[u32]) -> bool {
        let mut cur = BTreeSet::from([self.start]);
        self.eps_closure(&mut cur);
        for &tok in tokens {
            let mut next = BTreeSet::new();
            for &s in &cur {
                for (e, t) in &self.edges[s] {
                    if e.accepts(tok) {
                        next.insert(*t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            self.eps_closure(&mut next);
            cur = next;
        }
        cur.contains(&self.accept)
    }
}

/// A compiled AS-path regular expression.
///
/// ```
/// use sdx_bgp::aspath_re::AsPathRegex;
/// use sdx_bgp::attrs::AsPath;
///
/// // The paper's example: routes originated by YouTube (AS 43515).
/// let re = AsPathRegex::compile(".*43515$").unwrap();
/// assert!(re.is_match(&AsPath::sequence([65001, 3356, 43515])));
/// assert!(!re.is_match(&AsPath::sequence([65001, 15169])));
/// ```
#[derive(Clone, Debug)]
pub struct AsPathRegex {
    nfa: Nfa,
    pattern: String,
}

impl AsPathRegex {
    /// Compiles `pattern`; see the module docs for the syntax.
    pub fn compile(pattern: &str) -> Result<Self, AsPathReError> {
        let trimmed = pattern.trim();
        let (anchored_start, rest) = match trimmed.strip_prefix('^') {
            Some(r) => (true, r),
            None => (false, trimmed),
        };
        let (anchored_end, body) = match rest.strip_suffix('$') {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let mut parser = Parser::new(body);
        parser.skip_ws();
        let core = if parser.peek().is_none() {
            // `^$` matches only the empty path; bare `` / `^` / `$` likewise
            // reduce to an empty core.
            None
        } else {
            let ast = parser.alt()?;
            parser.skip_ws();
            if parser.peek() == Some(b'$') {
                return Err(AsPathReError::MisplacedAnchor);
            }
            if parser.pos != parser.src.len() {
                return Err(AsPathReError::Unbalanced);
            }
            Some(ast)
        };

        // Wrap with implicit `.*` on unanchored sides.
        let any_star = Ast::Star(Box::new(Ast::Any));
        let mut items = Vec::new();
        if !anchored_start {
            items.push(any_star.clone());
        }
        if let Some(c) = core {
            items.push(c);
        }
        if !anchored_end {
            items.push(any_star);
        }
        let full = match items.len() {
            0 => Ast::Star(Box::new(Ast::Any)), // "^$"-free empty: match all
            1 => items.pop().expect("len checked"),
            _ => Ast::Concat(items),
        };

        // `^$` special case: both anchors, empty body → items empty → but we
        // replaced with match-all above. Fix: represent as Opt of nothing.
        let full = if anchored_start
            && anchored_end
            && matches!(&full, Ast::Star(b) if matches!(**b, Ast::Any))
        {
            // Accept only the empty token sequence: Star over an impossible
            // set gives exactly that.
            Ast::Star(Box::new(Ast::Set(BTreeSet::from([u32::MAX]), false)))
        } else {
            full
        };

        let mut nfa = Nfa::default();
        let (start, accept) = nfa.build(&full);
        nfa.start = start;
        nfa.accept = accept;
        Ok(AsPathRegex {
            nfa,
            pattern: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the pattern match this AS path (flattened to its ASN sequence)?
    pub fn is_match(&self, path: &AsPath) -> bool {
        self.matches_asns(&path.flatten())
    }

    /// Match directly against an ASN slice.
    pub fn matches_asns(&self, asns: &[Asn]) -> bool {
        let toks: Vec<u32> = asns.iter().map(|a| a.0).collect();
        self.nfa.is_match(&toks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, path: &[u32]) -> bool {
        AsPathRegex::compile(pattern)
            .unwrap_or_else(|e| panic!("compile {pattern:?}: {e}"))
            .matches_asns(&path.iter().copied().map(Asn).collect::<Vec<_>>())
    }

    #[test]
    fn paper_example_youtube_origin() {
        // ".*43515$" — routes originated by YouTube (AS 43515).
        assert!(m(".*43515$", &[65001, 3356, 43515]));
        assert!(m(".*43515$", &[43515]));
        assert!(!m(".*43515$", &[43515, 3356]));
        assert!(!m(".*43515$", &[65001, 3356]));
    }

    #[test]
    fn unanchored_is_substring_match() {
        assert!(m("3356", &[1, 3356, 2]));
        assert!(m("3356 2", &[1, 3356, 2]));
        assert!(!m("3356 1", &[1, 3356, 2]));
    }

    #[test]
    fn anchors() {
        assert!(m("^1 .*", &[1, 2, 3]));
        assert!(!m("^2 .*", &[1, 2, 3]));
        assert!(m("^1 2 3$", &[1, 2, 3]));
        assert!(!m("^1 2$", &[1, 2, 3]));
        // `^$` matches only the empty path.
        assert!(m("^$", &[]));
        assert!(!m("^$", &[1]));
    }

    #[test]
    fn any_and_repeats() {
        assert!(m("^.$", &[42]));
        assert!(!m("^.$", &[42, 43]));
        assert!(m("^1 .* 5$", &[1, 5]));
        assert!(m("^1 .* 5$", &[1, 2, 3, 4, 5]));
        assert!(m("^1 .+ 5$", &[1, 9, 5]));
        assert!(!m("^1 .+ 5$", &[1, 5]));
        assert!(m("^1 2? 3$", &[1, 3]));
        assert!(m("^1 2? 3$", &[1, 2, 3]));
        assert!(!m("^1 2? 3$", &[1, 2, 2, 3]));
    }

    #[test]
    fn sets_and_negation() {
        assert!(m("^[10 20 30]$", &[20]));
        assert!(!m("^[10 20 30]$", &[40]));
        assert!(m("^[^10 20]$", &[40]));
        assert!(!m("^[^10 20]$", &[10]));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(1 2|3 4)$", &[1, 2]));
        assert!(m("^(1 2|3 4)$", &[3, 4]));
        assert!(!m("^(1 2|3 4)$", &[1, 4]));
        assert!(m("^(1 2)+$", &[1, 2, 1, 2]));
        assert!(!m("^(1 2)+$", &[1, 2, 1]));
    }

    #[test]
    fn prepending_visible_to_regex() {
        // Detect prepended paths: an AS appearing twice in a row.
        assert!(m("65001 65001", &[65001, 65001, 9]));
        assert!(!m("65001 65001", &[65001, 9, 65001]));
    }

    #[test]
    fn underscore_is_separator() {
        assert!(m("_3356_", &[1, 3356, 2]));
        assert!(m("^1_2$", &[1, 2]));
    }

    #[test]
    fn compile_errors() {
        assert!(AsPathRegex::compile("(1 2").is_err());
        assert!(AsPathRegex::compile("[1 2").is_err());
        assert!(AsPathRegex::compile("*").is_err());
        assert!(AsPathRegex::compile("a").is_err());
        assert!(AsPathRegex::compile("[]").is_err());
        assert!(AsPathRegex::compile("1 $ 2").is_err());
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", &[]));
        assert!(m("", &[1, 2, 3]));
        assert!(m(".*", &[1, 2, 3]));
        assert!(m(".*", &[]));
    }

    #[test]
    fn matches_via_aspath_type() {
        let re = AsPathRegex::compile(".*43515$").unwrap();
        assert!(re.is_match(&AsPath::sequence([65001, 43515])));
        assert!(!re.is_match(&AsPath::sequence([65001, 15169])));
        assert_eq!(re.pattern(), ".*43515$");
    }
}
