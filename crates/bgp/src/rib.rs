//! Routing Information Bases: Adj-RIB-In, Loc-RIB.
//!
//! The route server keeps one [`AdjRibIn`] per participant session (exactly
//! what that participant announced) and one [`LocRib`] holding, per prefix,
//! the full candidate set across participants. The SDX needs the *full* set
//! — not just the best route — because a participant may forward to any
//! next-hop AS that exported a route for the prefix, even a non-best one
//! (§3.2 "Forwarding only along BGP-advertised paths").

use std::collections::{BTreeMap, BTreeSet};

use sdx_net::{Asn, Ipv4Addr, ParticipantId, Prefix, PrefixTrie, RouterId};

use crate::attrs::PathAttributes;
use crate::decision;
use crate::msg::UpdateMessage;

/// Identity of the session a route was learned over.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RouteSource {
    /// The SDX participant that announced the route.
    pub participant: ParticipantId,
    /// That participant's AS number.
    pub asn: Asn,
    /// Its BGP router id (decision-process tiebreak).
    pub router_id: RouterId,
    /// Its peering address on the IXP subnet (final tiebreak).
    pub peer_addr: Ipv4Addr,
}

/// A route: attributes plus where it came from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Route {
    /// Session identity.
    pub source: RouteSource,
    /// Path attributes as received.
    pub attrs: PathAttributes,
}

/// Adj-RIB-In: the routes one participant currently announces to the route
/// server, keyed by prefix.
#[derive(Clone, Debug)]
pub struct AdjRibIn {
    /// The announcing session.
    pub source: RouteSource,
    routes: PrefixTrie<PathAttributes>,
}

impl AdjRibIn {
    /// An empty RIB for the given session.
    pub fn new(source: RouteSource) -> Self {
        AdjRibIn {
            source,
            routes: PrefixTrie::new(),
        }
    }

    /// Applies an UPDATE; returns the prefixes whose state changed
    /// (announced, replaced, or withdrawn).
    pub fn apply(&mut self, update: &UpdateMessage) -> Vec<Prefix> {
        let mut changed = Vec::new();
        for p in &update.withdrawn {
            if self.routes.remove(*p).is_some() {
                changed.push(*p);
            }
        }
        if let Some(attrs) = &update.attrs {
            for p in &update.nlri {
                let prev = self.routes.insert(*p, attrs.clone());
                if prev.as_ref() != Some(attrs) {
                    changed.push(*p);
                }
            }
        }
        changed
    }

    /// The attributes this participant announces for `prefix`, if any.
    pub fn get(&self, prefix: Prefix) -> Option<&PathAttributes> {
        self.routes.get(prefix)
    }

    /// The route (attributes + source) for `prefix`, if announced.
    pub fn route(&self, prefix: Prefix) -> Option<Route> {
        self.routes.get(prefix).map(|attrs| Route {
            source: self.source,
            attrs: attrs.clone(),
        })
    }

    /// Iterates all `(prefix, attrs)` pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &PathAttributes)> {
        self.routes.iter()
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Drops every route (session reset). Returns the withdrawn prefixes.
    pub fn clear(&mut self) -> Vec<Prefix> {
        let ps: Vec<Prefix> = self.routes.keys().collect();
        self.routes.clear();
        ps
    }
}

/// Loc-RIB: per prefix, every candidate route across all participants.
///
/// Alongside the per-prefix candidate table it maintains an **inverted
/// announcer index** — per participant, the set of prefixes it currently
/// has a candidate route for. Queries of the form "every prefix reachable
/// via participant X" (`RouteServer::prefixes_via`, the §4.1 BGP filter)
/// walk that participant's announced set instead of scanning the whole
/// Loc-RIB.
#[derive(Clone, Debug, Default)]
pub struct LocRib {
    candidates: PrefixTrie<Vec<Route>>,
    by_announcer: BTreeMap<ParticipantId, BTreeSet<Prefix>>,
}

impl LocRib {
    /// An empty Loc-RIB.
    pub fn new() -> Self {
        LocRib::default()
    }

    /// Replaces (or inserts) the route from `route.source.participant` for
    /// `prefix`.
    pub fn upsert(&mut self, prefix: Prefix, route: Route) {
        let announcer = route.source.participant;
        let v = self.candidates.get_or_insert_with(prefix, Vec::new);
        match v.iter_mut().find(|r| r.source.participant == announcer) {
            Some(slot) => *slot = route,
            None => v.push(route),
        }
        self.by_announcer
            .entry(announcer)
            .or_default()
            .insert(prefix);
    }

    /// Removes the candidate from `participant` for `prefix`.
    pub fn remove(&mut self, prefix: Prefix, participant: ParticipantId) {
        if let Some(v) = self.candidates.get_mut(prefix) {
            v.retain(|r| r.source.participant != participant);
            if v.is_empty() {
                self.candidates.remove(prefix);
            }
        }
        if let Some(set) = self.by_announcer.get_mut(&participant) {
            set.remove(&prefix);
            if set.is_empty() {
                self.by_announcer.remove(&participant);
            }
        }
    }

    /// All candidates for `prefix` (empty slice if none).
    pub fn candidates(&self, prefix: Prefix) -> &[Route] {
        self.candidates.get(prefix).map_or(&[], |v| v.as_slice())
    }

    /// The best route for `prefix` from the point of view of `viewer`:
    /// the decision process over all candidates *not announced by the viewer
    /// itself*. A route server never reflects a participant's route back.
    pub fn best_for(&self, prefix: Prefix, viewer: ParticipantId) -> Option<&Route> {
        decision::best_route(
            self.candidates(prefix)
                .iter()
                .filter(|r| r.source.participant != viewer),
        )
    }

    /// The participants that announced a route for `prefix` — the set a
    /// viewer may legitimately forward to, before export filtering.
    pub fn announcers(&self, prefix: Prefix) -> Vec<ParticipantId> {
        self.candidates(prefix)
            .iter()
            .map(|r| r.source.participant)
            .collect()
    }

    /// The prefixes `announcer` currently has a candidate route for, in
    /// prefix order (the inverted index; O(1) to locate, O(k) to walk).
    pub fn announced_by(&self, announcer: ParticipantId) -> impl Iterator<Item = Prefix> + '_ {
        self.by_announcer
            .get(&announcer)
            .into_iter()
            .flatten()
            .copied()
    }

    /// [`announced_by`](Self::announced_by), restricted to prefixes whose
    /// network address lies in `[lo, hi)` (`hi: None` is open-ended).
    /// O(log + slice) via the index's ordered set — `Prefix` orders
    /// addr-major, so the address band is one contiguous range. Range
    /// bounds are exclusive neighbors ((addr−1, /32) is the largest
    /// prefix below `addr`'s band) because constructing `(addr, /0)`
    /// directly would canonicalize the address away.
    pub fn announced_by_in(
        &self,
        announcer: ParticipantId,
        lo: Ipv4Addr,
        hi: Option<Ipv4Addr>,
    ) -> impl Iterator<Item = Prefix> + '_ {
        use core::ops::Bound;
        let lower = if lo.0 == 0 {
            Bound::Unbounded
        } else {
            Bound::Excluded(Prefix::new(Ipv4Addr(lo.0 - 1), 32))
        };
        let upper = match hi {
            Some(h) if h.0 > 0 => Bound::Included(Prefix::new(Ipv4Addr(h.0 - 1), 32)),
            Some(_) => Bound::Excluded(Prefix::new(Ipv4Addr(0), 0)),
            None => Bound::Unbounded,
        };
        self.by_announcer
            .get(&announcer)
            .into_iter()
            .flat_map(move |set| set.range((lower, upper)))
            .copied()
    }

    /// Whether `announcer` currently announces exactly `p` — an O(log)
    /// membership probe on the announcer index. The sharded compiler's
    /// unit pruning asks this per dirty prefix to prove a `(shard,
    /// viewer)` unit cannot have changed.
    pub fn announces(&self, announcer: ParticipantId, p: Prefix) -> bool {
        self.by_announcer
            .get(&announcer)
            .is_some_and(|set| set.contains(&p))
    }

    /// Number of prefixes `announcer` currently announces.
    pub fn announced_count(&self, announcer: ParticipantId) -> usize {
        self.by_announcer.get(&announcer).map_or(0, BTreeSet::len)
    }

    /// Longest-prefix-match lookup: the most specific prefix covering
    /// `addr` that has candidates, with those candidates.
    pub fn lookup_candidates(&self, addr: Ipv4Addr) -> Option<(Prefix, &[Route])> {
        self.candidates.lookup(addr).map(|(p, v)| (p, v.as_slice()))
    }

    /// Iterates all prefixes with at least one candidate.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.candidates.keys()
    }

    /// Number of prefixes with at least one candidate.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when no prefix has a candidate.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Adj-RIB-Out: what the route server last advertised to one peer.
///
/// The route server is stateful toward each peer: BGP only sends *changes*.
/// This structure remembers the last advertisement per prefix and turns a
/// desired state into the minimal UPDATE stream — used by the controller's
/// FIB synchronization so border routers see real incremental BGP instead
/// of full-table dumps.
#[derive(Clone, Debug, Default)]
pub struct AdjRibOut {
    advertised: PrefixTrie<PathAttributes>,
}

impl AdjRibOut {
    /// An empty Adj-RIB-Out.
    pub fn new() -> Self {
        AdjRibOut::default()
    }

    /// The attributes last advertised for `prefix`, if any.
    pub fn advertised(&self, prefix: Prefix) -> Option<&PathAttributes> {
        self.advertised.get(prefix)
    }

    /// Number of currently advertised prefixes.
    pub fn len(&self) -> usize {
        self.advertised.len()
    }

    /// True when nothing has been advertised.
    pub fn is_empty(&self) -> bool {
        self.advertised.is_empty()
    }

    /// Records the desired state for one prefix and returns the UPDATE to
    /// send, if anything changed. `None` attrs means "withdraw".
    pub fn reconcile(
        &mut self,
        prefix: Prefix,
        desired: Option<PathAttributes>,
    ) -> Option<UpdateMessage> {
        match desired {
            Some(attrs) => {
                if self.advertised.get(prefix) == Some(&attrs) {
                    return None; // already advertised exactly this
                }
                self.advertised.insert(prefix, attrs.clone());
                Some(UpdateMessage::announce([prefix], attrs))
            }
            None => {
                self.advertised.remove(prefix)?;
                Some(UpdateMessage::withdraw([prefix]))
            }
        }
    }

    /// Reconciles a whole desired table at once, returning the minimal
    /// update stream (withdrawals for prefixes no longer desired, plus
    /// announcements for new/changed ones).
    pub fn reconcile_full(
        &mut self,
        desired: impl IntoIterator<Item = (Prefix, PathAttributes)>,
    ) -> Vec<UpdateMessage> {
        let desired: std::collections::BTreeMap<Prefix, PathAttributes> =
            desired.into_iter().collect();
        let mut out = Vec::new();
        let stale: Vec<Prefix> = self
            .advertised
            .keys()
            .filter(|p| !desired.contains_key(p))
            .collect();
        for p in stale {
            if let Some(u) = self.reconcile(p, None) {
                out.push(u);
            }
        }
        for (p, attrs) in desired {
            if let Some(u) = self.reconcile(p, Some(attrs)) {
                out.push(u);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use crate::msg::simple_announce;
    use sdx_net::{ip, prefix};

    fn src(p: u32) -> RouteSource {
        RouteSource {
            participant: ParticipantId(p),
            asn: Asn(65000 + p),
            router_id: RouterId(p),
            peer_addr: Ipv4Addr(0xac000000 + p),
        }
    }

    fn rt(p: u32, path: &[u32]) -> Route {
        Route {
            source: src(p),
            attrs: PathAttributes::new(
                AsPath::sequence(path.iter().copied()),
                Ipv4Addr(0xac000000 + p),
            ),
        }
    }

    #[test]
    fn adj_rib_apply_announce_withdraw() {
        let mut rib = AdjRibIn::new(src(1));
        let up = simple_announce(prefix("10.0.0.0/8"), &[65001], ip("172.0.0.1"));
        assert_eq!(rib.apply(&up), vec![prefix("10.0.0.0/8")]);
        assert_eq!(rib.len(), 1);
        // Re-announcing identical attributes is not a change.
        assert!(rib.apply(&up).is_empty());
        // Different attributes is a change.
        let up2 = simple_announce(prefix("10.0.0.0/8"), &[65001, 9], ip("172.0.0.1"));
        assert_eq!(rib.apply(&up2), vec![prefix("10.0.0.0/8")]);
        // Withdrawal.
        let wd = UpdateMessage::withdraw([prefix("10.0.0.0/8")]);
        assert_eq!(rib.apply(&wd), vec![prefix("10.0.0.0/8")]);
        assert!(rib.is_empty());
        // Withdrawing an absent prefix is not a change.
        assert!(rib.apply(&wd).is_empty());
    }

    #[test]
    fn adj_rib_clear_reports_prefixes() {
        let mut rib = AdjRibIn::new(src(1));
        rib.apply(&simple_announce(prefix("10.0.0.0/8"), &[1], ip("1.1.1.1")));
        rib.apply(&simple_announce(prefix("20.0.0.0/8"), &[1], ip("1.1.1.1")));
        let mut cleared = rib.clear();
        cleared.sort();
        assert_eq!(cleared, vec![prefix("10.0.0.0/8"), prefix("20.0.0.0/8")]);
        assert!(rib.is_empty());
    }

    #[test]
    fn loc_rib_upsert_replaces_per_participant() {
        let mut rib = LocRib::new();
        let p = prefix("10.0.0.0/8");
        rib.upsert(p, rt(1, &[65001]));
        rib.upsert(p, rt(2, &[65002, 9]));
        assert_eq!(rib.candidates(p).len(), 2);
        // Same participant re-announces: replaced, not duplicated.
        rib.upsert(p, rt(1, &[65001, 7]));
        assert_eq!(rib.candidates(p).len(), 2);
    }

    #[test]
    fn loc_rib_best_excludes_viewer() {
        let mut rib = LocRib::new();
        let p = prefix("10.0.0.0/8");
        rib.upsert(p, rt(1, &[65001])); // shortest path
        rib.upsert(p, rt(2, &[65002, 9]));
        // Viewer 3 sees participant 1's (shorter) route as best.
        assert_eq!(
            rib.best_for(p, ParticipantId(3))
                .unwrap()
                .source
                .participant,
            ParticipantId(1)
        );
        // Viewer 1 must not have its own route reflected back.
        assert_eq!(
            rib.best_for(p, ParticipantId(1))
                .unwrap()
                .source
                .participant,
            ParticipantId(2)
        );
        // A viewer who is the only announcer gets nothing.
        rib.remove(p, ParticipantId(2));
        assert!(rib.best_for(p, ParticipantId(1)).is_none());
    }

    #[test]
    fn loc_rib_remove_cleans_empty_entries() {
        let mut rib = LocRib::new();
        let p = prefix("10.0.0.0/8");
        rib.upsert(p, rt(1, &[65001]));
        rib.remove(p, ParticipantId(1));
        assert!(rib.is_empty());
        assert!(rib.candidates(p).is_empty());
    }

    #[test]
    fn announcer_index_tracks_upserts_and_removals() {
        let mut rib = LocRib::new();
        let p1 = prefix("10.0.0.0/8");
        let p2 = prefix("20.0.0.0/8");
        rib.upsert(p1, rt(1, &[65001]));
        rib.upsert(p2, rt(1, &[65001]));
        rib.upsert(p1, rt(2, &[65002]));
        assert_eq!(
            rib.announced_by(ParticipantId(1)).collect::<Vec<_>>(),
            vec![p1, p2]
        );
        assert_eq!(rib.announced_count(ParticipantId(2)), 1);
        // Re-upserting the same (announcer, prefix) does not duplicate.
        rib.upsert(p1, rt(1, &[65001, 7]));
        assert_eq!(rib.announced_count(ParticipantId(1)), 2);
        // Removal shrinks the announced set; the last prefix removes the key.
        rib.remove(p1, ParticipantId(1));
        assert_eq!(
            rib.announced_by(ParticipantId(1)).collect::<Vec<_>>(),
            vec![p2]
        );
        rib.remove(p2, ParticipantId(1));
        assert_eq!(rib.announced_count(ParticipantId(1)), 0);
        // Removing a never-announced pair is a no-op.
        rib.remove(p2, ParticipantId(9));
        assert_eq!(rib.announced_by(ParticipantId(2)).count(), 1);
    }

    #[test]
    fn announcers_lists_all_feasible_next_hops() {
        let mut rib = LocRib::new();
        let p = prefix("10.0.0.0/8");
        rib.upsert(p, rt(1, &[65001]));
        rib.upsert(p, rt(2, &[65002]));
        let mut a = rib.announcers(p);
        a.sort();
        assert_eq!(a, vec![ParticipantId(1), ParticipantId(2)]);
    }

    #[test]
    fn adj_rib_out_sends_only_changes() {
        let mut out = AdjRibOut::new();
        let attrs = PathAttributes::new(AsPath::sequence([65001]), ip("172.16.0.1"));
        // First announcement goes out.
        let u = out
            .reconcile(prefix("10.0.0.0/8"), Some(attrs.clone()))
            .unwrap();
        assert_eq!(u.nlri, vec![prefix("10.0.0.0/8")]);
        // Re-announcing the same state is silent.
        assert!(out
            .reconcile(prefix("10.0.0.0/8"), Some(attrs.clone()))
            .is_none());
        // A changed next hop re-announces.
        let changed = attrs.clone().with_next_hop(ip("172.16.255.9"));
        assert!(out.reconcile(prefix("10.0.0.0/8"), Some(changed)).is_some());
        // Withdrawal, once.
        let w = out.reconcile(prefix("10.0.0.0/8"), None).unwrap();
        assert_eq!(w.withdrawn, vec![prefix("10.0.0.0/8")]);
        assert!(out.reconcile(prefix("10.0.0.0/8"), None).is_none());
        assert!(out.is_empty());
    }

    #[test]
    fn adj_rib_out_full_reconcile_is_minimal() {
        let mut out = AdjRibOut::new();
        let a = PathAttributes::new(AsPath::sequence([65001]), ip("172.16.0.1"));
        let b = PathAttributes::new(AsPath::sequence([65002]), ip("172.16.0.2"));
        out.reconcile(prefix("10.0.0.0/8"), Some(a.clone()));
        out.reconcile(prefix("20.0.0.0/8"), Some(a.clone()));
        // Desired: keep 10/8 unchanged, change 20/8, add 30/8, drop nothing.
        let updates = out.reconcile_full([
            (prefix("10.0.0.0/8"), a.clone()),
            (prefix("20.0.0.0/8"), b.clone()),
            (prefix("30.0.0.0/8"), b.clone()),
        ]);
        assert_eq!(updates.len(), 2, "one change + one addition: {updates:?}");
        // Desired: only 30/8 → two withdrawals.
        let updates = out.reconcile_full([(prefix("30.0.0.0/8"), b)]);
        assert_eq!(updates.len(), 2);
        assert!(updates.iter().all(|u| !u.withdrawn.is_empty()));
        assert_eq!(out.len(), 1);
    }
}
