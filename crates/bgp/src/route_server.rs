//! The SDX route server (§3.2, §5.1 of the paper).
//!
//! Like a conventional IXP route server it collects announcements from every
//! participant, runs the decision process *on behalf of each participant*,
//! and re-advertises one best route per prefix per participant. It differs
//! from a conventional route server in exactly the ways the paper calls out:
//!
//! * it exposes the **full candidate set** per prefix — a participant may
//!   forward to *any* AS that exported a route for the prefix, not only the
//!   best one ("forwarding only along BGP-advertised paths");
//! * re-advertisements carry a rewritten next hop (the **virtual next hop**,
//!   §4.2), supplied by the SDX controller through a callback, so that
//!   participants' border routers tag packets with the right VMAC.
//!
//! Export control: each announcing participant has an [`ExportPolicy`]
//! stating which peers may receive which of its prefixes (Figure 1b: AS B
//! does not export `p4` to AS A). Loop protection is enforced on export: a
//! route is never sent to a peer whose ASN already appears in its AS path,
//! and never reflected back to its announcer.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::RwLock;

use sdx_net::{Asn, Ipv4Addr, ParticipantId, Prefix};
use sdx_telemetry::SharedRegistry;

use crate::msg::UpdateMessage;
use crate::rib::{AdjRibIn, LocRib, Route, RouteSource};

/// Which peers an announcer's routes are exported to. Default: everyone.
#[derive(Clone, Debug, Default)]
pub struct ExportPolicy {
    deny_all: BTreeSet<ParticipantId>,
    deny: BTreeSet<(ParticipantId, Prefix)>,
}

/// Action communities understood by the route server, following the
/// convention real IXP route servers document (e.g. the `0:PEER-AS` /
/// `IXP-AS:PEER-AS` scheme at DE-CIX and AMS-IX): announcers control
/// export per-announcement by tagging routes, with no out-of-band
/// configuration.
pub mod communities {
    use crate::attrs::Community;
    use sdx_net::ParticipantId;

    /// `0:peer` — do not export this route to `peer`.
    pub fn no_export_to(peer: ParticipantId) -> Community {
        Community(0, peer.0 as u16)
    }

    /// `1:peer` — export this route *only* to `peer` (repeatable; the
    /// allow-set is the union of all `1:…` tags on the route).
    pub fn export_only_to(peer: ParticipantId) -> Community {
        Community(1, peer.0 as u16)
    }

    /// `0:65535` — do not export this route to anyone (NO_EXPORT at the
    /// route-server level).
    pub const NO_EXPORT_ALL: Community = Community(0, 65_535);

    /// Evaluates the community-based export decision for one route toward
    /// one peer: allow-list communities (if any) must include the peer,
    /// and no deny community may name it.
    pub fn allows(comms: &[Community], peer: ParticipantId) -> bool {
        if comms.contains(&NO_EXPORT_ALL) {
            return false;
        }
        if comms.contains(&no_export_to(peer)) {
            return false;
        }
        let allow: Vec<u16> = comms.iter().filter(|c| c.0 == 1).map(|c| c.1).collect();
        allow.is_empty() || allow.contains(&(peer.0 as u16))
    }
}

impl ExportPolicy {
    /// Export everything to everyone (the common IXP default).
    pub fn allow_all() -> Self {
        ExportPolicy::default()
    }

    /// Never export anything to `peer`.
    pub fn deny_peer(&mut self, peer: ParticipantId) -> &mut Self {
        self.deny_all.insert(peer);
        self
    }

    /// Do not export `prefix` to `peer` (e.g. selective announcements).
    pub fn deny(&mut self, peer: ParticipantId, prefix: Prefix) -> &mut Self {
        self.deny.insert((peer, prefix));
        self
    }

    /// Would this policy export `prefix` to `peer`?
    pub fn exports_to(&self, peer: ParticipantId, prefix: Prefix) -> bool {
        !self.deny_all.contains(&peer) && !self.deny.contains(&(peer, prefix))
    }
}

/// Events emitted while processing an update, consumed by the SDX
/// controller's incremental compilation path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RouteServerEvent {
    /// The candidate set for a prefix changed (announce/replace/withdraw).
    PrefixChanged(Prefix),
    /// A participant's session was reset; all its routes were dropped.
    SessionReset(ParticipantId),
}

/// Memoized decision-process winners, keyed per prefix so one changed
/// prefix invalidates exactly its own entries.
///
/// The cache stores the winning *announcer id* — not the route — so
/// [`RouteServer::best_for`] can still hand out a `&Route` borrowed from
/// the Loc-RIB: the id deterministically selects the winner from the
/// candidate slice. Interior mutability is an `RwLock` (not `RefCell`)
/// because the parallel compile pipeline shares `&RouteServer` across
/// scoped worker threads. A clone of the server starts with a cold cache:
/// cached winners are derived state, never part of snapshot identity.
#[derive(Debug, Default)]
struct BestRouteCache {
    map: RwLock<HashMap<Prefix, BTreeMap<ParticipantId, Option<ParticipantId>>>>,
}

impl BestRouteCache {
    fn get(&self, prefix: Prefix, viewer: ParticipantId) -> Option<Option<ParticipantId>> {
        self.map
            .read()
            .expect("best-route cache poisoned")
            .get(&prefix)
            .and_then(|per_viewer| per_viewer.get(&viewer))
            .copied()
    }

    fn put(&self, prefix: Prefix, viewer: ParticipantId, winner: Option<ParticipantId>) {
        self.map
            .write()
            .expect("best-route cache poisoned")
            .entry(prefix)
            .or_default()
            .insert(viewer, winner);
    }

    fn invalidate(&self, prefix: Prefix) {
        self.map
            .write()
            .expect("best-route cache poisoned")
            .remove(&prefix);
    }

    fn clear(&self) {
        self.map.write().expect("best-route cache poisoned").clear();
    }
}

impl Clone for BestRouteCache {
    fn clone(&self) -> Self {
        BestRouteCache::default()
    }
}

/// Change tracking for the compiler's incremental shard cache: a unique
/// instance identity plus the prefixes whose candidate sets changed since
/// the compiler last drained them.
///
/// This is deliberately separate from [`RouteServer::take_dirty_prefixes`]
/// (the controller's FIB-sync working set): the two consumers drain at
/// different times, and sharing one set would make either drain eat the
/// other's deltas. Both sets are populated at exactly the same mutation
/// sites.
///
/// The `id` is the staleness fingerprint: fresh per instance **and per
/// clone** (a clone is a different object whose future mutations this
/// object will never see), so a compiler cache keyed on the id of one
/// server can never be replayed against another. The *set contents* are
/// cloned, though — a snapshot taken mid-burst still owes the compiler
/// the pending dirt. Behind a `Mutex` because the compiler drains through
/// `&RouteServer` while worker threads share the reference.
#[derive(Debug)]
struct CompileDirty {
    id: u64,
    set: std::sync::Mutex<BTreeSet<Prefix>>,
}

impl Default for CompileDirty {
    fn default() -> Self {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        CompileDirty {
            id: NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            set: std::sync::Mutex::new(BTreeSet::new()),
        }
    }
}

impl Clone for CompileDirty {
    fn clone(&self) -> Self {
        let fresh = CompileDirty::default();
        *fresh.set.lock().expect("compile-dirty lock poisoned") = self
            .set
            .lock()
            .expect("compile-dirty lock poisoned")
            .clone();
        fresh
    }
}

/// The multi-participant route server.
#[derive(Clone, Debug, Default)]
pub struct RouteServer {
    peers: BTreeMap<ParticipantId, AdjRibIn>,
    export: BTreeMap<ParticipantId, ExportPolicy>,
    asns: BTreeMap<ParticipantId, Asn>,
    loc_rib: LocRib,
    /// Per-(prefix, viewer) decision winners; invalidated per changed
    /// prefix, cleared on peer/export-policy changes.
    best_cache: BestRouteCache,
    /// Prefixes whose candidate set changed since the last drain
    /// ([`take_dirty_prefixes`](Self::take_dirty_prefixes)) — the
    /// controller's minimal-sync working set. Populated at the same spots
    /// that emit [`RouteServerEvent::PrefixChanged`], so callers that
    /// mutate the route server directly (session supervision, harnesses)
    /// are tracked too.
    dirty: std::collections::BTreeSet<Prefix>,
    /// The compiler's change-tracking twin of `dirty` (drained on a
    /// different schedule; see [`CompileDirty`]).
    compile_dirty: CompileDirty,
    /// Decision/export stage timers land here.
    telemetry: SharedRegistry,
}

impl RouteServer {
    /// An empty route server.
    pub fn new() -> Self {
        RouteServer::default()
    }

    /// Points this route server's stage timers at `reg`.
    pub fn set_telemetry(&mut self, reg: SharedRegistry) {
        self.telemetry = reg;
    }

    /// The registry this route server emits into.
    pub fn telemetry(&self) -> &SharedRegistry {
        &self.telemetry
    }

    /// Registers a participant session. Must be called before updates from
    /// that participant are processed.
    pub fn add_peer(&mut self, source: RouteSource, export: ExportPolicy) {
        self.asns.insert(source.participant, source.asn);
        self.peers.insert(source.participant, AdjRibIn::new(source));
        self.export.insert(source.participant, export);
        // A new ASN changes loop-protection outcomes for existing routes,
        // so every known prefix must be re-examined at the next sync.
        self.best_cache.clear();
        let all: Vec<Prefix> = self.loc_rib.prefixes().collect();
        self.mark_compile_dirty(all.iter().copied());
        self.dirty.extend(all);
    }

    /// The registered participants, in id order.
    pub fn participants(&self) -> impl Iterator<Item = ParticipantId> + '_ {
        self.peers.keys().copied()
    }

    /// The ASN of a participant, if registered.
    pub fn asn_of(&self, p: ParticipantId) -> Option<Asn> {
        self.asns.get(&p).copied()
    }

    /// Replaces a participant's export policy (policy changes at runtime).
    ///
    /// Export filtering only reshapes the candidate sets built from routes
    /// `p` itself announced, so invalidation is scoped to
    /// `loc_rib.announced_by(p)` — prefixes announced only by other
    /// participants keep their cached decisions and their compiled shards.
    pub fn set_export_policy(&mut self, p: ParticipantId, export: ExportPolicy) {
        self.export.insert(p, export);
        let affected: Vec<Prefix> = self.loc_rib.announced_by(p).collect();
        for &prefix in &affected {
            self.best_cache.invalidate(prefix);
        }
        self.mark_compile_dirty(affected.iter().copied());
        self.dirty.extend(affected);
    }

    /// Processes one UPDATE from `from`, returning the prefixes whose
    /// candidate set changed.
    ///
    /// # Panics
    /// Panics if `from` was never registered with [`add_peer`](Self::add_peer)
    /// — an update from an unknown session is a programming error in the
    /// harness, not a runtime condition.
    pub fn process_update(
        &mut self,
        from: ParticipantId,
        update: &UpdateMessage,
    ) -> Vec<RouteServerEvent> {
        let reg = self.telemetry.clone();
        reg.inc("rs.update.count");
        reg.time("rs.decision", || {
            let rib = self
                .peers
                .get_mut(&from)
                .unwrap_or_else(|| panic!("update from unregistered participant {from}"));
            let changed = rib.apply(update);
            let mut events = Vec::with_capacity(changed.len());
            for p in changed {
                match self.peers[&from].route(p) {
                    Some(route) => self.loc_rib.upsert(p, route),
                    None => self.loc_rib.remove(p, from),
                }
                self.best_cache.invalidate(p);
                self.dirty.insert(p);
                self.compile_dirty
                    .set
                    .lock()
                    .expect("compile-dirty lock poisoned")
                    .insert(p);
                events.push(RouteServerEvent::PrefixChanged(p));
            }
            events
        })
    }

    fn mark_compile_dirty(&mut self, prefixes: impl IntoIterator<Item = Prefix>) {
        self.compile_dirty
            .set
            .get_mut()
            .expect("compile-dirty lock poisoned")
            .extend(prefixes);
    }

    /// This instance's compile-cache identity: unique per route server
    /// object (clones get fresh ids), so a compiler that cached per-shard
    /// state against one instance can detect it is now being run against
    /// a different one and rebuild instead of trusting stale slices.
    pub fn compile_id(&self) -> u64 {
        self.compile_dirty.id
    }

    /// Drains the compiler's view of changed prefixes (see
    /// [`CompileDirty`]; independent of
    /// [`take_dirty_prefixes`](Self::take_dirty_prefixes)). Takes `&self`
    /// because the compile pipeline holds the route server shared.
    pub fn take_compile_dirty(&self) -> std::collections::BTreeSet<Prefix> {
        std::mem::take(
            &mut self
                .compile_dirty
                .set
                .lock()
                .expect("compile-dirty lock poisoned"),
        )
    }

    /// Un-drained compiler-side changed prefixes (diagnostics).
    pub fn compile_dirty_len(&self) -> usize {
        self.compile_dirty
            .set
            .lock()
            .expect("compile-dirty lock poisoned")
            .len()
    }

    /// Drains the set of prefixes whose candidate set changed since the
    /// last drain. The controller's re-optimization sync uses this to
    /// re-examine only (viewer, prefix) pairs that could have moved —
    /// everything else provably advertises the same VNH as before under
    /// churn-stable FEC identity.
    pub fn take_dirty_prefixes(&mut self) -> std::collections::BTreeSet<Prefix> {
        std::mem::take(&mut self.dirty)
    }

    /// The number of un-drained changed prefixes (diagnostics).
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Handles a session reset: drops every route from `from` (Table 1's
    /// methodology discards the update churn a reset causes — the caller
    /// decides how to account it).
    pub fn reset_session(&mut self, from: ParticipantId) -> Vec<RouteServerEvent> {
        let Some(rib) = self.peers.get_mut(&from) else {
            return Vec::new();
        };
        let cleared = rib.clear();
        let mut events = vec![RouteServerEvent::SessionReset(from)];
        for p in cleared {
            self.loc_rib.remove(p, from);
            self.best_cache.invalidate(p);
            self.dirty.insert(p);
            self.compile_dirty
                .set
                .get_mut()
                .expect("compile-dirty lock poisoned")
                .insert(p);
            events.push(RouteServerEvent::PrefixChanged(p));
        }
        events
    }

    /// Whether `announcer` exports `prefix` to `viewer`: loop protection
    /// (never back to the announcer; never to a peer whose ASN is already
    /// in the path), the static per-peer export policy, and the route's
    /// action communities (see [`communities`]).
    fn exported(&self, announcer: &Route, viewer: ParticipantId, prefix: Prefix) -> bool {
        let ap = announcer.source.participant;
        if ap == viewer {
            return false;
        }
        if let Some(viewer_asn) = self.asns.get(&viewer) {
            if announcer.attrs.as_path.contains(*viewer_asn) {
                return false;
            }
        }
        if !communities::allows(&announcer.attrs.communities, viewer) {
            return false;
        }
        self.export
            .get(&ap)
            .is_none_or(|e| e.exports_to(viewer, prefix))
    }

    /// The candidate routes `viewer` may use for `prefix` — the feasible
    /// next-hop set the SDX consistency filters are derived from.
    pub fn candidates_for(&self, viewer: ParticipantId, prefix: Prefix) -> Vec<&Route> {
        self.loc_rib
            .candidates(prefix)
            .iter()
            .filter(|r| self.exported(r, viewer, prefix))
            .collect()
    }

    /// The participants `viewer` may forward `prefix`-destined traffic to.
    pub fn reachable_via(&self, viewer: ParticipantId, prefix: Prefix) -> Vec<ParticipantId> {
        self.candidates_for(viewer, prefix)
            .into_iter()
            .map(|r| r.source.participant)
            .collect()
    }

    /// [`reachable_via`](Self::reachable_via) recomputed from first
    /// principles via the full-scan [`prefixes_via_scan`](Self::prefixes_via_scan):
    /// participant `q` is reachable for `prefix` iff `prefix` appears in
    /// `prefixes_via_scan(viewer, q)`. Deliberately an *independent*
    /// implementation, kept as the property-test oracle for the indexed
    /// paths.
    pub fn reachable_via_scan(&self, viewer: ParticipantId, prefix: Prefix) -> Vec<ParticipantId> {
        self.peers
            .keys()
            .copied()
            .filter(|&nh| self.prefixes_via_scan(viewer, nh).contains(&prefix))
            .collect()
    }

    /// The best route for `prefix` from `viewer`'s point of view, or `None`
    /// if nothing is exported to it.
    ///
    /// Served from the per-(prefix, viewer) decision cache when warm; the
    /// cached winner id selects the route from the candidate slice, so the
    /// returned reference is identical to what the full decision process
    /// ([`best_for_scan`](Self::best_for_scan)) would pick.
    pub fn best_for(&self, viewer: ParticipantId, prefix: Prefix) -> Option<&Route> {
        if let Some(winner) = self.best_cache.get(prefix, viewer) {
            let nh = winner?;
            return self
                .loc_rib
                .candidates(prefix)
                .iter()
                .find(|r| r.source.participant == nh);
        }
        let best = self.best_for_scan(viewer, prefix);
        self.best_cache
            .put(prefix, viewer, best.map(|r| r.source.participant));
        best
    }

    /// The uncached decision process: export-filter the candidates, run
    /// the total-order comparison. The reference implementation behind
    /// [`best_for`](Self::best_for) and the property-test oracle.
    pub fn best_for_scan(&self, viewer: ParticipantId, prefix: Prefix) -> Option<&Route> {
        crate::decision::best_route(self.candidates_for(viewer, prefix))
    }

    /// Longest-prefix-match variants, used when a policy rewrites the
    /// destination address (wide-area load balancing, §3.1): the SDX must
    /// route the *rewritten* address along BGP-advertised paths.
    ///
    /// The most specific announced prefix covering `addr`, from `viewer`'s
    /// point of view, with the participants that exported it.
    pub fn reachable_via_addr(&self, viewer: ParticipantId, addr: Ipv4Addr) -> Vec<ParticipantId> {
        let Some((p, routes)) = self.loc_rib.lookup_candidates(addr) else {
            return Vec::new();
        };
        routes
            .iter()
            .filter(|r| self.exported(r, viewer, p))
            .map(|r| r.source.participant)
            .collect()
    }

    /// The best route for the most specific prefix covering `addr`, from
    /// `viewer`'s point of view.
    pub fn best_for_addr(&self, viewer: ParticipantId, addr: Ipv4Addr) -> Option<&Route> {
        let (p, routes) = self.loc_rib.lookup_candidates(addr)?;
        crate::decision::best_route(routes.iter().filter(|r| self.exported(r, viewer, p)))
    }

    /// Every prefix for which `viewer` can reach `next_hop` — the BGP
    /// filter the SDX inserts in front of `fwd(next_hop)` (§4.1, second
    /// transformation).
    ///
    /// Walks `next_hop`'s inverted announcer index (O(k) in the prefixes
    /// it announces) instead of scanning the whole Loc-RIB; the export
    /// check per prefix is unchanged. Result is in prefix order.
    pub fn prefixes_via(&self, viewer: ParticipantId, next_hop: ParticipantId) -> Vec<Prefix> {
        self.loc_rib
            .announced_by(next_hop)
            .filter(|&p| {
                self.loc_rib
                    .candidates(p)
                    .iter()
                    .any(|r| r.source.participant == next_hop && self.exported(r, viewer, p))
            })
            .collect()
    }

    /// [`prefixes_via`](Self::prefixes_via) restricted to prefixes whose
    /// network address lies in `[lo, hi)` (`hi = None` means "to the top
    /// of the address space") — the per-shard BGP join of the sharded
    /// compile pipeline. The restriction is a `BTreeSet::range` slice of
    /// the announcer index, not a filter, so one shard's join costs
    /// O(log + its slice) of the announcer's table — it never touches
    /// entries outside its range — and the union of the results over a
    /// partition of the address space is exactly
    /// [`prefixes_via`](Self::prefixes_via).
    pub fn prefixes_via_bounded(
        &self,
        viewer: ParticipantId,
        next_hop: ParticipantId,
        lo: Ipv4Addr,
        hi: Option<Ipv4Addr>,
    ) -> Vec<Prefix> {
        self.loc_rib
            .announced_by_in(next_hop, lo, hi)
            .filter(|&p| {
                self.loc_rib
                    .candidates(p)
                    .iter()
                    .any(|r| r.source.participant == next_hop && self.exported(r, viewer, p))
            })
            .collect()
    }

    /// [`prefixes_via`](Self::prefixes_via) as the original O(|Loc-RIB|)
    /// scan over every prefix. Kept as the property-test oracle and as the
    /// `CompileOptions::index_acceleration = false` ablation baseline.
    /// Result is in trie-key order; sort before comparing with the indexed
    /// variant.
    pub fn prefixes_via_scan(&self, viewer: ParticipantId, next_hop: ParticipantId) -> Vec<Prefix> {
        self.loc_rib
            .prefixes()
            .filter(|p| {
                self.loc_rib
                    .candidates(*p)
                    .iter()
                    .any(|r| r.source.participant == next_hop && self.exported(r, viewer, *p))
            })
            .collect()
    }

    /// Every prefix with at least one candidate.
    pub fn all_prefixes(&self) -> Vec<Prefix> {
        self.loc_rib.prefixes().collect()
    }

    /// Number of prefixes in the Loc-RIB.
    pub fn prefix_count(&self) -> usize {
        self.loc_rib.len()
    }

    /// Direct access to the Loc-RIB (read-only).
    pub fn loc_rib(&self) -> &LocRib {
        &self.loc_rib
    }

    /// A participant's Adj-RIB-In (what it announced), if registered.
    pub fn adj_rib_in(&self, p: ParticipantId) -> Option<&AdjRibIn> {
        self.peers.get(&p)
    }

    /// Builds the re-advertisements caused by a set of changed prefixes:
    /// for each viewer, announcements of its new best routes (with next hop
    /// rewritten via `vnh`) and withdrawals where no route remains.
    ///
    /// `vnh(viewer, prefix, best)` returns the virtual-next-hop address the
    /// SDX wants the viewer's border router to resolve (§4.2). Passing
    /// `|_, _, r| r.attrs.next_hop` yields conventional route-server
    /// behaviour.
    pub fn readvertisements(
        &self,
        changed: &[Prefix],
        mut vnh: impl FnMut(ParticipantId, Prefix, &Route) -> Ipv4Addr,
    ) -> Vec<(ParticipantId, UpdateMessage)> {
        self.telemetry.clone().time("rs.export", || {
            let mut out = Vec::new();
            for viewer in self.peers.keys().copied() {
                let mut msgs = UpdateMessage::default();
                let mut announces: Vec<(Prefix, UpdateMessage)> = Vec::new();
                for &p in changed {
                    match self.best_for(viewer, p) {
                        Some(best) => {
                            let nh = vnh(viewer, p, best);
                            let attrs = best.attrs.clone().with_next_hop(nh);
                            announces.push((p, UpdateMessage::announce([p], attrs)));
                        }
                        None => msgs.withdrawn.push(p),
                    }
                }
                if !msgs.withdrawn.is_empty() {
                    out.push((viewer, msgs));
                }
                for (_, m) in announces {
                    out.push((viewer, m));
                }
            }
            out
        })
    }

    /// Filters the Loc-RIB by an AS-path regular expression: the prefixes
    /// whose *best route for `viewer`* matches. This implements the paper's
    /// `RIB.filter('as_path', ...)` used for "grouping traffic based on BGP
    /// attributes" (§3.2).
    pub fn filter_as_path(
        &self,
        viewer: ParticipantId,
        regex: &crate::aspath_re::AsPathRegex,
    ) -> Vec<Prefix> {
        self.loc_rib
            .prefixes()
            .filter(|p| {
                self.best_for(viewer, *p)
                    .is_some_and(|r| regex.is_match(&r.attrs.as_path))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, PathAttributes};
    use crate::msg::simple_announce;
    use sdx_net::{ip, prefix, RouterId};

    fn src(p: u32) -> RouteSource {
        RouteSource {
            participant: ParticipantId(p),
            asn: Asn(65000 + p),
            router_id: RouterId(p),
            peer_addr: Ipv4Addr(0xac100000 + p),
        }
    }

    /// The Figure 1b scenario: B announces p1..p3 (not exporting p4 to A is
    /// modelled via export policy), C announces p1..p5 variants.
    fn figure1_server() -> RouteServer {
        let mut rs = RouteServer::new();
        rs.add_peer(src(1), ExportPolicy::allow_all()); // A
        let mut b_export = ExportPolicy::allow_all();
        b_export.deny(ParticipantId(1), prefix("40.0.0.0/8")); // B hides p4 from A
        rs.add_peer(src(2), b_export); // B
        rs.add_peer(src(3), ExportPolicy::allow_all()); // C

        // B announces p1,p2,p3,p4 ; C announces p1,p2,p4 with shorter path
        // for p1,p2 and p3 only from B.
        for (pfx, path) in [
            ("10.0.0.0/8", vec![65002, 100, 200]),
            ("20.0.0.0/8", vec![65002, 100, 200]),
            ("30.0.0.0/8", vec![65002, 300]),
            ("40.0.0.0/8", vec![65002, 400]),
        ] {
            rs.process_update(
                ParticipantId(2),
                &simple_announce(prefix(pfx), &path, ip("172.16.0.2")),
            );
        }
        for (pfx, path) in [
            ("10.0.0.0/8", vec![65003, 200]),
            ("20.0.0.0/8", vec![65003, 200]),
            ("40.0.0.0/8", vec![65003, 400]),
        ] {
            rs.process_update(
                ParticipantId(3),
                &simple_announce(prefix(pfx), &path, ip("172.16.0.3")),
            );
        }
        rs
    }

    #[test]
    fn best_route_prefers_shorter_path() {
        let rs = figure1_server();
        // For viewer A, p1's best is via C (2 hops < 3 hops).
        let best = rs.best_for(ParticipantId(1), prefix("10.0.0.0/8")).unwrap();
        assert_eq!(best.source.participant, ParticipantId(3));
        // p3 only announced by B.
        let best3 = rs.best_for(ParticipantId(1), prefix("30.0.0.0/8")).unwrap();
        assert_eq!(best3.source.participant, ParticipantId(2));
    }

    #[test]
    fn reachability_includes_non_best_routes() {
        let rs = figure1_server();
        // A can still send p1 traffic via B even though C is best (§3.2).
        let mut reach = rs.reachable_via(ParticipantId(1), prefix("10.0.0.0/8"));
        reach.sort();
        assert_eq!(reach, vec![ParticipantId(2), ParticipantId(3)]);
    }

    #[test]
    fn export_policy_hides_prefix() {
        let rs = figure1_server();
        // B does not export p4 to A → A can only reach p4 via C.
        assert_eq!(
            rs.reachable_via(ParticipantId(1), prefix("40.0.0.0/8")),
            vec![ParticipantId(3)]
        );
        // …but B exports p4 to C.
        let mut reach_c = rs.reachable_via(ParticipantId(3), prefix("40.0.0.0/8"));
        reach_c.sort();
        assert_eq!(reach_c, vec![ParticipantId(2)]);
    }

    #[test]
    fn routes_never_reflected_to_announcer() {
        let rs = figure1_server();
        // B announced p3; B must not see its own route.
        assert!(rs
            .best_for(ParticipantId(2), prefix("30.0.0.0/8"))
            .is_none());
    }

    #[test]
    fn loop_protection_on_export() {
        let mut rs = RouteServer::new();
        rs.add_peer(src(1), ExportPolicy::allow_all());
        rs.add_peer(src(2), ExportPolicy::allow_all());
        // P2 announces a route whose path already contains P1's ASN (65001).
        rs.process_update(
            ParticipantId(2),
            &simple_announce(prefix("50.0.0.0/8"), &[65002, 65001, 9], ip("172.16.0.2")),
        );
        assert!(rs
            .best_for(ParticipantId(1), prefix("50.0.0.0/8"))
            .is_none());
        assert!(rs
            .reachable_via(ParticipantId(1), prefix("50.0.0.0/8"))
            .is_empty());
    }

    #[test]
    fn prefixes_via_builds_bgp_filter() {
        let rs = figure1_server();
        // Figure 1: A may forward to B for p1, p2, p3 — not p4 (not exported).
        let mut via_b = rs.prefixes_via(ParticipantId(1), ParticipantId(2));
        via_b.sort();
        assert_eq!(
            via_b,
            vec![
                prefix("10.0.0.0/8"),
                prefix("20.0.0.0/8"),
                prefix("30.0.0.0/8")
            ]
        );
        let mut via_c = rs.prefixes_via(ParticipantId(1), ParticipantId(3));
        via_c.sort();
        assert_eq!(
            via_c,
            vec![
                prefix("10.0.0.0/8"),
                prefix("20.0.0.0/8"),
                prefix("40.0.0.0/8")
            ]
        );
    }

    #[test]
    fn best_cache_invalidates_on_update_reset_and_policy_change() {
        let mut rs = figure1_server();
        // Warm the cache for A's view of p1 (best = C, shorter path).
        let warm = rs.best_for(ParticipantId(1), prefix("10.0.0.0/8")).unwrap();
        assert_eq!(warm.source.participant, ParticipantId(3));
        // C withdraws p1: the cached winner must not survive.
        rs.process_update(
            ParticipantId(3),
            &UpdateMessage::withdraw([prefix("10.0.0.0/8")]),
        );
        let after = rs.best_for(ParticipantId(1), prefix("10.0.0.0/8")).unwrap();
        assert_eq!(after.source.participant, ParticipantId(2));
        // Export-policy change invalidates cached winners for the
        // announcer's prefixes: warm p4 (via C), then deny C→A; best must
        // disappear (B already hides p4 from A).
        assert!(rs
            .best_for(ParticipantId(1), prefix("40.0.0.0/8"))
            .is_some());
        let mut c_export = ExportPolicy::allow_all();
        c_export.deny_peer(ParticipantId(1));
        rs.set_export_policy(ParticipantId(3), c_export);
        assert!(rs
            .best_for(ParticipantId(1), prefix("40.0.0.0/8"))
            .is_none());
        // Session reset invalidates every prefix the peer announced.
        let warm3 = rs.best_for(ParticipantId(1), prefix("30.0.0.0/8"));
        assert!(warm3.is_some(), "p3 via B before the reset");
        rs.reset_session(ParticipantId(2));
        assert!(rs
            .best_for(ParticipantId(1), prefix("30.0.0.0/8"))
            .is_none());
        // A cloned server starts cold and recomputes consistently.
        let cloned = rs.clone();
        assert_eq!(
            cloned
                .best_for(ParticipantId(3), prefix("10.0.0.0/8"))
                .map(|r| r.source.participant),
            rs.best_for_scan(ParticipantId(3), prefix("10.0.0.0/8"))
                .map(|r| r.source.participant)
        );
    }

    #[test]
    fn add_peer_clears_cached_winners_for_new_loop_protection() {
        // Registering a peer introduces a new ASN, which changes
        // loop-protection outcomes for *already-cached* decisions: before
        // participant 3 is registered, a route whose AS path contains
        // 65003 is exported to viewer 3 (no ASN on file → no loop check),
        // but the moment `add_peer` runs, serving that cached winner
        // would forward into a loop. `add_peer` must clear the cache.
        let mut rs = RouteServer::new();
        rs.add_peer(src(1), ExportPolicy::allow_all());
        rs.add_peer(src(2), ExportPolicy::allow_all());
        rs.process_update(
            ParticipantId(2),
            &simple_announce(prefix("70.0.0.0/8"), &[65002, 65003, 9], ip("172.16.0.2")),
        );
        // Warm the cache from the not-yet-registered viewer's perspective.
        assert_eq!(
            rs.best_for(ParticipantId(3), prefix("70.0.0.0/8"))
                .map(|r| r.source.participant),
            Some(ParticipantId(2))
        );
        rs.add_peer(src(3), ExportPolicy::allow_all());
        assert!(
            rs.best_for(ParticipantId(3), prefix("70.0.0.0/8"))
                .is_none(),
            "stale cached winner would be a forwarding loop"
        );
        assert!(rs
            .best_for_scan(ParticipantId(3), prefix("70.0.0.0/8"))
            .is_none());
    }

    #[test]
    fn indexed_queries_agree_with_scan_oracles_on_figure1() {
        let rs = figure1_server();
        for viewer in [ParticipantId(1), ParticipantId(2), ParticipantId(3)] {
            for nh in [ParticipantId(1), ParticipantId(2), ParticipantId(3)] {
                let mut indexed = rs.prefixes_via(viewer, nh);
                let mut scanned = rs.prefixes_via_scan(viewer, nh);
                indexed.sort();
                scanned.sort();
                assert_eq!(indexed, scanned, "prefixes_via({viewer}, {nh})");
            }
            for p in rs.all_prefixes() {
                let mut indexed = rs.reachable_via(viewer, p);
                let mut scanned = rs.reachable_via_scan(viewer, p);
                indexed.sort();
                scanned.sort();
                assert_eq!(indexed, scanned, "reachable_via({viewer}, {p})");
                assert_eq!(
                    rs.best_for(viewer, p).map(|r| r.source.participant),
                    rs.best_for_scan(viewer, p).map(|r| r.source.participant),
                    "best_for({viewer}, {p})"
                );
            }
        }
    }

    /// Randomized churn: the indexed query paths (inverted announcer
    /// index + best-route cache) must agree with the full-scan oracles
    /// after every kind of mutation — announce, withdraw, export-policy
    /// flip, session reset — in any interleaving. Seeded xorshift64 keeps
    /// the sequences reproducible without a property-testing dependency.
    #[test]
    fn indexed_queries_agree_with_scan_oracles_under_random_churn() {
        struct Rng(u64);
        impl Rng {
            fn next(&mut self) -> u64 {
                let mut x = self.0;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.0 = x;
                x
            }
            fn below(&mut self, n: u64) -> u64 {
                self.next() % n
            }
        }

        const PARTICIPANTS: u64 = 6;
        const PREFIXES: u64 = 24;
        const STEPS: u64 = 300;
        let pfx = |i: u64| Prefix::new(Ipv4Addr::new(10 + i as u8, 0, 0, 0), 8);
        // Hop pool mixes participant ASNs (exercising loop protection) with
        // foreign ASNs (exercising path-length tiebreaks).
        let hop_pool = [65001, 65003, 65005, 100, 200, 300, 400];

        for seed in [3u64, 0x5dee_ce66, 0xfeed_f00d] {
            let mut rng = Rng(seed);
            let mut rs = RouteServer::new();
            for p in 1..=PARTICIPANTS {
                rs.add_peer(src(p as u32), ExportPolicy::allow_all());
            }
            for step in 0..STEPS {
                let actor = ParticipantId(1 + rng.below(PARTICIPANTS) as u32);
                let p = pfx(rng.below(PREFIXES));
                match rng.below(10) {
                    0..=5 => {
                        let mut path = vec![65000 + actor.0];
                        for _ in 0..rng.below(4) {
                            path.push(hop_pool[rng.below(hop_pool.len() as u64) as usize]);
                        }
                        rs.process_update(
                            actor,
                            &simple_announce(p, &path, Ipv4Addr(0xac10_0000 + actor.0)),
                        );
                    }
                    6 | 7 => {
                        rs.process_update(actor, &UpdateMessage::withdraw([p]));
                    }
                    8 => {
                        let mut export = ExportPolicy::allow_all();
                        if rng.below(2) == 0 {
                            let peer = ParticipantId(1 + rng.below(PARTICIPANTS) as u32);
                            export.deny(peer, p);
                        }
                        rs.set_export_policy(actor, export);
                    }
                    _ => {
                        rs.reset_session(actor);
                    }
                }
                // Full agreement sweep every few steps (it is O(V·(N+P))
                // with the oracle a Loc-RIB scan per pair).
                if step % 7 != 0 && step != STEPS - 1 {
                    continue;
                }
                for v in 1..=PARTICIPANTS {
                    let viewer = ParticipantId(v as u32);
                    for n in 1..=PARTICIPANTS {
                        let nh = ParticipantId(n as u32);
                        let mut indexed = rs.prefixes_via(viewer, nh);
                        let mut scanned = rs.prefixes_via_scan(viewer, nh);
                        indexed.sort();
                        scanned.sort();
                        assert_eq!(
                            indexed, scanned,
                            "seed {seed} step {step}: prefixes_via({viewer}, {nh})"
                        );
                    }
                    for i in 0..PREFIXES {
                        let p = pfx(i);
                        let mut indexed = rs.reachable_via(viewer, p);
                        let mut scanned = rs.reachable_via_scan(viewer, p);
                        indexed.sort();
                        scanned.sort();
                        assert_eq!(
                            indexed, scanned,
                            "seed {seed} step {step}: reachable_via({viewer}, {p})"
                        );
                        assert_eq!(
                            rs.best_for(viewer, p).map(|r| r.source.participant),
                            rs.best_for_scan(viewer, p).map(|r| r.source.participant),
                            "seed {seed} step {step}: best_for({viewer}, {p})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_join_partitions_the_unbounded_join() {
        let rs = figure1_server();
        for viewer in [ParticipantId(1), ParticipantId(2), ParticipantId(3)] {
            for nh in [ParticipantId(2), ParticipantId(3)] {
                let full = rs.prefixes_via(viewer, nh);
                // Any cut point partitions the result exactly.
                for cut in [
                    ip("0.0.0.1"),
                    ip("25.0.0.0"),
                    ip("40.0.0.0"),
                    ip("255.0.0.0"),
                ] {
                    let lo_half = rs.prefixes_via_bounded(viewer, nh, Ipv4Addr(0), Some(cut));
                    let hi_half = rs.prefixes_via_bounded(viewer, nh, cut, None);
                    let mut union = lo_half.clone();
                    union.extend(hi_half.iter().copied());
                    union.sort();
                    let mut sorted_full = full.clone();
                    sorted_full.sort();
                    assert_eq!(union, sorted_full, "cut at {cut} for ({viewer}, {nh})");
                    assert!(lo_half.iter().all(|p| p.addr() < cut));
                    assert!(hi_half.iter().all(|p| p.addr() >= cut));
                }
            }
        }
    }

    #[test]
    fn compile_dirty_tracks_all_mutation_sites_and_drains_independently() {
        let mut rs = figure1_server();
        // Building figure1 dirtied every announced prefix.
        assert_eq!(rs.compile_dirty_len(), 4);
        let drained = rs.take_compile_dirty();
        assert_eq!(drained.len(), 4);
        assert_eq!(rs.compile_dirty_len(), 0);
        // The controller-side dirty set is untouched by the compiler drain.
        assert_eq!(rs.dirty_len(), 4);
        // process_update marks per changed prefix.
        rs.process_update(
            ParticipantId(3),
            &UpdateMessage::withdraw([prefix("10.0.0.0/8")]),
        );
        assert_eq!(rs.take_compile_dirty().len(), 1);
        // reset_session marks every cleared prefix.
        rs.reset_session(ParticipantId(2));
        assert_eq!(rs.take_compile_dirty().len(), 4);
        // set_export_policy marks only the announcer's own prefixes:
        // after B's session reset, C still announces 20/8 and 40/8
        // (10/8 was withdrawn above), so exactly those two are dirtied.
        rs.set_export_policy(ParticipantId(3), ExportPolicy::allow_all());
        let drained = rs.take_compile_dirty();
        assert_eq!(drained.len(), 2, "scoped to announced_by(C): {drained:?}");
        assert!(drained.contains(&prefix("20.0.0.0/8")));
        assert!(drained.contains(&prefix("40.0.0.0/8")));
    }

    #[test]
    fn compile_id_is_fresh_per_clone_but_dirt_is_carried() {
        let mut rs = figure1_server();
        rs.take_compile_dirty();
        rs.process_update(
            ParticipantId(3),
            &UpdateMessage::withdraw([prefix("10.0.0.0/8")]),
        );
        let snap = rs.clone();
        assert_ne!(
            snap.compile_id(),
            rs.compile_id(),
            "a clone is a different compile-cache identity"
        );
        // …but the pending dirt travels with the snapshot, so a compiler
        // that first sees the clone still learns what changed.
        assert_eq!(snap.compile_dirty_len(), 1);
        assert_eq!(
            rs.compile_dirty_len(),
            1,
            "cloning does not drain the original"
        );
    }

    #[test]
    fn withdrawal_updates_loc_rib() {
        let mut rs = figure1_server();
        let ev = rs.process_update(
            ParticipantId(3),
            &UpdateMessage::withdraw([prefix("10.0.0.0/8")]),
        );
        assert_eq!(
            ev,
            vec![RouteServerEvent::PrefixChanged(prefix("10.0.0.0/8"))]
        );
        // Best for A falls back to B.
        let best = rs.best_for(ParticipantId(1), prefix("10.0.0.0/8")).unwrap();
        assert_eq!(best.source.participant, ParticipantId(2));
    }

    #[test]
    fn session_reset_drops_all_routes() {
        let mut rs = figure1_server();
        let before = rs.prefix_count();
        assert_eq!(before, 4);
        let ev = rs.reset_session(ParticipantId(2));
        assert!(matches!(ev[0], RouteServerEvent::SessionReset(p) if p == ParticipantId(2)));
        // B announced 4 prefixes → 4 PrefixChanged events follow.
        assert_eq!(ev.len(), 5);
        // p3 (only from B) is now unreachable.
        assert!(rs
            .best_for(ParticipantId(1), prefix("30.0.0.0/8"))
            .is_none());
        // p1 still reachable via C.
        assert!(rs
            .best_for(ParticipantId(1), prefix("10.0.0.0/8"))
            .is_some());
    }

    #[test]
    fn readvertisements_rewrite_next_hop() {
        let rs = figure1_server();
        let vnh_addr = ip("172.16.255.1");
        let msgs = rs.readvertisements(&[prefix("10.0.0.0/8")], |_, _, _| vnh_addr);
        // Every registered viewer gets an announcement (A, B, C all have a
        // best route for p1 from someone else).
        assert_eq!(msgs.len(), 3);
        for (_, m) in &msgs {
            assert_eq!(m.attrs.as_ref().unwrap().next_hop, vnh_addr);
            assert_eq!(m.nlri, vec![prefix("10.0.0.0/8")]);
        }
    }

    #[test]
    fn readvertisements_withdraw_when_no_route_remains() {
        let mut rs = figure1_server();
        rs.process_update(
            ParticipantId(2),
            &UpdateMessage::withdraw([prefix("30.0.0.0/8")]),
        );
        let msgs = rs.readvertisements(&[prefix("30.0.0.0/8")], |_, _, r| r.attrs.next_hop);
        // All three viewers lose the route.
        assert_eq!(msgs.len(), 3);
        for (_, m) in &msgs {
            assert_eq!(m.withdrawn, vec![prefix("30.0.0.0/8")]);
            assert!(m.nlri.is_empty());
        }
    }

    #[test]
    fn filter_as_path_selects_origin() {
        let rs = figure1_server();
        let re = crate::aspath_re::AsPathRegex::compile(".*200$").unwrap();
        let mut hits = rs.filter_as_path(ParticipantId(1), &re);
        hits.sort();
        assert_eq!(hits, vec![prefix("10.0.0.0/8"), prefix("20.0.0.0/8")]);
    }

    #[test]
    fn update_from_known_peer_with_new_attrs_changes_prefix() {
        let mut rs = figure1_server();
        // C improves its path for p4; event fires, best flips to C for A.
        let ev = rs.process_update(
            ParticipantId(3),
            &UpdateMessage::announce(
                [prefix("40.0.0.0/8")],
                PathAttributes::new(AsPath::sequence([65003]), ip("172.16.0.3"))
                    .with_local_pref(200),
            ),
        );
        assert_eq!(ev.len(), 1);
        let best = rs.best_for(ParticipantId(1), prefix("40.0.0.0/8")).unwrap();
        assert_eq!(best.source.participant, ParticipantId(3));
    }

    #[test]
    #[should_panic(expected = "unregistered participant")]
    fn update_from_unknown_peer_panics() {
        let mut rs = RouteServer::new();
        rs.process_update(
            ParticipantId(9),
            &simple_announce(prefix("10.0.0.0/8"), &[1], ip("1.1.1.1")),
        );
    }

    #[test]
    fn community_no_export_to_hides_route() {
        let mut rs = RouteServer::new();
        rs.add_peer(src(1), ExportPolicy::allow_all());
        rs.add_peer(src(2), ExportPolicy::allow_all());
        rs.add_peer(src(3), ExportPolicy::allow_all());
        let attrs = PathAttributes::new(AsPath::sequence([65002, 9]), ip("172.16.0.2"))
            .with_community(communities::no_export_to(ParticipantId(1)));
        rs.process_update(
            ParticipantId(2),
            &UpdateMessage::announce([prefix("60.0.0.0/8")], attrs),
        );
        assert!(rs
            .best_for(ParticipantId(1), prefix("60.0.0.0/8"))
            .is_none());
        assert!(rs
            .best_for(ParticipantId(3), prefix("60.0.0.0/8"))
            .is_some());
    }

    #[test]
    fn community_export_only_to_is_an_allow_list() {
        let mut rs = RouteServer::new();
        rs.add_peer(src(1), ExportPolicy::allow_all());
        rs.add_peer(src(2), ExportPolicy::allow_all());
        rs.add_peer(src(3), ExportPolicy::allow_all());
        let attrs = PathAttributes::new(AsPath::sequence([65002, 9]), ip("172.16.0.2"))
            .with_community(communities::export_only_to(ParticipantId(3)));
        rs.process_update(
            ParticipantId(2),
            &UpdateMessage::announce([prefix("61.0.0.0/8")], attrs),
        );
        assert!(rs
            .best_for(ParticipantId(1), prefix("61.0.0.0/8"))
            .is_none());
        assert!(rs
            .best_for(ParticipantId(3), prefix("61.0.0.0/8"))
            .is_some());
    }

    #[test]
    fn community_no_export_all_blackholes() {
        let mut rs = RouteServer::new();
        rs.add_peer(src(1), ExportPolicy::allow_all());
        rs.add_peer(src(2), ExportPolicy::allow_all());
        let attrs = PathAttributes::new(AsPath::sequence([65002, 9]), ip("172.16.0.2"))
            .with_community(communities::NO_EXPORT_ALL);
        rs.process_update(
            ParticipantId(2),
            &UpdateMessage::announce([prefix("62.0.0.0/8")], attrs),
        );
        assert!(rs
            .best_for(ParticipantId(1), prefix("62.0.0.0/8"))
            .is_none());
    }

    #[test]
    fn community_deny_beats_allow() {
        use crate::attrs::Community;
        let comms = vec![
            communities::export_only_to(ParticipantId(1)),
            communities::no_export_to(ParticipantId(1)),
            Community(9, 9), // unrelated community is ignored
        ];
        assert!(!communities::allows(&comms, ParticipantId(1)));
        assert!(
            !communities::allows(&comms, ParticipantId(2)),
            "not on allow list"
        );
        assert!(communities::allows(&[Community(9, 9)], ParticipantId(2)));
    }
}
