//! The BGP decision process (RFC 4271 §9.1.2.2) as a total order.
//!
//! The route server runs this on behalf of every participant to pick the
//! best route per prefix. Steps, in order:
//!
//! 1. highest LOCAL_PREF (missing = 100)
//! 2. shortest AS_PATH (AS_SET counts as one hop)
//! 3. lowest ORIGIN (IGP < EGP < INCOMPLETE)
//! 4. lowest MED (missing = 0)
//! 5. lowest router id
//! 6. lowest peer address
//!
//! Two deliberate simplifications, both standard route-server practice and
//! both documented in DESIGN.md: every session at an IXP route server is
//! eBGP so the eBGP-vs-iBGP step never discriminates, and MED is compared
//! across neighbouring ASes ("always-compare-med"). The latter keeps the
//! relation a *total order*, which the property tests verify — transitivity
//! is what guarantees the route server's choice is independent of the order
//! updates arrived in.

use core::cmp::Ordering;

use crate::rib::Route;

/// Default LOCAL_PREF per RFC 4271 when the attribute is absent.
pub const DEFAULT_LOCAL_PREF: u32 = 100;

/// Compares two routes for the same prefix; `Ordering::Greater` means `a`
/// is preferred over `b`.
pub fn compare(a: &Route, b: &Route) -> Ordering {
    let lp = |r: &Route| r.attrs.local_pref.unwrap_or(DEFAULT_LOCAL_PREF);
    let med = |r: &Route| r.attrs.med.unwrap_or(0);

    lp(a)
        .cmp(&lp(b)) // higher local-pref wins
        .then_with(|| {
            b.attrs
                .as_path
                .selection_len()
                .cmp(&a.attrs.as_path.selection_len()) // shorter path wins
        })
        .then_with(|| b.attrs.origin.cmp(&a.attrs.origin)) // lower origin wins
        .then_with(|| med(b).cmp(&med(a))) // lower MED wins
        .then_with(|| b.source.router_id.cmp(&a.source.router_id)) // lower id wins
        .then_with(|| b.source.peer_addr.cmp(&a.source.peer_addr)) // lower addr wins
}

/// Selects the best route among candidates, or `None` if there are none.
///
/// Because [`compare`] is a total order, the result does not depend on the
/// iteration order of `candidates`.
pub fn best_route<'a, I>(candidates: I) -> Option<&'a Route>
where
    I: IntoIterator<Item = &'a Route>,
{
    candidates.into_iter().max_by(|a, b| compare(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, Origin, PathAttributes};
    use crate::rib::{Route, RouteSource};
    use sdx_net::{ip, Asn, Ipv4Addr, ParticipantId, RouterId};

    fn route(path_len: usize, f: impl FnOnce(&mut Route)) -> Route {
        let mut r = Route {
            source: RouteSource {
                participant: ParticipantId(1),
                asn: Asn(65001),
                router_id: RouterId(100),
                peer_addr: ip("172.0.0.1"),
            },
            attrs: PathAttributes::new(
                AsPath::sequence((0..path_len as u32).map(|i| 65100 + i)),
                ip("172.0.0.1"),
            ),
        };
        f(&mut r);
        r
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let short = route(1, |_| {});
        let long_pref = route(5, |r| r.attrs.local_pref = Some(200));
        assert_eq!(compare(&long_pref, &short), Ordering::Greater);
        assert_eq!(best_route([&short, &long_pref]).unwrap(), &long_pref);
    }

    #[test]
    fn shorter_as_path_wins() {
        let a = route(2, |_| {});
        let b = route(3, |_| {});
        assert_eq!(compare(&a, &b), Ordering::Greater);
    }

    #[test]
    fn origin_breaks_path_tie() {
        let igp = route(2, |r| r.attrs.origin = Origin::Igp);
        let inc = route(2, |r| r.attrs.origin = Origin::Incomplete);
        assert_eq!(compare(&igp, &inc), Ordering::Greater);
    }

    #[test]
    fn lower_med_wins() {
        let low = route(2, |r| r.attrs.med = Some(10));
        let high = route(2, |r| r.attrs.med = Some(20));
        assert_eq!(compare(&low, &high), Ordering::Greater);
        // Missing MED behaves as zero.
        let missing = route(2, |_| {});
        assert_eq!(compare(&missing, &low), Ordering::Greater);
    }

    #[test]
    fn router_id_is_late_tiebreak() {
        let a = route(2, |r| r.source.router_id = RouterId(1));
        let b = route(2, |r| r.source.router_id = RouterId(2));
        assert_eq!(compare(&a, &b), Ordering::Greater);
    }

    #[test]
    fn peer_addr_is_final_tiebreak() {
        let a = route(2, |r| r.source.peer_addr = Ipv4Addr(1));
        let b = route(2, |r| r.source.peer_addr = Ipv4Addr(2));
        assert_eq!(compare(&a, &b), Ordering::Greater);
    }

    #[test]
    fn best_of_empty_is_none() {
        assert!(best_route(std::iter::empty()).is_none());
    }

    #[test]
    fn identical_routes_compare_equal() {
        let a = route(2, |_| {});
        let b = route(2, |_| {});
        assert_eq!(compare(&a, &b), Ordering::Equal);
    }
}
