//! BGP message types (RFC 4271 §4), as plain data.
//!
//! The wire representation lives in [`crate::wire`]; these structures are
//! what the route server and session machinery manipulate.

use sdx_net::{Asn, Ipv4Addr, Prefix, RouterId};

use crate::attrs::PathAttributes;

/// An OPEN message: session parameters exchanged at startup.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpenMessage {
    /// BGP version; always 4.
    pub version: u8,
    /// The sender's AS number. (2-octet field on the wire; AS_TRANS for
    /// 4-byte ASNs — we encode the truncated value like RFC 6793 peers do.)
    pub asn: Asn,
    /// Proposed hold time in seconds (0 = no keepalives).
    pub hold_time: u16,
    /// The sender's router id.
    pub router_id: RouterId,
}

/// An UPDATE message: withdrawn routes plus new NLRI sharing one attribute
/// set.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct UpdateMessage {
    /// Prefixes no longer reachable via the sender.
    pub withdrawn: Vec<Prefix>,
    /// Attributes applying to every prefix in `nlri`. `None` iff `nlri` is
    /// empty (withdraw-only update).
    pub attrs: Option<PathAttributes>,
    /// Newly advertised prefixes.
    pub nlri: Vec<Prefix>,
}

impl UpdateMessage {
    /// An announcement of `prefixes` with the given attributes.
    pub fn announce(prefixes: impl IntoIterator<Item = Prefix>, attrs: PathAttributes) -> Self {
        UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(attrs),
            nlri: prefixes.into_iter().collect(),
        }
    }

    /// A withdraw-only update.
    pub fn withdraw(prefixes: impl IntoIterator<Item = Prefix>) -> Self {
        UpdateMessage {
            withdrawn: prefixes.into_iter().collect(),
            attrs: None,
            nlri: Vec::new(),
        }
    }

    /// True when the update neither announces nor withdraws anything.
    pub fn is_empty(&self) -> bool {
        self.withdrawn.is_empty() && self.nlri.is_empty()
    }
}

/// NOTIFICATION error codes (RFC 4271 §4.5); subcodes are carried raw.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NotificationCode {
    /// Message header error (code 1).
    MessageHeaderError,
    /// OPEN message error (code 2).
    OpenMessageError,
    /// UPDATE message error (code 3).
    UpdateMessageError,
    /// Hold timer expired (code 4).
    HoldTimerExpired,
    /// FSM error (code 5).
    FsmError,
    /// Administrative cease (code 6) — what a session reset sends.
    Cease,
}

impl NotificationCode {
    /// On-wire code value.
    pub fn value(self) -> u8 {
        match self {
            NotificationCode::MessageHeaderError => 1,
            NotificationCode::OpenMessageError => 2,
            NotificationCode::UpdateMessageError => 3,
            NotificationCode::HoldTimerExpired => 4,
            NotificationCode::FsmError => 5,
            NotificationCode::Cease => 6,
        }
    }

    /// Decode an on-wire code value.
    pub fn from_value(v: u8) -> Option<Self> {
        Some(match v {
            1 => NotificationCode::MessageHeaderError,
            2 => NotificationCode::OpenMessageError,
            3 => NotificationCode::UpdateMessageError,
            4 => NotificationCode::HoldTimerExpired,
            5 => NotificationCode::FsmError,
            6 => NotificationCode::Cease,
            _ => return None,
        })
    }
}

/// Any BGP message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BgpMessage {
    /// Session open.
    Open(OpenMessage),
    /// Route announcement/withdrawal.
    Update(UpdateMessage),
    /// Error notification; closes the session.
    Notification {
        /// Error class.
        code: NotificationCode,
        /// Error detail (code-specific).
        subcode: u8,
    },
    /// Liveness keepalive.
    Keepalive,
}

impl BgpMessage {
    /// RFC 4271 message type byte.
    pub fn type_code(&self) -> u8 {
        match self {
            BgpMessage::Open(_) => 1,
            BgpMessage::Update(_) => 2,
            BgpMessage::Notification { .. } => 3,
            BgpMessage::Keepalive => 4,
        }
    }
}

/// Convenience for tests & workload generators: an announcement of a single
/// prefix via a bare AS path.
pub fn simple_announce(prefix: Prefix, path: &[u32], next_hop: Ipv4Addr) -> UpdateMessage {
    UpdateMessage::announce(
        [prefix],
        PathAttributes::new(
            crate::attrs::AsPath::sequence(path.iter().copied()),
            next_hop,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, prefix};

    #[test]
    fn update_constructors() {
        let a = simple_announce(prefix("10.0.0.0/8"), &[1, 2], ip("172.0.0.1"));
        assert!(!a.is_empty());
        assert_eq!(a.nlri, vec![prefix("10.0.0.0/8")]);
        assert!(a.withdrawn.is_empty());
        let w = UpdateMessage::withdraw([prefix("10.0.0.0/8")]);
        assert!(w.attrs.is_none());
        assert!(!w.is_empty());
        assert!(UpdateMessage::default().is_empty());
    }

    #[test]
    fn type_codes_match_rfc() {
        let open = BgpMessage::Open(OpenMessage {
            version: 4,
            asn: Asn(65000),
            hold_time: 90,
            router_id: RouterId(1),
        });
        assert_eq!(open.type_code(), 1);
        assert_eq!(BgpMessage::Update(UpdateMessage::default()).type_code(), 2);
        assert_eq!(
            BgpMessage::Notification {
                code: NotificationCode::Cease,
                subcode: 0
            }
            .type_code(),
            3
        );
        assert_eq!(BgpMessage::Keepalive.type_code(), 4);
    }

    #[test]
    fn notification_code_roundtrip() {
        for v in 1..=6u8 {
            assert_eq!(NotificationCode::from_value(v).unwrap().value(), v);
        }
        assert!(NotificationCode::from_value(0).is_none());
        assert!(NotificationCode::from_value(7).is_none());
    }
}
