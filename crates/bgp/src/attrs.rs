//! BGP path attributes (RFC 4271 §5).
//!
//! Only the attributes the SDX actually consumes are modelled — ORIGIN,
//! AS_PATH, NEXT_HOP, MED, LOCAL_PREF and communities — but each is modelled
//! faithfully (AS_PATH is a list of set/sequence segments, not a flat
//! vector) because the decision process and the AS-path regex engine depend
//! on the real structure.

use core::fmt;

use sdx_net::{Asn, Ipv4Addr};

/// The ORIGIN attribute: how the route entered BGP.
///
/// Ordered so that a *lower* value is preferred, matching the decision
/// process (IGP < EGP < INCOMPLETE).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Origin {
    /// Learned from an interior protocol (value 0).
    Igp,
    /// Learned via EGP (value 1).
    Egp,
    /// Anything else, e.g. redistribution (value 2).
    Incomplete,
}

impl Origin {
    /// On-wire value.
    pub fn value(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Parses an on-wire value.
    pub fn from_value(v: u8) -> Option<Self> {
        match v {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

/// One AS_PATH segment (RFC 4271 §4.3): an ordered sequence or an
/// unordered set (produced by aggregation).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum AsPathSegment {
    /// Ordered list of ASes the route traversed, nearest first.
    Sequence(Vec<Asn>),
    /// Unordered set of ASes (route aggregation).
    Set(Vec<Asn>),
}

impl AsPathSegment {
    fn len_for_selection(&self) -> usize {
        // RFC 4271 9.1.2.2(a): an AS_SET counts as 1 regardless of size.
        match self {
            AsPathSegment::Sequence(v) => v.len(),
            AsPathSegment::Set(_) => 1,
        }
    }
}

/// The AS_PATH attribute: the ASes a route has traversed.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct AsPath {
    /// Segments in order; the first segment's first AS is the neighbour the
    /// route was learned from, the last is (usually) the originator.
    pub segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// The empty path (a route originated locally).
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// A path consisting of one plain sequence.
    pub fn sequence(asns: impl IntoIterator<Item = u32>) -> Self {
        AsPath {
            segments: vec![AsPathSegment::Sequence(asns.into_iter().map(Asn).collect())],
        }
    }

    /// Path length as used by the decision process (AS_SET counts as 1).
    pub fn selection_len(&self) -> usize {
        self.segments.iter().map(|s| s.len_for_selection()).sum()
    }

    /// All ASNs in traversal order, flattening sets in listed order.
    /// This is the token stream the AS-path regex engine matches against.
    pub fn flatten(&self) -> Vec<Asn> {
        let mut out = Vec::new();
        for seg in &self.segments {
            match seg {
                AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => out.extend(v.iter().copied()),
            }
        }
        out
    }

    /// The originating AS — the last AS in the path, if any.
    pub fn origin_as(&self) -> Option<Asn> {
        self.flatten().last().copied()
    }

    /// The neighbour the route was learned from — the first AS, if any.
    pub fn first_as(&self) -> Option<Asn> {
        self.flatten().first().copied()
    }

    /// Returns a new path with `asn` prepended `n` times (the standard
    /// export/prepending operation).
    pub fn prepend(&self, asn: Asn, n: usize) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(AsPathSegment::Sequence(v)) => {
                for _ in 0..n {
                    v.insert(0, asn);
                }
            }
            _ => {
                segments.insert(0, AsPathSegment::Sequence(vec![asn; n]));
            }
        }
        AsPath { segments }
    }

    /// True if `asn` appears anywhere in the path (loop detection).
    /// Allocation-free: this runs once per (candidate, viewer) pair in the
    /// route server's export check, millions of times per compilation.
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|seg| match seg {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v.contains(&asn),
        })
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                AsPathSegment::Sequence(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                AsPathSegment::Set(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        Ok(())
    }
}

/// A BGP community value, conventionally written `asn:value`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Community(pub u16, pub u16);

impl Community {
    /// The 32-bit on-wire encoding.
    pub fn value(self) -> u32 {
        ((self.0 as u32) << 16) | self.1 as u32
    }

    /// Decodes the 32-bit on-wire encoding.
    pub fn from_value(v: u32) -> Self {
        Community((v >> 16) as u16, v as u16)
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.0, self.1)
    }
}

/// The attribute set attached to an UPDATE's NLRI.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PathAttributes {
    /// ORIGIN (well-known mandatory).
    pub origin: Origin,
    /// AS_PATH (well-known mandatory).
    pub as_path: AsPath,
    /// NEXT_HOP (well-known mandatory). At the SDX this is the address the
    /// route server rewrites to a *virtual next hop* (§4.2).
    pub next_hop: Ipv4Addr,
    /// MULTI_EXIT_DISC (optional non-transitive).
    pub med: Option<u32>,
    /// LOCAL_PREF (well-known discretionary; used on IBGP / route-server
    /// sessions).
    pub local_pref: Option<u32>,
    /// COMMUNITIES (optional transitive).
    pub communities: Vec<Community>,
}

impl PathAttributes {
    /// Minimal attribute set: origin IGP, given path and next hop.
    pub fn new(as_path: AsPath, next_hop: Ipv4Addr) -> Self {
        PathAttributes {
            origin: Origin::Igp,
            as_path,
            next_hop,
            med: None,
            local_pref: None,
            communities: Vec::new(),
        }
    }

    /// Builder-style MED setter.
    pub fn with_med(mut self, med: u32) -> Self {
        self.med = Some(med);
        self
    }

    /// Builder-style LOCAL_PREF setter.
    pub fn with_local_pref(mut self, lp: u32) -> Self {
        self.local_pref = Some(lp);
        self
    }

    /// Builder-style community append.
    pub fn with_community(mut self, c: Community) -> Self {
        self.communities.push(c);
        self
    }

    /// Returns a copy with the next hop replaced — the route server's VNH
    /// rewriting hook.
    pub fn with_next_hop(mut self, nh: Ipv4Addr) -> Self {
        self.next_hop = nh;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::ip;

    #[test]
    fn origin_roundtrip_and_order() {
        for v in 0..3u8 {
            assert_eq!(Origin::from_value(v).unwrap().value(), v);
        }
        assert!(Origin::from_value(3).is_none());
        assert!(Origin::Igp < Origin::Egp && Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn aspath_selection_len_counts_set_as_one() {
        let p = AsPath {
            segments: vec![
                AsPathSegment::Sequence(vec![Asn(1), Asn(2)]),
                AsPathSegment::Set(vec![Asn(3), Asn(4), Asn(5)]),
            ],
        };
        assert_eq!(p.selection_len(), 3);
        assert_eq!(p.flatten().len(), 5);
    }

    #[test]
    fn aspath_origin_and_first() {
        let p = AsPath::sequence([10, 20, 30]);
        assert_eq!(p.first_as(), Some(Asn(10)));
        assert_eq!(p.origin_as(), Some(Asn(30)));
        assert!(p.contains(Asn(20)));
        assert!(!p.contains(Asn(40)));
        assert_eq!(AsPath::empty().origin_as(), None);
    }

    #[test]
    fn prepend_extends_front_sequence() {
        let p = AsPath::sequence([20, 30]).prepend(Asn(10), 2);
        assert_eq!(p.flatten(), vec![Asn(10), Asn(10), Asn(20), Asn(30)]);
        // Prepending to an empty path creates a sequence segment.
        let q = AsPath::empty().prepend(Asn(7), 1);
        assert_eq!(q.flatten(), vec![Asn(7)]);
        // Prepending in front of a set creates a new leading sequence.
        let r = AsPath {
            segments: vec![AsPathSegment::Set(vec![Asn(1)])],
        }
        .prepend(Asn(9), 1);
        assert_eq!(r.flatten(), vec![Asn(9), Asn(1)]);
        assert_eq!(r.selection_len(), 2);
    }

    #[test]
    fn aspath_display() {
        let p = AsPath {
            segments: vec![
                AsPathSegment::Sequence(vec![Asn(10), Asn(20)]),
                AsPathSegment::Set(vec![Asn(30), Asn(40)]),
            ],
        };
        assert_eq!(p.to_string(), "10 20 {30,40}");
    }

    #[test]
    fn community_roundtrip() {
        let c = Community(65000, 42);
        assert_eq!(Community::from_value(c.value()), c);
        assert_eq!(c.to_string(), "65000:42");
    }

    #[test]
    fn attribute_builders() {
        let a = PathAttributes::new(AsPath::sequence([1]), ip("10.0.0.1"))
            .with_med(5)
            .with_local_pref(200)
            .with_community(Community(1, 2));
        assert_eq!(a.med, Some(5));
        assert_eq!(a.local_pref, Some(200));
        assert_eq!(a.communities, vec![Community(1, 2)]);
        let b = a.clone().with_next_hop(ip("10.0.0.2"));
        assert_eq!(b.next_hop, ip("10.0.0.2"));
        assert_eq!(a.next_hop, ip("10.0.0.1"));
    }
}
