//! A simplified BGP session finite-state machine (RFC 4271 §8).
//!
//! The paper's prototype leans on ExaBGP for session handling; we model the
//! same lifecycle so the workspace can exercise session establishment,
//! keepalive liveness, and — critically for Table 1's methodology — *session
//! resets*, which dump and re-send full tables and must be filtered out of
//! update statistics.
//!
//! The machine is transport-agnostic and purely event-driven: feed it
//! [`SessionEvent`]s, collect messages to transmit plus delivered updates
//! from the returned [`SessionOutput`]. Timers are the caller's job (the
//! discrete-event simulator drives them), which keeps the FSM deterministic
//! and directly unit-testable.

use crate::msg::{BgpMessage, NotificationCode, OpenMessage, UpdateMessage};

/// The RFC 4271 session states (Active is folded into Connect; we model a
/// single in-memory "TCP" attempt that always succeeds when told to).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionState {
    /// Not trying to connect.
    Idle,
    /// Waiting for the transport to come up.
    Connect,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPENs exchanged, waiting for the first KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
}

/// Inputs to the state machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SessionEvent {
    /// Operator starts the session.
    ManualStart,
    /// Transport connected.
    Connected,
    /// A message arrived from the peer.
    Received(BgpMessage),
    /// The negotiated hold timer expired without a message.
    HoldTimerExpired,
    /// Operator stops the session (administrative reset).
    ManualStop,
}

/// What a step of the machine produced.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SessionOutput {
    /// Messages to transmit to the peer, in order.
    pub send: Vec<BgpMessage>,
    /// UPDATEs delivered to the application (route server).
    pub updates: Vec<UpdateMessage>,
    /// True the moment the session transitions into Established.
    pub established: bool,
    /// True if the session dropped (to Idle) during this step — the route
    /// server must flush the peer's Adj-RIB-In.
    pub reset: bool,
}

/// A BGP session endpoint.
#[derive(Clone, Debug)]
pub struct Session {
    state: SessionState,
    local: OpenMessage,
    /// Hold time negotiated at OPEN (min of both sides), seconds.
    negotiated_hold: Option<u16>,
    /// The peer's OPEN parameters once received.
    peer_open: Option<OpenMessage>,
}

impl Session {
    /// Creates an idle session that will offer `local` parameters.
    pub fn new(local: OpenMessage) -> Self {
        Session {
            state: SessionState::Idle,
            local,
            negotiated_hold: None,
            peer_open: None,
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The hold time negotiated with the peer (None until OPENs exchanged).
    pub fn negotiated_hold_time(&self) -> Option<u16> {
        self.negotiated_hold
    }

    /// The peer's OPEN parameters (None until received).
    pub fn peer(&self) -> Option<&OpenMessage> {
        self.peer_open.as_ref()
    }

    /// The OPEN parameters this side offers. The socket runtime uses this
    /// to re-offer our OPEN when a peer reconnects mid-handshake.
    pub fn local(&self) -> &OpenMessage {
        &self.local
    }

    fn drop_session(&mut self, out: &mut SessionOutput, notify: Option<NotificationCode>) {
        if let Some(code) = notify {
            out.send.push(BgpMessage::Notification { code, subcode: 0 });
        }
        let was_up = self.state != SessionState::Idle;
        self.state = SessionState::Idle;
        self.negotiated_hold = None;
        self.peer_open = None;
        out.reset = was_up;
    }

    /// Advances the machine by one event.
    pub fn handle(&mut self, event: SessionEvent) -> SessionOutput {
        let mut out = SessionOutput::default();
        match (self.state, event) {
            (SessionState::Idle, SessionEvent::ManualStart) => {
                self.state = SessionState::Connect;
            }
            (SessionState::Connect, SessionEvent::Connected) => {
                out.send.push(BgpMessage::Open(self.local.clone()));
                self.state = SessionState::OpenSent;
            }
            (SessionState::OpenSent, SessionEvent::Received(BgpMessage::Open(peer))) => {
                // RFC 4271 §6.2: hold time must be 0 or ≥ 3 seconds.
                let valid = peer.version == 4
                    && peer.asn.0 != 0
                    && (peer.hold_time == 0 || peer.hold_time >= 3);
                if valid {
                    self.negotiated_hold = Some(self.local.hold_time.min(peer.hold_time));
                    self.peer_open = Some(peer);
                    out.send.push(BgpMessage::Keepalive);
                    self.state = SessionState::OpenConfirm;
                } else {
                    self.drop_session(&mut out, Some(NotificationCode::OpenMessageError));
                }
            }
            (SessionState::OpenConfirm, SessionEvent::Received(BgpMessage::Keepalive)) => {
                self.state = SessionState::Established;
                out.established = true;
            }
            (SessionState::Established, SessionEvent::Received(BgpMessage::Update(u))) => {
                out.updates.push(u);
            }
            (SessionState::Established, SessionEvent::Received(BgpMessage::Keepalive)) => {
                // Liveness only; hold-timer restart is the caller's job.
            }
            (_, SessionEvent::Received(BgpMessage::Notification { .. })) => {
                self.drop_session(&mut out, None);
            }
            (
                SessionState::Established | SessionState::OpenConfirm,
                SessionEvent::HoldTimerExpired,
            ) => {
                self.drop_session(&mut out, Some(NotificationCode::HoldTimerExpired));
            }
            (_, SessionEvent::ManualStop) => {
                let notify = if self.state == SessionState::Idle {
                    None
                } else {
                    Some(NotificationCode::Cease)
                };
                self.drop_session(&mut out, notify);
            }
            // Any other (state, message) combination is an FSM error.
            (s, SessionEvent::Received(m)) => {
                // Ignore stray keepalives/updates before establishment is
                // lenient in real stacks only for Keepalive in Established;
                // everything else is an error that resets the session.
                let benign = matches!((s, &m), (SessionState::Connect, BgpMessage::Keepalive));
                if !benign {
                    self.drop_session(&mut out, Some(NotificationCode::FsmError));
                }
            }
            // Start/Connected/timer events in wrong states: ignored.
            _ => {}
        }
        out
    }
}

/// Drives two sessions to Established against each other, returning the
/// messages each delivered. Used by tests and the IXP harness to bring up
/// peerings without hand-stepping the FSM.
pub fn establish_pair(a: &mut Session, b: &mut Session) -> Result<(), SessionState> {
    let mut to_b = a.handle(SessionEvent::ManualStart).send;
    to_b.extend(a.handle(SessionEvent::Connected).send);
    let mut to_a = b.handle(SessionEvent::ManualStart).send;
    to_a.extend(b.handle(SessionEvent::Connected).send);

    // Exchange until quiescent (bounded; the handshake needs 2 rounds).
    for _ in 0..4 {
        let mut next_a = Vec::new();
        let mut next_b = Vec::new();
        for m in to_a.drain(..) {
            next_b.extend(a.handle(SessionEvent::Received(m)).send);
        }
        for m in to_b.drain(..) {
            next_a.extend(b.handle(SessionEvent::Received(m)).send);
        }
        to_a = next_a;
        to_b = next_b;
        if to_a.is_empty() && to_b.is_empty() {
            break;
        }
    }
    if a.state() == SessionState::Established && b.state() == SessionState::Established {
        Ok(())
    } else {
        Err(a.state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::simple_announce;
    use sdx_net::{ip, prefix, Asn, RouterId};

    fn open(asn: u32, hold: u16) -> OpenMessage {
        OpenMessage {
            version: 4,
            asn: Asn(asn),
            hold_time: hold,
            router_id: RouterId(asn),
        }
    }

    #[test]
    fn happy_path_establishment() {
        let mut s = Session::new(open(65001, 90));
        assert_eq!(s.state(), SessionState::Idle);
        assert!(s.handle(SessionEvent::ManualStart).send.is_empty());
        assert_eq!(s.state(), SessionState::Connect);
        let out = s.handle(SessionEvent::Connected);
        assert!(matches!(out.send[0], BgpMessage::Open(_)));
        assert_eq!(s.state(), SessionState::OpenSent);
        let out = s.handle(SessionEvent::Received(BgpMessage::Open(open(65002, 30))));
        assert_eq!(out.send, vec![BgpMessage::Keepalive]);
        assert_eq!(s.state(), SessionState::OpenConfirm);
        assert_eq!(s.negotiated_hold_time(), Some(30));
        let out = s.handle(SessionEvent::Received(BgpMessage::Keepalive));
        assert!(out.established);
        assert_eq!(s.state(), SessionState::Established);
        assert_eq!(s.peer().unwrap().asn, Asn(65002));
    }

    #[test]
    fn establish_pair_helper() {
        let mut a = Session::new(open(65001, 90));
        let mut b = Session::new(open(65002, 90));
        establish_pair(&mut a, &mut b).expect("establish");
        assert_eq!(a.state(), SessionState::Established);
        assert_eq!(b.state(), SessionState::Established);
    }

    #[test]
    fn updates_delivered_only_when_established() {
        let mut a = Session::new(open(65001, 90));
        let mut b = Session::new(open(65002, 90));
        establish_pair(&mut a, &mut b).unwrap();
        let u = simple_announce(prefix("10.0.0.0/8"), &[65002], ip("1.1.1.1"));
        let out = a.handle(SessionEvent::Received(BgpMessage::Update(u.clone())));
        assert_eq!(out.updates, vec![u]);
        assert!(!out.reset);
    }

    #[test]
    fn bad_open_is_rejected() {
        let mut s = Session::new(open(65001, 90));
        s.handle(SessionEvent::ManualStart);
        s.handle(SessionEvent::Connected);
        // Hold time 1 is illegal (must be 0 or ≥ 3).
        let out = s.handle(SessionEvent::Received(BgpMessage::Open(open(65002, 1))));
        assert!(matches!(
            out.send[0],
            BgpMessage::Notification {
                code: NotificationCode::OpenMessageError,
                ..
            }
        ));
        assert_eq!(s.state(), SessionState::Idle);
        assert!(out.reset);
    }

    #[test]
    fn update_before_establishment_is_fsm_error() {
        let mut s = Session::new(open(65001, 90));
        s.handle(SessionEvent::ManualStart);
        s.handle(SessionEvent::Connected);
        let u = simple_announce(prefix("10.0.0.0/8"), &[65002], ip("1.1.1.1"));
        let out = s.handle(SessionEvent::Received(BgpMessage::Update(u)));
        assert!(matches!(
            out.send[0],
            BgpMessage::Notification {
                code: NotificationCode::FsmError,
                ..
            }
        ));
        assert!(out.updates.is_empty());
        assert!(out.reset);
    }

    #[test]
    fn hold_timer_expiry_resets() {
        let mut a = Session::new(open(65001, 90));
        let mut b = Session::new(open(65002, 90));
        establish_pair(&mut a, &mut b).unwrap();
        let out = a.handle(SessionEvent::HoldTimerExpired);
        assert!(out.reset);
        assert!(matches!(
            out.send[0],
            BgpMessage::Notification {
                code: NotificationCode::HoldTimerExpired,
                ..
            }
        ));
        assert_eq!(a.state(), SessionState::Idle);
    }

    #[test]
    fn notification_resets_silently() {
        let mut a = Session::new(open(65001, 90));
        let mut b = Session::new(open(65002, 90));
        establish_pair(&mut a, &mut b).unwrap();
        let out = a.handle(SessionEvent::Received(BgpMessage::Notification {
            code: NotificationCode::Cease,
            subcode: 0,
        }));
        assert!(out.reset);
        assert!(out.send.is_empty(), "must not notify in response to notify");
        assert_eq!(a.state(), SessionState::Idle);
    }

    #[test]
    fn manual_stop_sends_cease() {
        let mut a = Session::new(open(65001, 90));
        let mut b = Session::new(open(65002, 90));
        establish_pair(&mut a, &mut b).unwrap();
        let out = a.handle(SessionEvent::ManualStop);
        assert!(matches!(
            out.send[0],
            BgpMessage::Notification {
                code: NotificationCode::Cease,
                ..
            }
        ));
        assert!(out.reset);
        // Stop while already idle does nothing observable.
        let out2 = a.handle(SessionEvent::ManualStop);
        assert!(out2.send.is_empty());
        assert!(!out2.reset);
    }

    #[test]
    fn session_can_be_restarted_after_reset() {
        let mut a = Session::new(open(65001, 90));
        let mut b = Session::new(open(65002, 90));
        establish_pair(&mut a, &mut b).unwrap();
        a.handle(SessionEvent::ManualStop);
        b.handle(SessionEvent::Received(BgpMessage::Notification {
            code: NotificationCode::Cease,
            subcode: 0,
        }));
        assert_eq!(b.state(), SessionState::Idle);
        establish_pair(&mut a, &mut b).expect("re-establish");
    }
}
