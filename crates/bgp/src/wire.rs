//! Binary encode/decode of BGP messages (RFC 4271 framing).
//!
//! The SDX consumes parsed updates, but a credible route server must speak
//! the real wire format: the session layer frames messages exactly as RFC
//! 4271 does (16-byte marker, 2-byte length, 1-byte type), and the decoder
//! rejects malformed input with precise errors — which the failure-injection
//! tests exploit.
//!
//! One documented deviation: AS numbers in AS_PATH are encoded as 4 octets,
//! i.e. we behave as two speakers that have negotiated the RFC 6793
//! four-octet AS capability. This avoids carrying a parallel AS4_PATH and
//! loses nothing the experiments depend on.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sdx_net::{Asn, Ipv4Addr, Prefix, RouterId};

use crate::attrs::{AsPath, AsPathSegment, Community, Origin, PathAttributes};
use crate::msg::{BgpMessage, NotificationCode, OpenMessage, UpdateMessage};

/// Maximum BGP message size (RFC 4271 §4.1).
pub const MAX_MESSAGE_LEN: usize = 4096;
/// Fixed header size: marker(16) + length(2) + type(1).
pub const HEADER_LEN: usize = 19;

/// Errors produced by the decoder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Input shorter than the framed length (or than the header).
    Truncated,
    /// The 16-byte marker was not all-ones.
    BadMarker,
    /// The framed length is < 19 or > 4096 or inconsistent with the body.
    BadLength,
    /// Unknown message type byte.
    BadType(u8),
    /// Malformed path attribute.
    BadAttribute,
    /// Malformed NLRI / withdrawn prefix encoding.
    BadPrefix,
    /// Semantically invalid OPEN (bad version, zero ASN…).
    BadOpen,
    /// Unknown NOTIFICATION code.
    BadNotification,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadMarker => write!(f, "header marker not all-ones"),
            WireError::BadLength => write!(f, "invalid message length"),
            WireError::BadType(t) => write!(f, "unknown message type {t}"),
            WireError::BadAttribute => write!(f, "malformed path attribute"),
            WireError::BadPrefix => write!(f, "malformed prefix encoding"),
            WireError::BadOpen => write!(f, "invalid OPEN message"),
            WireError::BadNotification => write!(f, "invalid NOTIFICATION"),
        }
    }
}

impl std::error::Error for WireError {}

// Path-attribute type codes.
const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MED: u8 = 4;
const ATTR_LOCAL_PREF: u8 = 5;
const ATTR_COMMUNITIES: u8 = 8;

// Attribute flag bits.
const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_EXT_LEN: u8 = 0x10;

/// Encodes a message into a freshly allocated buffer.
pub fn encode(msg: &BgpMessage) -> Bytes {
    let mut body = BytesMut::new();
    match msg {
        BgpMessage::Open(o) => encode_open(o, &mut body),
        BgpMessage::Update(u) => encode_update(u, &mut body),
        BgpMessage::Notification { code, subcode } => {
            body.put_u8(code.value());
            body.put_u8(*subcode);
        }
        BgpMessage::Keepalive => {}
    }
    let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
    out.put_bytes(0xff, 16);
    out.put_u16((HEADER_LEN + body.len()) as u16);
    out.put_u8(msg.type_code());
    out.extend_from_slice(&body);
    out.freeze()
}

fn encode_open(o: &OpenMessage, out: &mut BytesMut) {
    out.put_u8(o.version);
    // 2-octet AS field: 4-byte ASNs are truncated as AS_TRANS would be; the
    // full ASN travels in AS_PATH which we encode 4-octet.
    out.put_u16(o.asn.0.min(u16::MAX as u32) as u16);
    out.put_u16(o.hold_time);
    out.put_u32(o.router_id.0);
    out.put_u8(0); // no optional parameters
}

fn encode_prefix(p: Prefix, out: &mut BytesMut) {
    out.put_u8(p.len());
    let nbytes = p.len().div_ceil(8) as usize;
    out.extend_from_slice(&p.addr().octets()[..nbytes]);
}

fn encode_attr(out: &mut BytesMut, flags: u8, ty: u8, body: &[u8]) {
    if body.len() > 255 {
        out.put_u8(flags | FLAG_EXT_LEN);
        out.put_u8(ty);
        out.put_u16(body.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(ty);
        out.put_u8(body.len() as u8);
    }
    out.extend_from_slice(body);
}

fn encode_update(u: &UpdateMessage, out: &mut BytesMut) {
    // Withdrawn routes.
    let mut wd = BytesMut::new();
    for p in &u.withdrawn {
        encode_prefix(*p, &mut wd);
    }
    out.put_u16(wd.len() as u16);
    out.extend_from_slice(&wd);

    // Path attributes.
    let mut attrs = BytesMut::new();
    if let Some(a) = &u.attrs {
        encode_attr(
            &mut attrs,
            FLAG_TRANSITIVE,
            ATTR_ORIGIN,
            &[a.origin.value()],
        );

        let mut path = BytesMut::new();
        for seg in &a.as_path.segments {
            let (ty, asns) = match seg {
                AsPathSegment::Set(v) => (1u8, v),
                AsPathSegment::Sequence(v) => (2u8, v),
            };
            path.put_u8(ty);
            path.put_u8(asns.len() as u8);
            for asn in asns {
                path.put_u32(asn.0);
            }
        }
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_AS_PATH, &path);

        encode_attr(
            &mut attrs,
            FLAG_TRANSITIVE,
            ATTR_NEXT_HOP,
            &a.next_hop.octets(),
        );
        if let Some(med) = a.med {
            encode_attr(&mut attrs, FLAG_OPTIONAL, ATTR_MED, &med.to_be_bytes());
        }
        if let Some(lp) = a.local_pref {
            encode_attr(
                &mut attrs,
                FLAG_TRANSITIVE,
                ATTR_LOCAL_PREF,
                &lp.to_be_bytes(),
            );
        }
        if !a.communities.is_empty() {
            let mut cs = BytesMut::new();
            for c in &a.communities {
                cs.put_u32(c.value());
            }
            encode_attr(
                &mut attrs,
                FLAG_OPTIONAL | FLAG_TRANSITIVE,
                ATTR_COMMUNITIES,
                &cs,
            );
        }
    }
    out.put_u16(attrs.len() as u16);
    out.extend_from_slice(&attrs);

    // NLRI.
    for p in &u.nlri {
        encode_prefix(*p, out);
    }
}

/// Decodes one message from the front of `buf`, consuming exactly its
/// framed length. Returns the message.
pub fn decode(buf: &mut Bytes) -> Result<BgpMessage, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if !buf[..16].iter().all(|&b| b == 0xff) {
        return Err(WireError::BadMarker);
    }
    let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
    if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&len) {
        return Err(WireError::BadLength);
    }
    if buf.len() < len {
        return Err(WireError::Truncated);
    }
    let ty = buf[18];
    let mut body = buf.slice(HEADER_LEN..len);
    buf.advance(len);
    match ty {
        1 => decode_open(&mut body),
        2 => decode_update(&mut body),
        3 => {
            if body.len() < 2 {
                return Err(WireError::Truncated);
            }
            let code = NotificationCode::from_value(body[0]).ok_or(WireError::BadNotification)?;
            Ok(BgpMessage::Notification {
                code,
                subcode: body[1],
            })
        }
        4 => {
            if !body.is_empty() {
                return Err(WireError::BadLength);
            }
            Ok(BgpMessage::Keepalive)
        }
        other => Err(WireError::BadType(other)),
    }
}

fn decode_open(body: &mut Bytes) -> Result<BgpMessage, WireError> {
    if body.len() < 10 {
        return Err(WireError::Truncated);
    }
    let version = body.get_u8();
    if version != 4 {
        return Err(WireError::BadOpen);
    }
    let asn = Asn(body.get_u16() as u32);
    if asn.0 == 0 {
        return Err(WireError::BadOpen);
    }
    let hold_time = body.get_u16();
    let router_id = RouterId(body.get_u32());
    let opt_len = body.get_u8() as usize;
    if body.len() < opt_len {
        return Err(WireError::Truncated);
    }
    Ok(BgpMessage::Open(OpenMessage {
        version,
        asn,
        hold_time,
        router_id,
    }))
}

fn decode_prefixes(mut body: Bytes) -> Result<Vec<Prefix>, WireError> {
    let mut out = Vec::new();
    while body.has_remaining() {
        let len = body.get_u8();
        if len > 32 {
            return Err(WireError::BadPrefix);
        }
        let nbytes = len.div_ceil(8) as usize;
        if body.len() < nbytes {
            return Err(WireError::BadPrefix);
        }
        let mut octets = [0u8; 4];
        body.copy_to_slice(&mut octets[..nbytes]);
        out.push(Prefix::new(Ipv4Addr::from(octets), len));
    }
    Ok(out)
}

fn decode_update(body: &mut Bytes) -> Result<BgpMessage, WireError> {
    if body.len() < 2 {
        return Err(WireError::Truncated);
    }
    let wd_len = body.get_u16() as usize;
    if body.len() < wd_len {
        return Err(WireError::Truncated);
    }
    let withdrawn = decode_prefixes(body.split_to(wd_len))?;

    if body.len() < 2 {
        return Err(WireError::Truncated);
    }
    let attr_len = body.get_u16() as usize;
    if body.len() < attr_len {
        return Err(WireError::Truncated);
    }
    let attrs_raw = body.split_to(attr_len);
    let nlri = decode_prefixes(body.clone())?;
    body.advance(body.len());

    let attrs = if attrs_raw.is_empty() {
        None
    } else {
        Some(decode_attrs(attrs_raw)?)
    };
    if attrs.is_none() && !nlri.is_empty() {
        return Err(WireError::BadAttribute); // NLRI requires attributes
    }
    Ok(BgpMessage::Update(UpdateMessage {
        withdrawn,
        attrs,
        nlri,
    }))
}

fn decode_attrs(mut body: Bytes) -> Result<PathAttributes, WireError> {
    let mut origin = None;
    let mut as_path = None;
    let mut next_hop = None;
    let mut med = None;
    let mut local_pref = None;
    let mut communities = Vec::new();

    while body.has_remaining() {
        if body.len() < 2 {
            return Err(WireError::BadAttribute);
        }
        let flags = body.get_u8();
        let ty = body.get_u8();
        let len = if flags & FLAG_EXT_LEN != 0 {
            if body.len() < 2 {
                return Err(WireError::BadAttribute);
            }
            body.get_u16() as usize
        } else {
            if body.is_empty() {
                return Err(WireError::BadAttribute);
            }
            body.get_u8() as usize
        };
        if body.len() < len {
            return Err(WireError::BadAttribute);
        }
        let mut val = body.split_to(len);
        match ty {
            ATTR_ORIGIN => {
                if val.len() != 1 {
                    return Err(WireError::BadAttribute);
                }
                origin = Some(Origin::from_value(val[0]).ok_or(WireError::BadAttribute)?);
            }
            ATTR_AS_PATH => {
                let mut segments = Vec::new();
                while val.has_remaining() {
                    if val.len() < 2 {
                        return Err(WireError::BadAttribute);
                    }
                    let seg_ty = val.get_u8();
                    let count = val.get_u8() as usize;
                    if val.len() < count * 4 {
                        return Err(WireError::BadAttribute);
                    }
                    let asns: Vec<Asn> = (0..count).map(|_| Asn(val.get_u32())).collect();
                    segments.push(match seg_ty {
                        1 => AsPathSegment::Set(asns),
                        2 => AsPathSegment::Sequence(asns),
                        _ => return Err(WireError::BadAttribute),
                    });
                }
                as_path = Some(AsPath { segments });
            }
            ATTR_NEXT_HOP => {
                if val.len() != 4 {
                    return Err(WireError::BadAttribute);
                }
                let mut o = [0u8; 4];
                val.copy_to_slice(&mut o);
                next_hop = Some(Ipv4Addr::from(o));
            }
            ATTR_MED => {
                if val.len() != 4 {
                    return Err(WireError::BadAttribute);
                }
                med = Some(val.get_u32());
            }
            ATTR_LOCAL_PREF => {
                if val.len() != 4 {
                    return Err(WireError::BadAttribute);
                }
                local_pref = Some(val.get_u32());
            }
            ATTR_COMMUNITIES => {
                if !val.len().is_multiple_of(4) {
                    return Err(WireError::BadAttribute);
                }
                while val.has_remaining() {
                    communities.push(Community::from_value(val.get_u32()));
                }
            }
            _ => {
                // Unknown attribute: tolerated if optional, error otherwise
                // (RFC 4271 §6.3 would send a NOTIFICATION).
                if flags & FLAG_OPTIONAL == 0 {
                    return Err(WireError::BadAttribute);
                }
            }
        }
    }

    let (origin, as_path, next_hop) = match (origin, as_path, next_hop) {
        (Some(o), Some(p), Some(n)) => (o, p, n),
        _ => return Err(WireError::BadAttribute), // missing mandatory attr
    };
    Ok(PathAttributes {
        origin,
        as_path,
        next_hop,
        med,
        local_pref,
        communities,
    })
}

/// Incremental decoder for a TCP byte stream carrying framed BGP messages.
///
/// TCP delivers bytes, not messages: a read may end mid-header, mid-body,
/// or hand back three messages and half of a fourth. `StreamDecoder` owns
/// the reassembly buffer — [`push`](StreamDecoder::push) whatever the
/// socket produced, then drain complete messages with
/// [`next`](StreamDecoder::next) until it returns `Ok(None)` (need more
/// bytes).
///
/// Error semantics follow [`decode`]: `Truncated` never escapes (it just
/// means "incomplete", reported as `Ok(None)`), while framing errors
/// (`BadMarker`, `BadLength`, …) are fatal — RFC 4271 offers no
/// resynchronization point, so the session must be torn down. After an
/// error the decoder is poisoned and keeps returning it.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    poisoned: Option<WireError>,
}

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded message.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Tries to decode the next complete message. `Ok(None)` means the
    /// buffer holds only a partial frame; push more bytes and retry.
    // Not an Iterator: `Ok(None)` means "need more bytes", not "done",
    // so `Iterator::next`'s termination contract would be wrong here.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<BgpMessage>, WireError> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        // Validate the header before waiting for the body: a bad marker or
        // framed length is fatal now, and `Truncated` from a frame we hold
        // in full is a malformed body, not a short read.
        if !self.buf[..16].iter().all(|&b| b == 0xff) {
            self.poisoned = Some(WireError::BadMarker);
            return Err(WireError::BadMarker);
        }
        let len = u16::from_be_bytes([self.buf[16], self.buf[17]]) as usize;
        if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&len) {
            self.poisoned = Some(WireError::BadLength);
            return Err(WireError::BadLength);
        }
        if self.buf.len() < len {
            return Ok(None);
        }
        let mut view = Bytes::from(self.buf[..len].to_vec());
        match decode(&mut view) {
            Ok(msg) => {
                self.buf.drain(..len);
                Ok(Some(msg))
            }
            Err(err) => {
                self.poisoned = Some(err);
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use crate::msg::simple_announce;
    use sdx_net::{ip, prefix};

    fn roundtrip(msg: BgpMessage) {
        let mut wire = encode(&msg);
        let got = decode(&mut wire).expect("decode");
        assert_eq!(got, msg);
        assert!(wire.is_empty(), "decoder must consume the whole frame");
    }

    #[test]
    fn keepalive_roundtrip() {
        roundtrip(BgpMessage::Keepalive);
    }

    #[test]
    fn open_roundtrip() {
        roundtrip(BgpMessage::Open(OpenMessage {
            version: 4,
            asn: Asn(65001),
            hold_time: 90,
            router_id: RouterId(0x0a000001),
        }));
    }

    #[test]
    fn notification_roundtrip() {
        roundtrip(BgpMessage::Notification {
            code: NotificationCode::Cease,
            subcode: 2,
        });
    }

    #[test]
    fn update_roundtrip_full() {
        let attrs = PathAttributes::new(AsPath::sequence([65001, 43515]), ip("172.16.0.1"))
            .with_med(10)
            .with_local_pref(200)
            .with_community(Community(65001, 99));
        roundtrip(BgpMessage::Update(UpdateMessage {
            withdrawn: vec![prefix("9.9.0.0/16"), prefix("8.0.0.0/8")],
            attrs: Some(attrs),
            nlri: vec![prefix("74.125.0.0/16"), prefix("74.125.1.0/24")],
        }));
    }

    #[test]
    fn update_roundtrip_withdraw_only() {
        roundtrip(BgpMessage::Update(UpdateMessage::withdraw([
            prefix("10.0.0.0/8"),
            prefix("0.0.0.0/0"),
        ])));
    }

    #[test]
    fn prefix_encoding_is_minimal_bytes() {
        // /8 prefix must occupy exactly 1 address byte, /0 zero bytes.
        let m = BgpMessage::Update(UpdateMessage::withdraw([prefix("10.0.0.0/8")]));
        let wire = encode(&m);
        // header(19) + wdlen(2) + (1 len byte + 1 addr byte) + attrlen(2)
        assert_eq!(wire.len(), 19 + 2 + 2 + 2);
    }

    #[test]
    fn decode_rejects_bad_marker() {
        let m = encode(&BgpMessage::Keepalive);
        let mut bad = BytesMut::from(&m[..]);
        bad[0] = 0;
        assert_eq!(decode(&mut bad.freeze()), Err(WireError::BadMarker));
    }

    #[test]
    fn decode_rejects_truncation() {
        let m = encode(&BgpMessage::Update(simple_announce(
            prefix("10.0.0.0/8"),
            &[1, 2, 3],
            ip("1.1.1.1"),
        )));
        for cut in [0, 5, HEADER_LEN - 1, m.len() - 1] {
            let mut b = m.slice(..cut);
            assert_eq!(decode(&mut b), Err(WireError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn decode_rejects_bad_type() {
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16(19);
        raw.put_u8(9);
        assert_eq!(decode(&mut raw.freeze()), Err(WireError::BadType(9)));
    }

    #[test]
    fn decode_rejects_bad_length() {
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16(5); // < 19
        raw.put_u8(4);
        assert_eq!(decode(&mut raw.freeze()), Err(WireError::BadLength));
    }

    #[test]
    fn decode_rejects_prefix_len_over_32() {
        let mut body = BytesMut::new();
        body.put_u16(2); // withdrawn length
        body.put_u8(33); // invalid prefix length
        body.put_u8(0);
        body.put_u16(0); // no attrs
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((HEADER_LEN + body.len()) as u16);
        raw.put_u8(2);
        raw.extend_from_slice(&body);
        assert_eq!(decode(&mut raw.freeze()), Err(WireError::BadPrefix));
    }

    #[test]
    fn decode_rejects_nlri_without_attrs() {
        let mut body = BytesMut::new();
        body.put_u16(0); // no withdrawn
        body.put_u16(0); // no attrs
        body.put_u8(8); // but NLRI present
        body.put_u8(10);
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((HEADER_LEN + body.len()) as u16);
        raw.put_u8(2);
        raw.extend_from_slice(&body);
        assert_eq!(decode(&mut raw.freeze()), Err(WireError::BadAttribute));
    }

    #[test]
    fn decode_rejects_missing_mandatory_attr() {
        // Attributes present but no NEXT_HOP.
        let mut attrs = BytesMut::new();
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_ORIGIN, &[0]);
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_AS_PATH, &[]);
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(attrs.len() as u16);
        body.extend_from_slice(&attrs);
        body.put_u8(8);
        body.put_u8(10);
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((HEADER_LEN + body.len()) as u16);
        raw.put_u8(2);
        raw.extend_from_slice(&body);
        assert_eq!(decode(&mut raw.freeze()), Err(WireError::BadAttribute));
    }

    #[test]
    fn unknown_optional_attr_is_tolerated() {
        // Build a valid update, then splice in an unknown optional attribute.
        let mut attrs = BytesMut::new();
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_ORIGIN, &[0]);
        let mut path = BytesMut::new();
        path.put_u8(2);
        path.put_u8(1);
        path.put_u32(65001);
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_AS_PATH, &path);
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_NEXT_HOP, &[1, 1, 1, 1]);
        encode_attr(&mut attrs, FLAG_OPTIONAL, 99, &[1, 2, 3]); // unknown optional
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(attrs.len() as u16);
        body.extend_from_slice(&attrs);
        body.put_u8(8);
        body.put_u8(10);
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((HEADER_LEN + body.len()) as u16);
        raw.put_u8(2);
        raw.extend_from_slice(&body);
        let msg = decode(&mut raw.freeze()).expect("tolerate unknown optional");
        match msg {
            BgpMessage::Update(u) => assert_eq!(u.nlri, vec![prefix("10.0.0.0/8")]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_wellknown_attr_is_rejected() {
        let mut attrs = BytesMut::new();
        encode_attr(&mut attrs, 0, 99, &[1]); // unknown, not optional
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(attrs.len() as u16);
        body.extend_from_slice(&attrs);
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((HEADER_LEN + body.len()) as u16);
        raw.put_u8(2);
        raw.extend_from_slice(&body);
        assert_eq!(decode(&mut raw.freeze()), Err(WireError::BadAttribute));
    }

    #[test]
    fn stream_decoder_handles_byte_at_a_time_delivery() {
        let msgs = vec![
            BgpMessage::Keepalive,
            BgpMessage::Update(simple_announce(prefix("10.0.0.0/8"), &[1], ip("1.1.1.1"))),
            BgpMessage::Open(OpenMessage {
                version: 4,
                asn: Asn(65001),
                hold_time: 90,
                router_id: RouterId(1),
            }),
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode(m));
        }
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for b in stream {
            dec.push(&[b]);
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn stream_decoder_drains_multiple_messages_from_one_push() {
        let mut stream = Vec::new();
        for _ in 0..3 {
            stream.extend_from_slice(&encode(&BgpMessage::Keepalive));
        }
        let mut dec = StreamDecoder::new();
        dec.push(&stream);
        let mut n = 0;
        while let Some(m) = dec.next().unwrap() {
            assert_eq!(m, BgpMessage::Keepalive);
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn stream_decoder_poisons_on_bad_marker() {
        let mut raw = encode(&BgpMessage::Keepalive).to_vec();
        raw[3] = 0;
        let mut dec = StreamDecoder::new();
        dec.push(&raw);
        assert_eq!(dec.next(), Err(WireError::BadMarker));
        // Poisoned: pushing a valid message afterwards cannot revive it.
        dec.push(&encode(&BgpMessage::Keepalive));
        assert_eq!(dec.next(), Err(WireError::BadMarker));
    }

    #[test]
    fn stream_decoder_rejects_oversized_frame_before_body_arrives() {
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((MAX_MESSAGE_LEN + 1) as u16);
        raw.put_u8(2);
        let mut dec = StreamDecoder::new();
        dec.push(&raw);
        assert_eq!(dec.next(), Err(WireError::BadLength));
    }

    #[test]
    fn stream_decoder_treats_complete_frame_with_short_body_as_fatal() {
        // A NOTIFICATION frame whose body is 1 byte short: the frame is
        // complete per its length field, so this is corruption, not a
        // partial read.
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((HEADER_LEN + 1) as u16);
        raw.put_u8(3);
        raw.put_u8(6); // code byte only, missing subcode
        let mut dec = StreamDecoder::new();
        dec.push(&raw);
        assert_eq!(dec.next(), Err(WireError::Truncated));
    }

    #[test]
    fn multiple_messages_stream() {
        let msgs = vec![
            BgpMessage::Keepalive,
            BgpMessage::Update(simple_announce(prefix("10.0.0.0/8"), &[1], ip("1.1.1.1"))),
            BgpMessage::Keepalive,
        ];
        let mut stream = BytesMut::new();
        for m in &msgs {
            stream.extend_from_slice(&encode(m));
        }
        let mut buf = stream.freeze();
        for m in &msgs {
            assert_eq!(&decode(&mut buf).unwrap(), m);
        }
        assert!(buf.is_empty());
    }
}
