//! Property-based tests for incremental BGP stream framing.
//!
//! TCP is free to deliver a message stream in any byte-level segmentation:
//! one byte at a time, several messages per read, or splits landing exactly
//! on header boundaries. The [`StreamDecoder`] must reassemble the same
//! message sequence under *every* segmentation, and must fail closed (a
//! fatal, sticky error — never a mis-parse, never a panic) on corrupt or
//! oversized frames.

use proptest::prelude::*;
use sdx_bgp::attrs::{AsPath, AsPathSegment, Community, Origin, PathAttributes};
use sdx_bgp::msg::{BgpMessage, NotificationCode, OpenMessage, UpdateMessage};
use sdx_bgp::wire::{self, StreamDecoder, WireError, HEADER_LEN, MAX_MESSAGE_LEN};
use sdx_net::{Asn, Ipv4Addr, Prefix, RouterId};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ipv4Addr(a), l))
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        proptest::collection::vec(1u32..1_000_000, 1..5),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::collection::vec((any::<u16>(), any::<u16>()), 0..3),
        0u8..3,
    )
        .prop_map(|(path, nh, med, lp, comms, origin)| {
            let mut a = PathAttributes::new(
                AsPath {
                    segments: vec![AsPathSegment::Sequence(path.into_iter().map(Asn).collect())],
                },
                Ipv4Addr(nh),
            );
            a.med = med;
            a.local_pref = lp;
            a.communities = comms.into_iter().map(|(x, y)| Community(x, y)).collect();
            a.origin = Origin::from_value(origin).unwrap();
            a
        })
}

fn arb_message() -> impl Strategy<Value = BgpMessage> {
    prop_oneof![
        Just(BgpMessage::Keepalive),
        (1u32..65000, any::<u16>(), any::<u32>()).prop_map(|(asn, hold, rid)| {
            BgpMessage::Open(OpenMessage {
                version: 4,
                asn: Asn(asn),
                hold_time: hold,
                router_id: RouterId(rid),
            })
        }),
        (1u8..=6, any::<u8>()).prop_map(|(c, s)| BgpMessage::Notification {
            code: NotificationCode::from_value(c).unwrap(),
            subcode: s,
        }),
        (
            proptest::collection::vec(arb_prefix(), 0..6),
            proptest::option::of(arb_attrs()),
            proptest::collection::vec(arb_prefix(), 0..6),
        )
            .prop_map(|(withdrawn, attrs, mut nlri)| {
                if attrs.is_none() {
                    nlri.clear(); // the decoder rejects NLRI without attrs
                }
                BgpMessage::Update(UpdateMessage {
                    withdrawn,
                    attrs,
                    nlri,
                })
            }),
    ]
}

/// Encodes `msgs` into one contiguous byte stream.
fn encode_stream(msgs: &[BgpMessage]) -> Vec<u8> {
    let mut out = Vec::new();
    for m in msgs {
        out.extend_from_slice(&wire::encode(m));
    }
    out
}

/// Splits `stream` into chunks at positions chosen by `cuts` (fractions of
/// the stream length), then feeds each chunk to a fresh decoder and drains
/// everything it yields.
fn decode_segmented(stream: &[u8], cuts: &[f64]) -> Result<Vec<BgpMessage>, WireError> {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|f| (stream.len() as f64 * f) as usize)
        .collect();
    points.push(0);
    points.push(stream.len());
    points.sort_unstable();
    points.dedup();

    let mut dec = StreamDecoder::new();
    let mut got = Vec::new();
    for w in points.windows(2) {
        dec.push(&stream[w[0]..w[1]]);
        while let Some(m) = dec.next()? {
            got.push(m);
        }
    }
    Ok(got)
}

proptest! {
    /// Any segmentation of a valid stream decodes to the same sequence.
    #[test]
    fn any_segmentation_yields_the_same_messages(
        msgs in proptest::collection::vec(arb_message(), 0..6),
        cuts in proptest::collection::vec(0.0f64..1.0, 0..12),
    ) {
        let stream = encode_stream(&msgs);
        let got = decode_segmented(&stream, &cuts).expect("valid stream");
        prop_assert_eq!(got, msgs);
    }

    /// Byte-at-a-time delivery — the worst-case segmentation — also
    /// reproduces the sequence, and nothing is left buffered.
    #[test]
    fn byte_at_a_time_yields_the_same_messages(
        msgs in proptest::collection::vec(arb_message(), 1..5),
    ) {
        let stream = encode_stream(&msgs);
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.push(std::slice::from_ref(b));
            while let Some(m) = dec.next().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Cutting the stream mid-frame yields exactly the messages whose
    /// frames completed, then waits for more bytes — no error, no
    /// misparse of the partial tail.
    #[test]
    fn truncated_tail_is_pending_not_an_error(
        msgs in proptest::collection::vec(arb_message(), 1..5),
        frac in 0.0f64..1.0,
    ) {
        let stream = encode_stream(&msgs);
        // Cut strictly inside the final frame.
        let last_start = stream.len() - wire::encode(msgs.last().unwrap()).len();
        let span = stream.len() - last_start;
        let cut = last_start + ((span - 1) as f64 * frac) as usize;

        let mut dec = StreamDecoder::new();
        dec.push(&stream[..cut]);
        let mut got = Vec::new();
        while let Some(m) = dec.next().expect("prefix of a valid stream") {
            got.push(m);
        }
        prop_assert_eq!(&got[..], &msgs[..msgs.len() - 1]);
        // Delivering the rest completes the sequence.
        dec.push(&stream[cut..]);
        while let Some(m) = dec.next().unwrap() {
            got.push(m);
        }
        prop_assert_eq!(got, msgs);
    }

    /// A corrupted marker byte anywhere in the first frame's header is a
    /// fatal, sticky `BadMarker` — the decoder never resynchronizes.
    #[test]
    fn corrupt_marker_is_fatal_and_sticky(
        msgs in proptest::collection::vec(arb_message(), 1..4),
        pos in 0usize..16,
        xor in 1u8..=255,
    ) {
        let mut stream = encode_stream(&msgs);
        stream[pos] ^= xor;
        let mut dec = StreamDecoder::new();
        dec.push(&stream);
        prop_assert_eq!(dec.next(), Err(WireError::BadMarker));
        dec.push(&encode_stream(&[BgpMessage::Keepalive]));
        prop_assert_eq!(dec.next(), Err(WireError::BadMarker));
    }

    /// Oversized or undersized framed lengths are rejected from the header
    /// alone — before any body bytes arrive.
    #[test]
    fn bad_framed_length_rejected_from_header(
        len in prop_oneof![
            0u16..HEADER_LEN as u16,
            (MAX_MESSAGE_LEN as u16 + 1)..=u16::MAX,
        ],
    ) {
        let mut raw = vec![0xffu8; 16];
        raw.extend_from_slice(&len.to_be_bytes());
        raw.push(2);
        let mut dec = StreamDecoder::new();
        dec.push(&raw);
        prop_assert_eq!(dec.next(), Err(WireError::BadLength));
    }

    /// Arbitrary garbage never panics the stream decoder; it either waits
    /// for more bytes, yields messages, or fails with a sticky error.
    #[test]
    fn garbage_never_panics(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            0..8,
        ),
    ) {
        let mut dec = StreamDecoder::new();
        let mut failed = None;
        for chunk in &chunks {
            dec.push(chunk);
            loop {
                match dec.next() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        if let Some(first) = failed {
                            prop_assert_eq!(e, first, "poison error must be sticky");
                        }
                        failed = Some(e);
                        break;
                    }
                }
            }
        }
    }
}
