//! Property-based tests for the BGP substrate.

use proptest::prelude::*;
use sdx_bgp::attrs::{AsPath, AsPathSegment, Community, Origin, PathAttributes};
use sdx_bgp::decision;
use sdx_bgp::msg::{BgpMessage, NotificationCode, OpenMessage, UpdateMessage};
use sdx_bgp::rib::{Route, RouteSource};
use sdx_bgp::session::{Session, SessionEvent, SessionState};
use sdx_bgp::wire;
use sdx_net::{Asn, Ipv4Addr, ParticipantId, Prefix, RouterId};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ipv4Addr(a), l))
}

fn arb_aspath() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(1u32..1_000_000, 1..6)
                .prop_map(|v| AsPathSegment::Sequence(v.into_iter().map(Asn).collect())),
            proptest::collection::vec(1u32..1_000_000, 1..4)
                .prop_map(|v| AsPathSegment::Set(v.into_iter().map(Asn).collect())),
        ],
        0..4,
    )
    .prop_map(|segments| AsPath { segments })
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        arb_aspath(),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::collection::vec((any::<u16>(), any::<u16>()), 0..4),
        0u8..3,
    )
        .prop_map(|(path, nh, med, lp, comms, origin)| {
            let mut a = PathAttributes::new(path, Ipv4Addr(nh));
            a.med = med;
            a.local_pref = lp;
            a.communities = comms.into_iter().map(|(x, y)| Community(x, y)).collect();
            a.origin = Origin::from_value(origin).unwrap();
            a
        })
}

fn arb_update() -> impl Strategy<Value = UpdateMessage> {
    (
        proptest::collection::vec(arb_prefix(), 0..8),
        proptest::option::of(arb_attrs()),
        proptest::collection::vec(arb_prefix(), 0..8),
    )
        .prop_map(|(withdrawn, attrs, mut nlri)| {
            // NLRI requires attributes (the decoder enforces this).
            if attrs.is_none() {
                nlri.clear();
            }
            UpdateMessage {
                withdrawn,
                attrs,
                nlri,
            }
        })
}

fn arb_message() -> impl Strategy<Value = BgpMessage> {
    prop_oneof![
        Just(BgpMessage::Keepalive),
        (1u32..65000, any::<u16>(), any::<u32>()).prop_map(|(asn, hold, rid)| {
            BgpMessage::Open(OpenMessage {
                version: 4,
                asn: Asn(asn),
                hold_time: hold,
                router_id: RouterId(rid),
            })
        }),
        (1u8..=6, any::<u8>()).prop_map(|(c, s)| BgpMessage::Notification {
            code: NotificationCode::from_value(c).unwrap(),
            subcode: s,
        }),
        arb_update().prop_map(BgpMessage::Update),
    ]
}

fn arb_session_event() -> impl Strategy<Value = SessionEvent> {
    prop_oneof![
        Just(SessionEvent::ManualStart),
        Just(SessionEvent::Connected),
        Just(SessionEvent::HoldTimerExpired),
        Just(SessionEvent::ManualStop),
        arb_message().prop_map(SessionEvent::Received),
    ]
}

fn arb_route() -> impl Strategy<Value = Route> {
    (arb_attrs(), 0u32..16, any::<u32>(), any::<u32>()).prop_map(|(attrs, p, rid, addr)| Route {
        source: RouteSource {
            participant: ParticipantId(p),
            asn: Asn(65000 + p),
            router_id: RouterId(rid),
            peer_addr: Ipv4Addr(addr),
        },
        attrs,
    })
}

proptest! {
    /// Wire encode → decode is the identity on every message.
    #[test]
    fn wire_roundtrip(msg in arb_message()) {
        let mut buf = wire::encode(&msg);
        let got = wire::decode(&mut buf).expect("decode");
        prop_assert_eq!(got, msg);
        prop_assert!(buf.is_empty());
    }

    /// Any truncation of a valid frame is rejected, never mis-parsed.
    #[test]
    fn wire_truncation_always_rejected(msg in arb_message(), frac in 0.0f64..1.0) {
        let buf = wire::encode(&msg);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        let mut short = buf.slice(..cut);
        prop_assert_eq!(wire::decode(&mut short), Err(wire::WireError::Truncated));
    }

    /// Random bytes never panic the decoder.
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = bytes::Bytes::from(bytes);
        let _ = wire::decode(&mut buf);
    }

    /// The decision process is antisymmetric and transitive (a total
    /// preorder refined to a total order by the tiebreaks).
    #[test]
    fn decision_is_consistent(a in arb_route(), b in arb_route(), c in arb_route()) {
        use core::cmp::Ordering;
        prop_assert_eq!(decision::compare(&a, &b), decision::compare(&b, &a).reverse());
        if decision::compare(&a, &b) == Ordering::Greater
            && decision::compare(&b, &c) == Ordering::Greater
        {
            prop_assert_eq!(decision::compare(&a, &c), Ordering::Greater);
        }
    }

    /// Best-route selection is order-independent.
    #[test]
    fn best_route_order_independent(routes in proptest::collection::vec(arb_route(), 1..8)) {
        let best1 = decision::best_route(routes.iter()).cloned();
        let mut rev = routes.clone();
        rev.reverse();
        let best2 = decision::best_route(rev.iter()).cloned();
        // The winner may be a tie-equal route; compare by decision equality.
        let (b1, b2) = (best1.unwrap(), best2.unwrap());
        prop_assert_eq!(decision::compare(&b1, &b2), core::cmp::Ordering::Equal);
    }

    /// The session FSM never panics and always lands in one of the five
    /// declared states, whatever the event sequence — and its invariants
    /// hold at every step: negotiated hold time and peer parameters exist
    /// only once the OPEN exchange completed, and are gone again in Idle.
    #[test]
    fn session_fsm_total_under_arbitrary_events(
        hold in proptest::num::u16::ANY,
        events in proptest::collection::vec(arb_session_event(), 0..48),
    ) {
        let mut s = Session::new(OpenMessage {
            version: 4,
            asn: Asn(65001),
            hold_time: hold,
            router_id: RouterId(1),
        });
        for ev in events {
            let out = s.handle(ev);
            let state = s.state();
            prop_assert!(matches!(
                state,
                SessionState::Idle
                    | SessionState::Connect
                    | SessionState::OpenSent
                    | SessionState::OpenConfirm
                    | SessionState::Established
            ));
            // A reset must land in Idle with session context cleared.
            if out.reset {
                prop_assert_eq!(state, SessionState::Idle);
            }
            if state == SessionState::Idle {
                prop_assert_eq!(s.negotiated_hold_time(), None);
                prop_assert!(s.peer().is_none());
            }
            // OPEN parameters exist exactly from OpenConfirm onwards.
            let open_done = matches!(
                state,
                SessionState::OpenConfirm | SessionState::Established
            );
            prop_assert_eq!(s.negotiated_hold_time().is_some(), open_done);
            prop_assert_eq!(s.peer().is_some(), open_done);
            // UPDATEs are only ever delivered while Established.
            if !out.updates.is_empty() {
                prop_assert_eq!(state, SessionState::Established);
            }
        }
    }

    /// AS-path prepending increases selection length monotonically and
    /// never changes the origin AS.
    #[test]
    fn prepend_properties(path in arb_aspath(), asn in 1u32..100_000, n in 1usize..4) {
        let pre = path.prepend(Asn(asn), n);
        prop_assert!(pre.selection_len() >= path.selection_len());
        prop_assert_eq!(pre.first_as(), Some(Asn(asn)));
        if path.origin_as().is_some() {
            prop_assert_eq!(pre.origin_as(), path.origin_as());
        }
    }
}
