//! Differential testing: the classifier compiler against the interpreter.
//!
//! `compile(p).evaluate(pkt)` must produce exactly the same packet set as
//! `eval(p, pkt)` for *every* policy and packet. Random policy trees are the
//! sharpest test of the composition algorithms (sequential composition with
//! modifications + multicast is where compilers go wrong).

use proptest::prelude::*;
use sdx_net::{
    ip, prefix, FieldMatch, Ipv4Addr, LocatedPacket, Mod, Packet, ParticipantId, PortId, Prefix,
};
use sdx_policy::{compile, eval, Policy, Pred};

fn arb_port() -> impl Strategy<Value = PortId> {
    prop_oneof![
        (1u32..5, 1u8..3).prop_map(|(p, i)| PortId::Phys(ParticipantId(p), i)),
        (1u32..5).prop_map(|p| PortId::Virt(ParticipantId(p))),
    ]
}

/// Small, collision-prone value domains so predicates and packets overlap.
fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    prop_oneof![
        Just(ip("10.0.0.1")),
        Just(ip("10.1.0.1")),
        Just(ip("128.0.0.1")),
        Just(ip("74.125.1.1")),
        Just(ip("96.25.160.7")),
    ]
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        Just(prefix("10.0.0.0/8")),
        Just(prefix("10.1.0.0/16")),
        Just(prefix("0.0.0.0/1")),
        Just(prefix("128.0.0.0/1")),
        Just(prefix("74.125.1.1/32")),
        Just(prefix("0.0.0.0/0")),
    ]
}

fn arb_field() -> impl Strategy<Value = FieldMatch> {
    prop_oneof![
        arb_port().prop_map(FieldMatch::InPort),
        arb_prefix().prop_map(FieldMatch::NwSrc),
        arb_prefix().prop_map(FieldMatch::NwDst),
        prop_oneof![Just(80u16), Just(443), Just(22)].prop_map(FieldMatch::TpDst),
        prop_oneof![Just(1000u16), Just(2000)].prop_map(FieldMatch::TpSrc),
    ]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        Just(Pred::Any),
        Just(Pred::None),
        arb_field().prop_map(Pred::Test),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Pred::Not(Box::new(a))),
        ]
    })
}

fn arb_mod() -> impl Strategy<Value = Mod> {
    prop_oneof![
        arb_port().prop_map(Mod::SetLoc),
        arb_addr().prop_map(Mod::SetNwDst),
        arb_addr().prop_map(Mod::SetNwSrc),
        prop_oneof![Just(80u16), Just(443)].prop_map(Mod::SetTpDst),
    ]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    let leaf = prop_oneof![
        arb_pred().prop_map(Policy::Filter),
        arb_mod().prop_map(Policy::Mod),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Policy::Parallel),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Policy::Sequential),
            (arb_pred(), inner.clone(), inner).prop_map(|(p, a, b)| Policy::IfElse(
                p,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn arb_packet() -> impl Strategy<Value = LocatedPacket> {
    (
        arb_port(),
        arb_addr(),
        arb_addr(),
        prop_oneof![Just(80u16), Just(443), Just(22)],
        prop_oneof![Just(1000u16), Just(2000), Just(3000)],
    )
        .prop_map(|(loc, src, dst, dport, sport)| {
            LocatedPacket::at(loc, Packet::tcp(src, dst, sport, dport))
        })
}

fn canonical(mut v: Vec<LocatedPacket>) -> Vec<String> {
    let mut s: Vec<String> = v.drain(..).map(|p| format!("{p}")).collect();
    s.sort();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The compiler agrees with the interpreter on every policy and packet.
    #[test]
    fn compiled_equals_interpreted(pol in arb_policy(), pkts in proptest::collection::vec(arb_packet(), 1..6)) {
        let c = compile(&pol);
        for pkt in &pkts {
            let direct = canonical(eval(&pol, pkt));
            let compiled = canonical(c.evaluate(pkt));
            prop_assert_eq!(compiled, direct, "policy {:?} on {}", pol, pkt);
        }
    }

    /// Parallel composition on classifiers equals `+` semantics.
    #[test]
    fn classifier_parallel_sound(a in arb_policy(), b in arb_policy(), pkt in arb_packet()) {
        let combined = compile(&a).parallel(&compile(&b));
        let direct = canonical(eval(&(a + b), &pkt));
        prop_assert_eq!(canonical(combined.evaluate(&pkt)), direct);
    }

    /// Sequential composition on classifiers equals `>>` semantics.
    #[test]
    fn classifier_sequential_sound(a in arb_policy(), b in arb_policy(), pkt in arb_packet()) {
        let combined = compile(&a).sequential(&compile(&b));
        let direct = canonical(eval(&(a >> b), &pkt));
        prop_assert_eq!(canonical(combined.evaluate(&pkt)), direct);
    }

    /// Shadow elimination never changes behaviour.
    #[test]
    fn shadow_elimination_preserves_semantics(pol in arb_policy(), pkt in arb_packet()) {
        let c = compile(&pol);
        let mut opt = c.clone();
        opt.shadow_eliminate();
        prop_assert_eq!(canonical(opt.evaluate(&pkt)), canonical(c.evaluate(&pkt)));
        prop_assert!(opt.len() <= c.len());
    }

    /// `+` is commutative and `>>` associative, observationally.
    #[test]
    fn algebraic_laws(a in arb_policy(), b in arb_policy(), c in arb_policy(), pkt in arb_packet()) {
        let ab = canonical(eval(&(a.clone() + b.clone()), &pkt));
        let ba = canonical(eval(&(b.clone() + a.clone()), &pkt));
        prop_assert_eq!(ab, ba);
        let left = canonical(eval(&((a.clone() >> b.clone()) >> c.clone()), &pkt));
        let right = canonical(eval(&(a >> (b >> c)), &pkt));
        prop_assert_eq!(left, right);
    }
}
