//! Fuzz-style property tests for the policy DSL parser: arbitrary input
//! never panics, and grammatically generated policies always parse to the
//! semantics their structure dictates.

use proptest::prelude::*;
use sdx_net::LocatedPacket;
use sdx_net::{ip, Packet, ParticipantId, PortId};
use sdx_policy::dsl::{parse_policy, PortResolver};
use sdx_policy::eval;

fn resolver() -> PortResolver {
    let mut r = PortResolver::new();
    for (name, port) in [
        ("A", PortId::Virt(ParticipantId(1))),
        ("B", PortId::Virt(ParticipantId(2))),
        ("C", PortId::Virt(ParticipantId(3))),
        ("A1", PortId::Phys(ParticipantId(1), 1)),
        ("B1", PortId::Phys(ParticipantId(2), 1)),
        ("B2", PortId::Phys(ParticipantId(2), 2)),
    ] {
        r.add(name, port);
    }
    r
}

/// Random strings over the DSL's alphabet.
fn arb_garbage() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("match".to_string()),
            Just("fwd".to_string()),
            Just("mod".to_string()),
            Just("drop".to_string()),
            Just("id".to_string()),
            Just("if_".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just(",".to_string()),
            Just("=".to_string()),
            Just("+".to_string()),
            Just(">>".to_string()),
            Just("&&".to_string()),
            Just("||".to_string()),
            Just("!".to_string()),
            Just("dstport".to_string()),
            Just("srcip".to_string()),
            Just("80".to_string()),
            Just("10.0.0.0/8".to_string()),
            Just("B".to_string()),
            Just("Z9".to_string()),
            Just("#".to_string()),
        ],
        0..24,
    )
    .prop_map(|toks| toks.join(" "))
}

/// Grammatically valid single clauses.
fn arb_clause() -> impl Strategy<Value = (String, u16, &'static str)> {
    (
        prop_oneof![Just("B"), Just("C"), Just("B1"), Just("B2")],
        prop_oneof![Just(80u16), Just(443), Just(53)],
    )
        .prop_map(|(target, port)| {
            (
                format!("match(dstport = {port}) >> fwd({target})"),
                port,
                target,
            )
        })
}

proptest! {
    /// The parser returns Ok or Err — it never panics on any token soup.
    #[test]
    fn parser_never_panics(src in arb_garbage()) {
        let _ = parse_policy(&src, &resolver());
    }

    /// Clause sums parse and route exactly the port each clause names.
    #[test]
    fn generated_policies_behave(clauses in proptest::collection::vec(arb_clause(), 1..4)) {
        // Distinct ports only, to keep semantics predictable.
        let mut seen = std::collections::BTreeSet::new();
        let chosen: Vec<_> = clauses
            .into_iter()
            .filter(|(_, port, _)| seen.insert(*port))
            .collect();
        let src = chosen
            .iter()
            .map(|(s, _, _)| format!("({s})"))
            .collect::<Vec<_>>()
            .join(" + ");
        let pol = parse_policy(&src, &resolver()).expect("valid by construction");
        for (_, port, target) in &chosen {
            let lp = LocatedPacket::at(
                PortId::Phys(ParticipantId(1), 1),
                Packet::tcp(ip("9.9.9.9"), ip("8.8.8.8"), 40_000, *port),
            );
            let out = eval(&pol, &lp);
            prop_assert_eq!(out.len(), 1);
            let expect = resolver().resolve(target).expect("known name");
            prop_assert_eq!(out[0].loc, expect);
        }
        // Ports named by no clause drop.
        let lp = LocatedPacket::at(
            PortId::Phys(ParticipantId(1), 1),
            Packet::tcp(ip("9.9.9.9"), ip("8.8.8.8"), 40_000, 9999),
        );
        prop_assert!(eval(&pol, &lp).is_empty());
    }
}
