//! Static analysis over compiled policies.
//!
//! The SDX controller asks three questions about a participant's policy
//! before accepting it: *where can it forward?* (targets feed the
//! composition pruning of §4.3.1), *what does it match?* (the match union
//! feeds the `if_` default-splicing of §4.1), and *is it unicast?* (the
//! restriction §4.3.1 assumes). All three are answered on the compiled
//! classifier, so they hold for whatever surface syntax produced it.

use std::collections::BTreeSet;

use sdx_net::{HeaderMatch, Mod, PortId};

use crate::classifier::Classifier;
use crate::compile;
use crate::policy::Policy;

/// The set of ports a policy can forward packets to.
pub fn fwd_targets(policy: &Policy) -> BTreeSet<PortId> {
    targets_of(&compile::compile(policy))
}

/// The forwarding targets of an already-compiled classifier.
pub fn targets_of(classifier: &Classifier) -> BTreeSet<PortId> {
    let mut out = BTreeSet::new();
    for rule in classifier.rules() {
        for action in &rule.actions {
            if let Some(p) = action.mods.iter().rev().find_map(|m| match m {
                Mod::SetLoc(p) => Some(*p),
                _ => None,
            }) {
                out.insert(p);
            }
        }
    }
    out
}

/// The match union: every header-space cube on which the policy takes a
/// non-drop action. This is the predicate the SDX combines with `if_` to
/// decide "policy applies here, default BGP everywhere else" (§4.1).
pub fn match_union(policy: &Policy) -> Vec<HeaderMatch> {
    compile::compile(policy)
        .rules()
        .iter()
        .filter(|r| !r.is_drop())
        .map(|r| r.matches)
        .collect()
}

/// True when no rule of the compiled policy multicasts — the §4.3.1
/// assumption for outbound policies.
pub fn is_unicast(policy: &Policy) -> bool {
    compile::compile(policy)
        .rules()
        .iter()
        .all(|r| r.actions.len() <= 1)
}

/// Rules of `b` that can never fire when `a` is installed above it —
/// conflict diagnostics for participants layering policy fragments.
pub fn shadowed_by(a: &Policy, b: &Policy) -> Vec<HeaderMatch> {
    let ca = compile::compile(a);
    let cb = compile::compile(b);
    let mut out = Vec::new();
    for rb in cb.rules().iter().filter(|r| !r.is_drop()) {
        let covered = ca
            .rules()
            .iter()
            .filter(|ra| !ra.is_drop())
            .any(|ra| ra.matches.subsumes(&rb.matches));
        if covered {
            out.push(rb.matches);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{prefix, FieldMatch, ParticipantId};

    fn port(n: u32) -> PortId {
        PortId::Virt(ParticipantId(n))
    }

    #[test]
    fn targets_collects_all_fwds() {
        let p = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2)))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(3)));
        let t = fwd_targets(&p);
        assert_eq!(t, BTreeSet::from([port(2), port(3)]));
        assert!(fwd_targets(&Policy::drop()).is_empty());
    }

    #[test]
    fn match_union_covers_exactly_the_action_space() {
        let p = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2)))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(3)));
        let u = match_union(&p);
        assert_eq!(u.len(), 2);
        assert!(u.iter().any(|m| m.tp_dst == Some(80)));
        assert!(u.iter().any(|m| m.tp_dst == Some(443)));
        assert!(match_union(&Policy::drop()).is_empty());
    }

    #[test]
    fn unicast_detection() {
        let uni = Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2));
        assert!(is_unicast(&uni));
        let multi = Policy::fwd(port(2)) + Policy::fwd(port(3));
        assert!(!is_unicast(&multi));
    }

    #[test]
    fn shadow_diagnostics() {
        // a: all web traffic → 2. b: web traffic from 10/8 → 3 (shadowed).
        let a = Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2));
        let b = Policy::filter(
            crate::pred::Pred::Test(FieldMatch::TpDst(80))
                & crate::pred::Pred::Test(FieldMatch::NwSrc(prefix("10.0.0.0/8"))),
        ) >> Policy::fwd(port(3));
        let shadowed = shadowed_by(&a, &b);
        assert_eq!(shadowed.len(), 1);
        // The reverse is not shadowed (b is narrower than a).
        assert!(shadowed_by(&b, &a).is_empty());
    }
}
