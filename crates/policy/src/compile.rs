//! The policy compiler: AST → classifier.
//!
//! Follows the Pyretic compilation scheme:
//!
//! * predicates compile to *boolean classifiers* (rule → true/false), so
//!   negation is a rule-action flip instead of a DNF explosion;
//! * `+` and `>>` compile their children and compose the classifiers
//!   (see [`crate::classifier`]);
//! * `if_(p, a, b)` compiles as `(p >> a) + (!p >> b)` — the exact
//!   construction the SDX uses to hang default BGP forwarding beneath a
//!   participant's overrides (§4.1 of the paper).
//!
//! The compiler is deterministic and purely functional; the memoization
//! that §4.3.1 calls for happens one level up, in `sdx-core`, where the
//! same participant sub-policy is reused across many compositions.

use sdx_net::HeaderMatch;

use crate::classifier::{Action, Classifier, Rule};
use crate::policy::Policy;
use crate::pred::Pred;

/// A classifier whose "actions" are pass/block decisions.
#[derive(Clone, Debug)]
struct BoolClassifier {
    /// (match, passes) in priority order; total by construction.
    rules: Vec<(HeaderMatch, bool)>,
}

impl BoolClassifier {
    fn always(b: bool) -> Self {
        BoolClassifier {
            rules: vec![(HeaderMatch::any(), b)],
        }
    }

    fn negate(mut self) -> Self {
        for (_, b) in &mut self.rules {
            *b = !*b;
        }
        self
    }

    /// Cross-product combine with a boolean op (AND for `&`, OR for `|`).
    fn combine(&self, other: &Self, op: impl Fn(bool, bool) -> bool) -> Self {
        let mut rules = Vec::new();
        for (m1, b1) in &self.rules {
            for (m2, b2) in &other.rules {
                if let Some(m) = m1.intersect(m2) {
                    rules.push((m, op(*b1, *b2)));
                }
            }
        }
        // Shadow elimination keeps the cross product from snowballing.
        let mut kept: Vec<(HeaderMatch, bool)> = Vec::with_capacity(rules.len());
        for (m, b) in rules {
            if !kept.iter().any(|(k, _)| k.subsumes(&m)) {
                kept.push((m, b));
            }
        }
        BoolClassifier { rules: kept }
    }
}

fn compile_pred(pred: &Pred) -> BoolClassifier {
    match pred {
        Pred::Any => BoolClassifier::always(true),
        Pred::None => BoolClassifier::always(false),
        Pred::Test(f) => BoolClassifier {
            rules: vec![(HeaderMatch::of(*f), true), (HeaderMatch::any(), false)],
        },
        Pred::And(a, b) => compile_pred(a).combine(&compile_pred(b), |x, y| x && y),
        Pred::Or(a, b) => compile_pred(a).combine(&compile_pred(b), |x, y| x || y),
        Pred::Not(a) => compile_pred(a).negate(),
    }
}

fn filter_classifier(pred: &Pred) -> Classifier {
    let bc = compile_pred(pred);
    Classifier::from_rules(
        bc.rules
            .into_iter()
            .map(|(m, pass)| {
                if pass {
                    Rule::unicast(m, Action::id())
                } else {
                    Rule::drop(m)
                }
            })
            .collect(),
    )
}

/// If every branch classifier consists of forwarding rules followed only
/// by the catch-all drop, and no two forwarding rules from *different*
/// branches overlap, returns their concatenation; `None` otherwise.
///
/// Sound because for any packet at most one branch forwards it (cross-
/// branch disjointness), within-branch order is preserved, and a branch
/// with interior drop rules (which could shadow another branch's
/// forwarding region) disqualifies the whole shortcut.
fn concat_if_disjoint(branches: &[Classifier]) -> Option<Classifier> {
    let mut fwd: Vec<(usize, &Rule)> = Vec::new();
    for (i, c) in branches.iter().enumerate() {
        let rules = c.rules();
        let (last, body) = rules.split_last().expect("classifiers are total");
        if !(last.is_drop() && last.matches.is_wildcard()) {
            return None;
        }
        for r in body {
            if r.is_drop() {
                return None; // interior drop could shadow another branch
            }
            fwd.push((i, r));
        }
    }
    // Pairwise cross-branch disjointness.
    for (a, (ia, ra)) in fwd.iter().enumerate() {
        for (ib, rb) in fwd.iter().skip(a + 1) {
            if ia != ib && !ra.matches.disjoint(&rb.matches) {
                return None;
            }
        }
    }
    Some(Classifier::from_rules(
        fwd.into_iter().map(|(_, r)| r.clone()).collect(),
    ))
}

/// Compiles a policy to a total classifier.
pub fn compile(policy: &Policy) -> Classifier {
    sdx_telemetry::global().inc("policy.compile.count");
    compile_inner(policy)
}

fn compile_inner(policy: &Policy) -> Classifier {
    match policy {
        Policy::Filter(pred) => {
            let mut c = filter_classifier(pred);
            c.shadow_eliminate();
            c
        }
        Policy::Mod(m) => {
            Classifier::from_rules(vec![Rule::unicast(HeaderMatch::any(), Action::of(*m))])
        }
        Policy::Parallel(ps) => {
            let branches: Vec<Classifier> = ps.iter().map(compile_inner).collect();
            // §4.3.1: "most SDX policies are disjoint… the SDX controller
            // can simply apply the policies independently, as no packet
            // ever matches both." When every branch is a plain rule list
            // (no interior drops) and branches' forwarding rules are
            // pairwise disjoint, parallel composition is concatenation —
            // linear instead of a quadratic cross product per fold step.
            match concat_if_disjoint(&branches) {
                Some(c) => c,
                None => branches
                    .into_iter()
                    .reduce(|a, b| a.parallel(&b))
                    .unwrap_or_else(Classifier::drop_all),
            }
        }
        Policy::Sequential(ps) => ps
            .iter()
            .map(compile_inner)
            .reduce(|a, b| a.sequential(&b))
            .unwrap_or_else(Classifier::id),
        Policy::IfElse(pred, then, otherwise) => {
            let p_then = Policy::filter(pred.clone()) >> (**then).clone();
            let p_else = Policy::filter(!pred.clone()) >> (**otherwise).clone();
            compile_inner(&p_then).parallel(&compile_inner(&p_else))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use sdx_net::{ip, prefix, FieldMatch, LocatedPacket, Mod, Packet, ParticipantId, PortId};

    fn port(n: u32) -> PortId {
        PortId::Virt(ParticipantId(n))
    }

    fn pkt(src: &str, dst: &str, tp_dst: u16) -> LocatedPacket {
        LocatedPacket::at(
            PortId::Phys(ParticipantId(1), 1),
            Packet::tcp(ip(src), ip(dst), 999, tp_dst),
        )
    }

    /// Differential check: compiled classifier ≡ interpreter on the samples.
    fn check(policy: &Policy, samples: &[LocatedPacket]) {
        let c = compile(policy);
        for s in samples {
            let direct = eval(policy, s);
            let compiled = c.evaluate(s);
            let mut d = direct.clone();
            let mut co = compiled.clone();
            d.sort_by_key(|p| format!("{p}"));
            co.sort_by_key(|p| format!("{p}"));
            assert_eq!(co, d, "mismatch on {s} for {policy:?}");
        }
    }

    fn samples() -> Vec<LocatedPacket> {
        vec![
            pkt("10.0.0.1", "20.0.0.1", 80),
            pkt("10.0.0.1", "20.0.0.1", 443),
            pkt("128.0.0.1", "30.0.0.1", 80),
            pkt("128.0.0.1", "40.0.0.1", 22),
            pkt("96.25.160.7", "74.125.1.1", 80),
        ]
    }

    #[test]
    fn compile_filters() {
        check(&Policy::id(), &samples());
        check(&Policy::drop(), &samples());
        check(&Policy::match_(FieldMatch::TpDst(80)), &samples());
    }

    #[test]
    fn compile_negation() {
        let p = Policy::filter(!Pred::Test(FieldMatch::TpDst(80)));
        check(&p, &samples());
    }

    #[test]
    fn compile_boolean_structure() {
        let pred = (Pred::Test(FieldMatch::TpDst(80)) | Pred::Test(FieldMatch::TpDst(443)))
            & !Pred::Test(FieldMatch::NwSrc(prefix("128.0.0.0/1")));
        check(&Policy::filter(pred), &samples());
    }

    #[test]
    fn compile_paper_outbound_policy() {
        // AS A, Figure 1a.
        let p = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2)))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(3)));
        check(&p, &samples());
    }

    #[test]
    fn compile_paper_inbound_policy() {
        // AS B, Figure 1a: split by source half of the address space.
        let b1 = PortId::Phys(ParticipantId(2), 1);
        let b2 = PortId::Phys(ParticipantId(2), 2);
        let p = (Policy::match_(FieldMatch::NwSrc(prefix("0.0.0.0/1"))) >> Policy::fwd(b1))
            + (Policy::match_(FieldMatch::NwSrc(prefix("128.0.0.0/1"))) >> Policy::fwd(b2));
        check(&p, &samples());
    }

    #[test]
    fn compile_load_balancer() {
        // §3.1 wide-area server load balancing policy.
        let p = Policy::match_(FieldMatch::NwDst(prefix("74.125.1.1/32")))
            >> ((Policy::match_(FieldMatch::NwSrc(prefix("96.25.160.0/24")))
                >> Policy::modify(Mod::SetNwDst(ip("74.125.224.161"))))
                + (Policy::match_(FieldMatch::NwSrc(prefix("128.125.163.0/24")))
                    >> Policy::modify(Mod::SetNwDst(ip("74.125.137.139")))));
        check(&p, &samples());
    }

    #[test]
    fn compile_if_else() {
        let p = Policy::if_(
            Pred::Test(FieldMatch::TpDst(80)),
            Policy::fwd(port(2)),
            Policy::fwd(port(3)),
        );
        check(&p, &samples());
        // if_ must be total: every sample produces exactly one output.
        let c = compile(&p);
        for s in samples() {
            assert_eq!(c.evaluate(&s).len(), 1);
        }
    }

    #[test]
    fn compile_multicast() {
        let p = Policy::fwd(port(2)) + Policy::fwd(port(3));
        check(&p, &samples());
    }

    #[test]
    fn compile_sequential_modify_then_match() {
        // Rewrite then match on the rewritten value (exercises seq_compose).
        let p = Policy::modify(Mod::SetNwDst(ip("50.0.0.1")))
            >> Policy::match_(FieldMatch::NwDst(prefix("50.0.0.0/8")))
            >> Policy::fwd(port(7));
        check(&p, &samples());
        let c = compile(&p);
        assert_eq!(c.evaluate(&pkt("1.1.1.1", "2.2.2.2", 9))[0].loc, port(7));
    }

    #[test]
    fn empty_parallel_is_drop_empty_sequential_is_id() {
        assert!(Classifier::drop_all()
            .evaluate(&pkt("1.1.1.1", "2.2.2.2", 9))
            .is_empty());
        check(&Policy::Parallel(vec![]), &samples());
        check(&Policy::Sequential(vec![]), &samples());
    }

    #[test]
    fn rule_counts_are_modest_for_disjoint_policies() {
        // Two disjoint port-based branches compile to 2 forwarding rules.
        let p = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2)))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(3)));
        let c = compile(&p);
        assert_eq!(c.forwarding_rule_count(), 2);
    }
}
