//! Predicates: boolean tests over located packets.
//!
//! A predicate denotes a set of located packets. The AST supports full
//! boolean structure (`&`, `|`, `!`); compilation to classifiers (in
//! [`mod@crate::compile`]) handles negation by flipping rule actions, so no
//! DNF explosion is needed for `!`.

use core::ops;

use sdx_net::{FieldMatch, LocatedPacket, Prefix};

/// A boolean predicate over located packets.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Pred {
    /// Matches every packet (`identity` in Pyretic).
    Any,
    /// Matches no packet.
    None,
    /// A single-field test, e.g. `dstport=80`.
    Test(FieldMatch),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `match(f)` — a single-field test.
    pub fn test(f: FieldMatch) -> Pred {
        Pred::Test(f)
    }

    /// Disjunction over several destination prefixes — the shape of every
    /// BGP consistency filter (`dstip=p1 || dstip=p2 || ...`). An empty
    /// list yields [`Pred::None`]: no exported prefixes means no traffic
    /// may be forwarded, which is precisely the SDX safety rule.
    pub fn dst_in(prefixes: impl IntoIterator<Item = Prefix>) -> Pred {
        prefixes
            .into_iter()
            .map(|p| Pred::Test(FieldMatch::NwDst(p)))
            .reduce(|a, b| a | b)
            .unwrap_or(Pred::None)
    }

    /// Disjunction over several source prefixes (e.g. "traffic from
    /// YouTube's prefixes", §3.2).
    pub fn src_in(prefixes: impl IntoIterator<Item = Prefix>) -> Pred {
        prefixes
            .into_iter()
            .map(|p| Pred::Test(FieldMatch::NwSrc(p)))
            .reduce(|a, b| a | b)
            .unwrap_or(Pred::None)
    }

    /// Evaluates the predicate on a located packet.
    pub fn eval(&self, lp: &LocatedPacket) -> bool {
        match self {
            Pred::Any => true,
            Pred::None => false,
            Pred::Test(f) => sdx_net::HeaderMatch::of(*f).matches(lp),
            Pred::And(a, b) => a.eval(lp) && b.eval(lp),
            Pred::Or(a, b) => a.eval(lp) || b.eval(lp),
            Pred::Not(a) => !a.eval(lp),
        }
    }

    /// Collects every atomic field test in the predicate, in left-to-right
    /// structural order. The differential oracle uses this to render
    /// *which* header constraints a clause placed on the packet when it
    /// prints a per-stage counterexample trace; polarity (tests under a
    /// `Not`) is not tracked — this is a rendering aid, not a solver.
    pub fn atoms(&self) -> Vec<FieldMatch> {
        fn walk(p: &Pred, out: &mut Vec<FieldMatch>) {
            match p {
                Pred::Any | Pred::None => {}
                Pred::Test(f) => out.push(*f),
                Pred::And(a, b) | Pred::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Pred::Not(a) => walk(a, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Structural size (diagnostics and compile-cost accounting).
    pub fn size(&self) -> usize {
        match self {
            Pred::Any | Pred::None | Pred::Test(_) => 1,
            Pred::And(a, b) | Pred::Or(a, b) => 1 + a.size() + b.size(),
            Pred::Not(a) => 1 + a.size(),
        }
    }
}

impl ops::BitAnd for Pred {
    type Output = Pred;
    fn bitand(self, rhs: Pred) -> Pred {
        // Cheap simplifications keep compiled classifiers small.
        match (self, rhs) {
            (Pred::Any, p) | (p, Pred::Any) => p,
            (Pred::None, _) | (_, Pred::None) => Pred::None,
            (a, b) => Pred::And(Box::new(a), Box::new(b)),
        }
    }
}

impl ops::BitOr for Pred {
    type Output = Pred;
    fn bitor(self, rhs: Pred) -> Pred {
        match (self, rhs) {
            (Pred::Any, _) | (_, Pred::Any) => Pred::Any,
            (Pred::None, p) | (p, Pred::None) => p,
            (a, b) => Pred::Or(Box::new(a), Box::new(b)),
        }
    }
}

impl ops::Not for Pred {
    type Output = Pred;
    fn not(self) -> Pred {
        match self {
            Pred::Any => Pred::None,
            Pred::None => Pred::Any,
            Pred::Not(inner) => *inner,
            p => Pred::Not(Box::new(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, prefix, Packet, ParticipantId, PortId};

    fn pkt(dst_port: u16) -> LocatedPacket {
        LocatedPacket::at(
            PortId::Phys(ParticipantId(1), 1),
            Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 999, dst_port),
        )
    }

    #[test]
    fn constants() {
        assert!(Pred::Any.eval(&pkt(80)));
        assert!(!Pred::None.eval(&pkt(80)));
    }

    #[test]
    fn single_test() {
        let p = Pred::test(FieldMatch::TpDst(80));
        assert!(p.eval(&pkt(80)));
        assert!(!p.eval(&pkt(443)));
    }

    #[test]
    fn boolean_combinators() {
        let web = Pred::test(FieldMatch::TpDst(80));
        let from10 = Pred::test(FieldMatch::NwSrc(prefix("10.0.0.0/8")));
        assert!((web.clone() & from10.clone()).eval(&pkt(80)));
        assert!(!(web.clone() & !from10.clone()).eval(&pkt(80)));
        assert!((Pred::test(FieldMatch::TpDst(443)) | web.clone()).eval(&pkt(80)));
        assert!((!web).eval(&pkt(443)));
    }

    #[test]
    fn simplifications() {
        let t = Pred::test(FieldMatch::TpDst(80));
        assert_eq!(t.clone() & Pred::Any, t);
        assert_eq!(Pred::Any & t.clone(), t);
        assert_eq!(t.clone() & Pred::None, Pred::None);
        assert_eq!(t.clone() | Pred::Any, Pred::Any);
        assert_eq!(t.clone() | Pred::None, t);
        assert_eq!(!(!t.clone()), t);
        assert_eq!(!Pred::Any, Pred::None);
        assert_eq!(!Pred::None, Pred::Any);
    }

    #[test]
    fn dst_in_builds_disjunction() {
        let f = Pred::dst_in([prefix("20.0.0.0/8"), prefix("30.0.0.0/8")]);
        assert!(f.eval(&pkt(80))); // dst 20.0.0.1 in 20/8
        let mut other = pkt(80);
        other.pkt.nw_dst = ip("40.0.0.1");
        assert!(!f.eval(&other));
        // Empty filter = deny all (the SDX safety default).
        assert_eq!(Pred::dst_in([]), Pred::None);
    }

    #[test]
    fn src_in_builds_disjunction() {
        let f = Pred::src_in([prefix("10.0.0.0/8")]);
        assert!(f.eval(&pkt(80)));
        assert_eq!(Pred::src_in([]), Pred::None);
    }

    #[test]
    fn atoms_collects_field_tests_in_order() {
        let p = (Pred::test(FieldMatch::TpDst(80)) | Pred::test(FieldMatch::TpDst(443)))
            & !Pred::test(FieldMatch::NwSrc(prefix("10.0.0.0/8")));
        assert_eq!(
            p.atoms(),
            vec![
                FieldMatch::TpDst(80),
                FieldMatch::TpDst(443),
                FieldMatch::NwSrc(prefix("10.0.0.0/8")),
            ]
        );
        assert!(Pred::Any.atoms().is_empty());
    }

    #[test]
    fn size_counts_nodes() {
        let t = Pred::test(FieldMatch::TpDst(80));
        assert_eq!(t.size(), 1);
        assert_eq!((t.clone() & Pred::test(FieldMatch::TpSrc(1))).size(), 3);
        assert_eq!((!(t.clone() | t.clone())).size(), 4);
    }
}
