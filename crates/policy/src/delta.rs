//! Policy lifecycle as a first-class input (§2's runtime applications).
//!
//! The paper's marquee use cases — application-specific peering, inbound
//! TE, upstream DDoS blocking — all assume participants *change* their
//! policies while the exchange runs. This module makes a policy mutation
//! a structured event rather than a book rewrite:
//!
//! * [`PolicyDelta`] — an ordered batch of install/replace/retract
//!   operations, per participant and per direction, the exact policy-side
//!   analogue of a BGP update burst.
//! * [`PolicyVersions`] — per-participant, per-direction version counters
//!   (plus a coarse *book* epoch for structural changes), replacing the
//!   single global epoch that used to invalidate every cached compile
//!   artifact on any edit.
//! * [`Footprint`] — the normalization pass: a sound over-approximation
//!   of which destination prefixes a policy's compiled rules can affect,
//!   so the incremental compiler can bound a delta's blast radius before
//!   compiling anything.
//!
//! Validation is structural and pure: the delta is checked against
//! caller-supplied views of the participant book (this crate knows policy
//! syntax, not exchange membership), and rejections are typed
//! [`DslError`]s — a malformed delta is a *user input* error, the same
//! category as a parse failure, never a panic.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use sdx_net::{FieldMatch, Mod, ParticipantId, PortId, Prefix};

use crate::dsl::DslError;
use crate::policy::Policy;
use crate::pred::Pred;

/// Which direction of a participant's policy an operation targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PolicyScope {
    /// The participant's inbound (receiver-side, stage-2) policy.
    Inbound,
    /// The participant's outbound (sender-side, stage-1) policy.
    Outbound,
}

impl fmt::Display for PolicyScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyScope::Inbound => write!(f, "inbound"),
            PolicyScope::Outbound => write!(f, "outbound"),
        }
    }
}

/// One mutation of one participant's policy in one direction.
///
/// `Install` and `Replace` both leave `policy` in force; they differ only
/// in declared intent (an `Install` over an existing policy is accepted
/// and behaves as a replace — the delta is the unit of atomicity, not a
/// compare-and-swap).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PolicyOp {
    /// Install a policy where the participant had none.
    Install(Policy),
    /// Replace the participant's existing policy.
    Replace(Policy),
    /// Remove the participant's policy entirely.
    Retract,
}

impl PolicyOp {
    /// The policy this operation leaves in force, if any.
    pub fn policy(&self) -> Option<&Policy> {
        match self {
            PolicyOp::Install(p) | PolicyOp::Replace(p) => Some(p),
            PolicyOp::Retract => None,
        }
    }
}

/// One participant-scoped entry of a [`PolicyDelta`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyDeltaOp {
    /// Whose policy changes.
    pub participant: ParticipantId,
    /// Which direction.
    pub scope: PolicyScope,
    /// What happens to it.
    pub op: PolicyOp,
}

/// An ordered batch of policy mutations, applied atomically by the
/// controller: either every operation validates and the whole delta is
/// staged, or none is.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PolicyDelta {
    /// The operations, in application order (later ops to the same
    /// `(participant, scope)` win).
    pub ops: Vec<PolicyDeltaOp>,
}

impl PolicyDelta {
    /// An empty delta.
    pub fn new() -> Self {
        PolicyDelta::default()
    }

    /// Appends an outbound install (builder style).
    pub fn install_outbound(mut self, p: ParticipantId, policy: Policy) -> Self {
        self.ops.push(PolicyDeltaOp {
            participant: p,
            scope: PolicyScope::Outbound,
            op: PolicyOp::Install(policy),
        });
        self
    }

    /// Appends an outbound replace.
    pub fn replace_outbound(mut self, p: ParticipantId, policy: Policy) -> Self {
        self.ops.push(PolicyDeltaOp {
            participant: p,
            scope: PolicyScope::Outbound,
            op: PolicyOp::Replace(policy),
        });
        self
    }

    /// Appends an outbound retract.
    pub fn retract_outbound(mut self, p: ParticipantId) -> Self {
        self.ops.push(PolicyDeltaOp {
            participant: p,
            scope: PolicyScope::Outbound,
            op: PolicyOp::Retract,
        });
        self
    }

    /// Appends an inbound install.
    pub fn install_inbound(mut self, p: ParticipantId, policy: Policy) -> Self {
        self.ops.push(PolicyDeltaOp {
            participant: p,
            scope: PolicyScope::Inbound,
            op: PolicyOp::Install(policy),
        });
        self
    }

    /// Appends an inbound replace.
    pub fn replace_inbound(mut self, p: ParticipantId, policy: Policy) -> Self {
        self.ops.push(PolicyDeltaOp {
            participant: p,
            scope: PolicyScope::Inbound,
            op: PolicyOp::Replace(policy),
        });
        self
    }

    /// Appends an inbound retract.
    pub fn retract_inbound(mut self, p: ParticipantId) -> Self {
        self.ops.push(PolicyDeltaOp {
            participant: p,
            scope: PolicyScope::Inbound,
            op: PolicyOp::Retract,
        });
        self
    }

    /// True when the delta carries no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Structural validation against the exchange's participant book.
    ///
    /// `has_participant` answers whether an id is enrolled;
    /// `has_port(owner, idx)` whether a physical port exists. Every
    /// operation's subject must be enrolled, and every port a new policy
    /// references — `fwd(...)` targets and `inport` tests alike — must
    /// resolve. The first offender is reported as a typed [`DslError`];
    /// nothing is applied on error (validation is read-only).
    pub fn validate(
        &self,
        has_participant: impl Fn(ParticipantId) -> bool,
        has_port: impl Fn(ParticipantId, u8) -> bool,
    ) -> Result<(), DslError> {
        let check_port = |port: PortId| -> Result<(), DslError> {
            match port {
                PortId::Virt(p) if !has_participant(p) => Err(DslError::UnknownParticipant(p)),
                PortId::Phys(owner, idx) if !has_port(owner, idx) => {
                    Err(DslError::UnresolvablePort(owner, idx))
                }
                _ => Ok(()),
            }
        };
        for op in &self.ops {
            if !has_participant(op.participant) {
                return Err(DslError::UnknownParticipant(op.participant));
            }
            if let Some(policy) = op.op.policy() {
                for port in referenced_ports(policy) {
                    check_port(port)?;
                }
            }
        }
        Ok(())
    }

    /// The combined destination-prefix footprint of every *outbound*
    /// operation — the set of announced prefixes whose stage-1 compilation
    /// this delta could change. `Retract` contributes [`Footprint::All`]:
    /// the delta alone cannot know what the outgoing policy matched (the
    /// compiler refines this against the actual cached rule lists).
    /// Inbound operations contribute nothing: inbound policies shape
    /// stage-2 delivery, never the FEC partition.
    pub fn outbound_footprint(&self) -> Footprint {
        let mut fp = Footprint::Prefixes(BTreeSet::new());
        for op in &self.ops {
            if op.scope != PolicyScope::Outbound {
                continue;
            }
            fp = fp.union(match op.op.policy() {
                Some(p) => policy_footprint(p),
                None => Footprint::All,
            });
        }
        fp
    }
}

/// A sound over-approximation of the destination prefixes a policy can
/// affect once compiled: either *everything* (the policy has an
/// unconstrained path) or a finite prefix set. "Affects prefix `p`" means
/// some footprint member overlaps `p` — see [`Footprint::affects`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Footprint {
    /// No destination bound could be established.
    All,
    /// Every compiled rule's destination constraint overlaps one of these.
    Prefixes(BTreeSet<Prefix>),
}

impl Footprint {
    /// The union of two footprints (`All` absorbs).
    pub fn union(self, other: Footprint) -> Footprint {
        match (self, other) {
            (Footprint::Prefixes(mut a), Footprint::Prefixes(b)) => {
                a.extend(b);
                Footprint::Prefixes(a)
            }
            _ => Footprint::All,
        }
    }

    /// Could a change bounded by this footprint alter compilation state
    /// for announced prefix `p`? Overlap in either direction counts: a
    /// /24-scoped policy affects an announced /8 that covers it.
    pub fn affects(&self, p: Prefix) -> bool {
        match self {
            Footprint::All => true,
            Footprint::Prefixes(set) => set.iter().any(|f| f.overlaps(p)),
        }
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Footprint::All => write!(f, "all prefixes"),
            Footprint::Prefixes(set) => write!(f, "{} prefix(es)", set.len()),
        }
    }
}

/// The destination footprint of a policy tree.
///
/// Soundness over precision: every announced prefix the compiled rules
/// could touch is covered, at the cost of occasionally answering `All`.
/// A destination *rewrite* (`SetNwDst`) re-anchors the BGP join on the new
/// address, so a top-level rewrite in a chain contributes the rewritten
/// host; rewrites buried deeper than the analysis tracks collapse to
/// `All`.
pub fn policy_footprint(policy: &Policy) -> Footprint {
    match policy {
        Policy::Filter(pred) => pred_footprint(pred),
        Policy::Mod(Mod::SetNwDst(a)) => Footprint::Prefixes([Prefix::host(*a)].into()),
        Policy::Mod(_) => Footprint::All,
        Policy::Parallel(children) => children
            .iter()
            .map(policy_footprint)
            .fold(Footprint::Prefixes(BTreeSet::new()), Footprint::union),
        Policy::Sequential(children) => {
            // A rewrite nested inside a sub-tree (not a bare chain element)
            // defeats the left-to-right constraint walk: give up soundly.
            let nested_rewrite = children
                .iter()
                .any(|c| !matches!(c, Policy::Mod(_)) && contains_nw_dst_rewrite(c));
            if nested_rewrite {
                return Footprint::All;
            }
            // The last bare rewrite wins (matching `FwdRule::rewritten_dst`);
            // otherwise the first destination-constrained element bounds
            // the whole chain (sequential composition only narrows).
            let rewrite = children.iter().rev().find_map(|c| match c {
                Policy::Mod(Mod::SetNwDst(a)) => Some(*a),
                _ => None,
            });
            if let Some(a) = rewrite {
                return Footprint::Prefixes([Prefix::host(a)].into());
            }
            children
                .iter()
                .map(policy_footprint)
                .find(|fp| *fp != Footprint::All)
                .unwrap_or(Footprint::All)
        }
        Policy::IfElse(pred, then, els) => {
            // then-branch traffic satisfies `pred`; else-branch traffic is
            // unconstrained by it (¬pred has no useful destination bound).
            let then_fp = match pred_footprint(pred) {
                Footprint::All => policy_footprint(then),
                fp => fp,
            };
            then_fp.union(policy_footprint(els))
        }
    }
}

/// The destination footprint of a predicate.
pub fn pred_footprint(pred: &Pred) -> Footprint {
    match pred {
        Pred::Any => Footprint::All,
        Pred::None => Footprint::Prefixes(BTreeSet::new()),
        Pred::Test(FieldMatch::NwDst(p)) => Footprint::Prefixes([*p].into()),
        Pred::Test(_) => Footprint::All,
        // Conjunction only narrows: either side alone is a sound superset.
        Pred::And(a, b) => match pred_footprint(a) {
            Footprint::All => pred_footprint(b),
            fp => fp,
        },
        Pred::Or(a, b) => pred_footprint(a).union(pred_footprint(b)),
        Pred::Not(_) => Footprint::All,
    }
}

fn contains_nw_dst_rewrite(policy: &Policy) -> bool {
    match policy {
        Policy::Filter(_) => false,
        Policy::Mod(m) => matches!(m, Mod::SetNwDst(_)),
        Policy::Parallel(v) | Policy::Sequential(v) => v.iter().any(contains_nw_dst_rewrite),
        Policy::IfElse(_, t, e) => contains_nw_dst_rewrite(t) || contains_nw_dst_rewrite(e),
    }
}

/// Every port a policy references: `fwd` targets and `inport` tests.
pub fn referenced_ports(policy: &Policy) -> Vec<PortId> {
    let mut out = Vec::new();
    collect_policy_ports(policy, &mut out);
    out
}

fn collect_policy_ports(policy: &Policy, out: &mut Vec<PortId>) {
    match policy {
        Policy::Filter(pred) => collect_pred_ports(pred, out),
        Policy::Mod(Mod::SetLoc(p)) => out.push(*p),
        Policy::Mod(_) => {}
        Policy::Parallel(v) | Policy::Sequential(v) => {
            for c in v {
                collect_policy_ports(c, out);
            }
        }
        Policy::IfElse(pred, t, e) => {
            collect_pred_ports(pred, out);
            collect_policy_ports(t, out);
            collect_policy_ports(e, out);
        }
    }
}

fn collect_pred_ports(pred: &Pred, out: &mut Vec<PortId>) {
    match pred {
        Pred::Test(FieldMatch::InPort(p)) => out.push(*p),
        Pred::Test(_) | Pred::Any | Pred::None => {}
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_pred_ports(a, out);
            collect_pred_ports(b, out);
        }
        Pred::Not(a) => collect_pred_ports(a, out),
    }
}

/// Per-participant, per-direction policy version counters.
///
/// The *book* epoch covers structural mutations whose blast radius is the
/// whole exchange (enroll/remove a participant, global policy fragments);
/// the per-participant counters cover the common case — one participant
/// edits one policy — so caches keyed on these versions invalidate only
/// that participant's artifacts. A version never decreases; `0` means
/// "never touched".
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PolicyVersions {
    book: u64,
    outbound: BTreeMap<ParticipantId, u64>,
    inbound: BTreeMap<ParticipantId, u64>,
}

impl PolicyVersions {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        PolicyVersions::default()
    }

    /// The structural (whole-book) epoch.
    pub fn book(&self) -> u64 {
        self.book
    }

    /// A participant's outbound policy version.
    pub fn outbound_of(&self, p: ParticipantId) -> u64 {
        self.outbound.get(&p).copied().unwrap_or(0)
    }

    /// A participant's inbound policy version.
    pub fn inbound_of(&self, p: ParticipantId) -> u64 {
        self.inbound.get(&p).copied().unwrap_or(0)
    }

    /// Records a structural mutation (enroll/remove/global fragment).
    pub fn bump_book(&mut self) {
        self.book += 1;
    }

    /// Records an outbound policy change for `p`.
    pub fn bump_outbound(&mut self, p: ParticipantId) {
        *self.outbound.entry(p).or_insert(0) += 1;
    }

    /// Records an inbound policy change for `p`.
    pub fn bump_inbound(&mut self, p: ParticipantId) {
        *self.inbound.entry(p).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy as P;
    use sdx_net::{Ipv4Addr, PortId};

    fn pid(n: u32) -> ParticipantId {
        ParticipantId(n)
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().expect("test prefix")
    }

    #[test]
    fn versions_bump_independently() {
        let mut v = PolicyVersions::new();
        assert_eq!(
            (v.book(), v.outbound_of(pid(1)), v.inbound_of(pid(1))),
            (0, 0, 0)
        );
        v.bump_outbound(pid(1));
        v.bump_outbound(pid(1));
        v.bump_inbound(pid(2));
        v.bump_book();
        assert_eq!(v.outbound_of(pid(1)), 2);
        assert_eq!(v.inbound_of(pid(1)), 0);
        assert_eq!(v.inbound_of(pid(2)), 1);
        assert_eq!(v.outbound_of(pid(2)), 0);
        assert_eq!(v.book(), 1);
    }

    #[test]
    fn validate_rejects_unknown_participant() {
        let delta = PolicyDelta::new().retract_outbound(pid(9));
        let err = delta
            .validate(|p| p == pid(1), |_, _| true)
            .expect_err("unknown participant must be rejected");
        assert_eq!(err, DslError::UnknownParticipant(pid(9)));
        // Also via a policy that forwards to a stranger.
        let delta = PolicyDelta::new().install_outbound(pid(1), P::fwd(PortId::Virt(pid(7))));
        let err = delta
            .validate(|p| p == pid(1), |_, _| true)
            .expect_err("fwd target must be enrolled");
        assert_eq!(err, DslError::UnknownParticipant(pid(7)));
    }

    #[test]
    fn validate_rejects_unresolvable_port() {
        let delta = PolicyDelta::new().install_inbound(pid(1), P::fwd(PortId::Phys(pid(1), 5)));
        let err = delta
            .validate(|p| p == pid(1), |p, idx| p == pid(1) && idx < 2)
            .expect_err("physical port must exist");
        assert_eq!(err, DslError::UnresolvablePort(pid(1), 5));
    }

    #[test]
    fn validate_accepts_wellformed_delta() {
        let delta = PolicyDelta::new()
            .install_outbound(
                pid(1),
                P::match_(FieldMatch::NwDst(pfx("10.0.0.0/8"))) >> P::fwd(PortId::Virt(pid(2))),
            )
            .replace_inbound(pid(2), P::fwd(PortId::Phys(pid(2), 1)))
            .retract_outbound(pid(2));
        delta
            .validate(|p| p.0 <= 2, |_, idx| idx <= 1)
            .expect("well-formed delta validates");
    }

    #[test]
    fn footprint_bounds_filtered_policies() {
        let p = pfx("10.1.0.0/16");
        let q = pfx("10.2.0.0/16");
        let pol = (P::match_(FieldMatch::NwDst(p)) >> P::fwd(PortId::Virt(pid(2))))
            + (P::match_(FieldMatch::NwDst(q)) >> P::fwd(PortId::Virt(pid(3))));
        assert_eq!(policy_footprint(&pol), Footprint::Prefixes([p, q].into()));
        let fp = policy_footprint(&pol);
        assert!(fp.affects(pfx("10.1.5.0/24")), "subnet of a member");
        assert!(fp.affects(pfx("10.0.0.0/8")), "supernet of a member");
        assert!(!fp.affects(pfx("192.168.0.0/16")), "disjoint prefix");
    }

    #[test]
    fn footprint_is_all_for_unconstrained_policies() {
        assert_eq!(
            policy_footprint(&(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(pid(2))))),
            Footprint::All
        );
        assert_eq!(
            policy_footprint(&P::fwd(PortId::Virt(pid(2)))),
            Footprint::All
        );
    }

    #[test]
    fn footprint_follows_rewrites() {
        let a = Ipv4Addr::new(20, 0, 0, 9);
        let pol = P::match_(FieldMatch::NwDst(pfx("10.0.0.0/8")))
            >> P::modify(Mod::SetNwDst(a))
            >> P::fwd(PortId::Virt(pid(2)));
        // The BGP join re-anchors on the rewritten address.
        assert_eq!(
            policy_footprint(&pol),
            Footprint::Prefixes([Prefix::host(a)].into())
        );
        assert!(policy_footprint(&pol).affects(pfx("20.0.0.0/8")));
    }

    #[test]
    fn delta_footprint_unions_outbound_ops_only() {
        let p = pfx("10.1.0.0/16");
        let delta = PolicyDelta::new()
            .install_outbound(
                pid(1),
                P::match_(FieldMatch::NwDst(p)) >> P::fwd(PortId::Virt(pid(2))),
            )
            .install_inbound(pid(2), P::fwd(PortId::Phys(pid(2), 1)));
        assert_eq!(delta.outbound_footprint(), Footprint::Prefixes([p].into()));
        // A retract's blast radius is unknown at this layer.
        assert_eq!(
            delta.clone().retract_outbound(pid(3)).outbound_footprint(),
            Footprint::All
        );
    }
}
