//! # sdx-policy — a Pyretic-equivalent policy language and compiler
//!
//! The paper writes SDX policies in Pyretic [Monsanto et al., NSDI'13]:
//! boolean predicates over packet headers, a small set of actions, and two
//! composition operators — parallel `+` and sequential `>>`. The SDX
//! runtime leans on the Pyretic *compiler*, which turns a policy tree into
//! a prioritized match-action classifier, composing classifiers rule-by-
//! rule. This crate is that language and compiler built from scratch:
//!
//! * [`pred`] — predicate AST (`match(dstport=80) & match(srcip=...)`).
//! * [`policy`] — policy AST with `fwd`, `modify`, filters, `+`, `>>`,
//!   and `if_` (the operator the SDX uses to splice default forwarding
//!   under participant policies, §4.1).
//! * [`mod@eval`] — denotational semantics: located packet → set of located
//!   packets. This is the ground truth the compiler is differential-tested
//!   against.
//! * [`classifier`] — prioritized rule lists and their parallel/sequential
//!   composition; the quadratic cost of these compositions is exactly what
//!   Figure 8 of the paper measures.
//! * [`mod@compile`] — policy → classifier, with shadow elimination.
//! * [`dsl`] — a text parser for the paper's surface syntax, so examples
//!   read like the paper: `match(dstport=80) >> fwd(B)`.
//! * [`delta`] — the policy *lifecycle*: install/replace/retract deltas,
//!   per-participant policy versions, and destination footprints, so a
//!   policy edit flows through the controller like a BGP update burst.
//! * [`analysis`] — static analysis on compiled policies: forwarding
//!   targets, match unions, unicast checks, shadowing diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod classifier;
pub mod compile;
pub mod delta;
pub mod dsl;
pub mod eval;
pub mod policy;
pub mod pred;

pub use classifier::{Action, Classifier, Rule};
pub use compile::compile;
pub use delta::{Footprint, PolicyDelta, PolicyDeltaOp, PolicyOp, PolicyScope, PolicyVersions};
pub use dsl::{parse_policy, DslError, PortResolver};
pub use eval::eval;
pub use policy::Policy;
pub use pred::Pred;
