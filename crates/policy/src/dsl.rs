//! A text syntax for SDX policies, matching the paper's examples.
//!
//! Participants in the paper write policies like:
//!
//! ```text
//! (match(dstport = 80) >> fwd(B)) + (match(dstport = 443) >> fwd(C))
//! ```
//!
//! ```text
//! match(dstip = 74.125.1.1) >>
//!   (match(srcip = 96.25.160.0/24) >> mod(dstip = 74.125.224.161)) +
//!   (match(srcip = 128.125.163.0/24) >> mod(dstip = 74.125.137.139))
//! ```
//!
//! This module parses that syntax into a [`Policy`]. Port names (`B`, `B1`,
//! `A1`, `E1`) are resolved through a [`PortResolver`] table supplied by the
//! SDX controller, which knows each participant's physical and virtual
//! ports.
//!
//! Grammar sketch:
//!
//! ```text
//! policy := seq ('+' seq)*
//! seq    := conj ('>>' conj)*
//! conj   := term ('&&' term)*          -- only meaningful between filters
//! term   := 'match' '(' pred ')' | 'fwd' '(' NAME ')'
//!         | 'mod' '(' FIELD '=' VALUE ')' | 'drop' | 'id'
//!         | 'if_' '(' pred ',' policy ',' policy ')' | '(' policy ')'
//! pred   := apred ('||' apred)* ; apred := npred ('&&' npred)*
//! npred  := '!' npred | FIELD '=' VSET | '(' pred ')'
//! VSET   := VALUE | '{' VALUE (',' VALUE)* '}'
//! ```
//!
//! Fields: `srcip dstip srcport dstport srcmac dstmac proto ethtype port`.

use std::collections::BTreeMap;

use sdx_net::{EtherType, FieldMatch, IpProto, Ipv4Addr, MacAddr, Mod, PortId, Prefix};

use crate::policy::Policy;
use crate::pred::Pred;

/// Resolves the port names appearing in `fwd(...)` and `port=...`.
#[derive(Clone, Debug, Default)]
pub struct PortResolver {
    names: BTreeMap<String, PortId>,
}

impl PortResolver {
    /// An empty table.
    pub fn new() -> Self {
        PortResolver::default()
    }

    /// Registers `name` → `port`, replacing any previous binding.
    pub fn add(&mut self, name: impl Into<String>, port: PortId) -> &mut Self {
        self.names.insert(name.into(), port);
        self
    }

    /// Looks a name up.
    pub fn resolve(&self, name: &str) -> Option<PortId> {
        self.names.get(name).copied()
    }
}

impl FromIterator<(String, PortId)> for PortResolver {
    fn from_iter<I: IntoIterator<Item = (String, PortId)>>(iter: I) -> Self {
        PortResolver {
            names: iter.into_iter().collect(),
        }
    }
}

/// Parse errors, with a byte offset into the source where available.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DslError {
    /// Lexer met a character it cannot start a token with.
    BadChar(usize, char),
    /// Parser expected something else here.
    Expected(&'static str, usize),
    /// Unknown field name in a match/mod.
    UnknownField(String),
    /// A port name `fwd`/`port=` could not be resolved.
    UnknownPort(String),
    /// A value did not parse as the type the field requires.
    BadValue(String),
    /// `&&` between non-filter policies is not supported.
    ConjunctionOfNonFilters,
    /// Input ended too soon.
    UnexpectedEof,
    /// Leftover tokens after a complete policy.
    TrailingInput(usize),
    /// A [`PolicyDelta`](crate::delta::PolicyDelta) named a participant
    /// the exchange has never enrolled.
    UnknownParticipant(sdx_net::ParticipantId),
    /// A [`PolicyDelta`](crate::delta::PolicyDelta) policy referenced a
    /// physical port its owner does not have.
    UnresolvablePort(sdx_net::ParticipantId, u8),
}

impl core::fmt::Display for DslError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DslError::BadChar(i, c) => write!(f, "bad character {c:?} at offset {i}"),
            DslError::Expected(what, i) if *i == usize::MAX => {
                write!(f, "expected {what} at end of input")
            }
            DslError::Expected(what, i) => write!(f, "expected {what} at offset {i}"),
            DslError::UnknownField(s) => write!(f, "unknown field {s:?}"),
            DslError::UnknownPort(s) => write!(f, "unknown port name {s:?}"),
            DslError::BadValue(s) => write!(f, "bad value {s:?}"),
            DslError::ConjunctionOfNonFilters => {
                write!(f, "`&&` may only join match(...) filters")
            }
            DslError::UnexpectedEof => write!(f, "unexpected end of input"),
            DslError::TrailingInput(i) => write!(f, "trailing input at offset {i}"),
            DslError::UnknownParticipant(p) => {
                write!(f, "unknown participant {p:?} in policy delta")
            }
            DslError::UnresolvablePort(p, idx) => {
                write!(f, "participant {p:?} has no physical port {idx}")
            }
        }
    }
}

impl std::error::Error for DslError {}

// ------------------------------------------------------------------ lexer

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Atom(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Eq,
    Plus,
    Bang,
    Shr, // >>
    AndAnd,
    OrOr,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, DslError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '{' => {
                toks.push((i, Tok::LBrace));
                i += 1;
            }
            '}' => {
                toks.push((i, Tok::RBrace));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            '=' => {
                toks.push((i, Tok::Eq));
                i += 1;
            }
            '+' => {
                toks.push((i, Tok::Plus));
                i += 1;
            }
            '!' => {
                toks.push((i, Tok::Bang));
                i += 1;
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push((i, Tok::Shr));
                    i += 2;
                } else {
                    return Err(DslError::BadChar(i, '>'));
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    toks.push((i, Tok::AndAnd));
                    i += 2;
                } else {
                    return Err(DslError::BadChar(i, '&'));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push((i, Tok::OrOr));
                    i += 2;
                } else {
                    return Err(DslError::BadChar(i, '|'));
                }
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '/') {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push((start, Tok::Atom(src[start..i].to_string())));
            }
            other => return Err(DslError::BadChar(i, other)),
        }
    }
    Ok(toks)
}

// ----------------------------------------------------------------- parser

struct P<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    resolver: &'a PortResolver,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(usize::MAX, |(o, _)| *o)
    }

    /// Source offset of the token just consumed by `bump` — total even if
    /// called before any bump (then: end-of-input), so error paths can
    /// never panic on an index.
    fn prev_offset(&self) -> usize {
        self.pos
            .checked_sub(1)
            .and_then(|i| self.toks.get(i))
            .map_or(usize::MAX, |(o, _)| *o)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &'static str) -> Result<(), DslError> {
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            Some(_) => Err(DslError::Expected(what, self.prev_offset())),
            None => Err(DslError::UnexpectedEof),
        }
    }

    fn atom(&mut self, what: &'static str) -> Result<String, DslError> {
        match self.bump() {
            Some(Tok::Atom(s)) => Ok(s),
            Some(_) => Err(DslError::Expected(what, self.prev_offset())),
            None => Err(DslError::UnexpectedEof),
        }
    }

    // policy := seq ('+' seq)*
    fn policy(&mut self) -> Result<Policy, DslError> {
        let mut p = self.seq()?;
        while self.peek() == Some(&Tok::Plus) {
            self.bump();
            p = p + self.seq()?;
        }
        Ok(p)
    }

    // seq := conj ('>>' conj)*
    fn seq(&mut self) -> Result<Policy, DslError> {
        let mut p = self.conj()?;
        while self.peek() == Some(&Tok::Shr) {
            self.bump();
            p = p >> self.conj()?;
        }
        Ok(p)
    }

    // conj := term ('&&' term)* — filters only. Binds tighter than `>>`, as
    // in Pyretic, so `match(port=A1) && match(dstport=80) >> fwd(B)` reads
    // "(both matches) then forward".
    fn conj(&mut self) -> Result<Policy, DslError> {
        let mut p = self.term()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.bump();
            let rhs = self.term()?;
            p = match (p, rhs) {
                (Policy::Filter(a), Policy::Filter(b)) => Policy::Filter(a & b),
                _ => return Err(DslError::ConjunctionOfNonFilters),
            };
        }
        Ok(p)
    }

    fn term(&mut self) -> Result<Policy, DslError> {
        match self.peek() {
            Some(Tok::LParen) => {
                self.bump();
                let p = self.policy()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(p)
            }
            Some(Tok::Atom(kw)) => {
                let kw = kw.clone();
                match kw.as_str() {
                    "match" => {
                        self.bump();
                        self.expect(Tok::LParen, "`(` after match")?;
                        let pred = self.pred()?;
                        self.expect(Tok::RParen, "`)` after match predicate")?;
                        Ok(Policy::Filter(pred))
                    }
                    "fwd" => {
                        self.bump();
                        self.expect(Tok::LParen, "`(` after fwd")?;
                        let name = self.atom("port name")?;
                        self.expect(Tok::RParen, "`)` after fwd port")?;
                        let port = self
                            .resolver
                            .resolve(&name)
                            .ok_or(DslError::UnknownPort(name))?;
                        Ok(Policy::fwd(port))
                    }
                    "mod" | "modify" => {
                        self.bump();
                        self.expect(Tok::LParen, "`(` after mod")?;
                        let field = self.atom("field name")?;
                        self.expect(Tok::Eq, "`=` in mod")?;
                        let value = self.atom("value")?;
                        self.expect(Tok::RParen, "`)` after mod")?;
                        Ok(Policy::modify(parse_mod(&field, &value)?))
                    }
                    "drop" => {
                        self.bump();
                        Ok(Policy::drop())
                    }
                    "id" => {
                        self.bump();
                        Ok(Policy::id())
                    }
                    "if_" => {
                        self.bump();
                        self.expect(Tok::LParen, "`(` after if_")?;
                        let pred = self.pred()?;
                        self.expect(Tok::Comma, "`,` after if_ predicate")?;
                        let then = self.policy()?;
                        self.expect(Tok::Comma, "`,` after then-branch")?;
                        let otherwise = self.policy()?;
                        self.expect(Tok::RParen, "`)` after if_")?;
                        Ok(Policy::if_(pred, then, otherwise))
                    }
                    _ => Err(DslError::Expected("policy term", self.offset())),
                }
            }
            _ => Err(DslError::Expected("policy term", self.offset())),
        }
    }

    // pred := apred ('||' apred)*
    fn pred(&mut self) -> Result<Pred, DslError> {
        let mut p = self.apred()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.bump();
            p = p | self.apred()?;
        }
        Ok(p)
    }

    // apred := npred ('&&' npred)*  (also accepts ',' as Pyretic does:
    // match(a=1, b=2) is a conjunction)
    fn apred(&mut self) -> Result<Pred, DslError> {
        let mut p = self.npred()?;
        loop {
            match self.peek() {
                Some(Tok::AndAnd) => {
                    self.bump();
                    p = p & self.npred()?;
                }
                Some(Tok::Comma) => {
                    // Only treat `,` as conjunction inside match(); if_ has
                    // its own comma handling, but pred() is only invoked on
                    // the predicate slot so a comma before `)` would be an
                    // error anyway. We conservatively stop at `,` unless the
                    // following token starts a field test.
                    if matches!(self.toks.get(self.pos + 1), Some((_, Tok::Atom(a)))
                        if field_name(a) && matches!(self.toks.get(self.pos + 2), Some((_, Tok::Eq))))
                    {
                        self.bump();
                        p = p & self.npred()?;
                    } else {
                        return Ok(p);
                    }
                }
                _ => return Ok(p),
            }
        }
    }

    fn npred(&mut self) -> Result<Pred, DslError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.bump();
                Ok(!self.npred()?)
            }
            Some(Tok::LParen) => {
                self.bump();
                let p = self.pred()?;
                self.expect(Tok::RParen, "`)` in predicate")?;
                Ok(p)
            }
            Some(Tok::Atom(_)) => {
                let field = self.atom("field name")?;
                self.expect(Tok::Eq, "`=` in field test")?;
                // Value set `{a, b}` or single value.
                if self.peek() == Some(&Tok::LBrace) {
                    self.bump();
                    let mut pred: Option<Pred> = None;
                    loop {
                        let v = self.atom("value")?;
                        let t = parse_test(&field, &v, self.resolver)?;
                        pred = Some(match pred {
                            None => t,
                            Some(p) => p | t,
                        });
                        match self.bump() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RBrace) => break,
                            Some(_) => {
                                return Err(DslError::Expected("`,` or `}`", self.prev_offset()))
                            }
                            None => return Err(DslError::UnexpectedEof),
                        }
                    }
                    Ok(pred.unwrap_or(Pred::None))
                } else {
                    let v = self.atom("value")?;
                    parse_test(&field, &v, self.resolver)
                }
            }
            _ => Err(DslError::Expected("predicate", self.offset())),
        }
    }
}

fn field_name(s: &str) -> bool {
    matches!(
        s,
        "srcip"
            | "dstip"
            | "srcport"
            | "dstport"
            | "srcmac"
            | "dstmac"
            | "proto"
            | "ethtype"
            | "port"
            | "inport"
    )
}

fn parse_prefix(v: &str) -> Result<Prefix, DslError> {
    v.parse().map_err(|_| DslError::BadValue(v.to_string()))
}

fn parse_test(field: &str, v: &str, resolver: &PortResolver) -> Result<Pred, DslError> {
    let t = match field {
        "srcip" => FieldMatch::NwSrc(parse_prefix(v)?),
        "dstip" => FieldMatch::NwDst(parse_prefix(v)?),
        "srcport" => FieldMatch::TpSrc(v.parse().map_err(|_| DslError::BadValue(v.into()))?),
        "dstport" => FieldMatch::TpDst(v.parse().map_err(|_| DslError::BadValue(v.into()))?),
        "srcmac" => FieldMatch::DlSrc(v.parse().map_err(|_| DslError::BadValue(v.into()))?),
        "dstmac" => FieldMatch::DlDst(v.parse().map_err(|_| DslError::BadValue(v.into()))?),
        "proto" => FieldMatch::NwProto(parse_proto(v)?),
        "ethtype" => FieldMatch::EthType(parse_ethtype(v)?),
        "port" | "inport" => FieldMatch::InPort(
            resolver
                .resolve(v)
                .ok_or_else(|| DslError::UnknownPort(v.to_string()))?,
        ),
        other => return Err(DslError::UnknownField(other.to_string())),
    };
    Ok(Pred::Test(t))
}

fn parse_proto(v: &str) -> Result<IpProto, DslError> {
    Ok(match v {
        "tcp" => IpProto::Tcp,
        "udp" => IpProto::Udp,
        "icmp" => IpProto::Icmp,
        n => IpProto::from_value(n.parse().map_err(|_| DslError::BadValue(v.into()))?),
    })
}

fn parse_ethtype(v: &str) -> Result<EtherType, DslError> {
    Ok(match v {
        "ip" | "ipv4" => EtherType::Ipv4,
        "arp" => EtherType::Arp,
        n => EtherType::from_value(n.parse().map_err(|_| DslError::BadValue(v.into()))?),
    })
}

fn parse_mod(field: &str, v: &str) -> Result<Mod, DslError> {
    let bad = || DslError::BadValue(v.to_string());
    Ok(match field {
        "srcip" => Mod::SetNwSrc(v.parse::<Ipv4Addr>().map_err(|_| bad())?),
        "dstip" => Mod::SetNwDst(v.parse::<Ipv4Addr>().map_err(|_| bad())?),
        "srcport" => Mod::SetTpSrc(v.parse().map_err(|_| bad())?),
        "dstport" => Mod::SetTpDst(v.parse().map_err(|_| bad())?),
        "srcmac" => Mod::SetDlSrc(v.parse::<MacAddr>().map_err(|_| bad())?),
        "dstmac" => Mod::SetDlDst(v.parse::<MacAddr>().map_err(|_| bad())?),
        other => return Err(DslError::UnknownField(other.to_string())),
    })
}

/// Parses a policy written in the paper's syntax.
///
/// ```
/// use sdx_policy::dsl::{parse_policy, PortResolver};
/// use sdx_net::{ParticipantId, PortId};
///
/// let mut names = PortResolver::new();
/// names.add("B", PortId::Virt(ParticipantId(2)));
/// names.add("C", PortId::Virt(ParticipantId(3)));
/// let policy = parse_policy(
///     "(match(dstport = 80) >> fwd(B)) + (match(dstport = 443) >> fwd(C))",
///     &names,
/// )
/// .unwrap();
/// assert_eq!(policy.size(), 7);
/// ```
pub fn parse_policy(src: &str, resolver: &PortResolver) -> Result<Policy, DslError> {
    let toks = lex(src)?;
    let mut p = P {
        toks,
        pos: 0,
        resolver,
    };
    let pol = p.policy()?;
    if p.pos != p.toks.len() {
        return Err(DslError::TrailingInput(p.toks[p.pos].0));
    }
    Ok(pol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use sdx_net::LocatedPacket;
    use sdx_net::{ip, Packet, ParticipantId, PortId};

    fn resolver() -> PortResolver {
        let mut r = PortResolver::new();
        r.add("A", PortId::Virt(ParticipantId(1)))
            .add("B", PortId::Virt(ParticipantId(2)))
            .add("C", PortId::Virt(ParticipantId(3)))
            .add("A1", PortId::Phys(ParticipantId(1), 1))
            .add("B1", PortId::Phys(ParticipantId(2), 1))
            .add("B2", PortId::Phys(ParticipantId(2), 2))
            .add("E1", PortId::Phys(ParticipantId(5), 1));
        r
    }

    fn pkt(src: &str, dst: &str, dport: u16) -> LocatedPacket {
        LocatedPacket::at(
            PortId::Phys(ParticipantId(1), 1),
            Packet::tcp(ip(src), ip(dst), 999, dport),
        )
    }

    #[test]
    fn paper_outbound_policy_parses() {
        let p = parse_policy(
            "(match(dstport = 80) >> fwd(B)) + (match(dstport = 443) >> fwd(C))",
            &resolver(),
        )
        .unwrap();
        let out = eval(&p, &pkt("10.0.0.1", "20.0.0.1", 80));
        assert_eq!(out[0].loc, PortId::Virt(ParticipantId(2)));
        let out = eval(&p, &pkt("10.0.0.1", "20.0.0.1", 443));
        assert_eq!(out[0].loc, PortId::Virt(ParticipantId(3)));
        assert!(eval(&p, &pkt("10.0.0.1", "20.0.0.1", 22)).is_empty());
    }

    #[test]
    fn paper_inbound_policy_parses() {
        let p = parse_policy(
            "(match(srcip = {0.0.0.0/1}) >> fwd(B1)) + (match(srcip = {128.0.0.0/1}) >> fwd(B2))",
            &resolver(),
        )
        .unwrap();
        let out = eval(&p, &pkt("10.0.0.1", "20.0.0.1", 80));
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(2), 1));
        let out = eval(&p, &pkt("200.0.0.1", "20.0.0.1", 80));
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(2), 2));
    }

    #[test]
    fn paper_load_balancer_parses() {
        let p = parse_policy(
            "match(dstip=74.125.1.1) >> \
               (match(srcip=96.25.160.0/24) >> mod(dstip=74.125.224.161)) + \
               (match(srcip=128.125.163.0/24) >> mod(dstip=74.125.137.139))",
            &resolver(),
        )
        .unwrap();
        let out = eval(&p, &pkt("96.25.160.9", "74.125.1.1", 80));
        assert_eq!(out[0].pkt.nw_dst, ip("74.125.224.161"));
        let out = eval(&p, &pkt("128.125.163.9", "74.125.1.1", 80));
        assert_eq!(out[0].pkt.nw_dst, ip("74.125.137.139"));
        assert!(eval(&p, &pkt("1.2.3.4", "74.125.1.1", 80)).is_empty());
    }

    #[test]
    fn conjunction_of_matches() {
        let p = parse_policy("match(port=A1) && match(dstport=80) >> fwd(B)", &resolver()).unwrap();
        let out = eval(&p, &pkt("10.0.0.1", "20.0.0.1", 80));
        assert_eq!(out[0].loc, PortId::Virt(ParticipantId(2)));
    }

    #[test]
    fn comma_conjunction_inside_match() {
        let p = parse_policy("match(dstport=80, srcip=10.0.0.0/8) >> fwd(B)", &resolver()).unwrap();
        assert!(!eval(&p, &pkt("10.0.0.1", "2.2.2.2", 80)).is_empty());
        assert!(eval(&p, &pkt("99.0.0.1", "2.2.2.2", 80)).is_empty());
    }

    #[test]
    fn negation_and_or() {
        let p = parse_policy(
            "match(!(dstport=80) && (srcip=10.0.0.0/8 || srcip=11.0.0.0/8)) >> fwd(C)",
            &resolver(),
        )
        .unwrap();
        assert!(eval(&p, &pkt("10.0.0.1", "2.2.2.2", 80)).is_empty());
        assert!(!eval(&p, &pkt("11.0.0.1", "2.2.2.2", 443)).is_empty());
        assert!(eval(&p, &pkt("12.0.0.1", "2.2.2.2", 443)).is_empty());
    }

    #[test]
    fn if_else_and_literals() {
        let p = parse_policy("if_(dstport=80, fwd(B), fwd(C)) ", &resolver()).unwrap();
        assert_eq!(
            eval(&p, &pkt("1.1.1.1", "2.2.2.2", 80))[0].loc,
            PortId::Virt(ParticipantId(2))
        );
        assert_eq!(
            eval(&p, &pkt("1.1.1.1", "2.2.2.2", 22))[0].loc,
            PortId::Virt(ParticipantId(3))
        );
    }

    #[test]
    fn drop_and_id_keywords() {
        assert_eq!(parse_policy("drop", &resolver()).unwrap(), Policy::drop());
        assert_eq!(parse_policy("id", &resolver()).unwrap(), Policy::id());
    }

    #[test]
    fn mac_and_proto_values() {
        let p = parse_policy(
            "match(dstmac=0a:00:00:00:00:07, proto=udp) >> mod(dstmac=02:00:00:00:00:01) >> fwd(B1)",
            &resolver(),
        )
        .unwrap();
        let mut lp = pkt("1.1.1.1", "2.2.2.2", 53);
        lp.pkt.nw_proto = sdx_net::packet::IpProto::Udp;
        lp.pkt.dl_dst = sdx_net::MacAddr::vmac(7);
        let out = eval(&p, &lp);
        assert_eq!(out[0].pkt.dl_dst, sdx_net::MacAddr::physical(1));
    }

    #[test]
    fn errors_are_reported() {
        let r = resolver();
        assert!(matches!(
            parse_policy("fwd(Z)", &r),
            Err(DslError::UnknownPort(_))
        ));
        assert!(matches!(
            parse_policy("match(bogus=1) >> fwd(B)", &r),
            Err(DslError::UnknownField(_))
        ));
        assert!(matches!(
            parse_policy("match(dstport=99999) >> fwd(B)", &r),
            Err(DslError::BadValue(_))
        ));
        assert!(matches!(
            parse_policy("match(dstport=80) >>", &r),
            Err(DslError::UnexpectedEof | DslError::Expected(..))
        ));
        assert!(matches!(
            parse_policy("fwd(B) && fwd(C)", &r),
            Err(DslError::ConjunctionOfNonFilters)
        ));
        assert!(matches!(
            parse_policy("match(dstport=80) ) ", &r),
            Err(DslError::TrailingInput(_))
        ));
        assert!(matches!(
            parse_policy("match(dstport=80) # fwd(B)", &r),
            Err(DslError::BadChar(..))
        ));
    }

    #[test]
    fn empty_value_set_is_deny() {
        // `{}` is not produced by the paper but must not panic; lexer sees
        // `{` then `}` — our grammar requires at least one value, so this
        // is a parse error rather than silent acceptance.
        assert!(parse_policy("match(srcip={}) >> fwd(B)", &resolver()).is_err());
    }
}
