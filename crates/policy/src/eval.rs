//! Denotational semantics: what a policy *means*.
//!
//! `eval(policy, packet)` returns the set of located packets the policy
//! produces — empty for drop, a singleton for unicast, more for multicast.
//! This interpreter is deliberately naive and obviously correct; the
//! classifier compiler in [`mod@crate::compile`] is differential-tested against
//! it on random policies and packets.

use sdx_net::LocatedPacket;

use crate::policy::Policy;

/// Evaluates `policy` on `lp`, returning the output packet set
/// (deduplicated, in first-production order).
pub fn eval(policy: &Policy, lp: &LocatedPacket) -> Vec<LocatedPacket> {
    let mut out = Vec::new();
    eval_into(policy, *lp, &mut out);
    out
}

/// Evaluates `policy` expecting unicast semantics: at most one output
/// packet, as the SDX demands of participant policies (the compiler
/// rejects multicast outbound clauses as `MulticastOutbound`).
///
/// Returns `Ok(None)` for drop, `Ok(Some(lp))` for the single output, and
/// `Err` with all outputs when the policy multicasts — the semantic
/// oracle uses the error arm to flag generator bugs instead of silently
/// comparing one branch.
pub fn eval_unicast(
    policy: &Policy,
    lp: &LocatedPacket,
) -> Result<Option<LocatedPacket>, Vec<LocatedPacket>> {
    let mut out = eval(policy, lp);
    match out.len() {
        0 => Ok(None),
        1 => Ok(Some(out.remove(0))),
        _ => Err(out),
    }
}

fn push_unique(out: &mut Vec<LocatedPacket>, lp: LocatedPacket) {
    if !out.contains(&lp) {
        out.push(lp);
    }
}

fn eval_into(policy: &Policy, lp: LocatedPacket, out: &mut Vec<LocatedPacket>) {
    match policy {
        Policy::Filter(pred) => {
            if pred.eval(&lp) {
                push_unique(out, lp);
            }
        }
        Policy::Mod(m) => {
            let mut moved = lp;
            m.apply(&mut moved);
            push_unique(out, moved);
        }
        Policy::Parallel(ps) => {
            for p in ps {
                eval_into(p, lp, out);
            }
        }
        Policy::Sequential(ps) => {
            let mut current = vec![lp];
            for p in ps {
                let mut next = Vec::new();
                for c in current {
                    eval_into(p, c, &mut next);
                }
                current = next;
                if current.is_empty() {
                    return;
                }
            }
            for c in current {
                push_unique(out, c);
            }
        }
        Policy::IfElse(pred, then, otherwise) => {
            if pred.eval(&lp) {
                eval_into(then, lp, out);
            } else {
                eval_into(otherwise, lp, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::Pred;
    use sdx_net::{ip, FieldMatch, Mod, Packet, ParticipantId, PortId};

    fn port(n: u32) -> PortId {
        PortId::Virt(ParticipantId(n))
    }

    fn web_pkt() -> LocatedPacket {
        LocatedPacket::at(
            PortId::Phys(ParticipantId(1), 1),
            Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 999, 80),
        )
    }

    #[test]
    fn filter_passes_or_drops() {
        let lp = web_pkt();
        assert_eq!(eval(&Policy::id(), &lp), vec![lp]);
        assert!(eval(&Policy::drop(), &lp).is_empty());
        assert_eq!(eval(&Policy::match_(FieldMatch::TpDst(80)), &lp), vec![lp]);
        assert!(eval(&Policy::match_(FieldMatch::TpDst(443)), &lp).is_empty());
    }

    #[test]
    fn fwd_moves_packet() {
        let lp = web_pkt();
        let out = eval(&Policy::fwd(port(2)), &lp);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2));
        assert_eq!(out[0].pkt, lp.pkt);
    }

    #[test]
    fn sequential_pipelines() {
        // The paper's application-specific peering policy for AS A.
        let pol = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2)))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(3)));
        let lp = web_pkt();
        let out = eval(&pol, &lp);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2));

        let mut https = lp;
        https.pkt.tp_dst = 443;
        let out = eval(&pol, &https);
        assert_eq!(out[0].loc, port(3));

        let mut other = lp;
        other.pkt.tp_dst = 22;
        assert!(eval(&pol, &other).is_empty(), "+ drops unmatched traffic");
    }

    #[test]
    fn parallel_multicasts() {
        let pol = Policy::fwd(port(2)) + Policy::fwd(port(3));
        let out = eval(&pol, &web_pkt());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].loc, port(2));
        assert_eq!(out[1].loc, port(3));
    }

    #[test]
    fn parallel_deduplicates() {
        let pol = Policy::id() + Policy::id();
        let out = eval(&pol, &web_pkt());
        assert_eq!(out.len(), 1, "sets, not multisets");
    }

    #[test]
    fn modify_rewrites_field() {
        // Wide-area load balancing: rewrite anycast destination.
        let pol = Policy::match_(FieldMatch::NwDst(sdx_net::prefix("20.0.0.1/32")))
            >> Policy::modify(Mod::SetNwDst(ip("74.125.224.161")))
            >> Policy::fwd(port(4));
        let out = eval(&pol, &web_pkt());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pkt.nw_dst, ip("74.125.224.161"));
        assert_eq!(out[0].loc, port(4));
    }

    #[test]
    fn if_else_branches() {
        let pol = Policy::if_(
            Pred::Test(FieldMatch::TpDst(80)),
            Policy::fwd(port(2)),
            Policy::fwd(port(3)),
        );
        assert_eq!(eval(&pol, &web_pkt())[0].loc, port(2));
        let mut https = web_pkt();
        https.pkt.tp_dst = 443;
        assert_eq!(eval(&pol, &https)[0].loc, port(3));
    }

    #[test]
    fn sequence_through_multicast() {
        // Multicast then a filter that kills one branch.
        let pol = (Policy::fwd(port(2)) + Policy::fwd(port(3)))
            >> Policy::match_(FieldMatch::InPort(port(2)));
        let out = eval(&pol, &web_pkt());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2));
    }

    #[test]
    fn empty_sequential_short_circuits() {
        let pol = Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(2));
        assert!(eval(&pol, &web_pkt()).is_empty());
    }

    #[test]
    fn eval_unicast_distinguishes_drop_single_and_multicast() {
        let lp = web_pkt();
        assert_eq!(eval_unicast(&Policy::drop(), &lp), Ok(None));
        let single = Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2));
        assert_eq!(
            eval_unicast(&single, &lp).expect("unicast").map(|o| o.loc),
            Some(port(2))
        );
        let multi = Policy::fwd(port(2)) + Policy::fwd(port(3));
        let err = eval_unicast(&multi, &lp).expect_err("multicast");
        assert_eq!(err.len(), 2);
    }
}
