//! Prioritized match-action classifiers and their composition.
//!
//! A [`Classifier`] is an ordered rule list with first-match semantics —
//! exactly an OpenFlow table with priorities, and exactly what the Pyretic
//! compiler produces. The two composition algorithms here are the engine of
//! the whole SDX compilation pipeline (§4 of the paper):
//!
//! * **parallel** (`p1 + p2`): the cross product of the two rule lists,
//!   intersecting matches and unioning action sets, ordered
//!   lexicographically by source rule indices — which preserves first-match
//!   semantics on both sides;
//! * **sequential** (`p1 >> p2`): for each rule of `p1` and each of its
//!   action branches, push the branch's modifications through `p2`'s rules
//!   via [`HeaderMatch::seq_compose`]; multicast branches are recombined by
//!   intersection.
//!
//! Both are quadratic in rule count — the cost that §4.3.1's optimizations
//! (skip disjoint pairs, memoize shared sub-policies) exist to avoid. Those
//! optimizations live in `sdx-core`; this module provides the honest
//! baseline they are measured against.
//!
//! Invariant: every classifier is *total* — its last rule matches every
//! packet (a wildcard drop is appended when needed). Totality is what makes
//! sequential composition complete, and it mirrors OpenFlow's table-miss
//! entry.

use core::fmt;

use sdx_net::{HeaderMatch, LocatedPacket, Mod};

/// One output branch of a rule: apply `mods` in order, emit the packet.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Action {
    /// Modifications applied in order (may include `SetLoc` = output port).
    pub mods: Vec<Mod>,
}

impl Action {
    /// The identity action: emit the packet unmodified.
    pub fn id() -> Action {
        Action::default()
    }

    /// An action applying a single modification.
    pub fn of(m: Mod) -> Action {
        Action { mods: vec![m] }
    }

    /// Applies the action to produce the output packet.
    pub fn apply(&self, lp: &LocatedPacket) -> LocatedPacket {
        let mut out = *lp;
        for m in &self.mods {
            m.apply(&mut out);
        }
        out
    }

    /// This action followed by `then` (sequential fusion).
    pub fn then(&self, then: &Action) -> Action {
        let mut mods = self.mods.clone();
        mods.extend(then.mods.iter().copied());
        Action { mods }
    }
}

/// A prioritized rule: if the packet matches, apply every action (empty
/// action set = drop).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The match pattern.
    pub matches: HeaderMatch,
    /// Output branches; empty = drop.
    pub actions: Vec<Action>,
}

impl Rule {
    /// A rule that drops matching packets.
    pub fn drop(matches: HeaderMatch) -> Rule {
        Rule {
            matches,
            actions: Vec::new(),
        }
    }

    /// A unicast rule with a single action.
    pub fn unicast(matches: HeaderMatch, action: Action) -> Rule {
        Rule {
            matches,
            actions: vec![action],
        }
    }

    /// True if the rule drops.
    pub fn is_drop(&self) -> bool {
        self.actions.is_empty()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_drop() {
            write!(f, "{:?} -> drop", self.matches)
        } else {
            write!(f, "{:?} -> {:?}", self.matches, self.actions)
        }
    }
}

/// An ordered, total rule list with first-match semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Classifier {
    rules: Vec<Rule>,
}

fn union_actions(a: &[Action], b: &[Action]) -> Vec<Action> {
    let mut out: Vec<Action> = a.to_vec();
    for act in b {
        if !out.contains(act) {
            out.push(act.clone());
        }
    }
    out
}

impl Classifier {
    /// Builds a classifier, appending a wildcard drop if `rules` is not
    /// already total.
    pub fn from_rules(mut rules: Vec<Rule>) -> Classifier {
        let total = rules.last().is_some_and(|r| r.matches.is_wildcard());
        if !total {
            rules.push(Rule::drop(HeaderMatch::any()));
        }
        Classifier { rules }
    }

    /// The classifier that drops everything.
    pub fn drop_all() -> Classifier {
        Classifier::from_rules(Vec::new())
    }

    /// The identity classifier (one wildcard rule, identity action).
    pub fn id() -> Classifier {
        Classifier::from_rules(vec![Rule::unicast(HeaderMatch::any(), Action::id())])
    }

    /// The rules, in priority order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Total number of rules, including the final catch-all.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// A classifier always has at least the catch-all rule.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of non-drop rules — the "forwarding rules" metric of
    /// Figures 7 and 9 (a switch's table-miss and drop entries are not
    /// forwarding state).
    pub fn forwarding_rule_count(&self) -> usize {
        self.rules.iter().filter(|r| !r.is_drop()).count()
    }

    /// First-match evaluation: the packets this classifier outputs for `lp`.
    pub fn evaluate(&self, lp: &LocatedPacket) -> Vec<LocatedPacket> {
        for r in &self.rules {
            if r.matches.matches(lp) {
                let mut out: Vec<LocatedPacket> = Vec::with_capacity(r.actions.len());
                for a in &r.actions {
                    let o = a.apply(lp);
                    if !out.contains(&o) {
                        out.push(o);
                    }
                }
                return out;
            }
        }
        unreachable!("classifier invariant: total rule list");
    }

    /// Parallel composition: implements `p1 + p2` on compiled form.
    pub fn parallel(&self, other: &Classifier) -> Classifier {
        let mut rules = Vec::new();
        for r1 in &self.rules {
            for r2 in &other.rules {
                if let Some(m) = r1.matches.intersect(&r2.matches) {
                    rules.push(Rule {
                        matches: m,
                        actions: union_actions(&r1.actions, &r2.actions),
                    });
                }
            }
        }
        let mut c = Classifier::from_rules(rules);
        c.shadow_eliminate();
        c
    }

    /// Sequential composition: implements `p1 >> p2` on compiled form.
    pub fn sequential(&self, other: &Classifier) -> Classifier {
        let mut rules = Vec::new();
        for r1 in &self.rules {
            if r1.is_drop() {
                rules.push(r1.clone());
                continue;
            }
            // One sub-classifier per action branch, each total over r1.m.
            let branches: Vec<Vec<Rule>> = r1
                .actions
                .iter()
                .map(|a| {
                    let mut branch = Vec::new();
                    for r2 in &other.rules {
                        if let Some(m) = r1.matches.seq_compose(&a.mods, &r2.matches) {
                            branch.push(Rule {
                                matches: m,
                                actions: r2.actions.iter().map(|a2| a.then(a2)).collect(),
                            });
                        }
                    }
                    branch
                })
                .collect();
            // Recombine multicast branches by intersection (parallel-style).
            let combined = branches
                .into_iter()
                .reduce(|acc, branch| {
                    let mut out = Vec::new();
                    for ra in &acc {
                        for rb in &branch {
                            if let Some(m) = ra.matches.intersect(&rb.matches) {
                                out.push(Rule {
                                    matches: m,
                                    actions: union_actions(&ra.actions, &rb.actions),
                                });
                            }
                        }
                    }
                    out
                })
                .unwrap_or_default();
            rules.extend(combined);
        }
        let mut c = Classifier::from_rules(rules);
        c.shadow_eliminate();
        c
    }

    /// Removes rules that can never fire because an earlier rule's match
    /// subsumes theirs. Safe under first-match semantics; totality is
    /// restored afterwards if the catch-all itself was shadowed away.
    ///
    /// A naive quadratic scan dominates compile time at SDX scale
    /// (tens of thousands of rules), so kept rules are bucketed by their
    /// exact `dl_dst` constraint — the VMAC tag that keys almost every SDX
    /// rule. A rule constrained to `dl_dst = x` can only be shadowed by an
    /// earlier rule with `dl_dst = x` or with `dl_dst` unconstrained, so
    /// only those two buckets are scanned.
    pub fn shadow_eliminate(&mut self) {
        use std::collections::HashMap;
        let mut kept: Vec<Rule> = Vec::with_capacity(self.rules.len());
        let mut by_dldst: HashMap<Option<sdx_net::MacAddr>, Vec<usize>> = HashMap::new();
        for r in self.rules.drain(..) {
            let mut shadowed = false;
            let mut candidate_buckets: [Option<&Vec<usize>>; 2] = [by_dldst.get(&None), None];
            if r.matches.dl_dst.is_some() {
                candidate_buckets[1] = by_dldst.get(&r.matches.dl_dst);
            }
            'outer: for bucket in candidate_buckets.into_iter().flatten() {
                for &i in bucket {
                    if kept[i].matches.subsumes(&r.matches) {
                        shadowed = true;
                        break 'outer;
                    }
                }
            }
            if !shadowed {
                by_dldst
                    .entry(r.matches.dl_dst)
                    .or_default()
                    .push(kept.len());
                kept.push(r);
            }
        }
        // A run of drop rules at the tail is equivalent to the catch-all
        // drop that totality adds anyway — strip it. This keeps the drop
        // fragments produced by predicate compilation from snowballing
        // through repeated composition.
        while kept.last().is_some_and(Rule::is_drop) {
            kept.pop();
        }
        if !kept.last().is_some_and(|r| r.matches.is_wildcard()) {
            kept.push(Rule::drop(HeaderMatch::any()));
        }
        self.rules = kept;
    }
}

impl fmt::Display for Classifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            writeln!(f, "{i:4}: {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, prefix, FieldMatch, Packet, ParticipantId, PortId};

    fn port(n: u32) -> PortId {
        PortId::Virt(ParticipantId(n))
    }

    fn web_pkt() -> LocatedPacket {
        LocatedPacket::at(
            PortId::Phys(ParticipantId(1), 1),
            Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 999, 80),
        )
    }

    fn m(f: FieldMatch) -> HeaderMatch {
        HeaderMatch::of(f)
    }

    #[test]
    fn from_rules_appends_catchall() {
        let c = Classifier::from_rules(vec![Rule::unicast(
            m(FieldMatch::TpDst(80)),
            Action::of(Mod::SetLoc(port(2))),
        )]);
        assert_eq!(c.len(), 2);
        assert!(c.rules().last().unwrap().matches.is_wildcard());
        assert!(c.rules().last().unwrap().is_drop());
        assert_eq!(c.forwarding_rule_count(), 1);
    }

    #[test]
    fn evaluate_first_match_wins() {
        let c = Classifier::from_rules(vec![
            Rule::unicast(m(FieldMatch::TpDst(80)), Action::of(Mod::SetLoc(port(2)))),
            Rule::unicast(HeaderMatch::any(), Action::of(Mod::SetLoc(port(3)))),
        ]);
        assert_eq!(c.evaluate(&web_pkt())[0].loc, port(2));
        let mut ssh = web_pkt();
        ssh.pkt.tp_dst = 22;
        assert_eq!(c.evaluate(&ssh)[0].loc, port(3));
    }

    #[test]
    fn drop_all_drops() {
        assert!(Classifier::drop_all().evaluate(&web_pkt()).is_empty());
        assert_eq!(Classifier::id().evaluate(&web_pkt()), vec![web_pkt()]);
    }

    #[test]
    fn parallel_unions_actions() {
        let c1 = Classifier::from_rules(vec![Rule::unicast(
            m(FieldMatch::TpDst(80)),
            Action::of(Mod::SetLoc(port(2))),
        )]);
        let c2 = Classifier::from_rules(vec![Rule::unicast(
            m(FieldMatch::NwSrc(prefix("10.0.0.0/8"))),
            Action::of(Mod::SetLoc(port(3))),
        )]);
        let c = c1.parallel(&c2);
        // Web packet from 10/8 matches both: multicast to 2 and 3.
        let out = c.evaluate(&web_pkt());
        let locs: Vec<_> = out.iter().map(|o| o.loc).collect();
        assert_eq!(locs, vec![port(2), port(3)]);
        // Non-web from 10/8 → only port 3.
        let mut ssh = web_pkt();
        ssh.pkt.tp_dst = 22;
        assert_eq!(c.evaluate(&ssh)[0].loc, port(3));
        // Web from elsewhere → only port 2.
        let mut other = web_pkt();
        other.pkt.nw_src = ip("99.0.0.1");
        assert_eq!(c.evaluate(&other)[0].loc, port(2));
    }

    #[test]
    fn sequential_threads_mods() {
        // Stage 1: web → port 2. Stage 2: at port 2 → rewrite dst, port 4.
        let c1 = Classifier::from_rules(vec![Rule::unicast(
            m(FieldMatch::TpDst(80)),
            Action::of(Mod::SetLoc(port(2))),
        )]);
        let c2 = Classifier::from_rules(vec![Rule::unicast(
            m(FieldMatch::InPort(port(2))),
            Action {
                mods: vec![Mod::SetNwDst(ip("9.9.9.9")), Mod::SetLoc(port(4))],
            },
        )]);
        let c = c1.sequential(&c2);
        let out = c.evaluate(&web_pkt());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(4));
        assert_eq!(out[0].pkt.nw_dst, ip("9.9.9.9"));
        // Non-web is dropped in stage 1.
        let mut ssh = web_pkt();
        ssh.pkt.tp_dst = 22;
        assert!(c.evaluate(&ssh).is_empty());
    }

    #[test]
    fn sequential_multicast_branches() {
        // Multicast to ports 2 and 3; stage 2 forwards only port-2 arrivals.
        let c1 = Classifier::from_rules(vec![Rule {
            matches: HeaderMatch::any(),
            actions: vec![
                Action::of(Mod::SetLoc(port(2))),
                Action::of(Mod::SetLoc(port(3))),
            ],
        }]);
        let c2 = Classifier::from_rules(vec![Rule::unicast(
            m(FieldMatch::InPort(port(2))),
            Action::of(Mod::SetLoc(port(9))),
        )]);
        let c = c1.sequential(&c2);
        let out = c.evaluate(&web_pkt());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(9));
    }

    #[test]
    fn shadow_elimination_removes_dead_rules() {
        let mut c = Classifier::from_rules(vec![
            Rule::unicast(m(FieldMatch::TpDst(80)), Action::of(Mod::SetLoc(port(2)))),
            // Shadowed: strictly narrower than the rule above.
            Rule::unicast(
                m(FieldMatch::TpDst(80)).and(FieldMatch::TpSrc(9)),
                Action::of(Mod::SetLoc(port(3))),
            ),
        ]);
        c.shadow_eliminate();
        assert_eq!(c.forwarding_rule_count(), 1);
    }

    #[test]
    fn shadow_elimination_keeps_live_rules() {
        let mut c = Classifier::from_rules(vec![
            Rule::unicast(
                m(FieldMatch::TpDst(80)).and(FieldMatch::TpSrc(9)),
                Action::of(Mod::SetLoc(port(3))),
            ),
            Rule::unicast(m(FieldMatch::TpDst(80)), Action::of(Mod::SetLoc(port(2)))),
        ]);
        let before = c.len();
        c.shadow_eliminate();
        assert_eq!(c.len(), before, "narrow-then-wide must both survive");
    }

    #[test]
    fn action_then_fuses_mod_lists() {
        let a = Action::of(Mod::SetNwDst(ip("1.1.1.1")));
        let b = Action::of(Mod::SetLoc(port(5)));
        let ab = a.then(&b);
        let out = ab.apply(&web_pkt());
        assert_eq!(out.pkt.nw_dst, ip("1.1.1.1"));
        assert_eq!(out.loc, port(5));
    }

    #[test]
    fn parallel_identity_laws() {
        let c = Classifier::from_rules(vec![Rule::unicast(
            m(FieldMatch::TpDst(80)),
            Action::of(Mod::SetLoc(port(2))),
        )]);
        let with_drop = c.parallel(&Classifier::drop_all());
        // Same observable behaviour as c alone.
        let p = web_pkt();
        assert_eq!(with_drop.evaluate(&p), c.evaluate(&p));
    }
}
