//! The policy AST: Pyretic's combinators as Rust values.
//!
//! A policy is a function from a located packet to a *set* of located
//! packets (§3.1 of the paper). The combinators:
//!
//! * `filter(pred)` — pass the packet iff the predicate holds;
//! * `fwd(port)` — move the packet to a port;
//! * `modify(field)` — rewrite a header field;
//! * `p1 + p2` — parallel composition: apply both, union the results;
//! * `p1 >> p2` — sequential composition: feed `p1`'s outputs through `p2`;
//! * `if_(pred, p1, p2)` — branch; the SDX uses this to splice default BGP
//!   forwarding beneath participant policies (§4.1).
//!
//! `Add` and `Shr` are overloaded so policies read like the paper:
//! `(match(dstport=80) >> fwd(B)) + (match(dstport=443) >> fwd(C))` is
//! `(m80 >> fwd(b)) + (m443 >> fwd(c))` in Rust.

use core::ops;

use sdx_net::{Mod, PortId};

use crate::pred::Pred;

/// A packet-processing policy.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Policy {
    /// Pass packets satisfying the predicate, drop the rest.
    Filter(Pred),
    /// Apply a single modification (including `fwd` = set location).
    Mod(Mod),
    /// Parallel composition: union of all sub-policy outputs.
    Parallel(Vec<Policy>),
    /// Sequential composition: left-to-right pipeline.
    Sequential(Vec<Policy>),
    /// `if_(pred, then, else)`.
    IfElse(Pred, Box<Policy>, Box<Policy>),
}

impl Policy {
    /// The identity policy: passes every packet unchanged.
    pub fn id() -> Policy {
        Policy::Filter(Pred::Any)
    }

    /// The drop policy: passes nothing.
    pub fn drop() -> Policy {
        Policy::Filter(Pred::None)
    }

    /// `filter(pred)`.
    pub fn filter(pred: Pred) -> Policy {
        Policy::Filter(pred)
    }

    /// `match(f) >> ...` convenience: a filter on one field test.
    pub fn match_(f: sdx_net::FieldMatch) -> Policy {
        Policy::Filter(Pred::Test(f))
    }

    /// `fwd(port)` — move the packet to `port`.
    pub fn fwd(port: PortId) -> Policy {
        Policy::Mod(Mod::SetLoc(port))
    }

    /// `modify(m)` — rewrite one header field.
    pub fn modify(m: Mod) -> Policy {
        Policy::Mod(m)
    }

    /// `if_(pred, then, else)`.
    pub fn if_(pred: Pred, then: Policy, otherwise: Policy) -> Policy {
        Policy::IfElse(pred, Box::new(then), Box::new(otherwise))
    }

    /// Structural node count — the compile-cost metric reported alongside
    /// the Figure 8 experiment.
    pub fn size(&self) -> usize {
        match self {
            Policy::Filter(p) => p.size(),
            Policy::Mod(_) => 1,
            Policy::Parallel(ps) | Policy::Sequential(ps) => {
                1 + ps.iter().map(Policy::size).sum::<usize>()
            }
            Policy::IfElse(p, a, b) => 1 + p.size() + a.size() + b.size(),
        }
    }

    /// True if this is syntactically the drop policy. (Semantic emptiness
    /// is decided by compiling; this is the cheap check used to skip
    /// composition work, §4.3.1.)
    pub fn is_drop(&self) -> bool {
        matches!(self, Policy::Filter(Pred::None))
    }
}

impl ops::Add for Policy {
    type Output = Policy;
    /// Parallel composition. Flattens nested sums and elides drops, which
    /// keeps the compiler's cross-products small.
    fn add(self, rhs: Policy) -> Policy {
        if self.is_drop() {
            return rhs;
        }
        if rhs.is_drop() {
            return self;
        }
        let mut parts = match self {
            Policy::Parallel(ps) => ps,
            p => vec![p],
        };
        match rhs {
            Policy::Parallel(ps) => parts.extend(ps),
            p => parts.push(p),
        }
        Policy::Parallel(parts)
    }
}

impl ops::Shr for Policy {
    type Output = Policy;
    /// Sequential composition. Flattens nested pipelines; drop annihilates.
    fn shr(self, rhs: Policy) -> Policy {
        if self.is_drop() || rhs.is_drop() {
            return Policy::drop();
        }
        // Identity is a unit for `>>`.
        if self == Policy::id() {
            return rhs;
        }
        if rhs == Policy::id() {
            return self;
        }
        let mut parts = match self {
            Policy::Sequential(ps) => ps,
            p => vec![p],
        };
        match rhs {
            Policy::Sequential(ps) => parts.extend(ps),
            p => parts.push(p),
        }
        Policy::Sequential(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{FieldMatch, ParticipantId};

    fn port(n: u32) -> PortId {
        PortId::Virt(ParticipantId(n))
    }

    #[test]
    fn operators_flatten() {
        let a = Policy::match_(FieldMatch::TpDst(80));
        let b = Policy::fwd(port(1));
        let c = Policy::fwd(port(2));
        match a.clone() + b.clone() + c.clone() {
            Policy::Parallel(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected Parallel, got {other:?}"),
        }
        match a.clone() >> b.clone() >> c.clone() {
            Policy::Sequential(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected Sequential, got {other:?}"),
        }
    }

    #[test]
    fn drop_is_identity_for_plus_and_zero_for_shr() {
        let a = Policy::fwd(port(1));
        assert_eq!(a.clone() + Policy::drop(), a);
        assert_eq!(Policy::drop() + a.clone(), a);
        assert_eq!(a.clone() >> Policy::drop(), Policy::drop());
        assert_eq!(Policy::drop() >> a.clone(), Policy::drop());
    }

    #[test]
    fn id_is_unit_for_shr() {
        let a = Policy::fwd(port(1));
        assert_eq!(a.clone() >> Policy::id(), a);
        assert_eq!(Policy::id() >> a.clone(), a);
    }

    #[test]
    fn size_accounts_structure() {
        let p = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(1)))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(2)));
        assert_eq!(p.size(), 1 + (1 + 2) + (1 + 2));
    }
}
