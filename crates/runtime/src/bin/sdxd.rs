//! `sdxd` — run an SDX daemon on loopback.
//!
//! Binds the BGP, OpenFlow, and telemetry endpoints on ephemeral
//! loopback ports and prints them as one JSON line on stdout, then
//! serves until stdin closes (or a `stop` line arrives). A `reoptimize`
//! line on stdin triggers a scheduled re-optimization. On shutdown a
//! final JSON summary line is printed.
//!
//! The exchange is the paper's four-participant topology (AS 65001..
//! 65004, B with two ports), policy-free with an empty RIB: routes
//! arrive the real way, over BGP sessions.
//!
//! ```text
//! $ sdxd
//! {"bgp":"127.0.0.1:41001","openflow":"127.0.0.1:41002","telemetry":"127.0.0.1:41003"}
//! ```

use std::io::BufRead;

use sdx_bgp::ExportPolicy;
use sdx_core::{ParticipantConfig, SdxController, Sharding};
use sdx_runtime::{daemon, DaemonConfig};

fn main() {
    let mut cfg = DaemonConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--hold" => {
                cfg.hold_time = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--hold <seconds>");
            }
            "--tick-ms" => {
                cfg.tick_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tick-ms <ms>");
            }
            "--coalesce" => {
                cfg.coalesce_max = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--coalesce <n>");
            }
            "--shards" => {
                cfg.sharding = match args.next().as_deref() {
                    Some("auto") => Sharding::Auto,
                    Some(v) => Sharding::Shards(v.parse().expect("--shards <n>|auto")),
                    None => panic!("--shards <n>|auto"),
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: sdxd [--hold <s>] [--tick-ms <ms>] [--coalesce <n>] [--shards <n>|auto]"
                );
                eprintln!("stdin: `reoptimize` triggers a scheduled update; `stop`/EOF shuts down");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut ctl = SdxController::new();
    for (id, asn, ports) in [(1, 65001, 1), (2, 65002, 2), (3, 65003, 1), (4, 65004, 1)] {
        ctl.add_participant(
            ParticipantConfig::new(id, asn, ports),
            ExportPolicy::allow_all(),
        );
    }

    let handle = daemon::start(ctl, cfg).expect("daemon start");
    println!(
        "{{\"bgp\":\"{}\",\"openflow\":\"{}\",\"telemetry\":\"{}\"}}",
        handle.bgp_addr, handle.openflow_addr, handle.telemetry_addr
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match line.trim() {
            "stop" => break,
            "reoptimize" => handle.reoptimize(),
            "" => {}
            other => eprintln!("unknown command: {other}"),
        }
    }

    let report = handle.stop();
    println!(
        "{{\"updates\":{},\"compiles\":{},\"coalesced_bursts\":{},\"batches_streamed\":{}}}",
        report.updates, report.compiles, report.coalesced_bursts, report.batches_streamed
    );
}
