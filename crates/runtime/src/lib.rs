//! # sdx-runtime — the `sdxd` daemon
//!
//! Everything below the controller in this workspace is a library; this
//! crate makes it a *process*. A std-only, dependency-free runtime
//! (structured thread-per-connection with bounded channels) exposes the
//! SDX over three plain-TCP loopback endpoints:
//!
//! * [`daemon`] — the event loop: real BGP sessions framed by
//!   `sdx_bgp::wire` over arbitrary TCP segmentation, socket-liveness
//!   session supervision (keepalives, hold timers, flap damping on TCP
//!   resets), burst coalescing of pending recompiles, the scheduled
//!   update path fanned out over switch channels, graceful drain on
//!   shutdown, and a telemetry endpoint serving the registry + journal
//!   as JSON.
//! * [`channel`] — per-switch OpenFlow channels: bounded send queues
//!   with explicit backpressure, ack barriers, the [`ChannelSink`]
//!   adapter that holds the PR 6 per-wave barrier across the whole
//!   fleet, and the in-repo simulated switch agent.
//! * [`codec`] — the JSON-lines wire format for the typed flow-mod
//!   protocol, shared verbatim by daemon and agent.
//!
//! The `sdxd` binary wraps [`daemon::start`] around the paper's
//! Figure 1 exchange; `repro_daemon_load` (in `sdx-bench`) drives a
//! daemon with loopback load generators and reports updates/sec,
//! coalescing ratio, queue depths, and update→flow-mod latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod codec;
pub mod daemon;

pub use channel::{spawn_agent, AgentHandle, ChannelSink, FlowChannel};
pub use codec::{batch_from_json, batch_to_json, ChannelFrame, CodecError};
pub use daemon::{start, start_with_clock, DaemonConfig, DaemonHandle, DaemonReport, TestPeer};
