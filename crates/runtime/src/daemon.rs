//! `sdxd`: the event-driven SDX daemon.
//!
//! This module turns the in-process controller stack into a long-running
//! process speaking three plain-TCP endpoints on loopback:
//!
//! * **BGP** — participants' border routers connect and run real BGP
//!   sessions: wire-framed OPEN/KEEPALIVE/UPDATE/NOTIFICATION over
//!   partial reads ([`sdx_bgp::wire::StreamDecoder`]), supervised for
//!   hold-timer expiry, keepalive cadence, and flap damping on TCP
//!   resets ([`Supervisor`], generalized from timer-driven to
//!   socket-liveness-driven via `connection_up` / `peer_disconnected`).
//! * **OpenFlow** — switch agents connect and receive the controller's
//!   [`FlowModBatch`] stream over per-channel bounded queues
//!   ([`crate::channel`]); scheduled updates fan out wave-by-wave with
//!   the PR 6 per-wave barrier held across the whole fleet.
//! * **Telemetry** — any connection receives one JSON dump of the
//!   metrics registry + journal and is closed: `nc host port | jq`.
//!
//! ## Threading model
//!
//! Structured thread-per-connection with bounded channels — no reactor,
//! no dependencies. Accept loops and per-peer readers are threads that
//! funnel typed [`Input`]s into one `mpsc` queue; a single event-loop
//! thread owns *all* mutable state (controller, fabric, supervisor,
//! channels), so the control plane needs no locks at all.
//!
//! ## Burst coalescing
//!
//! The event loop drains every queued BGP update (up to
//! [`DaemonConfig::coalesce_max`]) before compiling: N near-simultaneous
//! updates fold into **one** delta compile over the union of their
//! changed prefixes (journalled as `burst_coalesced`). Under overload
//! the queue grows, bursts get bigger, and the coalescing ratio — not
//! the latency tail — absorbs the load; `repro_daemon_load` measures
//! exactly this.
//!
//! ## Shutdown
//!
//! [`DaemonHandle::stop`] sets the stop flag and enqueues a final
//! input. The loop drains a bounded number of already-queued updates,
//! flushes them through one last compile, waits out every OpenFlow
//! barrier (a wave in flight always reaches its barrier — never
//! mid-wave), journals `daemon_stopped`, and joins the service threads.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sdx_bgp::msg::BgpMessage;
use sdx_bgp::wire::{self, StreamDecoder};
use sdx_bgp::{Clock, OpenMessage, Supervisor, SupervisorConfig, SupervisorOutput, SystemClock};
use sdx_core::reconcile::DELTA_BASE;
use sdx_core::schedule::drive_fanout;
use sdx_core::{ScheduleOpts, SdxController, Sharding};
use sdx_net::{Asn, ParticipantId, Prefix, RouterId};
use sdx_openflow::Fabric;
use sdx_telemetry::{Event, SharedRegistry};

use crate::channel::{ChannelSink, FlowChannel};
use crate::codec;

/// Tuning knobs for a daemon instance.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DaemonConfig {
    /// Hold time we offer in our OPEN, seconds.
    pub hold_time: u16,
    /// Maximum BGP messages folded into one compile pass.
    pub coalesce_max: usize,
    /// Per-switch channel queue bound (frames in flight before sends block).
    pub channel_queue: usize,
    /// Supervisor tick cadence (keepalives, hold timers, reconnects), ms.
    pub tick_ms: u64,
    /// Bound on queued messages processed during shutdown drain.
    pub drain_max: usize,
    /// Seed for the supervisor's jittered backoff.
    pub seed: u64,
    /// Session supervision parameters (damping, backoff).
    pub supervisor: SupervisorConfig,
    /// Compile sharding for the coalesced-burst reoptimize path: each
    /// burst recompiles only the shards its updates dirtied (see
    /// `sdx_core::Sharding`). `compile.shard.*` timers and gauges land in
    /// the shared registry and flow out the telemetry endpoint.
    pub sharding: Sharding,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            hold_time: 90,
            coalesce_max: 64,
            channel_queue: 32,
            tick_ms: 50,
            drain_max: 256,
            seed: 7,
            supervisor: SupervisorConfig::default(),
            sharding: Sharding::Off,
        }
    }
}

/// What the daemon did, returned by [`DaemonHandle::stop`]. Carries the
/// controller and fabric back out so tests can oracle-verify the final
/// deployed state against an in-process reference.
pub struct DaemonReport {
    /// BGP UPDATE messages processed.
    pub updates: u64,
    /// Delta compiles run (updates / compiles = coalescing ratio).
    pub compiles: u64,
    /// Compile passes that folded more than one update.
    pub coalesced_bursts: u64,
    /// Flow-mod batches streamed to switch channels.
    pub batches_streamed: u64,
    /// Policy frames received (wire + in-process).
    pub policy_frames: u64,
    /// The controller, in its final state.
    pub ctl: SdxController,
    /// The daemon's driving fabric, in its final state.
    pub fabric: Fabric,
}

/// A running daemon: the four bound endpoints plus control methods.
pub struct DaemonHandle {
    /// Where BGP peers connect.
    pub bgp_addr: SocketAddr,
    /// Where OpenFlow switch agents connect.
    pub openflow_addr: SocketAddr,
    /// Where telemetry snapshots are served.
    pub telemetry_addr: SocketAddr,
    /// Where participants push policy frames (JSON lines, acked).
    pub policy_addr: SocketAddr,
    reg: SharedRegistry,
    tx: Sender<Input>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<DaemonReport>>,
}

impl DaemonHandle {
    /// The daemon's metrics registry (shared; live while it runs).
    pub fn telemetry(&self) -> &SharedRegistry {
        &self.reg
    }

    /// Asks the event loop to run a scheduled re-optimization: overlay
    /// retirement and dependency-ordered waves are streamed to every
    /// connected switch with per-wave fleet barriers.
    pub fn reoptimize(&self) {
        let _ = self.tx.send(Input::Reoptimize);
    }

    /// Injects a policy frame as if it had arrived on the policy
    /// endpoint (no ack transport; validation failures land in the
    /// `daemon.policy_rejected.count` counter and the journal). The
    /// frame rides the same event-loop path as the wire, including
    /// coalescing with any queued BGP burst.
    pub fn push_policy(&self, ops: &[codec::PolicyOpFrame]) {
        let _ = self.tx.send(Input::PolicyFrame {
            line: codec::encode_policy_frame(0, ops),
            writer: None,
        });
    }

    /// Stops the daemon: bounded drain of queued updates, final flush,
    /// all channel barriers taken, `daemon_stopped` journalled. Blocks
    /// until the event loop exits and returns its report.
    pub fn stop(mut self) -> DaemonReport {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.tx.send(Input::Stop);
        self.join
            .take()
            .expect("stop called once")
            .join()
            .expect("daemon event loop panicked")
    }
}

/// Starts a daemon around `ctl` with the system clock. Deploys the
/// controller, binds the three loopback endpoints, and spawns the
/// service threads; returns once all three listeners are live.
pub fn start(ctl: SdxController, cfg: DaemonConfig) -> std::io::Result<DaemonHandle> {
    start_with_clock(ctl, cfg, Arc::new(SystemClock::new()))
}

/// [`start`], but with an injected [`Clock`] — tests drive hold timers
/// and flap damping deterministically with a `MockClock`.
pub fn start_with_clock(
    mut ctl: SdxController,
    cfg: DaemonConfig,
    clock: Arc<dyn Clock>,
) -> std::io::Result<DaemonHandle> {
    let reg = ctl.telemetry.clone();
    ctl.set_sharding(cfg.sharding);
    let mut fabric = ctl
        .deploy()
        .map_err(|e| std::io::Error::other(format!("deploy failed: {e}")))?;
    fabric.enable_batch_log();

    let mut sup = Supervisor::new(cfg.supervisor, cfg.seed).with_telemetry(reg.clone());
    let now = clock.now_ms();
    let peers: Vec<(ParticipantId, Asn)> = ctl
        .compiler
        .participants()
        .values()
        .map(|c| (c.id, c.asn))
        .collect();
    for &(id, _) in &peers {
        let local = OpenMessage {
            version: 4,
            asn: Asn(64512), // the route server's private ASN
            hold_time: cfg.hold_time,
            router_id: RouterId(64512),
        };
        sup.add_peer(id, local, now);
    }

    let bgp = TcpListener::bind("127.0.0.1:0")?;
    let openflow = TcpListener::bind("127.0.0.1:0")?;
    let telemetry = TcpListener::bind("127.0.0.1:0")?;
    let policy = TcpListener::bind("127.0.0.1:0")?;
    let bgp_addr = bgp.local_addr()?;
    let openflow_addr = openflow.local_addr()?;
    let telemetry_addr = telemetry.local_addr()?;
    let policy_addr = policy.local_addr()?;

    let (tx, rx) = std::sync::mpsc::channel::<Input>();
    let stop = Arc::new(AtomicBool::new(false));

    spawn_bgp_acceptor(bgp, tx.clone(), stop.clone());
    spawn_openflow_acceptor(openflow, tx.clone(), stop.clone());
    spawn_telemetry_server(telemetry, reg.clone(), stop.clone());
    spawn_policy_acceptor(policy, tx.clone(), stop.clone());

    reg.record_event(Event::DaemonStarted {
        peers: peers.len(),
        switches: 0,
    });

    let asn_to_pid: BTreeMap<u32, ParticipantId> =
        peers.iter().map(|&(id, asn)| (asn.0, id)).collect();
    let core = EventLoop {
        cfg,
        clock,
        reg: reg.clone(),
        ctl,
        fabric,
        sup,
        rx,
        stop: stop.clone(),
        asn_to_pid,
        unresolved: BTreeMap::new(),
        conn_pid: BTreeMap::new(),
        pid_conn: BTreeMap::new(),
        writers: BTreeMap::new(),
        channels: Vec::new(),
        next_channel: 0,
        last_epoch: 0,
        updates: 0,
        compiles: 0,
        coalesced_bursts: 0,
        batches_streamed: 0,
        policy_frames: 0,
    };
    let join = std::thread::spawn(move || core.run());
    Ok(DaemonHandle {
        bgp_addr,
        openflow_addr,
        telemetry_addr,
        policy_addr,
        reg,
        tx,
        stop,
        join: Some(join),
    })
}

type ConnId = u64;

enum Input {
    PeerConnected {
        conn: ConnId,
        writer: TcpStream,
    },
    PeerMsg {
        conn: ConnId,
        msg: BgpMessage,
        at: Instant,
    },
    PeerClosed {
        conn: ConnId,
    },
    SwitchConnected {
        stream: TcpStream,
    },
    /// One policy frame line from the policy endpoint (or
    /// [`DaemonHandle::push_policy`], with no ack transport). Decoded,
    /// DSL-parsed, and validated by the event loop — the only thread
    /// holding the participant book.
    PolicyFrame {
        line: String,
        writer: Option<TcpStream>,
    },
    Reoptimize,
    Stop,
}

fn spawn_bgp_acceptor(listener: TcpListener, tx: Sender<Input>, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        listener.set_nonblocking(true).expect("nonblocking");
        let mut next_conn: ConnId = 0;
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn = next_conn;
                    next_conn += 1;
                    let _ = stream.set_nodelay(true);
                    let Ok(writer) = stream.try_clone() else {
                        continue;
                    };
                    if tx.send(Input::PeerConnected { conn, writer }).is_err() {
                        return;
                    }
                    spawn_bgp_reader(conn, stream, tx.clone(), stop.clone());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        }
    });
}

/// Per-peer reader: reassembles wire frames across arbitrary TCP
/// segmentation and forwards decoded messages, stamped with their
/// arrival instant (the update→flow-mod latency clock starts here).
fn spawn_bgp_reader(conn: ConnId, stream: TcpStream, tx: Sender<Input>, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut stream = stream;
        let mut dec = StreamDecoder::new();
        let mut buf = [0u8; 4096];
        'read: loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let n = match std::io::Read::read(&mut stream, &mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break,
            };
            dec.push(&buf[..n]);
            loop {
                match dec.next() {
                    Ok(Some(msg)) => {
                        let at = Instant::now();
                        if tx.send(Input::PeerMsg { conn, msg, at }).is_err() {
                            return;
                        }
                    }
                    Ok(None) => break,
                    // Framing is poisoned (bad marker/length): the
                    // transport is garbage, drop it. The event loop
                    // sees a TCP reset and flap-accounts it.
                    Err(_) => {
                        let _ = stream.shutdown(Shutdown::Both);
                        break 'read;
                    }
                }
            }
        }
        let _ = tx.send(Input::PeerClosed { conn });
    });
}

fn spawn_openflow_acceptor(listener: TcpListener, tx: Sender<Input>, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        listener.set_nonblocking(true).expect("nonblocking");
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(false);
                    if tx.send(Input::SwitchConnected { stream }).is_err() {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        }
    });
}

/// Policy endpoint: participants push JSON-line policy frames and read
/// one ack line back per frame. Policy updates deliberately do NOT ride
/// the binary BGP socket — they are a control-plane input of their own,
/// with their own framing, validation, and acks.
fn spawn_policy_acceptor(listener: TcpListener, tx: Sender<Input>, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        listener.set_nonblocking(true).expect("nonblocking");
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(false);
                    spawn_policy_reader(stream, tx.clone(), stop.clone());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        }
    });
}

/// Per-connection policy reader: forwards each line with a writer clone
/// so the event loop can ack after staging (or nack with the typed
/// rejection).
fn spawn_policy_reader(stream: TcpStream, tx: Sender<Input>, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let reader = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut lines = std::io::BufReader::new(reader);
        let mut line = String::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            line.clear();
            match std::io::BufRead::read_line(&mut lines, &mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let writer = stream.try_clone().ok();
                    if tx
                        .send(Input::PolicyFrame {
                            line: line.trim().to_string(),
                            writer,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            }
        }
    });
}

/// One telemetry snapshot (registry + journal, as JSON) per connection,
/// then close — the simplest possible pull protocol.
fn spawn_telemetry_server(listener: TcpListener, reg: SharedRegistry, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        listener.set_nonblocking(true).expect("nonblocking");
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let body = reg.snapshot().to_json_string();
                    let _ = stream.write_all(body.as_bytes());
                    let _ = stream.write_all(b"\n");
                    let _ = stream.shutdown(Shutdown::Both);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        }
    });
}

struct EventLoop {
    cfg: DaemonConfig,
    clock: Arc<dyn Clock>,
    reg: SharedRegistry,
    ctl: SdxController,
    fabric: Fabric,
    sup: Supervisor,
    rx: Receiver<Input>,
    stop: Arc<AtomicBool>,
    asn_to_pid: BTreeMap<u32, ParticipantId>,
    /// Accepted BGP connections that have not yet sent their OPEN.
    unresolved: BTreeMap<ConnId, TcpStream>,
    conn_pid: BTreeMap<ConnId, ParticipantId>,
    pid_conn: BTreeMap<ParticipantId, ConnId>,
    writers: BTreeMap<ParticipantId, TcpStream>,
    channels: Vec<FlowChannel>,
    next_channel: usize,
    last_epoch: u64,
    updates: u64,
    compiles: u64,
    coalesced_bursts: u64,
    batches_streamed: u64,
    policy_frames: u64,
}

impl EventLoop {
    /// Publishes the deployed table's compiled-matcher stats as gauges, so
    /// the telemetry endpoint reports data-plane health (table shape,
    /// index sizes, hit distribution) alongside the control-plane
    /// counters. Called wherever the table image changes: startup deploy,
    /// delta flush, reoptimize.
    fn publish_matcher_stats(&self) {
        let table = self.fabric.switch.table();
        let s = table.matcher_stats();
        self.reg
            .set_gauge("dataplane.table.entries", table.len() as i64);
        self.reg
            .set_gauge("dataplane.matcher.epoch", s.epoch as i64);
        self.reg
            .set_gauge("dataplane.matcher.exact.keys", s.exact_keys as i64);
        self.reg
            .set_gauge("dataplane.matcher.exact.entries", s.exact_entries as i64);
        self.reg
            .set_gauge("dataplane.matcher.trie.prefixes", s.trie_prefixes as i64);
        self.reg
            .set_gauge("dataplane.matcher.trie.entries", s.trie_entries as i64);
        self.reg.set_gauge(
            "dataplane.matcher.residual.entries",
            s.residual_entries as i64,
        );
        self.reg
            .set_gauge("dataplane.matcher.builds", s.builds as i64);
        self.reg
            .set_gauge("dataplane.matcher.approx_bytes", s.approx_bytes as i64);
        self.reg
            .set_gauge("dataplane.matcher.exact.hit.count", s.exact_hits as i64);
        self.reg
            .set_gauge("dataplane.matcher.trie.hit.count", s.trie_hits as i64);
        self.reg.set_gauge(
            "dataplane.matcher.residual.hit.count",
            s.residual_hits as i64,
        );
    }

    fn run(mut self) -> DaemonReport {
        self.publish_matcher_stats();
        let tick = Duration::from_millis(self.cfg.tick_ms.max(1));
        let mut queued: VecDeque<Input> = VecDeque::new();
        let mut last_tick = Instant::now();
        loop {
            let input = if let Some(i) = queued.pop_front() {
                i
            } else {
                match self.rx.recv_timeout(tick) {
                    Ok(i) => i,
                    Err(RecvTimeoutError::Timeout) => {
                        self.tick();
                        last_tick = Instant::now();
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            };
            match input {
                Input::PeerConnected { conn, writer } => {
                    self.unresolved.insert(conn, writer);
                }
                Input::PeerMsg { conn, msg, at } => {
                    // Coalesce: fold every already-queued message —
                    // route updates AND policy frames — into this pass
                    // before compiling once.
                    let mut msgs = vec![(conn, msg, at)];
                    let mut frames = Vec::new();
                    self.drain_burst(&mut msgs, &mut frames, &mut queued);
                    self.handle_burst(msgs, frames);
                }
                Input::PolicyFrame { line, writer } => {
                    let mut msgs = Vec::new();
                    let mut frames = vec![(line, writer)];
                    self.drain_burst(&mut msgs, &mut frames, &mut queued);
                    self.handle_burst(msgs, frames);
                }
                Input::PeerClosed { conn } => self.handle_peer_closed(conn),
                Input::SwitchConnected { stream } => self.handle_switch_connected(stream),
                Input::Reoptimize => self.reoptimize(),
                Input::Stop => {
                    self.shutdown_drain();
                    break;
                }
            }
            // Starvation guard: a continuous message stream must not
            // stop keepalives or hold-timer checks.
            if last_tick.elapsed() >= tick {
                self.tick();
                last_tick = Instant::now();
            }
        }
        self.reg.record_event(Event::DaemonStopped {
            updates: self.updates,
            compiles: self.compiles,
        });
        self.stop.store(true, Ordering::SeqCst);
        for ch in std::mem::take(&mut self.channels) {
            ch.close();
        }
        for (_, w) in std::mem::take(&mut self.writers) {
            let _ = w.shutdown(Shutdown::Both);
        }
        DaemonReport {
            updates: self.updates,
            compiles: self.compiles,
            coalesced_bursts: self.coalesced_bursts,
            batches_streamed: self.batches_streamed,
            policy_frames: self.policy_frames,
            ctl: self.ctl,
            fabric: self.fabric,
        }
    }

    fn tick(&mut self) {
        let now = self.clock.now_ms();
        let out = self.sup.tick(now, &mut self.ctl.rs);
        self.dispatch(out, 0, Vec::new());
    }

    /// Sends a supervisor output's messages and flushes its changed
    /// prefixes through one delta compile.
    fn dispatch(&mut self, out: SupervisorOutput, n_updates: usize, arrivals: Vec<Instant>) {
        self.send_msgs(out.send);
        let changed: BTreeSet<Prefix> = out.changed_prefixes.into_iter().collect();
        self.flush(changed, n_updates, arrivals);
    }

    /// Folds pending route updates and policy frames into one pass,
    /// bounded by `coalesce_max`; anything else goes back on `queued`.
    fn drain_burst(
        &mut self,
        msgs: &mut Vec<(ConnId, BgpMessage, Instant)>,
        frames: &mut Vec<(String, Option<TcpStream>)>,
        queued: &mut VecDeque<Input>,
    ) {
        while msgs.len() + frames.len() < self.cfg.coalesce_max {
            match self.rx.try_recv() {
                Ok(Input::PeerMsg { conn, msg, at }) => msgs.push((conn, msg, at)),
                Ok(Input::PolicyFrame { line, writer }) => frames.push((line, writer)),
                Ok(other) => {
                    queued.push_back(other);
                    break;
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
    }

    /// One coalesced pass: ingest the BGP messages, stage the policy
    /// frames, then compile once. Policy mutations take the policy-aware
    /// recompile (per-(participant, shard) invalidation) which subsumes
    /// any route dirt from the same burst; route-only bursts keep the
    /// prefix-keyed fast path.
    fn handle_burst(
        &mut self,
        msgs: Vec<(ConnId, BgpMessage, Instant)>,
        frames: Vec<(String, Option<TcpStream>)>,
    ) {
        let (changed, n_updates, arrivals) = self.ingest_peer_msgs(msgs);
        let staged = self.stage_policy_frames(frames, n_updates);
        if staged == 0 {
            self.flush(changed, n_updates, arrivals);
            return;
        }
        self.compiles += 1;
        self.reg.inc("daemon.compiles.count");
        if n_updates > 0 {
            self.coalesced_bursts += 1;
            self.reg.record_event(Event::Custom {
                name: "policy_coalesced_with_burst".to_string(),
                detail: format!(
                    "{staged} policy delta(s) compiled with {n_updates} route update(s), \
                     {} changed prefix(es)",
                    changed.len()
                ),
            });
        }
        match self.ctl.reoptimize(&mut self.fabric) {
            Ok(_) => {
                self.stream_drained_batches();
                self.publish_matcher_stats();
                for at in arrivals {
                    self.reg.observe(
                        "daemon.update_to_flowmod_us",
                        at.elapsed().as_micros() as u64,
                    );
                }
            }
            Err(_) => {
                // Rolled back; staged policy stays in the book and the
                // next successful compile converges.
                self.reg.inc("daemon.policy_flush_failed.count");
                let _ = self.fabric.drain_batches();
            }
        }
    }

    /// Stages every policy frame of a burst into the controller's book
    /// (validated, journaled, acked per frame). Returns how many staged.
    fn stage_policy_frames(
        &mut self,
        frames: Vec<(String, Option<TcpStream>)>,
        _n_route_updates: usize,
    ) -> u64 {
        if frames.is_empty() {
            return 0;
        }
        let book: BTreeMap<ParticipantId, Vec<u8>> = self
            .ctl
            .compiler
            .participants()
            .iter()
            .map(|(&p, c)| (p, c.ports.iter().map(|pt| pt.index).collect()))
            .collect();
        let mut staged = 0u64;
        for (line, writer) in frames {
            self.policy_frames += 1;
            self.reg.inc("daemon.policy_frames.count");
            let outcome = self.stage_one_policy_line(&line, &book);
            let (seq, result) = match &outcome {
                Ok(seq) => (*seq, Ok(())),
                Err((seq, e)) => (*seq, Err(e.as_str())),
            };
            if let Err((_, e)) = &outcome {
                self.reg.inc("daemon.policy_rejected.count");
                self.reg.record_event(Event::Custom {
                    name: "policy_frame_rejected".to_string(),
                    detail: e.clone(),
                });
            } else {
                staged += 1;
            }
            if let Some(mut w) = writer {
                let _ = w.write_all(codec::encode_ack(seq, result).as_bytes());
                let _ = w.write_all(b"\n");
            }
        }
        staged
    }

    /// Decodes, DSL-parses, and stages one policy frame line. The typed
    /// failure carries the frame's seq (0 if undecodable) for the nack.
    fn stage_one_policy_line(
        &mut self,
        line: &str,
        book: &BTreeMap<ParticipantId, Vec<u8>>,
    ) -> Result<u64, (u64, String)> {
        use sdx_policy::{parse_policy, PolicyDelta, PolicyScope};
        let (seq, ops) = codec::decode_policy_frame(line).map_err(|e| (0, e.to_string()))?;
        let mut delta = PolicyDelta::new();
        for op in ops {
            let policy = match &op.policy {
                Some(dsl) => {
                    let resolver = sdx_core::vswitch::resolver_for(op.participant, book);
                    Some(parse_policy(dsl, &resolver).map_err(|e| (seq, e.to_string()))?)
                }
                None => None,
            };
            delta = match (op.op.as_str(), op.scope, policy) {
                ("retract", PolicyScope::Outbound, _) => delta.retract_outbound(op.participant),
                ("retract", PolicyScope::Inbound, _) => delta.retract_inbound(op.participant),
                ("install", PolicyScope::Outbound, Some(p)) => {
                    delta.install_outbound(op.participant, p)
                }
                ("replace", PolicyScope::Outbound, Some(p)) => {
                    delta.replace_outbound(op.participant, p)
                }
                ("install", PolicyScope::Inbound, Some(p)) => {
                    delta.install_inbound(op.participant, p)
                }
                ("replace", PolicyScope::Inbound, Some(p)) => {
                    delta.replace_inbound(op.participant, p)
                }
                // decode_policy_frame guarantees op kind and body shape.
                _ => unreachable!("codec admitted a malformed policy op"),
            };
        }
        self.ctl
            .stage_policy_delta(&delta)
            .map_err(|e| (seq, e.to_string()))?;
        Ok(seq)
    }

    fn handle_peer_msgs(&mut self, msgs: Vec<(ConnId, BgpMessage, Instant)>) {
        let (changed, n_updates, arrivals) = self.ingest_peer_msgs(msgs);
        self.flush(changed, n_updates, arrivals);
    }

    /// BGP ingestion only: answers protocol messages and returns the
    /// changed prefixes for the caller to compile.
    fn ingest_peer_msgs(
        &mut self,
        msgs: Vec<(ConnId, BgpMessage, Instant)>,
    ) -> (BTreeSet<Prefix>, usize, Vec<Instant>) {
        let now = self.clock.now_ms();
        let mut changed: BTreeSet<Prefix> = BTreeSet::new();
        let mut sends: Vec<(ParticipantId, BgpMessage)> = Vec::new();
        let mut n_updates = 0usize;
        let mut arrivals: Vec<Instant> = Vec::new();
        for (conn, msg, at) in msgs {
            if let Some(&pid) = self.conn_pid.get(&conn) {
                if matches!(msg, BgpMessage::Update(_)) {
                    n_updates += 1;
                    arrivals.push(at);
                    self.updates += 1;
                    self.reg.inc("daemon.updates.count");
                }
                let out = self.sup.handle_message(now, pid, msg, &mut self.ctl.rs);
                sends.extend(out.send);
                changed.extend(out.changed_prefixes);
            } else if let BgpMessage::Open(open) = msg {
                let (s, c) = self.resolve_peer(conn, open, now);
                sends.extend(s);
                changed.extend(c);
            } else {
                // Protocol violation: traffic before OPEN on an
                // unresolved connection. Drop the transport.
                if let Some(stream) = self.unresolved.remove(&conn) {
                    self.reg.inc("daemon.preopen_garbage.count");
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
        self.send_msgs(sends);
        (changed, n_updates, arrivals)
    }

    /// First OPEN on a new connection: map it to a participant by ASN
    /// and splice the transport into the supervised session.
    fn resolve_peer(
        &mut self,
        conn: ConnId,
        open: OpenMessage,
        now: u64,
    ) -> (Vec<(ParticipantId, BgpMessage)>, Vec<Prefix>) {
        let Some(stream) = self.unresolved.remove(&conn) else {
            return (Vec::new(), Vec::new());
        };
        let Some(&pid) = self.asn_to_pid.get(&open.asn.0) else {
            self.reg.inc("daemon.unknown_peer.count");
            let _ = stream.shutdown(Shutdown::Both);
            return (Vec::new(), Vec::new());
        };
        // A reconnect replaces any previous transport for this peer.
        if let Some(old_conn) = self.pid_conn.insert(pid, conn) {
            self.conn_pid.remove(&old_conn);
        }
        self.conn_pid.insert(conn, pid);
        self.writers.insert(pid, stream);
        let mut up = self.sup.connection_up(now, pid, &mut self.ctl.rs);
        let stepped = self
            .sup
            .handle_message(now, pid, BgpMessage::Open(open), &mut self.ctl.rs);
        up.send.extend(stepped.send);
        let mut changed = up.changed_prefixes;
        changed.extend(stepped.changed_prefixes);
        (up.send, changed)
    }

    fn handle_peer_closed(&mut self, conn: ConnId) {
        if self.unresolved.remove(&conn).is_some() {
            return;
        }
        let Some(pid) = self.conn_pid.remove(&conn) else {
            return;
        };
        // Only tear the session down if this connection is still the
        // peer's current transport (not already replaced by a reconnect).
        if self.pid_conn.get(&pid) != Some(&conn) {
            return;
        }
        self.pid_conn.remove(&pid);
        self.writers.remove(&pid);
        let now = self.clock.now_ms();
        let out = self.sup.peer_disconnected(now, pid, &mut self.ctl.rs);
        self.dispatch(out, 0, Vec::new());
    }

    fn send_msgs(&mut self, msgs: Vec<(ParticipantId, BgpMessage)>) {
        for (pid, msg) in msgs {
            let Some(w) = self.writers.get_mut(&pid) else {
                continue; // no live transport; the FSM will re-offer
            };
            let bytes = wire::encode(&msg);
            if w.write_all(&bytes).is_err() {
                // The reader thread will observe the dead transport and
                // report PeerClosed; nothing to do here.
            }
        }
    }

    /// One delta compile over the union of a burst's changed prefixes,
    /// then stream the resulting batches to every switch channel.
    fn flush(&mut self, changed: BTreeSet<Prefix>, n_updates: usize, arrivals: Vec<Instant>) {
        if changed.is_empty() {
            return;
        }
        let prefixes: Vec<Prefix> = changed.into_iter().collect();
        if n_updates > 1 {
            self.coalesced_bursts += 1;
            self.reg.record_event(Event::BurstCoalesced {
                updates: n_updates,
                prefixes: prefixes.len(),
            });
        }
        self.reg
            .observe("daemon.coalesce.updates", n_updates.max(1) as u64);
        self.compiles += 1;
        self.reg.inc("daemon.compiles.count");
        match self.ctl.apply_changed_prefixes(&prefixes, &mut self.fabric) {
            Ok(_delta) => {
                self.stream_drained_batches();
                self.publish_matcher_stats();
                for at in arrivals {
                    self.reg.observe(
                        "daemon.update_to_flowmod_us",
                        at.elapsed().as_micros() as u64,
                    );
                }
            }
            Err(_) => {
                // The delta transaction rolled everything back (and the
                // batch log with it): nothing reached the wire.
                self.reg.inc("daemon.fastpath_failed.count");
            }
        }
    }

    /// Streams every batch the fabric logged since the last drain to all
    /// connected switch channels, then takes the fleet barrier.
    fn stream_drained_batches(&mut self) {
        let batches = self.fabric.drain_batches();
        if batches.is_empty() || self.channels.is_empty() {
            return;
        }
        let mut dead: Vec<usize> = Vec::new();
        for b in &batches {
            self.last_epoch = b.epoch;
            self.batches_streamed += 1;
            self.reg.inc("daemon.batches_streamed.count");
            for (i, ch) in self.channels.iter_mut().enumerate() {
                if !dead.contains(&i) && ch.send_batch(b).is_err() {
                    dead.push(i);
                }
            }
        }
        for (i, ch) in self.channels.iter_mut().enumerate() {
            if !dead.contains(&i) && ch.barrier().is_err() {
                dead.push(i);
            }
        }
        self.reap_channels(dead);
    }

    fn reap_channels(&mut self, mut dead: Vec<usize>) {
        if dead.is_empty() {
            return;
        }
        dead.sort_unstable();
        for i in dead.into_iter().rev() {
            let ch = self.channels.remove(i);
            self.reg.inc("daemon.channel_lost.count");
            ch.close();
        }
    }

    /// A switch agent connected: bring its empty table up to the current
    /// image with one sync frame, then admit it to the fleet.
    fn handle_switch_connected(&mut self, stream: TcpStream) {
        let id = self.next_channel;
        self.next_channel += 1;
        let Ok(mut ch) = FlowChannel::new(id, stream, self.cfg.channel_queue, self.reg.clone())
        else {
            return;
        };
        let image = codec::sync_batch(self.fabric.switch.table(), self.last_epoch);
        if ch.send_sync(&image).is_err() || ch.barrier().is_err() {
            self.reg.inc("daemon.channel_lost.count");
            ch.close();
            return;
        }
        self.reg.inc("daemon.switch_connected.count");
        self.channels.push(ch);
    }

    /// Full-state resynchronization of every agent — recovery after a
    /// failed scheduled update may have left agents ahead of (or split
    /// from) the driving fabric.
    fn resync_agents(&mut self) {
        let image = codec::sync_batch(self.fabric.switch.table(), self.last_epoch);
        let mut dead: Vec<usize> = Vec::new();
        for (i, ch) in self.channels.iter_mut().enumerate() {
            if ch.send_sync(&image).is_err() || ch.barrier().is_err() {
                dead.push(i);
            }
        }
        self.reg.inc("daemon.resync.count");
        self.reap_channels(dead);
    }

    /// The scheduled path over sockets: retire overlays on the agents
    /// (the one table mutation `prepare_scheduled` performs outside the
    /// flow-mod protocol), then drive the planned waves through the
    /// local fabric *and* the channel fleet with per-wave barriers.
    fn reoptimize(&mut self) {
        let had_overlays = self
            .fabric
            .switch
            .table()
            .entries()
            .iter()
            .any(|e| e.priority >= DELTA_BASE);
        let t0 = Instant::now();
        let prepared = match self.ctl.prepare_scheduled(&mut self.fabric) {
            Ok(p) => p,
            Err(_) => {
                // Rolled back to the pre-call state; agents untouched.
                self.reg.inc("daemon.reoptimize_failed.count");
                let _ = self.fabric.drain_batches();
                return;
            }
        };
        let mut ok = true;
        if had_overlays {
            // `prepare_scheduled` retired every fast-path overlay from
            // the local table (the one un-scheduled mutation of an
            // update). Agents take the same step as a sync frame of the
            // post-retirement table — identical end state, and O(base)
            // instead of one delete per retired overlay rule, which
            // matters after a long burst run.
            let sync = codec::sync_batch(self.fabric.switch.table(), self.last_epoch);
            let mut dead: Vec<usize> = Vec::new();
            for (i, ch) in self.channels.iter_mut().enumerate() {
                if ch.send_sync(&sync).is_err() || ch.barrier().is_err() {
                    dead.push(i);
                }
            }
            ok = dead.is_empty();
            self.reap_channels(dead);
        }
        let opts = ScheduleOpts::default();
        let mut channels = std::mem::take(&mut self.channels);
        let outcome = {
            let mut sink = ChannelSink::new(&mut channels, self.reg.clone());
            drive_fanout(
                &prepared.plan,
                &mut self.fabric,
                &mut self.ctl.faults,
                &self.reg,
                &opts,
                None,
                Some(&mut sink),
            )
        };
        self.channels = channels;
        // The sink already carried every wave; the local batch log is a
        // duplicate of what was streamed.
        let streamed = self.fabric.drain_batches().len() as u64;
        self.batches_streamed += streamed;
        self.reg.add("daemon.batches_streamed.count", streamed);
        match outcome {
            Ok(_report) if ok => {
                self.ctl
                    .finish_scheduled(&mut self.fabric, prepared, t0.elapsed());
            }
            _ => {
                // Parked mid-update (retry exhaustion) or a channel
                // failed its wave: put every agent back on exactly the
                // driving fabric's table, whatever state that is.
                self.reg.inc("daemon.reoptimize_failed.count");
                self.resync_agents();
            }
        }
        self.publish_matcher_stats();
    }

    /// Bounded shutdown drain: flush what is already queued (never
    /// abandoning an in-flight wave short of its barrier), then let
    /// `run` journal `daemon_stopped`.
    fn shutdown_drain(&mut self) {
        let mut msgs: Vec<(ConnId, BgpMessage, Instant)> = Vec::new();
        while msgs.len() < self.cfg.drain_max {
            match self.rx.try_recv() {
                Ok(Input::PeerMsg { conn, msg, at }) => msgs.push((conn, msg, at)),
                Ok(_) => continue, // connects/reoptimizes are moot now
                Err(_) => break,
            }
        }
        if !msgs.is_empty() {
            self.handle_peer_msgs(msgs);
        }
        // Every queued frame reaches its barrier before we exit.
        let mut dead: Vec<usize> = Vec::new();
        for (i, ch) in self.channels.iter_mut().enumerate() {
            if ch.barrier().is_err() {
                dead.push(i);
            }
        }
        self.reap_channels(dead);
    }
}

/// A wire-level loopback BGP peer for tests and load generators: runs
/// the participant's side of the handshake on a real socket and then
/// replays UPDATE messages.
pub struct TestPeer {
    stream: TcpStream,
    dec: StreamDecoder,
    buf: Vec<u8>,
}

impl TestPeer {
    /// Connects to `addr` and completes the BGP handshake as `asn`:
    /// sends OPEN, waits for the daemon's OPEN and KEEPALIVE, answers
    /// with KEEPALIVE (driving the daemon's session to Established).
    pub fn establish(addr: SocketAddr, asn: u32, hold_time: u16) -> std::io::Result<TestPeer> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut peer = TestPeer {
            stream,
            dec: StreamDecoder::new(),
            buf: vec![0u8; 4096],
        };
        peer.send(&BgpMessage::Open(OpenMessage {
            version: 4,
            asn: Asn(asn),
            hold_time,
            router_id: RouterId(asn),
        }))?;
        // Expect our peer's OPEN then its KEEPALIVE (order guaranteed:
        // one TCP stream).
        let m1 = peer.recv()?;
        let m2 = peer.recv()?;
        if !matches!(m1, BgpMessage::Open(_)) || !matches!(m2, BgpMessage::Keepalive) {
            return Err(std::io::Error::other(format!(
                "unexpected handshake: {m1:?} then {m2:?}"
            )));
        }
        peer.send(&BgpMessage::Keepalive)?;
        Ok(peer)
    }

    /// Sends one message.
    pub fn send(&mut self, msg: &BgpMessage) -> std::io::Result<()> {
        self.stream.write_all(&wire::encode(msg))
    }

    /// Blocks until one full message arrives.
    pub fn recv(&mut self) -> std::io::Result<BgpMessage> {
        loop {
            match self.dec.next() {
                Ok(Some(m)) => return Ok(m),
                Ok(None) => {}
                Err(e) => return Err(std::io::Error::other(format!("wire error: {e:?}"))),
            }
            let n = std::io::Read::read(&mut self.stream, &mut self.buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed",
                ));
            }
            self.dec.push(&self.buf[..n]);
        }
    }

    /// Closes the transport abruptly (models a TCP reset: the daemon's
    /// supervisor flap-accounts it).
    pub fn drop_connection(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
