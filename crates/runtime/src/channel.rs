//! Per-switch OpenFlow channels: bounded send queues, explicit
//! backpressure, and ack barriers.
//!
//! Each connected switch agent gets one [`FlowChannel`]: a bounded
//! in-memory queue drained by a dedicated writer thread, plus an ack
//! reader that consumes the agent's one-line replies. Sending blocks
//! when the queue is full — backpressure is explicit, never silent
//! drop — and [`FlowChannel::barrier`] waits until every outstanding
//! frame has been acknowledged, surfacing the first agent rejection.
//!
//! [`ChannelSink`] adapts a fleet of channels to the scheduler's
//! [`WaveSink`]: a wave is sent to *every* channel before any barrier
//! is taken, so the *switches apply concurrently* while the per-wave
//! barrier (all acks in) is still enforced before the next wave —
//! exactly the PR 6 safety argument, now across sockets.
//!
//! The in-repo simulated agent ([`spawn_agent`]) is the other end:
//! it wraps [`Fabric::apply_flowmods`] behind the same wire format a
//! hardware agent would speak, and hands its final fabric back on
//! disconnect so tests can assert byte-level table equality.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

use sdx_core::WaveSink;
use sdx_openflow::flowmod::FlowModBatch;
use sdx_openflow::Fabric;
use sdx_telemetry::SharedRegistry;

use crate::codec;

/// How long a barrier waits for a single ack before declaring the agent
/// dead. Generous: an agent that is alive acks in microseconds.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);

type AckEvent = (u64, Result<(), String>);

/// One daemon-side OpenFlow channel to a connected switch agent.
pub struct FlowChannel {
    id: usize,
    tx: Option<SyncSender<String>>,
    acks: Receiver<AckEvent>,
    stream: TcpStream,
    writer: Option<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
    next_seq: u64,
    acked: u64,
    reg: SharedRegistry,
}

impl FlowChannel {
    /// Wraps an accepted agent connection. `queue` bounds the send
    /// queue: once `queue` frames are in flight to the writer thread,
    /// further sends block (the daemon's explicit backpressure).
    pub fn new(
        id: usize,
        stream: TcpStream,
        queue: usize,
        reg: SharedRegistry,
    ) -> std::io::Result<FlowChannel> {
        let (tx, rx) = sync_channel::<String>(queue.max(1));
        let (ack_tx, ack_rx) = std::sync::mpsc::channel::<AckEvent>();
        let write_stream = stream.try_clone()?;
        let read_stream = stream.try_clone()?;
        let writer = std::thread::spawn(move || {
            let mut w = BufWriter::new(write_stream);
            for line in rx {
                if w.write_all(line.as_bytes()).is_err()
                    || w.write_all(b"\n").is_err()
                    || w.flush().is_err()
                {
                    break;
                }
            }
        });
        let reader = std::thread::spawn(move || {
            let r = BufReader::new(read_stream);
            for line in r.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(ack) = codec::decode_ack(&line) else {
                    break;
                };
                if ack_tx.send(ack).is_err() {
                    break;
                }
            }
            // Dropping ack_tx disconnects the receiver: barriers fail
            // fast instead of waiting out the timeout.
        });
        Ok(FlowChannel {
            id,
            tx: Some(tx),
            acks: ack_rx,
            stream,
            writer: Some(writer),
            reader: Some(reader),
            next_seq: 0,
            acked: 0,
            reg,
        })
    }

    /// The channel's index (assigned in connection order).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Frames sent but not yet acknowledged.
    pub fn outstanding(&self) -> u64 {
        self.next_seq - self.acked
    }

    fn record_depth(&self) {
        self.reg
            .set_gauge("daemon.channel.queue_depth", self.outstanding() as i64);
        self.reg
            .observe("daemon.channel.depth_samples", self.outstanding());
    }

    fn send_line(&mut self, line: String) -> Result<u64, String> {
        let seq = self.next_seq;
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| format!("switch channel {} already closed", self.id))?;
        // Blocks while the queue is full: backpressure propagates to
        // the event loop, which keeps coalescing instead of piling up.
        tx.send(line)
            .map_err(|_| format!("switch channel {} writer gone", self.id))?;
        self.next_seq += 1;
        self.record_depth();
        Ok(seq)
    }

    /// Queues a batch frame; returns its sequence number.
    pub fn send_batch(&mut self, batch: &FlowModBatch) -> Result<u64, String> {
        let line = codec::encode_apply(self.next_seq, batch);
        self.send_line(line)
    }

    /// Queues a full-table sync frame; returns its sequence number.
    pub fn send_sync(&mut self, batch: &FlowModBatch) -> Result<u64, String> {
        let line = codec::encode_sync(self.next_seq, batch);
        self.send_line(line)
    }

    /// Waits until every queued frame has been acknowledged. Returns the
    /// first agent rejection or transport failure; on `Ok` the agent's
    /// table has applied everything sent so far.
    pub fn barrier(&mut self) -> Result<(), String> {
        let mut first_err: Option<String> = None;
        while self.acked < self.next_seq {
            match self.acks.recv_timeout(ACK_TIMEOUT) {
                Ok((seq, Ok(()))) => {
                    self.acked += 1;
                    debug_assert!(seq < self.next_seq);
                }
                Ok((seq, Err(e))) => {
                    self.acked += 1;
                    first_err
                        .get_or_insert(format!("switch {} rejected frame {}: {}", self.id, seq, e));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    first_err.get_or_insert(format!("switch {} disconnected", self.id));
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {
                    first_err.get_or_insert(format!("switch {} ack timeout", self.id));
                    break;
                }
            }
        }
        self.record_depth();
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Closes the channel: flushes the writer, shuts the socket down,
    /// and joins both service threads.
    pub fn close(mut self) {
        self.tx = None; // writer drains its queue, then exits
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

/// Adapts the channel fleet to the scheduler's per-wave contract: send
/// to every switch, then barrier every switch. See the module docs.
pub struct ChannelSink<'a> {
    channels: &'a mut Vec<FlowChannel>,
    reg: SharedRegistry,
}

impl<'a> ChannelSink<'a> {
    /// A sink over `channels`, instrumenting into `reg`.
    pub fn new(channels: &'a mut Vec<FlowChannel>, reg: SharedRegistry) -> Self {
        ChannelSink { channels, reg }
    }
}

impl WaveSink for ChannelSink<'_> {
    fn apply_wave(
        &mut self,
        wave: usize,
        total: usize,
        batch: &FlowModBatch,
    ) -> Result<(), String> {
        // Send everywhere first: all switches work on the wave
        // concurrently...
        for ch in self.channels.iter_mut() {
            ch.send_batch(batch)
                .map_err(|e| format!("wave {wave}/{total}: {e}"))?;
        }
        // ...then take every barrier, draining acks even after a
        // failure so the fleet state stays accounted for.
        let mut first_err: Option<String> = None;
        for ch in self.channels.iter_mut() {
            if let Err(e) = ch.barrier() {
                first_err.get_or_insert(format!("wave {wave}/{total}: {e}"));
            }
        }
        self.reg.inc("daemon.waves_streamed.count");
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// A running in-repo switch agent (see [`spawn_agent`]).
pub struct AgentHandle {
    join: JoinHandle<Fabric>,
}

impl AgentHandle {
    /// Waits for the daemon to drop the connection and returns the
    /// agent's final fabric.
    pub fn join(self) -> Fabric {
        self.join.join().expect("agent thread panicked")
    }
}

/// Connects a simulated switch agent to the daemon's OpenFlow endpoint
/// and services it on a background thread until the daemon disconnects.
///
/// The agent is deliberately dumb: decode a frame, apply it through
/// [`Fabric::apply_flowmods`] (or clear-then-apply for a sync frame),
/// ack with the result. All sequencing, retry, and safety logic lives
/// daemon-side — the agent models a switch, not a controller.
pub fn spawn_agent(addr: SocketAddr) -> std::io::Result<AgentHandle> {
    let stream = TcpStream::connect(addr)?;
    let read_stream = stream.try_clone()?;
    let join = std::thread::spawn(move || run_agent(stream, read_stream));
    Ok(AgentHandle { join })
}

fn run_agent(stream: TcpStream, read_stream: TcpStream) -> Fabric {
    let mut fabric = Fabric::new();
    let mut w = BufWriter::new(stream);
    let r = BufReader::new(read_stream);
    for line in r.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let ack = match codec::decode_frame(&line) {
            Ok(frame) => {
                let seq = frame.seq();
                let result = match frame {
                    codec::ChannelFrame::Apply { batch, .. } => {
                        fabric.apply_flowmods(&batch).map(|_| ())
                    }
                    codec::ChannelFrame::Sync { batch, .. } => {
                        fabric.switch.table_mut().clear();
                        fabric.apply_flowmods(&batch).map(|_| ())
                    }
                };
                match result {
                    Ok(()) => codec::encode_ack(seq, Ok(())),
                    Err(e) => codec::encode_ack(seq, Err(&e.to_string())),
                }
            }
            // An undecodable frame is unanswerable (no seq): drop the
            // connection so the daemon's barrier fails loudly.
            Err(_) => break,
        };
        if w.write_all(ack.as_bytes()).is_err() || w.write_all(b"\n").is_err() || w.flush().is_err()
        {
            break;
        }
    }
    fabric
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{FieldMatch, HeaderMatch};
    use sdx_openflow::flowmod::FlowMod;
    use sdx_openflow::table::FlowEntry;
    use std::net::TcpListener;

    fn reg() -> SharedRegistry {
        SharedRegistry::new()
    }

    fn add(priority: u32, port: u16) -> FlowMod {
        FlowMod::Add(FlowEntry::new(
            priority,
            HeaderMatch::of(FieldMatch::TpDst(port)),
            vec![vec![]],
        ))
    }

    fn pair(queue: usize) -> (FlowChannel, AgentHandle) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let agent = spawn_agent(addr).expect("connect");
        let (stream, _) = listener.accept().expect("accept");
        let ch = FlowChannel::new(0, stream, queue, reg()).expect("channel");
        (ch, agent)
    }

    #[test]
    fn batches_reach_the_agent_and_barrier_waits_for_acks() {
        let (mut ch, agent) = pair(8);
        let mut b1 = FlowModBatch::new(1);
        b1.push(add(10, 80));
        let mut b2 = FlowModBatch::new(2);
        b2.push(add(20, 443));
        ch.send_batch(&b1).expect("send");
        ch.send_batch(&b2).expect("send");
        ch.barrier().expect("both acked");
        assert_eq!(ch.outstanding(), 0);
        ch.close();
        let fabric = agent.join();
        assert_eq!(fabric.switch.table().len(), 2);
    }

    #[test]
    fn agent_rejections_surface_at_the_barrier() {
        let (mut ch, agent) = pair(8);
        let mut b = FlowModBatch::new(1);
        b.push(add(10, 80));
        ch.send_batch(&b).expect("send");
        // The same (priority, pattern) again: a duplicate install the
        // agent's table must reject.
        ch.send_batch(&b).expect("send");
        let err = ch.barrier().expect_err("second batch rejected");
        assert!(err.contains("rejected frame 1"), "err: {err}");
        ch.close();
        let fabric = agent.join();
        // The rejection was atomic: the first batch landed, the second
        // left no trace.
        assert_eq!(fabric.switch.table().len(), 1);
    }

    #[test]
    fn sync_frame_resets_the_agent_table() {
        let (mut ch, agent) = pair(8);
        let mut b = FlowModBatch::new(1);
        b.push(add(10, 80));
        b.push(add(11, 81));
        ch.send_batch(&b).expect("send");
        let mut image = FlowModBatch::new(2);
        image.push(add(50, 8080));
        ch.send_sync(&image).expect("send");
        ch.barrier().expect("acked");
        ch.close();
        let fabric = agent.join();
        let table = fabric.switch.table();
        assert_eq!(table.len(), 1);
        assert_eq!(table.entries()[0].priority, 50);
    }

    #[test]
    fn channel_sink_fans_a_wave_to_every_agent() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let agents: Vec<AgentHandle> = (0..3)
            .map(|_| spawn_agent(addr).expect("connect"))
            .collect();
        let mut channels: Vec<FlowChannel> = (0..3)
            .map(|i| {
                let (stream, _) = listener.accept().expect("accept");
                FlowChannel::new(i, stream, 4, reg()).expect("channel")
            })
            .collect();
        let mut b = FlowModBatch::new(1);
        b.push(add(10, 80));
        let r = reg();
        let mut sink = ChannelSink::new(&mut channels, r.clone());
        sink.apply_wave(0, 1, &b).expect("wave applies everywhere");
        for ch in channels {
            ch.close();
        }
        for agent in agents {
            assert_eq!(agent.join().switch.table().len(), 1);
        }
        assert_eq!(
            r.snapshot().counters.get("daemon.waves_streamed.count"),
            Some(&1)
        );
    }
}
