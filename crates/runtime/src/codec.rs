//! The OpenFlow-channel wire format: JSON-lines framing of the typed
//! flow-mod protocol.
//!
//! The daemon streams [`FlowModBatch`]es to switch agents as one JSON
//! object per line, and the agent answers each with a one-line ack.
//! JSON (via `sdx_telemetry::Json`, the workspace's only JSON
//! implementation) keeps the channel debuggable with `nc` while staying
//! std-only; the framing is newline-delimited so partial reads are
//! handled by any buffered line reader.
//!
//! Three frame kinds flow daemon → agent:
//!
//! * `{"seq":N,"batch":{...}}` — apply this batch to the current table.
//! * `{"seq":N,"sync":{...}}`  — clear the table, then apply (full-state
//!   resynchronization: first contact, or recovery after a failed
//!   scheduled update left the agent ahead of the controller).
//!
//! and one agent → daemon:
//!
//! * `{"seq":N,"ok":true}` / `{"seq":N,"ok":false,"error":"..."}`.
//!
//! Every encoder here has a matching decoder and the pair round-trips
//! exactly (see the tests); the daemon and the in-repo simulated agent
//! share this module, so the bytes on the wire are the single source of
//! truth for both ends.

use sdx_net::{
    EtherType, FieldMatch, HeaderMatch, IpProto, Ipv4Addr, MacAddr, Mod, ParticipantId, PortId,
    Prefix,
};
use sdx_openflow::flowmod::{FlowMod, FlowModBatch};
use sdx_openflow::table::{FlowEntry, FlowTable};
use sdx_telemetry::Json;

/// A malformed frame: the offending context and what was wrong.
#[derive(Clone, PartialEq, Debug)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

fn key(k: &str, v: Json) -> (String, Json) {
    (k.to_string(), v)
}

fn int(v: impl Into<i128>) -> Json {
    Json::Int(v.into())
}

fn get_u64(j: &Json, k: &str) -> Result<u64, CodecError> {
    j.get(k)
        .and_then(Json::as_u64)
        .ok_or_else(|| CodecError(format!("missing or non-integer field `{k}`")))
}

// ---------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------

fn port_to_json(p: PortId) -> Json {
    match p {
        PortId::Phys(pid, iface) => Json::obj([key("phys", int(pid.0)), key("if", int(iface))]),
        PortId::Virt(pid) => Json::obj([key("virt", int(pid.0))]),
    }
}

fn port_from_json(j: &Json) -> Result<PortId, CodecError> {
    if let Some(p) = j.get("virt").and_then(Json::as_u64) {
        return Ok(PortId::Virt(ParticipantId(p as u32)));
    }
    let pid = get_u64(j, "phys")?;
    let iface = get_u64(j, "if")?;
    Ok(PortId::Phys(ParticipantId(pid as u32), iface as u8))
}

fn mac_to_json(m: MacAddr) -> Json {
    Json::Arr(m.0.iter().map(|&b| int(b)).collect())
}

fn mac_from_json(j: &Json) -> Result<MacAddr, CodecError> {
    let arr = j
        .as_arr()
        .ok_or_else(|| CodecError("mac: not an array".into()))?;
    if arr.len() != 6 {
        return err(format!("mac: {} octets", arr.len()));
    }
    let mut m = [0u8; 6];
    for (i, b) in arr.iter().enumerate() {
        m[i] = b
            .as_u64()
            .ok_or_else(|| CodecError("mac: non-integer octet".into()))? as u8;
    }
    Ok(MacAddr(m))
}

fn prefix_to_json(p: Prefix) -> Json {
    Json::obj([key("addr", int(p.addr().0)), key("len", int(p.len()))])
}

fn prefix_from_json(j: &Json) -> Result<Prefix, CodecError> {
    let addr = get_u64(j, "addr")? as u32;
    let len = get_u64(j, "len")? as u8;
    if len > 32 {
        return err(format!("prefix: length {len}"));
    }
    Ok(Prefix::new(Ipv4Addr(addr), len))
}

// ---------------------------------------------------------------------
// HeaderMatch / Mod
// ---------------------------------------------------------------------

fn pattern_to_json(m: &HeaderMatch) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    if let Some(p) = m.in_port {
        fields.push(key("in_port", port_to_json(p)));
    }
    if let Some(mac) = m.dl_src {
        fields.push(key("dl_src", mac_to_json(mac)));
    }
    if let Some(mac) = m.dl_dst {
        fields.push(key("dl_dst", mac_to_json(mac)));
    }
    if let Some(t) = m.eth_type {
        fields.push(key("eth_type", int(t.value())));
    }
    if let Some(p) = m.nw_src {
        fields.push(key("nw_src", prefix_to_json(p)));
    }
    if let Some(p) = m.nw_dst {
        fields.push(key("nw_dst", prefix_to_json(p)));
    }
    if let Some(p) = m.nw_proto {
        fields.push(key("nw_proto", int(p.value())));
    }
    if let Some(p) = m.tp_src {
        fields.push(key("tp_src", int(p)));
    }
    if let Some(p) = m.tp_dst {
        fields.push(key("tp_dst", int(p)));
    }
    Json::Obj(fields)
}

fn pattern_from_json(j: &Json) -> Result<HeaderMatch, CodecError> {
    let mut m = HeaderMatch::any();
    if let Some(p) = j.get("in_port") {
        m.set(FieldMatch::InPort(port_from_json(p)?));
    }
    if let Some(v) = j.get("dl_src") {
        m.set(FieldMatch::DlSrc(mac_from_json(v)?));
    }
    if let Some(v) = j.get("dl_dst") {
        m.set(FieldMatch::DlDst(mac_from_json(v)?));
    }
    if let Some(v) = j.get("eth_type") {
        let v = v
            .as_u64()
            .ok_or_else(|| CodecError("eth_type: not an int".into()))?;
        m.set(FieldMatch::EthType(EtherType::from_value(v as u16)));
    }
    if let Some(v) = j.get("nw_src") {
        m.set(FieldMatch::NwSrc(prefix_from_json(v)?));
    }
    if let Some(v) = j.get("nw_dst") {
        m.set(FieldMatch::NwDst(prefix_from_json(v)?));
    }
    if let Some(v) = j.get("nw_proto") {
        let v = v
            .as_u64()
            .ok_or_else(|| CodecError("nw_proto: not an int".into()))?;
        m.set(FieldMatch::NwProto(IpProto::from_value(v as u8)));
    }
    if let Some(v) = j.get("tp_src") {
        let v = v
            .as_u64()
            .ok_or_else(|| CodecError("tp_src: not an int".into()))?;
        m.set(FieldMatch::TpSrc(v as u16));
    }
    if let Some(v) = j.get("tp_dst") {
        let v = v
            .as_u64()
            .ok_or_else(|| CodecError("tp_dst: not an int".into()))?;
        m.set(FieldMatch::TpDst(v as u16));
    }
    Ok(m)
}

fn action_to_json(m: Mod) -> Json {
    match m {
        Mod::SetLoc(p) => Json::obj([key("fwd", port_to_json(p))]),
        Mod::SetDlSrc(v) => Json::obj([key("dl_src", mac_to_json(v))]),
        Mod::SetDlDst(v) => Json::obj([key("dl_dst", mac_to_json(v))]),
        Mod::SetNwSrc(v) => Json::obj([key("nw_src", int(v.0))]),
        Mod::SetNwDst(v) => Json::obj([key("nw_dst", int(v.0))]),
        Mod::SetTpSrc(v) => Json::obj([key("tp_src", int(v))]),
        Mod::SetTpDst(v) => Json::obj([key("tp_dst", int(v))]),
    }
}

fn action_from_json(j: &Json) -> Result<Mod, CodecError> {
    if let Some(p) = j.get("fwd") {
        return Ok(Mod::SetLoc(port_from_json(p)?));
    }
    if let Some(v) = j.get("dl_src") {
        return Ok(Mod::SetDlSrc(mac_from_json(v)?));
    }
    if let Some(v) = j.get("dl_dst") {
        return Ok(Mod::SetDlDst(mac_from_json(v)?));
    }
    if let Some(v) = j.get("nw_src").and_then(Json::as_u64) {
        return Ok(Mod::SetNwSrc(Ipv4Addr(v as u32)));
    }
    if let Some(v) = j.get("nw_dst").and_then(Json::as_u64) {
        return Ok(Mod::SetNwDst(Ipv4Addr(v as u32)));
    }
    if let Some(v) = j.get("tp_src").and_then(Json::as_u64) {
        return Ok(Mod::SetTpSrc(v as u16));
    }
    if let Some(v) = j.get("tp_dst").and_then(Json::as_u64) {
        return Ok(Mod::SetTpDst(v as u16));
    }
    err("action: unknown kind")
}

fn buckets_to_json(buckets: &[Vec<Mod>]) -> Json {
    Json::Arr(
        buckets
            .iter()
            .map(|b| Json::Arr(b.iter().map(|&m| action_to_json(m)).collect()))
            .collect(),
    )
}

fn buckets_from_json(j: &Json) -> Result<Vec<Vec<Mod>>, CodecError> {
    let arr = j
        .as_arr()
        .ok_or_else(|| CodecError("buckets: not an array".into()))?;
    arr.iter()
        .map(|b| {
            let acts = b
                .as_arr()
                .ok_or_else(|| CodecError("bucket: not an array".into()))?;
            acts.iter().map(action_from_json).collect()
        })
        .collect()
}

// ---------------------------------------------------------------------
// FlowMod / FlowModBatch
// ---------------------------------------------------------------------

fn entry_to_json(e: &FlowEntry) -> Json {
    Json::obj([
        key("priority", int(e.priority)),
        key("pattern", pattern_to_json(&e.pattern)),
        key("buckets", buckets_to_json(&e.buckets)),
        key("cookie", int(e.cookie)),
    ])
}

fn entry_from_json(j: &Json) -> Result<FlowEntry, CodecError> {
    let priority = get_u64(j, "priority")? as u32;
    let pattern = pattern_from_json(
        j.get("pattern")
            .ok_or_else(|| CodecError("entry: missing pattern".into()))?,
    )?;
    let buckets = buckets_from_json(
        j.get("buckets")
            .ok_or_else(|| CodecError("entry: missing buckets".into()))?,
    )?;
    let cookie = get_u64(j, "cookie")?;
    Ok(FlowEntry::new(priority, pattern, buckets).with_cookie(cookie))
}

fn mod_to_json(m: &FlowMod) -> Json {
    match m {
        FlowMod::Add(e) => Json::obj([
            key("op", Json::Str("add".into())),
            key("entry", entry_to_json(e)),
        ]),
        FlowMod::Modify {
            priority,
            pattern,
            buckets,
            cookie,
        } => Json::obj([
            key("op", Json::Str("modify".into())),
            key("priority", int(*priority)),
            key("pattern", pattern_to_json(pattern)),
            key("buckets", buckets_to_json(buckets)),
            key("cookie", int(*cookie)),
        ]),
        FlowMod::Delete { priority, pattern } => Json::obj([
            key("op", Json::Str("delete".into())),
            key("priority", int(*priority)),
            key("pattern", pattern_to_json(pattern)),
        ]),
    }
}

fn mod_from_json(j: &Json) -> Result<FlowMod, CodecError> {
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| CodecError("mod: missing op".into()))?;
    match op {
        "add" => Ok(FlowMod::Add(entry_from_json(
            j.get("entry")
                .ok_or_else(|| CodecError("add: missing entry".into()))?,
        )?)),
        "modify" => Ok(FlowMod::Modify {
            priority: get_u64(j, "priority")? as u32,
            pattern: pattern_from_json(
                j.get("pattern")
                    .ok_or_else(|| CodecError("modify: missing pattern".into()))?,
            )?,
            buckets: buckets_from_json(
                j.get("buckets")
                    .ok_or_else(|| CodecError("modify: missing buckets".into()))?,
            )?,
            cookie: get_u64(j, "cookie")?,
        }),
        "delete" => Ok(FlowMod::Delete {
            priority: get_u64(j, "priority")? as u32,
            pattern: pattern_from_json(
                j.get("pattern")
                    .ok_or_else(|| CodecError("delete: missing pattern".into()))?,
            )?,
        }),
        other => err(format!("mod: unknown op `{other}`")),
    }
}

/// Encodes a batch as a JSON value (`{"epoch":E,"mods":[...]}`).
pub fn batch_to_json(b: &FlowModBatch) -> Json {
    Json::obj([
        key("epoch", int(b.epoch)),
        key("mods", Json::Arr(b.mods.iter().map(mod_to_json).collect())),
    ])
}

/// Decodes a batch encoded by [`batch_to_json`].
pub fn batch_from_json(j: &Json) -> Result<FlowModBatch, CodecError> {
    let epoch = get_u64(j, "epoch")?;
    let mods = j
        .get("mods")
        .and_then(Json::as_arr)
        .ok_or_else(|| CodecError("batch: missing mods".into()))?;
    let mut batch = FlowModBatch::new(epoch);
    for m in mods {
        batch.push(mod_from_json(m)?);
    }
    Ok(batch)
}

// ---------------------------------------------------------------------
// Channel frames
// ---------------------------------------------------------------------

/// A decoded daemon → agent frame.
#[derive(Clone, PartialEq, Debug)]
pub enum ChannelFrame {
    /// Apply `batch` to the current table and ack `seq`.
    Apply {
        /// Frame sequence number, echoed in the ack.
        seq: u64,
        /// The batch to apply.
        batch: FlowModBatch,
    },
    /// Clear the table, then apply `batch` (full resynchronization).
    Sync {
        /// Frame sequence number, echoed in the ack.
        seq: u64,
        /// A from-scratch image of the whole table.
        batch: FlowModBatch,
    },
}

impl ChannelFrame {
    /// The frame's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            ChannelFrame::Apply { seq, .. } | ChannelFrame::Sync { seq, .. } => *seq,
        }
    }
}

/// Encodes an apply frame as one JSON line (no trailing newline).
pub fn encode_apply(seq: u64, batch: &FlowModBatch) -> String {
    Json::obj([key("seq", int(seq)), key("batch", batch_to_json(batch))]).to_string()
}

/// Encodes a sync frame as one JSON line (no trailing newline).
pub fn encode_sync(seq: u64, batch: &FlowModBatch) -> String {
    Json::obj([key("seq", int(seq)), key("sync", batch_to_json(batch))]).to_string()
}

/// Decodes one daemon → agent line.
pub fn decode_frame(line: &str) -> Result<ChannelFrame, CodecError> {
    let j = Json::parse(line).map_err(|e| CodecError(format!("frame: {e:?}")))?;
    let seq = get_u64(&j, "seq")?;
    if let Some(b) = j.get("batch") {
        return Ok(ChannelFrame::Apply {
            seq,
            batch: batch_from_json(b)?,
        });
    }
    if let Some(b) = j.get("sync") {
        return Ok(ChannelFrame::Sync {
            seq,
            batch: batch_from_json(b)?,
        });
    }
    err("frame: neither `batch` nor `sync`")
}

/// Encodes an agent → daemon ack as one JSON line (no trailing newline).
pub fn encode_ack(seq: u64, result: Result<(), &str>) -> String {
    match result {
        Ok(()) => Json::obj([key("seq", int(seq)), key("ok", Json::Bool(true))]).to_string(),
        Err(e) => Json::obj([
            key("seq", int(seq)),
            key("ok", Json::Bool(false)),
            key("error", Json::Str(e.to_string())),
        ])
        .to_string(),
    }
}

/// Decodes one agent → daemon ack line into `(seq, result)`.
pub fn decode_ack(line: &str) -> Result<(u64, Result<(), String>), CodecError> {
    let j = Json::parse(line).map_err(|e| CodecError(format!("ack: {e:?}")))?;
    let seq = get_u64(&j, "seq")?;
    let ok = match j.get("ok") {
        Some(Json::Bool(b)) => *b,
        _ => return err("ack: missing ok"),
    };
    if ok {
        Ok((seq, Ok(())))
    } else {
        let msg = j
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unspecified agent error")
            .to_string();
        Ok((seq, Err(msg)))
    }
}

// ---------------------------------------------------------------------
// Policy frames
// ---------------------------------------------------------------------

/// One lifecycle operation inside a policy frame, still in wire form:
/// the policy body is DSL *text* (the paper's surface syntax), because
/// resolving port names like `B` or `C1` to [`PortId`]s needs the
/// participant book — which only the daemon's event loop owns. The
/// daemon parses and validates on receipt and acks/nacks per frame.
#[derive(Clone, PartialEq, Debug)]
pub struct PolicyOpFrame {
    /// Whose policy is being changed.
    pub participant: ParticipantId,
    /// Which direction ([`sdx_policy::PolicyScope`]).
    pub scope: sdx_policy::PolicyScope,
    /// `"install"`, `"replace"`, or `"retract"`.
    pub op: String,
    /// The DSL policy text (absent for retract).
    pub policy: Option<String>,
}

impl PolicyOpFrame {
    /// An install op.
    pub fn install(
        participant: ParticipantId,
        scope: sdx_policy::PolicyScope,
        dsl: impl Into<String>,
    ) -> Self {
        PolicyOpFrame {
            participant,
            scope,
            op: "install".into(),
            policy: Some(dsl.into()),
        }
    }

    /// A replace op.
    pub fn replace(
        participant: ParticipantId,
        scope: sdx_policy::PolicyScope,
        dsl: impl Into<String>,
    ) -> Self {
        PolicyOpFrame {
            participant,
            scope,
            op: "replace".into(),
            policy: Some(dsl.into()),
        }
    }

    /// A retract op.
    pub fn retract(participant: ParticipantId, scope: sdx_policy::PolicyScope) -> Self {
        PolicyOpFrame {
            participant,
            scope,
            op: "retract".into(),
            policy: None,
        }
    }
}

/// Encodes a policy frame as one JSON line (no trailing newline):
/// `{"seq":N,"policy":[{"participant":P,"scope":"out","op":"replace",
/// "dsl":"match(dstport=80) >> fwd(B)"},...]}`.
pub fn encode_policy_frame(seq: u64, ops: &[PolicyOpFrame]) -> String {
    let arr: Vec<Json> = ops
        .iter()
        .map(|o| {
            let mut fields = vec![
                key("participant", int(o.participant.0)),
                key(
                    "scope",
                    Json::Str(
                        match o.scope {
                            sdx_policy::PolicyScope::Inbound => "in",
                            sdx_policy::PolicyScope::Outbound => "out",
                        }
                        .into(),
                    ),
                ),
                key("op", Json::Str(o.op.clone())),
            ];
            if let Some(dsl) = &o.policy {
                fields.push(key("dsl", Json::Str(dsl.clone())));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::obj([key("seq", int(seq)), key("policy", Json::Arr(arr))]).to_string()
}

/// Decodes one policy frame line into `(seq, ops)`. Structural checks
/// only — DSL parsing and participant validation happen in the event
/// loop, which owns the book.
pub fn decode_policy_frame(line: &str) -> Result<(u64, Vec<PolicyOpFrame>), CodecError> {
    let j = Json::parse(line).map_err(|e| CodecError(format!("policy frame: {e:?}")))?;
    let seq = get_u64(&j, "seq")?;
    let arr = j
        .get("policy")
        .and_then(Json::as_arr)
        .ok_or_else(|| CodecError("policy frame: missing `policy`".into()))?;
    let mut ops = Vec::with_capacity(arr.len());
    for o in arr {
        let participant = ParticipantId(get_u64(o, "participant")? as u32);
        let scope = match o.get("scope").and_then(Json::as_str) {
            Some("in") => sdx_policy::PolicyScope::Inbound,
            Some("out") => sdx_policy::PolicyScope::Outbound,
            other => return err(format!("policy op: bad scope {other:?}")),
        };
        let op = match o.get("op").and_then(Json::as_str) {
            Some(k @ ("install" | "replace" | "retract")) => k.to_string(),
            other => return err(format!("policy op: bad op {other:?}")),
        };
        let policy = o.get("dsl").and_then(Json::as_str).map(str::to_string);
        if op != "retract" && policy.is_none() {
            return err(format!("policy op: `{op}` without a dsl body"));
        }
        ops.push(PolicyOpFrame {
            participant,
            scope,
            op,
            policy,
        });
    }
    Ok((seq, ops))
}

// ---------------------------------------------------------------------
// Synthetic batches
// ---------------------------------------------------------------------

/// A from-scratch image of `table` as a batch of Adds — what a freshly
/// connected (or resynchronizing) agent applies to an empty table.
pub fn sync_batch(table: &FlowTable, epoch: u64) -> FlowModBatch {
    let mut b = FlowModBatch::new(epoch);
    for e in table.entries() {
        b.push(FlowMod::Add(e.clone()));
    }
    b
}

/// Deletes for every entry of `table` at or above `min_priority` — the
/// streamed equivalent of the controller's overlay retirement
/// (`remove_at_or_above`), which bypasses the flow-mod path locally.
pub fn retire_batch(table: &FlowTable, min_priority: u32, epoch: u64) -> FlowModBatch {
    let mut b = FlowModBatch::new(epoch);
    for e in table.entries() {
        if e.priority >= min_priority {
            b.push(FlowMod::Delete {
                priority: e.priority,
                pattern: e.pattern,
            });
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::Asn;

    fn sample_batch() -> FlowModBatch {
        let pat = HeaderMatch::any()
            .and(FieldMatch::InPort(PortId::Phys(ParticipantId(1), 2)))
            .and(FieldMatch::EthType(EtherType::Ipv4))
            .and(FieldMatch::NwDst(Prefix::new(Ipv4Addr(0x0a000000), 8)))
            .and(FieldMatch::TpDst(443));
        let entry = FlowEntry::new(
            7,
            pat,
            vec![vec![
                Mod::SetDlDst(MacAddr([1, 2, 3, 4, 5, 6])),
                Mod::SetLoc(PortId::Virt(ParticipantId(3))),
            ]],
        )
        .with_cookie(99);
        let mut b = FlowModBatch::new(42);
        b.push(FlowMod::Add(entry));
        b.push(FlowMod::Modify {
            priority: 7,
            pattern: HeaderMatch::of(FieldMatch::NwProto(IpProto::Tcp)),
            buckets: vec![vec![Mod::SetNwDst(Ipv4Addr(0x7f000001)), Mod::SetTpSrc(80)]],
            cookie: 100,
        });
        b.push(FlowMod::Delete {
            priority: 3,
            pattern: HeaderMatch::any(),
        });
        let _ = Asn(65000); // keep the import honest if fields change
        b
    }

    #[test]
    fn batch_roundtrips_through_json() {
        let b = sample_batch();
        let j = batch_to_json(&b);
        let back = batch_from_json(&j).expect("decode");
        assert_eq!(back, b);
        // And through the textual form, which is what actually crosses
        // the socket.
        let reparsed = Json::parse(&j.to_string()).expect("parse");
        assert_eq!(batch_from_json(&reparsed).expect("decode"), b);
    }

    #[test]
    fn frames_roundtrip_and_acks_carry_errors() {
        let b = sample_batch();
        let line = encode_apply(5, &b);
        match decode_frame(&line).expect("frame") {
            ChannelFrame::Apply { seq, batch } => {
                assert_eq!(seq, 5);
                assert_eq!(batch, b);
            }
            other => panic!("wrong frame: {other:?}"),
        }
        let line = encode_sync(6, &b);
        match decode_frame(&line).expect("frame") {
            ChannelFrame::Sync { seq, batch } => {
                assert_eq!(seq, 6);
                assert_eq!(batch, b);
            }
            other => panic!("wrong frame: {other:?}"),
        }
        assert_eq!(decode_ack(&encode_ack(5, Ok(()))).unwrap(), (5, Ok(())));
        assert_eq!(
            decode_ack(&encode_ack(7, Err("duplicate install"))).unwrap(),
            (7, Err("duplicate install".to_string()))
        );
        assert!(decode_frame("{\"seq\":1}").is_err());
        assert!(decode_frame("not json").is_err());
    }

    #[test]
    fn policy_frames_roundtrip_and_reject_malformed_lines() {
        use sdx_policy::PolicyScope;
        let ops = vec![
            PolicyOpFrame::replace(
                ParticipantId(3),
                PolicyScope::Outbound,
                "match(dstport=80) >> fwd(B)",
            ),
            PolicyOpFrame::install(
                ParticipantId(2),
                PolicyScope::Inbound,
                "match(srcip=0.0.0.0/1) >> fwd(B1)",
            ),
            PolicyOpFrame::retract(ParticipantId(3), PolicyScope::Outbound),
        ];
        let line = encode_policy_frame(11, &ops);
        let (seq, back) = decode_policy_frame(&line).expect("decode");
        assert_eq!(seq, 11);
        assert_eq!(back, ops);
        // Structural rejections: missing body on a non-retract, unknown
        // scope/op kinds, non-JSON.
        assert!(decode_policy_frame("not json").is_err());
        assert!(decode_policy_frame(r#"{"seq":1}"#).is_err());
        assert!(decode_policy_frame(
            r#"{"seq":1,"policy":[{"participant":3,"scope":"out","op":"install"}]}"#
        )
        .is_err());
        assert!(decode_policy_frame(
            r#"{"seq":1,"policy":[{"participant":3,"scope":"sideways","op":"retract"}]}"#
        )
        .is_err());
        assert!(decode_policy_frame(
            r#"{"seq":1,"policy":[{"participant":3,"scope":"out","op":"upsert","dsl":"drop"}]}"#
        )
        .is_err());
    }

    #[test]
    fn sync_and_retire_batches_reflect_the_table() {
        let mut table = FlowTable::new();
        table.install(FlowEntry::new(1, HeaderMatch::any(), vec![vec![]]));
        table.install(FlowEntry::new(
            1 << 30,
            HeaderMatch::of(FieldMatch::TpDst(80)),
            vec![vec![]],
        ));
        let sync = sync_batch(&table, 9);
        assert_eq!(sync.epoch, 9);
        assert_eq!(sync.stats().adds, 2);
        // Applying the sync image to an empty table reproduces it.
        let mut fresh = FlowTable::new();
        fresh.apply_batch(&sync).expect("sync applies");
        assert_eq!(fresh.len(), table.len());

        let retire = retire_batch(&table, 1 << 30, 10);
        assert_eq!(retire.stats().deletes, 1);
        table.apply_batch(&retire).expect("retire applies");
        assert_eq!(table.len(), 1);
    }
}
