//! End-to-end daemon tests: the full SDX over real loopback sockets.
//!
//! The centerpiece replays the paper's Figure 1 exchange through `sdxd`
//! the way a deployment would see it — BGP announcements over TCP
//! sessions, flow-mods streamed to a switch agent over the OpenFlow
//! channel — and then oracle-verifies that the table the *agent* holds
//! is packet-for-packet identical to what the all-in-process path
//! deploys. The rest cover the runtime behaviors that only exist at
//! this layer: burst coalescing under channel backpressure, hold-timer
//! expiry and flap damping on TCP resets (deterministic via
//! `MockClock`), agent resynchronization after a rejected wave, and
//! graceful shutdown draining through injected faults.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sdx_bgp::{BgpMessage, ExportPolicy, MockClock};
use sdx_core::{FaultPlan, InjectionPoint, ParticipantConfig, SdxController};
use sdx_ixp::testkit::{figure1_controller, figure1_inbound_b, figure1_outbound_a};
use sdx_net::{prefix, Ipv4Addr, Packet, ParticipantId, PortId};
use sdx_openflow::table::FlowTable;
use sdx_oracle::synth::probe_grid;
use sdx_oracle::{Differential, FabricEvaluator, Outcome};
use sdx_policy::PolicyScope;
use sdx_runtime::{codec, daemon, spawn_agent, DaemonConfig, TestPeer};
use sdx_telemetry::{Json, SharedRegistry};

fn pid(n: u32) -> ParticipantId {
    ParticipantId(n)
}

/// The Figure 1 exchange with an *empty* RIB: routes must arrive over
/// the wire. Topology, policies, and exports match
/// `sdx_ixp::testkit::figure1_controller` exactly.
fn figure1_empty_rib() -> SdxController {
    let a = ParticipantConfig::new(1, 65001, 1);
    let b = ParticipantConfig::new(2, 65002, 2);
    let c = ParticipantConfig::new(3, 65003, 1);
    let d = ParticipantConfig::new(4, 65004, 1);
    let mut ctl = SdxController::new();
    ctl.add_participant(
        a.with_outbound(figure1_outbound_a()),
        ExportPolicy::allow_all(),
    );
    let mut b_export = ExportPolicy::allow_all();
    b_export.deny(pid(1), prefix("40.0.0.0/8"));
    ctl.add_participant(b.with_inbound(figure1_inbound_b()), b_export);
    ctl.add_participant(c, ExportPolicy::allow_all());
    ctl.add_participant(d, ExportPolicy::allow_all());
    ctl
}

fn counter(reg: &SharedRegistry, key: &str) -> u64 {
    reg.snapshot().counters.get(key).copied().unwrap_or(0)
}

fn wait_counter(reg: &SharedRegistry, key: &str, min: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while counter(reg, key) < min {
        assert!(
            Instant::now() < deadline,
            "timeout waiting for {key} >= {min} (at {})",
            counter(reg, key)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn announce(cfg: &ParticipantConfig, pfx: &str, path: &[u32]) -> BgpMessage {
    BgpMessage::Update(cfg.announce([prefix(pfx)], path))
}

#[test]
fn figure1_over_sockets_is_oracle_identical_to_in_process() {
    let handle = daemon::start(figure1_empty_rib(), DaemonConfig::default()).expect("start");
    let reg = handle.telemetry().clone();

    // A switch agent joins before any routes exist; it will live
    // through the whole run.
    let agent = spawn_agent(handle.openflow_addr).expect("agent");
    wait_counter(&reg, "daemon.switch_connected.count", 1);

    // B, C, and D bring up real BGP sessions and announce the
    // Figure 1b RIB over the wire.
    let b = ParticipantConfig::new(2, 65002, 2);
    let c = ParticipantConfig::new(3, 65003, 1);
    let d = ParticipantConfig::new(4, 65004, 1);
    let mut peer_b = TestPeer::establish(handle.bgp_addr, 65002, 30).expect("peer B");
    let mut peer_c = TestPeer::establish(handle.bgp_addr, 65003, 30).expect("peer C");
    let mut peer_d = TestPeer::establish(handle.bgp_addr, 65004, 30).expect("peer D");
    wait_counter(&reg, "session.established.count", 3);

    for (pfx, path) in [
        ("10.0.0.0/8", vec![65002, 100, 200]),
        ("20.0.0.0/8", vec![65002, 100, 200]),
        ("30.0.0.0/8", vec![65002, 300]),
        ("40.0.0.0/8", vec![65002, 400]),
    ] {
        peer_b.send(&announce(&b, pfx, &path)).expect("send");
    }
    for (pfx, path) in [
        ("10.0.0.0/8", vec![65003, 200]),
        ("20.0.0.0/8", vec![65003, 200]),
        ("40.0.0.0/8", vec![65003, 400]),
    ] {
        peer_c.send(&announce(&c, pfx, &path)).expect("send");
    }
    peer_d
        .send(&announce(&d, "50.0.0.0/8", &[65004, 500]))
        .expect("send");
    wait_counter(&reg, "daemon.updates.count", 8);

    // The telemetry endpoint serves a parseable registry + journal dump.
    let mut telem = TcpStream::connect(handle.telemetry_addr).expect("telemetry");
    let mut body = String::new();
    telem.read_to_string(&mut body).expect("read");
    let snap = Json::parse(body.trim()).expect("valid JSON");
    assert!(
        snap.get("counters").is_some(),
        "telemetry dump has counters"
    );
    assert!(snap.get("events").is_some(), "telemetry dump has journal");
    // Data-plane health rides along: the deployed table's compiled-matcher
    // shape is published as gauges wherever the table image changes.
    let gauges = snap.get("gauges").expect("telemetry dump has gauges");
    for key in [
        "dataplane.table.entries",
        "dataplane.matcher.epoch",
        "dataplane.matcher.exact.entries",
        "dataplane.matcher.residual.entries",
    ] {
        assert!(gauges.get(key).is_some(), "missing matcher gauge {key}");
    }
    let entries = match gauges.get("dataplane.table.entries") {
        Some(Json::Int(n)) => *n,
        other => panic!("dataplane.table.entries not numeric: {other:?}"),
    };
    assert!(entries > 0, "deployed table should have entries");

    // Fold the fast-path deltas into a scheduled re-optimization, waves
    // streamed to the agent; then stop. mpsc ordering guarantees the
    // reoptimize completes before the stop is processed.
    handle.reoptimize();
    let report = handle.stop();
    let agent_fabric = agent.join();

    assert_eq!(report.updates, 8);
    assert!(report.compiles >= 1);
    assert!(report.batches_streamed >= 1, "flow-mods crossed the wire");
    assert_eq!(counter(&reg, "daemon.reoptimize_failed.count"), 0);

    // Byte-level: the agent's table is exactly the daemon's table.
    assert_eq!(
        agent_fabric.switch.table(),
        report.fabric.switch.table(),
        "agent table diverged from the driving fabric"
    );

    // Oracle: the deployed-over-sockets table is packet-equivalent to
    // the spec interpreter over the daemon's final configuration...
    let ctl = report.ctl;
    let cr = ctl.report.as_ref().expect("compiled");
    let probes = probe_grid(&ctl.compiler, &ctl.rs);
    let diff = Differential::over_table(&ctl.compiler, &ctl.rs, cr, agent_fabric.switch.table());
    let delivered = diff.check_all(&probes).expect("no mismatch");
    assert!(delivered > 0, "probe grid vacuous");

    // ...and verdict-identical to the all-in-process deployment of the
    // same exchange (same topology, policies, and RIB, compiled without
    // ever touching a socket).
    let mut inproc = figure1_controller();
    let inproc_fabric = inproc.deploy().expect("in-process deploy");
    let inproc_cr = inproc.report.as_ref().expect("compiled");
    let socket_eval =
        FabricEvaluator::over_table(&ctl.compiler, &ctl.rs, cr, agent_fabric.switch.table());
    let inproc_eval = FabricEvaluator::over_table(
        &inproc.compiler,
        &inproc.rs,
        inproc_cr,
        inproc_fabric.switch.table(),
    );
    for (from, pkt) in &probes {
        let (socket_out, _) = socket_eval.verdict(*from, pkt);
        let (inproc_out, _) = inproc_eval.verdict(*from, pkt);
        assert_eq!(
            socket_out, inproc_out,
            "socket path and in-process path disagree at {from:?} dst {}",
            pkt.nw_dst
        );
    }
}

/// Sends one newline-framed line and reads back the ack line.
fn policy_roundtrip(
    w: &mut BufWriter<TcpStream>,
    r: &mut BufReader<TcpStream>,
    line: &str,
) -> (u64, Result<(), String>) {
    w.write_all(line.as_bytes()).expect("write frame");
    w.write_all(b"\n").expect("write newline");
    w.flush().expect("flush");
    let mut ack = String::new();
    r.read_line(&mut ack).expect("read ack");
    codec::decode_ack(ack.trim()).expect("parseable ack")
}

#[test]
fn policy_frames_stage_deltas_and_nack_garbage_over_the_wire() {
    // The full lifecycle over sockets: a participant pushes a DSL policy
    // frame to the daemon's policy endpoint, gets an ack, and the change
    // flows through the incremental compile into the connected agent's
    // table — oracle-verified. Garbage (unknown writer, non-JSON) gets a
    // typed nack and stages nothing.
    let mut cfg = DaemonConfig::default();
    cfg.sharding = sdx_core::Sharding::Shards(4);
    let handle = daemon::start(figure1_controller(), cfg).expect("start");
    let reg = handle.telemetry().clone();
    let agent = spawn_agent(handle.openflow_addr).expect("agent");
    wait_counter(&reg, "daemon.switch_connected.count", 1);

    let stream = TcpStream::connect(handle.policy_addr).expect("policy endpoint");
    let mut r = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = BufWriter::new(stream);

    // A rewrites its outbound policy: HTTPS now steers via B (it used to
    // go via C). Written in the DSL, exactly as a portal would send it.
    let frame = codec::encode_policy_frame(
        7,
        &[codec::PolicyOpFrame::replace(
            pid(1),
            PolicyScope::Outbound,
            "match(dstport=443) >> fwd(B)",
        )],
    );
    let (seq, result) = policy_roundtrip(&mut w, &mut r, &frame);
    assert_eq!(seq, 7);
    assert_eq!(result, Ok(()), "valid frame must ack clean");
    wait_counter(&reg, "policy.applied.count", 1);
    wait_counter(&reg, "daemon.compiles.count", 1);

    // An unknown participant is rejected by delta validation, with the
    // writer named in the nack; staging is atomic, so nothing applied.
    let frame = codec::encode_policy_frame(
        8,
        &[codec::PolicyOpFrame::install(
            pid(42),
            PolicyScope::Outbound,
            "fwd(B)",
        )],
    );
    let (seq, result) = policy_roundtrip(&mut w, &mut r, &frame);
    assert_eq!(seq, 8);
    let err = result.expect_err("unknown participant must nack");
    assert!(err.contains("42"), "nack should name the writer: {err}");

    // Non-JSON garbage nacks with seq 0 (no frame to attribute it to)
    // and the connection survives for the next frame.
    let (seq, result) = policy_roundtrip(&mut w, &mut r, "not a frame");
    assert_eq!(seq, 0);
    assert!(result.is_err(), "garbage must nack");

    let report = handle.stop();
    let agent_fabric = agent.join();

    assert_eq!(report.policy_frames, 3);
    assert_eq!(counter(&reg, "daemon.policy_frames.count"), 3);
    assert_eq!(counter(&reg, "daemon.policy_rejected.count"), 2);
    assert_eq!(counter(&reg, "policy.applied.count"), 1);
    assert!(counter(&reg, "policy.dirty_units.count") >= 1);

    // The agent's table reflects the staged policy: HTTPS from A's port
    // delivers at B now, and the whole table stays oracle-equivalent to
    // the spec interpreter over the versioned policy store.
    let ctl = report.ctl;
    let cr = ctl.report.as_ref().expect("compiled");
    let diff = Differential::over_table(&ctl.compiler, &ctl.rs, cr, agent_fabric.switch.table());
    let probes = probe_grid(&ctl.compiler, &ctl.rs);
    diff.check_all(&probes).expect("no oracle mismatch");
    let https = Packet::tcp(
        Ipv4Addr::new(9, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 9),
        4321,
        443,
    );
    let out = diff
        .check(PortId::Phys(pid(1), 1), &https)
        .expect("agreed verdict");
    match out {
        Outcome::Deliver {
            port: PortId::Phys(owner, _),
            ..
        } => assert_eq!(owner, pid(2), "pushed policy not in effect: {out:?}"),
        other => panic!("HTTPS should deliver at B, got {other:?}"),
    }
}

#[test]
fn policy_frame_coalesces_with_a_route_burst() {
    // A policy frame arriving while the event loop is pinned at a slow
    // agent's ack barrier must fold into the same compile as the queued
    // route updates — one pass, journalled as a policy+burst coalesce.
    let handle = daemon::start(figure1_empty_rib(), DaemonConfig::default()).expect("start");
    let reg = handle.telemetry().clone();
    let agent = slow_agent(handle.openflow_addr, Duration::from_millis(60));
    wait_counter(&reg, "daemon.switch_connected.count", 1);

    let d = ParticipantConfig::new(4, 65004, 1);
    let mut peer = TestPeer::establish(handle.bgp_addr, 65004, 30).expect("peer");
    wait_counter(&reg, "session.established.count", 1);

    // Establish the policy connection up front and prove its reader is
    // live (a garbage line earns an instant nack) — the real frame later
    // must reach the input channel with no accept latency in the way.
    let stream = TcpStream::connect(handle.policy_addr).expect("policy endpoint");
    let mut r = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = BufWriter::new(stream);
    let (warm_seq, warm) = policy_roundtrip(&mut w, &mut r, "warmup garbage");
    assert_eq!(warm_seq, 0);
    assert!(warm.is_err());

    // First update: its compile streams a batch whose ack the slow agent
    // sits on, pinning the event loop...
    peer.send(&announce(&d, "60.0.0.0/8", &[65004, 500]))
        .expect("send");
    wait_counter(&reg, "daemon.compiles.count", 1);

    // ...while a policy frame and a burst of route updates queue behind
    // the barrier.
    let frame = codec::encode_policy_frame(
        1,
        &[codec::PolicyOpFrame::install(
            pid(4),
            PolicyScope::Outbound,
            "match(dstport=80) >> fwd(B)",
        )],
    );
    w.write_all(frame.as_bytes()).expect("write frame");
    w.write_all(b"\n").expect("newline");
    w.flush().expect("flush");
    for i in 0..10u32 {
        let pfx = format!("{}.0.0.0/8", 70 + i);
        peer.send(&announce(&d, &pfx, &[65004, 500])).expect("send");
    }
    let mut ack = String::new();
    r.read_line(&mut ack).expect("ack");
    let (_, result) = codec::decode_ack(ack.trim()).expect("parseable ack");
    assert_eq!(result, Ok(()));
    wait_counter(&reg, "daemon.updates.count", 11);

    let report = handle.stop();
    drop(agent);
    assert_eq!(report.updates, 11);
    assert_eq!(report.policy_frames, 2);
    assert!(
        report.compiles < report.updates,
        "no coalescing: {} compiles for {} updates",
        report.compiles,
        report.updates
    );
    let events = reg.snapshot().events;
    assert!(
        events.iter().any(|e| matches!(
            &e.event,
            sdx_telemetry::Event::Custom { name, .. } if name == "policy_coalesced_with_burst"
        )),
        "policy+route coalesce missing from journal: {:?}",
        events.iter().map(|e| e.event.kind()).collect::<Vec<_>>()
    );
}

/// A hand-rolled switch agent that acks its initial sync instantly but
/// delays every later ack — channel backpressure incarnate.
fn slow_agent(addr: SocketAddr, delay: Duration) -> JoinHandle<usize> {
    std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        let read = stream.try_clone().expect("clone");
        let mut w = BufWriter::new(stream);
        let mut frames = 0usize;
        for line in BufReader::new(read).lines() {
            let Ok(line) = line else { break };
            let frame = codec::decode_frame(&line).expect("frame");
            if frames > 0 {
                std::thread::sleep(delay);
            }
            frames += 1;
            let ack = codec::encode_ack(frame.seq(), Ok(()));
            if w.write_all(ack.as_bytes()).is_err()
                || w.write_all(b"\n").is_err()
                || w.flush().is_err()
            {
                break;
            }
        }
        frames
    })
}

#[test]
fn bursts_coalesce_into_one_compile_under_backpressure() {
    let handle = daemon::start(figure1_empty_rib(), DaemonConfig::default()).expect("start");
    let reg = handle.telemetry().clone();
    let agent = slow_agent(handle.openflow_addr, Duration::from_millis(40));
    wait_counter(&reg, "daemon.switch_connected.count", 1);

    let d = ParticipantConfig::new(4, 65004, 1);
    let mut peer = TestPeer::establish(handle.bgp_addr, 65004, 30).expect("peer");
    wait_counter(&reg, "session.established.count", 1);

    // First update: its compile streams a batch whose ack the slow
    // agent sits on, pinning the event loop at the barrier...
    peer.send(&announce(&d, "60.0.0.0/8", &[65004, 500]))
        .expect("send");
    wait_counter(&reg, "daemon.compiles.count", 1);
    // ...while a burst of distinct-prefix updates queues up behind it.
    for i in 0..30u32 {
        let pfx = format!("{}.0.0.0/8", 70 + i);
        peer.send(&announce(&d, &pfx, &[65004, 500])).expect("send");
    }
    wait_counter(&reg, "daemon.updates.count", 31);

    let report = handle.stop();
    drop(agent);
    assert_eq!(report.updates, 31);
    assert!(
        report.compiles < report.updates,
        "no coalescing: {} compiles for {} updates",
        report.compiles,
        report.updates
    );
    assert!(report.coalesced_bursts >= 1, "no burst was journalled");
    let events = reg.snapshot().events;
    assert!(
        events.iter().any(|e| e.event.kind() == "burst_coalesced"),
        "burst_coalesced missing from journal"
    );
    assert!(
        events.iter().any(|e| e.event.kind() == "daemon_stopped"),
        "daemon_stopped missing from journal"
    );
}

#[test]
fn sharded_daemon_is_oracle_identical_and_publishes_shard_telemetry() {
    // The same wire-driven exchange, compiled with Shards(4) on the
    // coalesced-burst path: the deployed table must stay probe-identical
    // to the in-process unsharded deployment, and `compile.shard.*`
    // telemetry must flow out the endpoint.
    let mut cfg = DaemonConfig::default();
    cfg.sharding = sdx_core::Sharding::Shards(4);
    let handle = daemon::start(figure1_empty_rib(), cfg).expect("start");
    let reg = handle.telemetry().clone();
    let agent = spawn_agent(handle.openflow_addr).expect("agent");
    wait_counter(&reg, "daemon.switch_connected.count", 1);

    let b = ParticipantConfig::new(2, 65002, 2);
    let c = ParticipantConfig::new(3, 65003, 1);
    let d = ParticipantConfig::new(4, 65004, 1);
    let mut peer_b = TestPeer::establish(handle.bgp_addr, 65002, 30).expect("peer B");
    let mut peer_c = TestPeer::establish(handle.bgp_addr, 65003, 30).expect("peer C");
    let mut peer_d = TestPeer::establish(handle.bgp_addr, 65004, 30).expect("peer D");
    wait_counter(&reg, "session.established.count", 3);

    for (pfx, path) in [
        ("10.0.0.0/8", vec![65002, 100, 200]),
        ("20.0.0.0/8", vec![65002, 100, 200]),
        ("30.0.0.0/8", vec![65002, 300]),
        ("40.0.0.0/8", vec![65002, 400]),
    ] {
        peer_b.send(&announce(&b, pfx, &path)).expect("send");
    }
    for (pfx, path) in [
        ("10.0.0.0/8", vec![65003, 200]),
        ("20.0.0.0/8", vec![65003, 200]),
        ("40.0.0.0/8", vec![65003, 400]),
    ] {
        peer_c.send(&announce(&c, pfx, &path)).expect("send");
    }
    peer_d
        .send(&announce(&d, "50.0.0.0/8", &[65004, 500]))
        .expect("send");
    wait_counter(&reg, "daemon.updates.count", 8);

    handle.reoptimize();
    let report = handle.stop();
    let agent_fabric = agent.join();
    assert_eq!(report.updates, 8);
    assert_eq!(counter(&reg, "daemon.reoptimize_failed.count"), 0);

    // Shard telemetry made it into the registry the endpoint serves.
    let snap = reg.snapshot();
    assert_eq!(snap.gauges.get("compile.shard.count"), Some(&4));
    assert!(
        snap.counters.contains_key("compile.shard.recompiled.count"),
        "per-shard compile counters missing"
    );

    // Oracle: sharded-over-sockets is verdict-identical to the
    // in-process unsharded deployment of the same exchange.
    let ctl = report.ctl;
    let cr = ctl.report.as_ref().expect("compiled");
    let probes = probe_grid(&ctl.compiler, &ctl.rs);
    let mut inproc = figure1_controller();
    let inproc_fabric = inproc.deploy().expect("in-process deploy");
    let inproc_cr = inproc.report.as_ref().expect("compiled");
    let sharded_eval =
        FabricEvaluator::over_table(&ctl.compiler, &ctl.rs, cr, agent_fabric.switch.table());
    let inproc_eval = FabricEvaluator::over_table(
        &inproc.compiler,
        &inproc.rs,
        inproc_cr,
        inproc_fabric.switch.table(),
    );
    for (from, pkt) in &probes {
        let (sharded_out, _) = sharded_eval.verdict(*from, pkt);
        let (inproc_out, _) = inproc_eval.verdict(*from, pkt);
        assert_eq!(
            sharded_out, inproc_out,
            "sharded daemon and unsharded in-process disagree at {from:?} dst {}",
            pkt.nw_dst
        );
    }
}

#[test]
fn hold_timer_expiry_and_tcp_reset_flaps_are_supervised() {
    let clock = MockClock::new();
    let mut cfg = DaemonConfig::default();
    cfg.tick_ms = 10;
    let handle =
        daemon::start_with_clock(figure1_empty_rib(), cfg, Arc::new(clock.clone())).expect("start");
    let reg = handle.telemetry().clone();

    // Hold-timer expiry: establish, then go silent while the (mock)
    // clock runs past the negotiated hold time.
    let mut peer = TestPeer::establish(handle.bgp_addr, 65002, 30).expect("peer");
    wait_counter(&reg, "session.established.count", 1);
    clock.advance(31_000);
    wait_counter(&reg, "session.reset.count", 1);
    // The daemon notified us before tearing the session down.
    let msg = peer.recv().expect("notification");
    assert!(
        matches!(msg, BgpMessage::Notification { .. }),
        "expected NOTIFICATION, got {msg:?}"
    );

    // TCP reset: reconnect, then vanish without a NOTIFICATION. The
    // supervisor flap-accounts the drop just the same.
    clock.advance(120_000); // clear reconnect backoff & decay penalty
    let peer2 = TestPeer::establish(handle.bgp_addr, 65002, 30).expect("reconnect");
    wait_counter(&reg, "session.established.count", 2);
    peer2.drop_connection();
    wait_counter(&reg, "session.reset.count", 2);

    // And the peer can come back again after the reset.
    clock.advance(120_000);
    let _peer3 = TestPeer::establish(handle.bgp_addr, 65002, 30).expect("re-reconnect");
    wait_counter(&reg, "session.established.count", 3);

    let report = handle.stop();
    assert_eq!(report.updates, 0);
}

/// An agent that rejects the first wave of a scheduled update (the
/// first apply frame after the pre-wave overlay-retirement sync),
/// then behaves — exercising the daemon's resynchronization path.
fn wave_rejecting_agent(addr: SocketAddr) -> JoinHandle<FlowTable> {
    std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        let read = stream.try_clone().expect("clone");
        let mut w = BufWriter::new(stream);
        let mut table = FlowTable::new();
        let mut syncs = 0u32;
        let mut fired = false;
        for line in BufReader::new(read).lines() {
            let Ok(line) = line else { break };
            let ack = match codec::decode_frame(&line).expect("frame") {
                codec::ChannelFrame::Sync { seq, batch } => {
                    syncs += 1;
                    table.clear();
                    table.apply_batch(&batch).expect("sync applies");
                    codec::encode_ack(seq, Ok(()))
                }
                codec::ChannelFrame::Apply { seq, batch } => {
                    // syncs == 1: steady state (connect image); syncs >= 2:
                    // a scheduled update retired the overlays — the next
                    // apply is wave 0.
                    if syncs >= 2 && !fired {
                        fired = true;
                        codec::encode_ack(seq, Err("injected agent failure"))
                    } else {
                        table.apply_batch(&batch).expect("apply");
                        codec::encode_ack(seq, Ok(()))
                    }
                }
            };
            if w.write_all(ack.as_bytes()).is_err()
                || w.write_all(b"\n").is_err()
                || w.flush().is_err()
            {
                break;
            }
        }
        table
    })
}

#[test]
fn rejected_wave_resyncs_the_agent_and_the_next_update_succeeds() {
    let handle = daemon::start(figure1_controller(), DaemonConfig::default()).expect("start");
    let reg = handle.telemetry().clone();
    let agent = wave_rejecting_agent(handle.openflow_addr);
    wait_counter(&reg, "daemon.switch_connected.count", 1);

    // A fast-path delta gives the scheduled update something to retire
    // and replan. The prefix must be policy-affected to land delta rules
    // in the switch table, so B (a target of A's outbound policy)
    // announces it.
    let b = ParticipantConfig::new(2, 65002, 2);
    let mut peer = TestPeer::establish(handle.bgp_addr, 65002, 30).expect("peer");
    peer.send(&announce(&b, "60.0.0.0/8", &[65002, 300]))
        .expect("send");
    wait_counter(&reg, "daemon.compiles.count", 1);

    // First scheduled update: the agent rejects wave 0, the fleet
    // barrier fails, the daemon restores its fabric and resyncs the
    // agent. Second scheduled update: clean.
    handle.reoptimize();
    handle.reoptimize();
    let report = handle.stop();
    let agent_table = agent.join().expect("agent thread");

    assert!(counter(&reg, "daemon.reoptimize_failed.count") >= 1);
    assert!(counter(&reg, "daemon.resync.count") >= 1);
    assert!(counter(&reg, "schedule.fanout_failed.count") >= 1);
    assert_eq!(
        &agent_table,
        report.fabric.switch.table(),
        "agent not reconverged after resync"
    );
}

#[test]
fn graceful_shutdown_drains_through_injected_faults() {
    let mut ctl = figure1_controller();
    // Every wave's first apply attempt fails; the scheduler's retry
    // budget absorbs it.
    ctl.faults = FaultPlan::seeded(11).fail_nth(InjectionPoint::FlowModApply { wave: 0 }, 1);
    let handle = daemon::start(ctl, DaemonConfig::default()).expect("start");
    let reg = handle.telemetry().clone();
    let agent = spawn_agent(handle.openflow_addr).expect("agent");
    wait_counter(&reg, "daemon.switch_connected.count", 1);

    // Announce from B so the prefix is policy-affected (A's outbound
    // policy forwards to B): the delta lands switch rules, and the
    // scheduled update has real waves for the fault plan to bite on.
    let b = ParticipantConfig::new(2, 65002, 2);
    let mut peer = TestPeer::establish(handle.bgp_addr, 65002, 30).expect("peer");
    peer.send(&announce(&b, "60.0.0.0/8", &[65002, 300]))
        .expect("send");
    wait_counter(&reg, "daemon.updates.count", 1);

    handle.reoptimize();
    let report = handle.stop();
    let agent_fabric = agent.join();

    assert_eq!(counter(&reg, "daemon.reoptimize_failed.count"), 0);
    assert_eq!(
        agent_fabric.switch.table(),
        report.fabric.switch.table(),
        "agent table diverged across fault retries and shutdown"
    );
    let events = reg.snapshot().events;
    let kind_pos = |k: &str| events.iter().position(|e| e.event.kind() == k);
    let started = kind_pos("daemon_started").expect("daemon_started");
    let established = kind_pos("session_established").expect("session_established");
    let injected = kind_pos("fault_injected").expect("fault_injected");
    let wave = kind_pos("update_wave_applied").expect("update_wave_applied");
    let stopped = kind_pos("daemon_stopped").expect("daemon_stopped");
    assert!(
        started < established && established < injected,
        "journal order"
    );
    assert!(injected < wave && wave < stopped, "journal order");
}
