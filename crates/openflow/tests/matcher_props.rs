//! Property tests pinning the compiled matcher to the linear walk.
//!
//! The `CompiledMatcher` is only allowed to exist because it is provably
//! indistinguishable from `classify_linear`: same entry index, same entry,
//! on every packet, for every reachable table state. These properties fuzz
//! that claim over random tables, random packets, and random mutation
//! sequences (including atomic flow-mod batches, the hot-swap path).

use proptest::prelude::*;
use sdx_net::{
    EtherType, FieldMatch, HeaderMatch, IpProto, Ipv4Addr, LocatedPacket, MacAddr, Mod, Packet,
    ParticipantId, PortId, Prefix,
};
use sdx_openflow::{FlowEntry, FlowMod, FlowModBatch, FlowTable};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ipv4Addr(a), l))
}

fn arb_port() -> impl Strategy<Value = PortId> {
    prop_oneof![
        (0u32..6, 0u8..2).prop_map(|(p, i)| PortId::Phys(ParticipantId(p), i)),
        (0u32..6).prop_map(|p| PortId::Virt(ParticipantId(p))),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_addr(),
        arb_addr(),
        any::<u16>(),
        0u16..32,
        prop_oneof![Just(IpProto::Tcp), Just(IpProto::Udp)],
        0u32..8,
    )
        .prop_map(|(s, d, ts, td, proto, md)| {
            let mut p = Packet::tcp(s, d, ts, td);
            p.nw_proto = proto;
            p.dl_dst = MacAddr::vmac(md);
            p
        })
}

fn arb_located() -> impl Strategy<Value = LocatedPacket> {
    (arb_port(), arb_packet()).prop_map(|(l, p)| LocatedPacket::at(l, p))
}

/// Biased (by arm repetition — the vendored `prop_oneof!` has no weight
/// syntax) toward the fields the indexes key on, so the exact/trie paths
/// get real coverage instead of everything landing in the residual list.
fn arb_field() -> impl Strategy<Value = FieldMatch> {
    prop_oneof![
        (0u32..8).prop_map(|i| FieldMatch::DlDst(MacAddr::vmac(i))),
        (0u32..8).prop_map(|i| FieldMatch::DlDst(MacAddr::vmac(i))),
        arb_port().prop_map(FieldMatch::InPort),
        arb_port().prop_map(FieldMatch::InPort),
        arb_prefix().prop_map(FieldMatch::NwDst),
        arb_prefix().prop_map(FieldMatch::NwDst),
        arb_prefix().prop_map(FieldMatch::NwSrc),
        (0u16..32).prop_map(FieldMatch::TpDst),
        (0u16..64).prop_map(FieldMatch::TpSrc),
        prop_oneof![Just(IpProto::Tcp), Just(IpProto::Udp)].prop_map(FieldMatch::NwProto),
        Just(FieldMatch::EthType(EtherType::Ipv4)),
    ]
}

fn arb_match() -> impl Strategy<Value = HeaderMatch> {
    proptest::collection::vec(arb_field(), 0..3).prop_map(|fs| {
        let mut m = HeaderMatch::any();
        for f in fs {
            m.set(f);
        }
        m
    })
}

/// Narrow priority range on purpose: dense bands stress the equal-priority
/// tie-break (table order), the hardest part of matcher equivalence.
fn arb_entry() -> impl Strategy<Value = (u32, HeaderMatch)> {
    (0u32..8, arb_match())
}

/// One step of the mutation surface the matcher must stay coherent under.
#[derive(Clone, Debug)]
enum Op {
    Install(u32, HeaderMatch),
    Delete(u32, HeaderMatch),
    RemovePattern(HeaderMatch),
    RemoveAtOrAbove(u32),
    Modify(u32, HeaderMatch),
    Batch(Vec<(u32, HeaderMatch)>),
    Clear,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Installs repeated so tables actually grow between destructive ops.
    prop_oneof![
        arb_entry().prop_map(|(p, m)| Op::Install(p, m)),
        arb_entry().prop_map(|(p, m)| Op::Install(p, m)),
        arb_entry().prop_map(|(p, m)| Op::Install(p, m)),
        arb_entry().prop_map(|(p, m)| Op::Install(p, m)),
        arb_entry().prop_map(|(p, m)| Op::Delete(p, m)),
        arb_match().prop_map(Op::RemovePattern),
        (0u32..8).prop_map(Op::RemoveAtOrAbove),
        arb_entry().prop_map(|(p, m)| Op::Modify(p, m)),
        proptest::collection::vec(arb_entry(), 1..4).prop_map(Op::Batch),
        Just(Op::Clear),
    ]
}

fn assert_equivalent(t: &FlowTable, probes: &[LocatedPacket]) {
    for lp in probes {
        let fast = t.classify(lp).map(|(i, e)| (i, e.priority, e.pattern));
        let linear = t
            .classify_linear(lp)
            .map(|(i, e)| (i, e.priority, e.pattern));
        assert_eq!(
            fast,
            linear,
            "diverged on {:?} over {} entries",
            lp,
            t.len()
        );
    }
}

proptest! {
    /// Random table, random packets: `classify` ≡ `classify_linear`.
    #[test]
    fn compiled_matcher_equals_linear_walk(
        entries in proptest::collection::vec(arb_entry(), 0..48),
        probes in proptest::collection::vec(arb_located(), 1..24),
    ) {
        let mut t = FlowTable::new();
        for (p, m) in entries {
            t.install(FlowEntry::new(p, m, vec![vec![Mod::SetLoc(PortId::Virt(ParticipantId(0)))]]));
        }
        assert_equivalent(&t, &probes);
    }

    /// Equivalence survives arbitrary mutation sequences — the incremental
    /// maintenance, bulk rebuilds, and the flow-mod hot-swap all preserve
    /// the invariant at every intermediate state.
    #[test]
    fn compiled_matcher_coherent_under_mutation(
        ops in proptest::collection::vec(arb_op(), 1..24),
        probes in proptest::collection::vec(arb_located(), 1..12),
    ) {
        let mut t = FlowTable::new();
        for op in ops {
            match op {
                Op::Install(p, m) => t.install(FlowEntry::new(p, m, vec![])),
                Op::Delete(p, m) => {
                    t.delete_exact(p, &m);
                }
                Op::RemovePattern(m) => {
                    t.remove(&m);
                }
                Op::RemoveAtOrAbove(p) => {
                    t.remove_at_or_above(p);
                }
                Op::Modify(p, m) => {
                    t.modify_in_place(p, &m, &[vec![Mod::SetTpDst(9)]], 3);
                }
                Op::Batch(adds) => {
                    let mut batch = FlowModBatch::new(0);
                    for (p, m) in adds {
                        // The delta protocol rejects duplicate adds and the
                        // whole batch atomically — both outcomes must leave
                        // a coherent matcher.
                        batch.push(FlowMod::Add(FlowEntry::new(p, m, vec![])));
                    }
                    let _ = t.apply_batch(&batch);
                }
                Op::Clear => t.clear(),
            }
            assert_equivalent(&t, &probes);
        }
    }
}
