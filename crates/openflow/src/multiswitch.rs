//! Multi-switch SDX fabrics (§4.1's topology abstraction).
//!
//! *"More generally, the SDX may consist of multiple physical switches,
//! each connected to a subset of the participants. Fortunately, we can
//! rely on Pyretic's existing support for topology abstraction to combine
//! a policy written for a single SDX switch with another policy for
//! routing across multiple physical switches."*
//!
//! This module is that combination step: the controller still compiles
//! ONE logical classifier (the single-big-switch illusion); the
//! [`MultiFabric`] distributes it. The scheme mirrors what production
//! fabrics do:
//!
//! * every physical switch carries the full logical classifier — the
//!   classification decision is made once, at the ingress switch;
//! * the chosen output port is encoded on inter-switch (trunk) frames, so
//!   transit switches forward without re-classifying (re-classification
//!   after header rewrites would be wrong, not just slow);
//! * each switch knows which ports are local; non-local outputs leave via
//!   the trunk toward the owning switch (single-trunk full-mesh model —
//!   IXP fabrics are small diameter).

use std::collections::BTreeMap;

use sdx_net::{LocatedPacket, Packet, PortId};
use sdx_policy::Classifier;

use crate::arp::ArpResponder;
use crate::border_router::BorderRouter;
use crate::flowmod::{BatchStats, FlowModBatch, FlowModError};
use crate::switch::Switch;
use crate::table::FlowTable;

/// Identifier of one physical switch in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SwitchId(pub u32);

/// A frame crossing the trunk: the packet plus the already-decided output.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrunkFrame {
    /// The (possibly rewritten) packet.
    pub pkt: Packet,
    /// The final output port, decided at the ingress switch.
    pub out: PortId,
}

/// A physically distributed SDX fabric presenting the same API surface as
/// the single-switch [`crate::fabric::Fabric`].
#[derive(Clone, Debug, Default)]
pub struct MultiFabric {
    switches: BTreeMap<SwitchId, Switch>,
    /// Which switch owns each participant port.
    attachment: BTreeMap<PortId, SwitchId>,
    routers: BTreeMap<PortId, BorderRouter>,
    /// The controller-operated ARP responder (fabric-wide).
    pub arp: ArpResponder,
    /// Frames that crossed the trunk (diagnostics: how much traffic the
    /// physical distribution costs).
    pub trunk_frames: u64,
    /// Outputs at virtual locations — a compilation bug if non-zero.
    pub stuck_at_virtual: u64,
}

impl MultiFabric {
    /// An empty fabric.
    pub fn new() -> Self {
        MultiFabric::default()
    }

    /// Adds a physical switch.
    pub fn add_switch(&mut self, id: SwitchId) {
        self.switches.entry(id).or_default();
    }

    /// Attaches a border router's port to a switch.
    ///
    /// # Panics
    /// Panics if the switch was never added — wiring errors are
    /// configuration bugs, not runtime conditions.
    pub fn attach(&mut self, switch: SwitchId, router: BorderRouter) {
        assert!(
            self.switches.contains_key(&switch),
            "attach to unknown switch {switch:?}"
        );
        self.attachment.insert(router.port, switch);
        self.routers.insert(router.port, router);
    }

    /// The router at `port`, if attached.
    pub fn router(&self, port: PortId) -> Option<&BorderRouter> {
        self.routers.get(&port)
    }

    /// Mutable router access (route-server updates).
    pub fn router_mut(&mut self, port: PortId) -> Option<&mut BorderRouter> {
        self.routers.get_mut(&port)
    }

    /// All attached ports of a participant.
    pub fn ports_of(&self, p: sdx_net::ParticipantId) -> Vec<PortId> {
        self.routers
            .keys()
            .copied()
            .filter(|port| port.participant() == p)
            .collect()
    }

    /// Installs the logical classifier on **every** switch — the topology
    /// abstraction's distribution step.
    pub fn load_classifier(&mut self, c: &Classifier) {
        for sw in self.switches.values_mut() {
            sw.load_classifier(c);
        }
    }

    /// Total installed rules across switches (the physical-distribution
    /// cost Figure 7 would multiply by).
    pub fn total_rules(&self) -> usize {
        self.switches.values().map(|s| s.table().len()).sum()
    }

    /// Number of physical switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// The switch ids, ascending.
    pub fn switch_ids(&self) -> Vec<SwitchId> {
        self.switches.keys().copied().collect()
    }

    /// The flow table of one switch, if it exists.
    pub fn table_of(&self, id: SwitchId) -> Option<&FlowTable> {
        self.switches.get(&id).map(|s| s.table())
    }

    /// Mutable access to every switch's flow table at once. The
    /// scheduled-wave fan-out uses this to apply one wave to all switches
    /// concurrently on scoped threads — each table is an independent
    /// borrow, so the compiler proves the parallelism safe.
    pub fn tables_mut(&mut self) -> Vec<(SwitchId, &mut FlowTable)> {
        self.switches
            .iter_mut()
            .map(|(id, sw)| (*id, sw.table_mut()))
            .collect()
    }

    /// Applies one atomic flow-mod batch to **every** switch — the
    /// distribution step of the topology abstraction, mirroring
    /// [`load_classifier`](MultiFabric::load_classifier) for the
    /// delta-first path. All switches carry the same logical table by
    /// construction, so a batch either applies everywhere or fails on the
    /// first switch before any other is touched.
    pub fn apply_flowmods(&mut self, batch: &FlowModBatch) -> Result<BatchStats, FlowModError> {
        let mut stats = BatchStats::default();
        for sw in self.switches.values_mut() {
            stats = sw.table_mut().apply_batch(batch)?;
        }
        Ok(stats)
    }

    /// A participant-originated packet: border-router forwarding (FIB +
    /// ARP tag), ingress-switch classification, local delivery or trunk
    /// transit.
    pub fn send(&mut self, from: PortId, pkt: Packet) -> Vec<LocatedPacket> {
        let Some(router) = self.routers.get_mut(&from) else {
            return Vec::new();
        };
        let Some(tagged) = router.forward(pkt, &mut self.arp) else {
            return Vec::new();
        };
        let Some(&ingress) = self.attachment.get(&from) else {
            return Vec::new();
        };
        let decided = {
            let sw = self.switches.get_mut(&ingress).expect("attached switch");
            sw.process(tagged)
        };
        let mut out = Vec::new();
        for d in decided {
            if !d.loc.is_physical() {
                self.stuck_at_virtual += 1;
                continue;
            }
            match self.attachment.get(&d.loc) {
                Some(&owner) if owner == ingress => out.push(d),
                Some(_) => {
                    // Trunk transit: the decision travels with the frame;
                    // the egress switch delivers without re-classifying.
                    self.trunk_frames += 1;
                    let frame = TrunkFrame {
                        pkt: d.pkt,
                        out: d.loc,
                    };
                    out.push(LocatedPacket::at(frame.out, frame.pkt));
                }
                None => {
                    // Output to a port nothing is attached to: dropped.
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use sdx_bgp::attrs::{AsPath, PathAttributes};
    use sdx_bgp::msg::UpdateMessage;
    use sdx_net::{ip, prefix, FieldMatch, HeaderMatch, MacAddr, Mod, ParticipantId};
    use sdx_policy::classifier::{Action, Rule};

    fn port(p: u32, i: u8) -> PortId {
        PortId::Phys(ParticipantId(p), i)
    }

    fn router_with_route(p: u32, mac_id: u32) -> BorderRouter {
        let mut r = BorderRouter::new(port(p, 1), MacAddr::physical(mac_id));
        r.apply_update(&UpdateMessage::announce(
            [prefix("20.0.0.0/8")],
            PathAttributes::new(AsPath::sequence([65002]), ip("172.16.255.1")),
        ));
        r
    }

    fn classifier() -> Classifier {
        Classifier::from_rules(vec![Rule::unicast(
            HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(7))),
            Action {
                mods: vec![
                    Mod::SetDlDst(MacAddr::physical(21)),
                    Mod::SetLoc(port(2, 1)),
                ],
            },
        )])
    }

    /// Two switches: sender on switch 0, receiver on switch 1.
    fn split_fabric() -> MultiFabric {
        let mut f = MultiFabric::new();
        f.add_switch(SwitchId(0));
        f.add_switch(SwitchId(1));
        f.attach(SwitchId(0), router_with_route(1, 11));
        f.attach(
            SwitchId(1),
            BorderRouter::new(port(2, 1), MacAddr::physical(21)),
        );
        f.arp.bind(ip("172.16.255.1"), MacAddr::vmac(7));
        f.load_classifier(&classifier());
        f
    }

    #[test]
    fn cross_switch_delivery_uses_the_trunk() {
        let mut f = split_fabric();
        let out = f.send(
            port(1, 1),
            Packet::tcp(ip("9.9.9.9"), ip("20.0.0.1"), 5, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2, 1));
        assert_eq!(out[0].pkt.dl_dst, MacAddr::physical(21));
        assert_eq!(f.trunk_frames, 1);
        assert_eq!(f.stuck_at_virtual, 0);
    }

    #[test]
    fn same_switch_delivery_stays_local() {
        let mut f = MultiFabric::new();
        f.add_switch(SwitchId(0));
        f.attach(SwitchId(0), router_with_route(1, 11));
        f.attach(
            SwitchId(0),
            BorderRouter::new(port(2, 1), MacAddr::physical(21)),
        );
        f.arp.bind(ip("172.16.255.1"), MacAddr::vmac(7));
        f.load_classifier(&classifier());
        let out = f.send(
            port(1, 1),
            Packet::tcp(ip("9.9.9.9"), ip("20.0.0.1"), 5, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(f.trunk_frames, 0, "no trunk for local delivery");
    }

    #[test]
    fn behaviour_matches_single_switch_fabric() {
        // Differential check: the same classifier on a single-switch
        // Fabric and on a split MultiFabric delivers identically.
        let mut single = Fabric::new();
        single.attach(router_with_route(1, 11));
        single.attach(BorderRouter::new(port(2, 1), MacAddr::physical(21)));
        single.arp.bind(ip("172.16.255.1"), MacAddr::vmac(7));
        single.switch.load_classifier(&classifier());
        let mut multi = split_fabric();

        for dport in [80u16, 443, 22] {
            let pkt = Packet::tcp(ip("9.9.9.9"), ip("20.0.0.1"), 5, dport);
            let a = single.send(port(1, 1), pkt);
            let b = multi.send(port(1, 1), pkt);
            assert_eq!(a, b, "dport {dport}");
        }
    }

    #[test]
    fn rules_replicate_per_switch() {
        let f = split_fabric();
        assert_eq!(f.switch_count(), 2);
        // The logical table is installed on every switch.
        assert_eq!(f.total_rules(), 2 * classifier().rules().len());
    }

    #[test]
    fn apply_flowmods_reaches_every_switch() {
        use crate::flowmod::{FlowMod, FlowModBatch};
        use crate::table::FlowEntry;
        let mut f = split_fabric();
        let before = f.total_rules();
        let mut batch = FlowModBatch::new(1);
        batch.push(FlowMod::Add(FlowEntry::new(
            5,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(2, 1))]],
        )));
        let stats = f.apply_flowmods(&batch).unwrap();
        assert_eq!(stats.adds, 1);
        assert_eq!(f.total_rules(), before + f.switch_count());
        for id in f.switch_ids() {
            assert!(f
                .table_of(id)
                .unwrap()
                .entries()
                .iter()
                .any(|e| e.priority == 5));
        }
        // tables_mut hands out one independent borrow per switch.
        let tables = f.tables_mut();
        assert_eq!(tables.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown switch")]
    fn attaching_to_missing_switch_panics() {
        let mut f = MultiFabric::new();
        f.attach(
            SwitchId(9),
            BorderRouter::new(port(1, 1), MacAddr::physical(1)),
        );
    }
}
