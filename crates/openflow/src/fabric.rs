//! The exchange-point fabric: border routers + SDX switch + ARP responder.
//!
//! This is the layer-two island the paper's Figure 1 draws: every
//! participant border router hangs off a port of the (logical) SDX switch.
//! The fabric wires the pieces together so tests and examples can say
//! "participant A sends this IP packet" and observe which participant
//! router(s) receive it, after the full pipeline: FIB → VNH/ARP tagging →
//! flow-table classification → delivery.

use std::collections::BTreeMap;

use sdx_net::{LocatedPacket, Packet, ParticipantId, PortId};
use sdx_telemetry::SharedRegistry;

use crate::arp::ArpResponder;
use crate::border_router::BorderRouter;
use crate::flowmod::{BatchStats, FlowModBatch, FlowModError};
use crate::switch::Switch;

/// A delivery out of the fabric: the physical port it left on.
pub type Delivery = LocatedPacket;

/// The assembled IXP data plane.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Fabric {
    /// The SDX switch.
    pub switch: Switch,
    /// The controller-operated ARP responder.
    pub arp: ArpResponder,
    routers: BTreeMap<PortId, BorderRouter>,
    /// Packets the switch emitted at a *virtual* location — a compiled
    /// policy must never do this; non-zero means a compilation bug.
    pub stuck_at_virtual: u64,
    /// Traffic counters land here. `SharedRegistry` compares equal to any
    /// other handle, so snapshot/restore equality of the *installed state*
    /// is unaffected by where the fabric reports metrics.
    telemetry: SharedRegistry,
    /// Opt-in recorder of every batch [`apply_flowmods`](Fabric::apply_flowmods)
    /// accepted, in order (see [`enable_batch_log`](Fabric::enable_batch_log)).
    batch_log: BatchLog,
}

/// The applied-batch recorder behind [`Fabric::enable_batch_log`].
///
/// Compares equal to any other log, like the telemetry handle: what the
/// fabric *has installed* is unaffected by what it has not yet streamed,
/// so snapshot equality checks must not see this field. It clones deep,
/// though — a snapshot captures the unstreamed backlog, and a rollback
/// retracts batches that were applied and then undone, so they are never
/// streamed to external switch agents.
#[derive(Clone, Debug, Default)]
pub struct BatchLog {
    enabled: bool,
    batches: Vec<FlowModBatch>,
}

impl PartialEq for BatchLog {
    fn eq(&self, _: &BatchLog) -> bool {
        true
    }
}

impl Fabric {
    /// An empty fabric.
    pub fn new() -> Self {
        Fabric::default()
    }

    /// Points this fabric's traffic counters at `reg` (the controller's
    /// `deploy` shares its registry in).
    pub fn set_telemetry(&mut self, reg: SharedRegistry) {
        self.telemetry = reg;
    }

    /// The registry this fabric emits into.
    pub fn telemetry(&self) -> &SharedRegistry {
        &self.telemetry
    }

    /// Attaches a border router at its port.
    pub fn attach(&mut self, router: BorderRouter) {
        self.routers.insert(router.port, router);
    }

    /// The router attached at `port`, if any.
    pub fn router(&self, port: PortId) -> Option<&BorderRouter> {
        self.routers.get(&port)
    }

    /// Mutable access (e.g. to apply route-server updates).
    pub fn router_mut(&mut self, port: PortId) -> Option<&mut BorderRouter> {
        self.routers.get_mut(&port)
    }

    /// All attached router ports.
    pub fn ports(&self) -> impl Iterator<Item = PortId> + '_ {
        self.routers.keys().copied()
    }

    /// Routers of a given participant (multi-port participants have several).
    pub fn ports_of(&self, p: ParticipantId) -> Vec<PortId> {
        self.routers
            .keys()
            .copied()
            .filter(|port| port.participant() == p)
            .collect()
    }

    /// A participant-originated IP packet: the border router at
    /// `from` forwards it (FIB + ARP tag), then the switch classifies and
    /// delivers. Returns the deliveries at physical ports.
    pub fn send(&mut self, from: PortId, pkt: Packet) -> Vec<Delivery> {
        self.telemetry.inc("fabric.tx.count");
        let Some(router) = self.routers.get_mut(&from) else {
            return Vec::new();
        };
        let Some(tagged) = router.forward(pkt, &mut self.arp) else {
            self.telemetry.inc("fabric.no_route.count");
            return Vec::new();
        };
        self.inject(tagged)
    }

    /// Injects an already-located packet straight into the switch (used by
    /// tests that need precise control over the tag).
    pub fn inject(&mut self, lp: LocatedPacket) -> Vec<Delivery> {
        let mut out = Vec::new();
        for delivered in self.switch.process(lp) {
            if delivered.loc.is_physical() {
                out.push(delivered);
            } else {
                self.stuck_at_virtual += 1;
                self.telemetry.inc("fabric.stuck_at_virtual.count");
            }
        }
        self.telemetry
            .add("fabric.delivered.count", out.len() as u64);
        out
    }

    /// Applies one atomic flow-mod batch to the SDX switch table,
    /// accounting it: per-op counters (`fabric.flowmod.{add,modify,
    /// delete}.count`), the batch counter, and the per-batch size
    /// histogram. A rejected batch leaves the table untouched and counts
    /// against `fabric.flowmod.rejected.count`.
    pub fn apply_flowmods(&mut self, batch: &FlowModBatch) -> Result<BatchStats, FlowModError> {
        match self.switch.table_mut().apply_batch(batch) {
            Ok(stats) => {
                if self.batch_log.enabled {
                    self.batch_log.batches.push(batch.clone());
                }
                self.telemetry.inc("fabric.flowmod.batch.count");
                self.telemetry
                    .add("fabric.flowmod.add.count", stats.adds as u64);
                self.telemetry
                    .add("fabric.flowmod.modify.count", stats.modifies as u64);
                self.telemetry
                    .add("fabric.flowmod.delete.count", stats.deletes as u64);
                self.telemetry
                    .observe("fabric.flowmod.batch_size", stats.total() as u64);
                Ok(stats)
            }
            Err(e) => {
                self.telemetry.inc("fabric.flowmod.rejected.count");
                Err(e)
            }
        }
    }

    /// Starts recording every accepted flow-mod batch. The `sdx-runtime`
    /// daemon uses this as its tap: the controller applies batches to the
    /// local fabric through all its usual paths (delta overlay, scheduled
    /// waves, reoptimize), and the daemon drains the log to stream the
    /// *exact same* batches to external switch agents. Rejected batches
    /// are never recorded; rolled-back ones are retracted by `restore`.
    pub fn enable_batch_log(&mut self) {
        self.batch_log.enabled = true;
    }

    /// Takes the recorded batches accumulated since the last drain,
    /// oldest first. Empty (and free) unless
    /// [`enable_batch_log`](Fabric::enable_batch_log) was called.
    pub fn drain_batches(&mut self) -> Vec<FlowModBatch> {
        std::mem::take(&mut self.batch_log.batches)
    }

    /// Captures the complete fabric state — flow table, ARP responder,
    /// every border router's FIB and ARP cache, and the counters — as a
    /// last-known-good image a transaction can roll back to.
    pub fn snapshot(&self) -> FabricSnapshot {
        FabricSnapshot {
            fabric: self.clone(),
        }
    }

    /// Restores the fabric to a previously captured snapshot, discarding
    /// every change made since.
    pub fn restore(&mut self, snapshot: FabricSnapshot) {
        *self = snapshot.fabric;
    }
}

/// An owned, immutable image of a [`Fabric`] at a point in time (see
/// [`Fabric::snapshot`]). Comparing a fabric against a snapshot's
/// [`view`](FabricSnapshot::view) checks byte-for-byte equivalence of the
/// installed state.
#[derive(Clone, PartialEq, Debug)]
pub struct FabricSnapshot {
    fabric: Fabric,
}

impl FabricSnapshot {
    /// The captured fabric image.
    pub fn view(&self) -> &Fabric {
        &self.fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::FlowEntry;
    use sdx_bgp::attrs::{AsPath, PathAttributes};
    use sdx_bgp::msg::UpdateMessage;
    use sdx_net::{ip, prefix, FieldMatch, HeaderMatch, MacAddr, Mod};

    fn port(p: u32, i: u8) -> PortId {
        PortId::Phys(ParticipantId(p), i)
    }

    /// A two-participant fabric: A (port A1) sends, B (port B1) receives.
    /// The switch matches the VMAC tag and rewrites it to B's physical MAC
    /// — the paper's stage-2 behaviour.
    fn two_party_fabric() -> Fabric {
        let mut f = Fabric::new();
        let mut a = BorderRouter::new(port(1, 1), MacAddr::physical(11));
        // Route server told A: 74.125/16 via VNH 172.16.255.1.
        a.apply_update(&UpdateMessage::announce(
            [prefix("74.125.0.0/16")],
            PathAttributes::new(AsPath::sequence([65002]), ip("172.16.255.1")),
        ));
        f.attach(a);
        f.attach(BorderRouter::new(port(2, 1), MacAddr::physical(21)));
        f.arp.bind(ip("172.16.255.1"), MacAddr::vmac(7));
        // Stage-2 rule: FEC tag 7 → rewrite to B1's MAC, output B1.
        f.switch.install(FlowEntry::new(
            10,
            HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(7))),
            vec![vec![
                Mod::SetDlDst(MacAddr::physical(21)),
                Mod::SetLoc(port(2, 1)),
            ]],
        ));
        f
    }

    #[test]
    fn end_to_end_delivery() {
        let mut f = two_party_fabric();
        let out = f.send(
            port(1, 1),
            Packet::tcp(ip("10.0.0.1"), ip("74.125.1.1"), 5, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2, 1));
        // The VMAC tag was rewritten to the receiver's physical MAC, so B's
        // router will accept the frame (the paper's dstmac rewrite).
        assert_eq!(out[0].pkt.dl_dst, MacAddr::physical(21));
        assert_eq!(f.stuck_at_virtual, 0);
    }

    #[test]
    fn unrouted_traffic_goes_nowhere() {
        let mut f = two_party_fabric();
        let out = f.send(
            port(1, 1),
            Packet::tcp(ip("10.0.0.1"), ip("9.9.9.9"), 5, 80),
        );
        assert!(out.is_empty());
        assert_eq!(f.router(port(1, 1)).unwrap().no_route_drops, 1);
    }

    #[test]
    fn send_from_unknown_port_is_noop() {
        let mut f = two_party_fabric();
        assert!(f
            .send(port(9, 1), Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 5, 80))
            .is_empty());
    }

    #[test]
    fn virtual_outputs_are_flagged() {
        let mut f = two_party_fabric();
        f.switch.install(FlowEntry::new(
            100,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(PortId::Virt(ParticipantId(2)))]],
        ));
        let out = f.send(
            port(1, 1),
            Packet::tcp(ip("10.0.0.1"), ip("74.125.1.1"), 5, 80),
        );
        assert!(out.is_empty());
        assert_eq!(f.stuck_at_virtual, 1);
    }

    #[test]
    fn snapshot_restores_byte_for_byte() {
        let mut f = two_party_fabric();
        let snap = f.snapshot();
        assert_eq!(&f, snap.view());
        // Mutate every component: traffic (counters + router ARP), a new
        // flow rule, a new responder binding.
        f.send(
            port(1, 1),
            Packet::tcp(ip("10.0.0.1"), ip("74.125.1.1"), 5, 80),
        );
        f.switch.install(FlowEntry::new(
            99,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(2, 1))]],
        ));
        f.arp.bind(ip("172.16.255.2"), MacAddr::vmac(8));
        assert_ne!(&f, snap.view());
        f.restore(snap.clone());
        assert_eq!(&f, snap.view(), "restore is exact");
    }

    #[test]
    fn batch_log_records_applied_batches_and_rolls_back() {
        use crate::flowmod::FlowMod;
        let mut f = two_party_fabric();
        f.enable_batch_log();
        let mut b1 = FlowModBatch::new(1);
        b1.push(FlowMod::Add(FlowEntry::new(
            50,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(2, 1))]],
        )));
        f.apply_flowmods(&b1).unwrap();

        let snap = f.snapshot();
        let mut b2 = FlowModBatch::new(2);
        b2.push(FlowMod::Add(FlowEntry::new(
            51,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(1, 1))]],
        )));
        f.apply_flowmods(&b2).unwrap();
        // Roll back: the second batch was applied then undone, so it must
        // not survive in the log to be streamed.
        f.restore(snap);
        let drained = f.drain_batches();
        assert_eq!(drained, vec![b1]);
        assert!(f.drain_batches().is_empty(), "drain empties the log");
    }

    #[test]
    fn batch_log_skips_rejected_batches_and_is_off_by_default() {
        use crate::flowmod::FlowMod;
        let mut f = two_party_fabric();
        // Off by default: nothing is recorded.
        let mut ok = FlowModBatch::new(1);
        ok.push(FlowMod::Add(FlowEntry::new(
            50,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(2, 1))]],
        )));
        f.apply_flowmods(&ok).unwrap();
        assert!(f.drain_batches().is_empty());

        f.enable_batch_log();
        // A rejected batch (delete of a non-existent rule) leaves no trace.
        let mut bad = FlowModBatch::new(2);
        bad.push(FlowMod::Delete {
            priority: 9999,
            pattern: HeaderMatch::any(),
        });
        assert!(f.apply_flowmods(&bad).is_err());
        assert!(f.drain_batches().is_empty());
        // Accepted batches are recorded once logging is on.
        let mut ok2 = FlowModBatch::new(3);
        ok2.push(FlowMod::Add(FlowEntry::new(
            51,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(1, 1))]],
        )));
        f.apply_flowmods(&ok2).unwrap();
        assert_eq!(f.drain_batches().len(), 1);
    }

    #[test]
    fn ports_of_groups_by_participant() {
        let mut f = two_party_fabric();
        f.attach(BorderRouter::new(port(1, 2), MacAddr::physical(12)));
        let mut ps = f.ports_of(ParticipantId(1));
        ps.sort();
        assert_eq!(ps, vec![port(1, 1), port(1, 2)]);
        assert_eq!(f.ports().count(), 3);
    }
}
