//! A middlebox attached to an SDX port.
//!
//! §2 of the paper motivates redirection through middleboxes; §8 envisions
//! *service chaining* — steering traffic through a **sequence** of
//! middleboxes. A middlebox here is a bump on a fabric port: it receives
//! frames delivered to its port, applies its function (counted; the
//! simulator models processing as an optional header transform), and
//! re-injects the traffic toward its original destination through the
//! port's border router — whereupon the next hop of the chain (or plain
//! BGP) takes over.

use sdx_net::{LocatedPacket, Packet, PortId};

use crate::fabric::{Delivery, Fabric};

/// The packet transform a middlebox applies; identity for monitors and
/// scrubbers, a header rewrite for NATs etc.
pub type MiddleboxFn = fn(Packet) -> Packet;

/// A middlebox behind one fabric port.
#[derive(Clone, Debug)]
pub struct Middlebox {
    /// The port this middlebox hangs off.
    pub port: PortId,
    /// Human-readable label for logs/series.
    pub label: String,
    /// Packets processed so far.
    pub processed: u64,
    transform: MiddleboxFn,
}

impl Middlebox {
    /// A pass-through middlebox (scrubber/monitor/transcoder model).
    pub fn passthrough(port: PortId, label: impl Into<String>) -> Self {
        Middlebox {
            port,
            label: label.into(),
            processed: 0,
            transform: |p| p,
        }
    }

    /// A middlebox applying a custom header transform.
    pub fn with_transform(port: PortId, label: impl Into<String>, f: MiddleboxFn) -> Self {
        Middlebox {
            port,
            label: label.into(),
            processed: 0,
            transform: f,
        }
    }

    /// Processes one delivered frame and re-injects it into the fabric via
    /// the port's border router (FIB + ARP, like any originated traffic).
    pub fn process(&mut self, fabric: &mut Fabric, delivered: LocatedPacket) -> Vec<Delivery> {
        debug_assert_eq!(delivered.loc, self.port, "frame delivered elsewhere");
        self.processed += 1;
        let out = (self.transform)(delivered.pkt);
        fabric.send(self.port, out)
    }
}

/// Drives a packet through the fabric *and* a set of middleboxes until it
/// reaches a port without one (the real recipient) or the hop budget runs
/// out (a chain misconfiguration — reported as `None`).
pub fn run_through_chain(
    fabric: &mut Fabric,
    middleboxes: &mut [Middlebox],
    from: PortId,
    pkt: Packet,
    max_hops: usize,
) -> Option<Vec<Delivery>> {
    let mut in_flight = fabric.send(from, pkt);
    for _ in 0..max_hops {
        let mut next = Vec::new();
        let mut done = Vec::new();
        for d in in_flight {
            match middleboxes.iter_mut().find(|m| m.port == d.loc) {
                Some(mbox) => next.extend(mbox.process(fabric, d)),
                None => done.push(d),
            }
        }
        if next.is_empty() {
            return Some(done);
        }
        // Any frames that already reached real recipients stay delivered.
        next.extend(done);
        in_flight = next;
    }
    None // hop budget exhausted: the chain loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::border_router::BorderRouter;
    use crate::table::FlowEntry;
    use sdx_bgp::attrs::{AsPath, PathAttributes};
    use sdx_bgp::msg::UpdateMessage;
    use sdx_net::{ip, prefix, FieldMatch, HeaderMatch, MacAddr, Mod, ParticipantId};

    fn port(p: u32, i: u8) -> PortId {
        PortId::Phys(ParticipantId(p), i)
    }

    /// A fabric where A sends, E hosts a middlebox, B receives: traffic is
    /// steered A→E (in-port rule), then E's re-injection forwards to B.
    fn chain_fabric() -> (Fabric, Middlebox) {
        let mut f = Fabric::new();
        let mut a = BorderRouter::new(port(1, 1), MacAddr::physical(11));
        a.apply_update(&UpdateMessage::announce(
            [prefix("20.0.0.0/8")],
            PathAttributes::new(AsPath::sequence([65002]), ip("172.16.0.9")),
        ));
        f.attach(a);
        let mut e = BorderRouter::new(port(5, 1), MacAddr::physical(51));
        e.apply_update(&UpdateMessage::announce(
            [prefix("20.0.0.0/8")],
            PathAttributes::new(AsPath::sequence([65002]), ip("172.16.0.9")),
        ));
        f.attach(e);
        f.attach(BorderRouter::new(port(2, 1), MacAddr::physical(21)));
        f.arp.bind(ip("172.16.0.9"), MacAddr::physical(21));
        // Steering: traffic entering at A1 diverts to E1 (MAC-rewritten);
        // traffic entering at E1 goes to B (delivery rule by B's MAC).
        f.switch.install(FlowEntry::new(
            100,
            HeaderMatch::of(FieldMatch::InPort(port(1, 1))),
            vec![vec![
                Mod::SetDlDst(MacAddr::physical(51)),
                Mod::SetLoc(port(5, 1)),
            ]],
        ));
        f.switch.install(FlowEntry::new(
            50,
            HeaderMatch::of(FieldMatch::DlDst(MacAddr::physical(21))),
            vec![vec![Mod::SetLoc(port(2, 1))]],
        ));
        (f, Middlebox::passthrough(port(5, 1), "scrubber"))
    }

    #[test]
    fn middlebox_processes_and_reinjects() {
        let (mut f, mut mbox) = chain_fabric();
        let out = run_through_chain(
            &mut f,
            std::slice::from_mut(&mut mbox),
            port(1, 1),
            Packet::tcp(ip("9.9.9.9"), ip("20.0.0.1"), 40_000, 80),
            4,
        )
        .expect("chain terminates");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2, 1));
        assert_eq!(mbox.processed, 1);
    }

    #[test]
    fn transform_applies() {
        let (mut f, _) = chain_fabric();
        let mut nat = Middlebox::with_transform(port(5, 1), "nat", |mut p| {
            p.nw_src = sdx_net::Ipv4Addr::new(100, 64, 0, 1);
            p
        });
        let out = run_through_chain(
            &mut f,
            std::slice::from_mut(&mut nat),
            port(1, 1),
            Packet::tcp(ip("9.9.9.9"), ip("20.0.0.1"), 40_000, 80),
            4,
        )
        .expect("terminates");
        assert_eq!(out[0].pkt.nw_src, sdx_net::Ipv4Addr::new(100, 64, 0, 1));
    }

    #[test]
    fn looping_chain_hits_the_hop_budget() {
        let (mut f, mbox) = chain_fabric();
        // Sabotage: two middleboxes steered at each other ping-pong
        // forever. (A1 gets a middlebox too, and the steering rules send
        // E1's traffic to A1 and A1's traffic to E1.)
        f.switch.install(FlowEntry::new(
            200,
            HeaderMatch::of(FieldMatch::InPort(port(5, 1))),
            vec![vec![
                Mod::SetDlDst(MacAddr::physical(11)),
                Mod::SetLoc(port(1, 1)),
            ]],
        ));
        f.switch.install(FlowEntry::new(
            199,
            HeaderMatch::of(FieldMatch::InPort(port(1, 1))),
            vec![vec![
                Mod::SetDlDst(MacAddr::physical(51)),
                Mod::SetLoc(port(5, 1)),
            ]],
        ));
        let mut chain = vec![mbox, Middlebox::passthrough(port(1, 1), "bouncer")];
        let out = run_through_chain(
            &mut f,
            &mut chain,
            port(1, 1),
            Packet::tcp(ip("9.9.9.9"), ip("20.0.0.1"), 40_000, 80),
            8,
        );
        assert!(out.is_none(), "loop must be detected, not spin forever");
    }
}
