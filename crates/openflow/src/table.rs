//! The flow table: prioritized match/action entries with counters.
//!
//! Entries are matched highest-priority-first (insertion order breaks
//! ties, matching OpenFlow's behaviour of overwriting equal-priority
//! identical matches). Each entry carries *buckets*: independent action
//! lists, each applied to its own copy of the packet (group semantics).
//! An entry with no buckets drops.
//!
//! A compiled [`sdx_policy::Classifier`] converts directly: rule `i` of `n`
//! gets priority `n - i`, preserving first-match order.

use std::collections::BTreeMap;

use sdx_net::{HeaderMatch, LocatedPacket, Mod};
use sdx_policy::Classifier;

/// One flow entry.
#[derive(Clone, PartialEq, Debug)]
pub struct FlowEntry {
    /// Higher matches first.
    pub priority: u32,
    /// Match pattern (the `in_port` field of the pattern matches the port
    /// the packet arrived on).
    pub pattern: HeaderMatch,
    /// Action buckets; each is a modification list applied to a fresh copy
    /// of the packet (the final `SetLoc` is the output port). Empty = drop.
    pub buckets: Vec<Vec<Mod>>,
    /// Opaque controller tag, as in OpenFlow: the SDX stamps the owning
    /// FEC-group identity here so rules can be counted and retired by
    /// group without pattern inspection. `0` = infrastructure rule.
    pub cookie: u64,
    /// Packets that hit this entry.
    pub packet_count: u64,
    /// Bytes that hit this entry.
    pub byte_count: u64,
}

impl FlowEntry {
    /// A new entry with zeroed counters and no cookie.
    pub fn new(priority: u32, pattern: HeaderMatch, buckets: Vec<Vec<Mod>>) -> Self {
        FlowEntry {
            priority,
            pattern,
            buckets,
            cookie: 0,
            packet_count: 0,
            byte_count: 0,
        }
    }

    /// The same entry stamped with `cookie`.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// True if the entry drops matching packets.
    pub fn is_drop(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// A single flow table.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FlowTable {
    /// Entries sorted by descending priority (stable for equal priorities).
    entries: Vec<FlowEntry>,
    /// Live entry count per cookie — the controller's per-FEC-group rule
    /// index, maintained on every mutation.
    cookie_index: BTreeMap<u64, usize>,
}

impl FlowTable {
    /// An empty table (table-miss drops).
    pub fn new() -> Self {
        FlowTable::default()
    }

    fn index_add(&mut self, cookie: u64) {
        *self.cookie_index.entry(cookie).or_insert(0) += 1;
    }

    fn index_remove(&mut self, cookie: u64) {
        if let Some(n) = self.cookie_index.get_mut(&cookie) {
            *n -= 1;
            if *n == 0 {
                self.cookie_index.remove(&cookie);
            }
        }
    }

    /// The half-open index range of entries with exactly `priority`.
    /// Entries are sorted by descending priority, so this is two binary
    /// searches — the whole table is never scanned.
    fn priority_range(&self, priority: u32) -> std::ops::Range<usize> {
        let lo = self.entries.partition_point(|e| e.priority > priority);
        let hi = self.entries.partition_point(|e| e.priority >= priority);
        lo..hi
    }

    /// Index of the entry at exactly (priority, pattern), if present.
    fn position_of(&self, priority: u32, pattern: &HeaderMatch) -> Option<usize> {
        let range = self.priority_range(priority);
        self.entries[range.clone()]
            .iter()
            .position(|e| &e.pattern == pattern)
            .map(|i| range.start + i)
    }

    /// Installs an entry. An existing entry with identical (priority,
    /// pattern) is replaced in place, as OpenFlow `ADD` does.
    pub fn install(&mut self, entry: FlowEntry) {
        if let Some(pos) = self.position_of(entry.priority, &entry.pattern) {
            let old_cookie = self.entries[pos].cookie;
            self.index_remove(old_cookie);
            self.index_add(entry.cookie);
            self.entries[pos] = entry;
            return;
        }
        // Insert before the first strictly-lower priority (stable order).
        let idx = self.priority_range(entry.priority).end;
        self.index_add(entry.cookie);
        self.entries.insert(idx, entry);
    }

    /// Replaces the buckets and cookie of the entry at exactly
    /// (priority, pattern), preserving its traffic counters (OpenFlow
    /// `MODIFY` semantics). Returns `false` if no such entry exists.
    pub fn modify_in_place(
        &mut self,
        priority: u32,
        pattern: &HeaderMatch,
        buckets: &[Vec<Mod>],
        cookie: u64,
    ) -> bool {
        let Some(pos) = self.position_of(priority, pattern) else {
            return false;
        };
        let old_cookie = self.entries[pos].cookie;
        self.index_remove(old_cookie);
        self.index_add(cookie);
        let e = &mut self.entries[pos];
        e.buckets = buckets.to_vec();
        e.cookie = cookie;
        true
    }

    /// Removes the entry at exactly (priority, pattern). Returns `false`
    /// if no such entry exists.
    pub fn delete_exact(&mut self, priority: u32, pattern: &HeaderMatch) -> bool {
        let Some(pos) = self.position_of(priority, pattern) else {
            return false;
        };
        let cookie = self.entries[pos].cookie;
        self.entries.remove(pos);
        self.index_remove(cookie);
        true
    }

    /// Removes entries whose pattern equals `pattern` (any priority),
    /// returning how many were removed.
    pub fn remove(&mut self, pattern: &HeaderMatch) -> usize {
        let removed: Vec<u64> = self
            .entries
            .iter()
            .filter(|e| &e.pattern == pattern)
            .map(|e| e.cookie)
            .collect();
        self.entries.retain(|e| &e.pattern != pattern);
        for c in &removed {
            self.index_remove(*c);
        }
        removed.len()
    }

    /// Removes every entry with priority `>= min_priority` — how the SDX
    /// retires the fast-path delta rules once background re-optimization
    /// lands (§4.3.2).
    pub fn remove_at_or_above(&mut self, min_priority: u32) -> usize {
        let removed: Vec<u64> = self
            .entries
            .iter()
            .filter(|e| e.priority >= min_priority)
            .map(|e| e.cookie)
            .collect();
        self.entries.retain(|e| e.priority < min_priority);
        for c in &removed {
            self.index_remove(*c);
        }
        removed.len()
    }

    /// Removes every entry stamped with `cookie` (how the controller
    /// retires all rules of one FEC group), returning how many went.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.cookie != cookie);
        let removed = before - self.entries.len();
        self.cookie_index.remove(&cookie);
        removed
    }

    /// Live entries stamped with `cookie`, via the maintained index —
    /// O(log c) for the count, no table scan.
    pub fn cookie_count(&self, cookie: u64) -> usize {
        self.cookie_index.get(&cookie).copied().unwrap_or(0)
    }

    /// The entries stamped with `cookie`, in priority order.
    pub fn entries_with_cookie(&self, cookie: u64) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter().filter(move |e| e.cookie == cookie)
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.cookie_index.clear();
    }

    /// True if an entry exists at exactly (priority, pattern).
    pub fn contains_exact(&self, priority: u32, pattern: &HeaderMatch) -> bool {
        self.position_of(priority, pattern).is_some()
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries that forward (the Figures 7/9 metric).
    pub fn forwarding_entry_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_drop()).count()
    }

    /// Read-only view of the entries, priority order.
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Classifies a packet: the highest-priority matching entry, with
    /// counters updated. `None` = table miss (drop).
    pub fn lookup(&mut self, lp: &LocatedPacket) -> Option<&FlowEntry> {
        let idx = self.entries.iter().position(|e| e.pattern.matches(lp))?;
        let e = &mut self.entries[idx];
        e.packet_count += 1;
        e.byte_count += lp.pkt.payload_len as u64;
        Some(&self.entries[idx])
    }

    /// Single stepping for inspection: the highest-priority matching entry
    /// and its index, **without** touching the counters. This is the API
    /// the differential oracle uses to replay a packet through a deployed
    /// table stage by stage and render which rule fired at each hop —
    /// a diagnostic walk must not perturb the traffic statistics the
    /// telemetry layer reports.
    pub fn classify(&self, lp: &LocatedPacket) -> Option<(usize, &FlowEntry)> {
        self.entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.pattern.matches(lp))
    }

    /// Applies `entry`'s buckets to `lp`: one output packet per bucket,
    /// mods applied in order to a fresh copy. Raw application — hairpin
    /// suppression and dedup stay in [`switch
    /// processing`](crate::switch); a stepping caller decides itself what
    /// to filter. Pure — pairs with [`classify`](Self::classify) for
    /// counter-free stepping.
    pub fn apply_entry(entry: &FlowEntry, lp: &LocatedPacket) -> Vec<LocatedPacket> {
        entry
            .buckets
            .iter()
            .map(|mods| {
                let mut copy = *lp;
                for &m in mods {
                    m.apply(&mut copy);
                }
                copy
            })
            .collect()
    }

    /// Installs a compiled classifier wholesale, replacing the table.
    /// Rule `i` of `n` receives priority `base + n - i`, so rule order is
    /// priority order and higher `base` layers shadow lower ones.
    pub fn install_classifier(&mut self, c: &Classifier, base: u32) {
        let n = c.rules().len() as u32;
        for (i, r) in c.rules().iter().enumerate() {
            let buckets = r.actions.iter().map(|a| a.mods.clone()).collect::<Vec<_>>();
            self.install(FlowEntry::new(base + n - i as u32, r.matches, buckets));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, FieldMatch, Packet, ParticipantId, PortId};
    use sdx_policy::{compile, Policy};

    fn port(n: u32) -> PortId {
        PortId::Phys(ParticipantId(n), 1)
    }

    fn web(loc: PortId) -> LocatedPacket {
        LocatedPacket::at(
            loc,
            Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 5, 80).with_len(100),
        )
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            1,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(9))]],
        ));
        t.install(FlowEntry::new(
            10,
            HeaderMatch::of(FieldMatch::TpDst(80)),
            vec![vec![Mod::SetLoc(port(2))]],
        ));
        let hit = t.lookup(&web(port(1))).unwrap();
        assert_eq!(hit.priority, 10);
        // installation order does not matter
        assert_eq!(t.entries()[0].priority, 10);
    }

    #[test]
    fn identical_priority_pattern_replaces() {
        let mut t = FlowTable::new();
        let m = HeaderMatch::of(FieldMatch::TpDst(80));
        t.install(FlowEntry::new(5, m, vec![vec![Mod::SetLoc(port(2))]]));
        t.install(FlowEntry::new(5, m, vec![vec![Mod::SetLoc(port(3))]]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].buckets[0], vec![Mod::SetLoc(port(3))]);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            1,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(2))]],
        ));
        t.lookup(&web(port(1)));
        t.lookup(&web(port(1)));
        assert_eq!(t.entries()[0].packet_count, 2);
        assert_eq!(t.entries()[0].byte_count, 200);
    }

    #[test]
    fn table_miss_is_none() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            5,
            HeaderMatch::of(FieldMatch::TpDst(443)),
            vec![],
        ));
        assert!(t.lookup(&web(port(1))).is_none());
    }

    #[test]
    fn remove_by_pattern_and_priority_band() {
        let mut t = FlowTable::new();
        let m = HeaderMatch::of(FieldMatch::TpDst(80));
        t.install(FlowEntry::new(5, m, vec![]));
        t.install(FlowEntry::new(1000, HeaderMatch::any(), vec![]));
        assert_eq!(t.remove(&m), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove_at_or_above(1000), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn classifier_installation_preserves_first_match() {
        let p = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2)))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(3)));
        let c = compile(&p);
        let mut t = FlowTable::new();
        t.install_classifier(&c, 0);
        assert_eq!(t.len(), c.rules().len());
        assert_eq!(t.forwarding_entry_count(), c.forwarding_rule_count());
        // First-match equivalence on a sample.
        let hit = t.lookup(&web(port(1))).unwrap();
        assert_eq!(hit.buckets, vec![vec![Mod::SetLoc(port(2))]]);
    }

    #[test]
    fn classify_steps_without_touching_counters() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            1,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(9))]],
        ));
        t.install(FlowEntry::new(
            10,
            HeaderMatch::of(FieldMatch::TpDst(80)),
            vec![vec![Mod::SetTpDst(8080), Mod::SetLoc(port(2))]],
        ));
        let (idx, entry) = t.classify(&web(port(1))).expect("match");
        assert_eq!(idx, 0, "highest priority entry sits first");
        assert_eq!(entry.priority, 10);
        assert_eq!(entry.packet_count, 0, "classify must not count");
        let out = FlowTable::apply_entry(entry, &web(port(1)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2));
        assert_eq!(out[0].pkt.tp_dst, 8080);
        // lookup on the same packet agrees with classify and does count.
        let hit = t.lookup(&web(port(1))).expect("match");
        assert_eq!(hit.priority, 10);
        assert_eq!(t.entries()[0].packet_count, 1);
    }

    #[test]
    fn cookie_index_tracks_every_mutation() {
        let mut t = FlowTable::new();
        let m80 = HeaderMatch::of(FieldMatch::TpDst(80));
        let m443 = HeaderMatch::of(FieldMatch::TpDst(443));
        t.install(FlowEntry::new(5, m80, vec![]).with_cookie(7));
        t.install(FlowEntry::new(6, m443, vec![]).with_cookie(7));
        t.install(FlowEntry::new(9, HeaderMatch::any(), vec![]).with_cookie(8));
        assert_eq!(t.cookie_count(7), 2);
        assert_eq!(t.cookie_count(8), 1);
        assert_eq!(t.entries_with_cookie(7).count(), 2);
        // Replacing an entry moves its count between cookies.
        t.install(FlowEntry::new(5, m80, vec![]).with_cookie(8));
        assert_eq!(t.cookie_count(7), 1);
        assert_eq!(t.cookie_count(8), 2);
        // Removal by pattern, by priority band, and by cookie all maintain
        // the index.
        assert_eq!(t.remove(&m443), 1);
        assert_eq!(t.cookie_count(7), 0);
        assert_eq!(t.remove_by_cookie(8), 2);
        assert!(t.is_empty());
        assert_eq!(t.cookie_count(8), 0);
    }

    #[test]
    fn layered_classifier_install_shadows_lower_base() {
        let low = compile(&(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2))));
        let high = compile(&(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(7))));
        let mut t = FlowTable::new();
        t.install_classifier(&low, 0);
        t.install_classifier(&high, 1000);
        let hit = t.lookup(&web(port(1))).unwrap();
        assert_eq!(hit.buckets, vec![vec![Mod::SetLoc(port(7))]]);
    }
}
