//! The flow table: prioritized match/action entries with counters.
//!
//! Entries are matched highest-priority-first (insertion order breaks
//! ties, matching OpenFlow's behaviour of overwriting equal-priority
//! identical matches). Each entry carries *buckets*: independent action
//! lists, each applied to its own copy of the packet (group semantics).
//! An entry with no buckets drops.
//!
//! A compiled [`sdx_policy::Classifier`] converts directly: rule `i` of `n`
//! gets priority `n - i`, preserving first-match order.

use sdx_net::{HeaderMatch, LocatedPacket, Mod};
use sdx_policy::Classifier;

/// One flow entry.
#[derive(Clone, PartialEq, Debug)]
pub struct FlowEntry {
    /// Higher matches first.
    pub priority: u32,
    /// Match pattern (the `in_port` field of the pattern matches the port
    /// the packet arrived on).
    pub pattern: HeaderMatch,
    /// Action buckets; each is a modification list applied to a fresh copy
    /// of the packet (the final `SetLoc` is the output port). Empty = drop.
    pub buckets: Vec<Vec<Mod>>,
    /// Packets that hit this entry.
    pub packet_count: u64,
    /// Bytes that hit this entry.
    pub byte_count: u64,
}

impl FlowEntry {
    /// A new entry with zeroed counters.
    pub fn new(priority: u32, pattern: HeaderMatch, buckets: Vec<Vec<Mod>>) -> Self {
        FlowEntry {
            priority,
            pattern,
            buckets,
            packet_count: 0,
            byte_count: 0,
        }
    }

    /// True if the entry drops matching packets.
    pub fn is_drop(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// A single flow table.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FlowTable {
    /// Entries sorted by descending priority (stable for equal priorities).
    entries: Vec<FlowEntry>,
}

impl FlowTable {
    /// An empty table (table-miss drops).
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Installs an entry. An existing entry with identical (priority,
    /// pattern) is replaced in place, as OpenFlow `ADD` does.
    pub fn install(&mut self, entry: FlowEntry) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == entry.priority && e.pattern == entry.pattern)
        {
            *e = entry;
            return;
        }
        // Insert before the first strictly-lower priority (stable order).
        let idx = self
            .entries
            .iter()
            .position(|e| e.priority < entry.priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(idx, entry);
    }

    /// Removes entries whose pattern equals `pattern` (any priority),
    /// returning how many were removed.
    pub fn remove(&mut self, pattern: &HeaderMatch) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| &e.pattern != pattern);
        before - self.entries.len()
    }

    /// Removes every entry with priority `>= min_priority` — how the SDX
    /// retires the fast-path delta rules once background re-optimization
    /// lands (§4.3.2).
    pub fn remove_at_or_above(&mut self, min_priority: u32) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.priority < min_priority);
        before - self.entries.len()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries that forward (the Figures 7/9 metric).
    pub fn forwarding_entry_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_drop()).count()
    }

    /// Read-only view of the entries, priority order.
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Classifies a packet: the highest-priority matching entry, with
    /// counters updated. `None` = table miss (drop).
    pub fn lookup(&mut self, lp: &LocatedPacket) -> Option<&FlowEntry> {
        let idx = self.entries.iter().position(|e| e.pattern.matches(lp))?;
        let e = &mut self.entries[idx];
        e.packet_count += 1;
        e.byte_count += lp.pkt.payload_len as u64;
        Some(&self.entries[idx])
    }

    /// Single stepping for inspection: the highest-priority matching entry
    /// and its index, **without** touching the counters. This is the API
    /// the differential oracle uses to replay a packet through a deployed
    /// table stage by stage and render which rule fired at each hop —
    /// a diagnostic walk must not perturb the traffic statistics the
    /// telemetry layer reports.
    pub fn classify(&self, lp: &LocatedPacket) -> Option<(usize, &FlowEntry)> {
        self.entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.pattern.matches(lp))
    }

    /// Applies `entry`'s buckets to `lp`: one output packet per bucket,
    /// mods applied in order to a fresh copy. Raw application — hairpin
    /// suppression and dedup stay in [`switch
    /// processing`](crate::switch); a stepping caller decides itself what
    /// to filter. Pure — pairs with [`classify`](Self::classify) for
    /// counter-free stepping.
    pub fn apply_entry(entry: &FlowEntry, lp: &LocatedPacket) -> Vec<LocatedPacket> {
        entry
            .buckets
            .iter()
            .map(|mods| {
                let mut copy = *lp;
                for &m in mods {
                    m.apply(&mut copy);
                }
                copy
            })
            .collect()
    }

    /// Installs a compiled classifier wholesale, replacing the table.
    /// Rule `i` of `n` receives priority `base + n - i`, so rule order is
    /// priority order and higher `base` layers shadow lower ones.
    pub fn install_classifier(&mut self, c: &Classifier, base: u32) {
        let n = c.rules().len() as u32;
        for (i, r) in c.rules().iter().enumerate() {
            let buckets = r.actions.iter().map(|a| a.mods.clone()).collect::<Vec<_>>();
            self.install(FlowEntry::new(base + n - i as u32, r.matches, buckets));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, FieldMatch, Packet, ParticipantId, PortId};
    use sdx_policy::{compile, Policy};

    fn port(n: u32) -> PortId {
        PortId::Phys(ParticipantId(n), 1)
    }

    fn web(loc: PortId) -> LocatedPacket {
        LocatedPacket::at(
            loc,
            Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 5, 80).with_len(100),
        )
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            1,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(9))]],
        ));
        t.install(FlowEntry::new(
            10,
            HeaderMatch::of(FieldMatch::TpDst(80)),
            vec![vec![Mod::SetLoc(port(2))]],
        ));
        let hit = t.lookup(&web(port(1))).unwrap();
        assert_eq!(hit.priority, 10);
        // installation order does not matter
        assert_eq!(t.entries()[0].priority, 10);
    }

    #[test]
    fn identical_priority_pattern_replaces() {
        let mut t = FlowTable::new();
        let m = HeaderMatch::of(FieldMatch::TpDst(80));
        t.install(FlowEntry::new(5, m, vec![vec![Mod::SetLoc(port(2))]]));
        t.install(FlowEntry::new(5, m, vec![vec![Mod::SetLoc(port(3))]]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].buckets[0], vec![Mod::SetLoc(port(3))]);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            1,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(2))]],
        ));
        t.lookup(&web(port(1)));
        t.lookup(&web(port(1)));
        assert_eq!(t.entries()[0].packet_count, 2);
        assert_eq!(t.entries()[0].byte_count, 200);
    }

    #[test]
    fn table_miss_is_none() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            5,
            HeaderMatch::of(FieldMatch::TpDst(443)),
            vec![],
        ));
        assert!(t.lookup(&web(port(1))).is_none());
    }

    #[test]
    fn remove_by_pattern_and_priority_band() {
        let mut t = FlowTable::new();
        let m = HeaderMatch::of(FieldMatch::TpDst(80));
        t.install(FlowEntry::new(5, m, vec![]));
        t.install(FlowEntry::new(1000, HeaderMatch::any(), vec![]));
        assert_eq!(t.remove(&m), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove_at_or_above(1000), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn classifier_installation_preserves_first_match() {
        let p = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2)))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(3)));
        let c = compile(&p);
        let mut t = FlowTable::new();
        t.install_classifier(&c, 0);
        assert_eq!(t.len(), c.rules().len());
        assert_eq!(t.forwarding_entry_count(), c.forwarding_rule_count());
        // First-match equivalence on a sample.
        let hit = t.lookup(&web(port(1))).unwrap();
        assert_eq!(hit.buckets, vec![vec![Mod::SetLoc(port(2))]]);
    }

    #[test]
    fn classify_steps_without_touching_counters() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            1,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(9))]],
        ));
        t.install(FlowEntry::new(
            10,
            HeaderMatch::of(FieldMatch::TpDst(80)),
            vec![vec![Mod::SetTpDst(8080), Mod::SetLoc(port(2))]],
        ));
        let (idx, entry) = t.classify(&web(port(1))).expect("match");
        assert_eq!(idx, 0, "highest priority entry sits first");
        assert_eq!(entry.priority, 10);
        assert_eq!(entry.packet_count, 0, "classify must not count");
        let out = FlowTable::apply_entry(entry, &web(port(1)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2));
        assert_eq!(out[0].pkt.tp_dst, 8080);
        // lookup on the same packet agrees with classify and does count.
        let hit = t.lookup(&web(port(1))).expect("match");
        assert_eq!(hit.priority, 10);
        assert_eq!(t.entries()[0].packet_count, 1);
    }

    #[test]
    fn layered_classifier_install_shadows_lower_base() {
        let low = compile(&(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2))));
        let high = compile(&(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(7))));
        let mut t = FlowTable::new();
        t.install_classifier(&low, 0);
        t.install_classifier(&high, 1000);
        let hit = t.lookup(&web(port(1))).unwrap();
        assert_eq!(hit.buckets, vec![vec![Mod::SetLoc(port(7))]]);
    }
}
