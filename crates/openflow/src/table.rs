//! The flow table: prioritized match/action entries with counters.
//!
//! Entries are matched highest-priority-first (insertion order breaks
//! ties, matching OpenFlow's behaviour of overwriting equal-priority
//! identical matches). Each entry carries *buckets*: independent action
//! lists, each applied to its own copy of the packet (group semantics).
//! An entry with no buckets drops.
//!
//! A compiled [`sdx_policy::Classifier`] converts directly: rule `i` of `n`
//! gets priority `n - i`, preserving first-match order.
//!
//! Classification semantics are *defined* by the priority-ordered linear
//! walk ([`FlowTable::classify_linear`]); the hot path
//! ([`FlowTable::classify`]) answers through a [`CompiledMatcher`] kept
//! coherent with every mutation via epoch tagging, and resolves the winning
//! priority band in table order so the two are index-for-index identical
//! (the differential oracle asserts exactly that).

use std::collections::BTreeMap;

use sdx_net::{HeaderMatch, LocatedPacket, Mod};
use sdx_policy::Classifier;

use crate::matcher::{CompiledMatcher, MatcherStats};

/// One flow entry.
#[derive(Clone, PartialEq, Debug)]
pub struct FlowEntry {
    /// Higher matches first.
    pub priority: u32,
    /// Match pattern (the `in_port` field of the pattern matches the port
    /// the packet arrived on).
    pub pattern: HeaderMatch,
    /// Action buckets; each is a modification list applied to a fresh copy
    /// of the packet (the final `SetLoc` is the output port). Empty = drop.
    pub buckets: Vec<Vec<Mod>>,
    /// Opaque controller tag, as in OpenFlow: the SDX stamps the owning
    /// FEC-group identity here so rules can be counted and retired by
    /// group without pattern inspection. `0` = infrastructure rule.
    pub cookie: u64,
    /// Packets that hit this entry.
    pub packet_count: u64,
    /// Bytes that hit this entry.
    pub byte_count: u64,
}

impl FlowEntry {
    /// A new entry with zeroed counters and no cookie.
    pub fn new(priority: u32, pattern: HeaderMatch, buckets: Vec<Vec<Mod>>) -> Self {
        FlowEntry {
            priority,
            pattern,
            buckets,
            cookie: 0,
            packet_count: 0,
            byte_count: 0,
        }
    }

    /// The same entry stamped with `cookie`.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// True if the entry drops matching packets.
    pub fn is_drop(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// A single flow table.
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    /// Entries sorted by descending priority (stable for equal priorities).
    entries: Vec<FlowEntry>,
    /// Live entry count per cookie — the controller's per-FEC-group rule
    /// index, maintained on every mutation.
    cookie_index: BTreeMap<u64, usize>,
    /// Mutation generation: bumped on every state change, stamped onto the
    /// matcher in lockstep so staleness is a checkable invariant.
    epoch: u64,
    /// The compiled fast path. Derived state — rebuilt or incrementally
    /// updated by every mutator, never authoritative.
    matcher: CompiledMatcher,
}

/// Tables are equal iff their entries are: the cookie index is derived
/// from the entries, and the matcher/epoch are derived + observability
/// state (same pattern as the telemetry registry) — two tables reached by
/// different mutation histories still compare equal.
impl PartialEq for FlowTable {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl FlowTable {
    /// An empty table (table-miss drops).
    pub fn new() -> Self {
        FlowTable::default()
    }

    fn index_add(&mut self, cookie: u64) {
        *self.cookie_index.entry(cookie).or_insert(0) += 1;
    }

    fn index_remove(&mut self, cookie: u64) {
        if let Some(n) = self.cookie_index.get_mut(&cookie) {
            *n -= 1;
            if *n == 0 {
                self.cookie_index.remove(&cookie);
            }
        }
    }

    /// The half-open index range of entries with exactly `priority`.
    /// Entries are sorted by descending priority, so this is two binary
    /// searches — the whole table is never scanned.
    fn priority_range(&self, priority: u32) -> std::ops::Range<usize> {
        let lo = self.entries.partition_point(|e| e.priority > priority);
        let hi = self.entries.partition_point(|e| e.priority >= priority);
        lo..hi
    }

    /// Index of the entry at exactly (priority, pattern), if present.
    fn position_of(&self, priority: u32, pattern: &HeaderMatch) -> Option<usize> {
        let range = self.priority_range(priority);
        self.entries[range.clone()]
            .iter()
            .position(|e| &e.pattern == pattern)
            .map(|i| range.start + i)
    }

    /// Installs an entry. An existing entry with identical (priority,
    /// pattern) is replaced in place, as OpenFlow `ADD` does.
    pub fn install(&mut self, entry: FlowEntry) {
        self.install_inner(entry, true);
    }

    /// The install worker. `index: false` defers matcher maintenance to a
    /// caller-side [`rebuild_matcher`](Self::rebuild_matcher) — the bulk
    /// path for classifier installs, where n incremental inserts would
    /// just re-derive what one rebuild produces.
    fn install_inner(&mut self, entry: FlowEntry, index: bool) {
        self.epoch += 1;
        if let Some(pos) = self.position_of(entry.priority, &entry.pattern) {
            let old_cookie = self.entries[pos].cookie;
            self.index_remove(old_cookie);
            self.index_add(entry.cookie);
            self.entries[pos] = entry;
            if index {
                // (priority, pattern) unchanged: classification cannot
                // move, the matcher only needs the new stamp.
                self.matcher.touch(self.epoch);
            }
            return;
        }
        // Insert before the first strictly-lower priority (stable order).
        let idx = self.priority_range(entry.priority).end;
        self.index_add(entry.cookie);
        if index {
            self.matcher
                .insert(entry.priority, &entry.pattern, self.epoch);
        }
        self.entries.insert(idx, entry);
    }

    /// Replaces the buckets and cookie of the entry at exactly
    /// (priority, pattern), preserving its traffic counters (OpenFlow
    /// `MODIFY` semantics). Returns `false` if no such entry exists.
    pub fn modify_in_place(
        &mut self,
        priority: u32,
        pattern: &HeaderMatch,
        buckets: &[Vec<Mod>],
        cookie: u64,
    ) -> bool {
        let Some(pos) = self.position_of(priority, pattern) else {
            return false;
        };
        self.epoch += 1;
        // Buckets/cookie don't participate in matching: restamp only.
        self.matcher.touch(self.epoch);
        let old_cookie = self.entries[pos].cookie;
        self.index_remove(old_cookie);
        self.index_add(cookie);
        let e = &mut self.entries[pos];
        e.buckets = buckets.to_vec();
        e.cookie = cookie;
        true
    }

    /// Removes the entry at exactly (priority, pattern). Returns `false`
    /// if no such entry exists.
    pub fn delete_exact(&mut self, priority: u32, pattern: &HeaderMatch) -> bool {
        let Some(pos) = self.position_of(priority, pattern) else {
            return false;
        };
        self.epoch += 1;
        self.matcher.remove(priority, pattern, self.epoch);
        let cookie = self.entries[pos].cookie;
        self.entries.remove(pos);
        self.index_remove(cookie);
        true
    }

    /// Removes entries whose pattern equals `pattern` (any priority),
    /// returning how many were removed.
    pub fn remove(&mut self, pattern: &HeaderMatch) -> usize {
        let removed: Vec<u64> = self
            .entries
            .iter()
            .filter(|e| &e.pattern == pattern)
            .map(|e| e.cookie)
            .collect();
        self.entries.retain(|e| &e.pattern != pattern);
        for c in &removed {
            self.index_remove(*c);
        }
        if !removed.is_empty() {
            self.epoch += 1;
            self.matcher.rebuild(&self.entries, self.epoch);
        }
        removed.len()
    }

    /// Removes every entry with priority `>= min_priority` — how the SDX
    /// retires the fast-path delta rules once background re-optimization
    /// lands (§4.3.2).
    pub fn remove_at_or_above(&mut self, min_priority: u32) -> usize {
        let removed: Vec<u64> = self
            .entries
            .iter()
            .filter(|e| e.priority >= min_priority)
            .map(|e| e.cookie)
            .collect();
        self.entries.retain(|e| e.priority < min_priority);
        for c in &removed {
            self.index_remove(*c);
        }
        if !removed.is_empty() {
            self.epoch += 1;
            self.matcher.rebuild(&self.entries, self.epoch);
        }
        removed.len()
    }

    /// Removes every entry stamped with `cookie` (how the controller
    /// retires all rules of one FEC group), returning how many went.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.cookie != cookie);
        let removed = before - self.entries.len();
        self.cookie_index.remove(&cookie);
        if removed > 0 {
            self.epoch += 1;
            self.matcher.rebuild(&self.entries, self.epoch);
        }
        removed
    }

    /// Live entries stamped with `cookie`, via the maintained index —
    /// O(log c) for the count, no table scan.
    pub fn cookie_count(&self, cookie: u64) -> usize {
        self.cookie_index.get(&cookie).copied().unwrap_or(0)
    }

    /// The entries stamped with `cookie`, in priority order.
    pub fn entries_with_cookie(&self, cookie: u64) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter().filter(move |e| e.cookie == cookie)
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.cookie_index.clear();
        self.epoch += 1;
        self.matcher.clear(self.epoch);
    }

    /// Mutation generation of the table: every state change bumps it, and
    /// the compiled matcher carries the epoch it was updated for — the
    /// coherence handshake the fast path debug-asserts.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Shape and hit-distribution snapshot of the compiled matcher (for
    /// the `dataplane.matcher.*` telemetry gauges and the Mpps bench).
    pub fn matcher_stats(&self) -> MatcherStats {
        self.matcher.stats()
    }

    /// Forces a full recompile of the matcher indexes. Mutators already
    /// keep the matcher coherent — this exists so benchmarks can measure
    /// build cost and so bulk installs have one shared maintenance path.
    pub fn rebuild_matcher(&mut self) {
        self.matcher.rebuild(&self.entries, self.epoch);
    }

    /// True if an entry exists at exactly (priority, pattern).
    pub fn contains_exact(&self, priority: u32, pattern: &HeaderMatch) -> bool {
        self.position_of(priority, pattern).is_some()
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries that forward (the Figures 7/9 metric).
    pub fn forwarding_entry_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_drop()).count()
    }

    /// Read-only view of the entries, priority order.
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Classifies a packet: the highest-priority matching entry, with
    /// counters updated. `None` = table miss (drop). Delegates the scan to
    /// [`classify`](Self::classify) — counter touching is the only thing
    /// this adds, so the matcher fast path has a single seam.
    pub fn lookup(&mut self, lp: &LocatedPacket) -> Option<&FlowEntry> {
        let idx = self.classify(lp)?.0;
        let e = &mut self.entries[idx];
        e.packet_count += 1;
        e.byte_count += lp.pkt.payload_len as u64;
        Some(&self.entries[idx])
    }

    /// Single stepping for inspection: the highest-priority matching entry
    /// and its index, **without** touching the counters. This is the API
    /// the differential oracle uses to replay a packet through a deployed
    /// table stage by stage and render which rule fired at each hop —
    /// a diagnostic walk must not perturb the traffic statistics the
    /// telemetry layer reports.
    ///
    /// Answers through the [`CompiledMatcher`]: the matcher returns the
    /// exact winning priority (its candidate sets are complete — see the
    /// matcher module docs), and the winner inside that priority band is
    /// resolved in table order, so the result is index-for-index identical
    /// to [`classify_linear`](Self::classify_linear). The oracle
    /// dual-runs both on every probe to enforce that.
    pub fn classify(&self, lp: &LocatedPacket) -> Option<(usize, &FlowEntry)> {
        debug_assert_eq!(
            self.matcher.epoch(),
            self.epoch,
            "matcher stale: a mutator skipped maintenance"
        );
        let priority = self.matcher.best_priority(lp)?;
        for i in self.priority_range(priority) {
            if self.entries[i].pattern.matches(lp) {
                return Some((i, &self.entries[i]));
            }
        }
        // Unreachable if the matcher is coherent; fall back to the
        // specification rather than mis-forward.
        debug_assert!(
            false,
            "matcher returned priority {priority} with no match in band"
        );
        self.classify_linear(lp)
    }

    /// The reference semantics: a priority-ordered linear first-match walk
    /// over the whole table. [`classify`](Self::classify) must agree with
    /// this index-for-index; it exists as the differential baseline (and
    /// the linear leg of the Mpps bench).
    pub fn classify_linear(&self, lp: &LocatedPacket) -> Option<(usize, &FlowEntry)> {
        self.entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.pattern.matches(lp))
    }

    /// Classifies a batch without touching counters: one entry index (or
    /// `None` for a miss) per input packet, in order.
    pub fn classify_batch(&self, lps: &[LocatedPacket]) -> Vec<Option<usize>> {
        lps.iter().map(|lp| Some(self.classify(lp)?.0)).collect()
    }

    /// Batched [`lookup`](Self::lookup): classifies every packet, then
    /// applies per-entry counter updates **aggregated per batch** — one
    /// read-modify-write per distinct entry instead of one per packet.
    pub fn lookup_batch(&mut self, lps: &[LocatedPacket]) -> Vec<Option<usize>> {
        let hits = self.classify_batch(lps);
        let mut agg: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        for (lp, hit) in lps.iter().zip(&hits) {
            if let Some(i) = hit {
                let slot = agg.entry(*i).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += lp.pkt.payload_len as u64;
            }
        }
        for (i, (pkts, bytes)) in agg {
            let e = &mut self.entries[i];
            e.packet_count += pkts;
            e.byte_count += bytes;
        }
        hits
    }

    /// Credits traffic counters on the entry at `idx` — the aggregation
    /// sink for [`Switch::process_batch`](crate::switch::Switch::process_batch).
    pub(crate) fn credit(&mut self, idx: usize, pkts: u64, bytes: u64) {
        let e = &mut self.entries[idx];
        e.packet_count += pkts;
        e.byte_count += bytes;
    }

    /// Applies `entry`'s buckets to `lp`: one output packet per bucket,
    /// mods applied in order to a fresh copy. Raw application — hairpin
    /// suppression and dedup stay in [`switch
    /// processing`](crate::switch); a stepping caller decides itself what
    /// to filter. Pure — pairs with [`classify`](Self::classify) for
    /// counter-free stepping.
    pub fn apply_entry(entry: &FlowEntry, lp: &LocatedPacket) -> Vec<LocatedPacket> {
        entry
            .buckets
            .iter()
            .map(|mods| {
                let mut copy = *lp;
                for &m in mods {
                    m.apply(&mut copy);
                }
                copy
            })
            .collect()
    }

    /// Installs a compiled classifier wholesale, replacing the table.
    /// Rule `i` of `n` receives priority `base + n - i`, so rule order is
    /// priority order and higher `base` layers shadow lower ones.
    pub fn install_classifier(&mut self, c: &Classifier, base: u32) {
        let n = c.rules().len() as u32;
        for (i, r) in c.rules().iter().enumerate() {
            let buckets = r.actions.iter().map(|a| a.mods.clone()).collect::<Vec<_>>();
            self.install_inner(
                FlowEntry::new(base + n - i as u32, r.matches, buckets),
                false,
            );
        }
        self.rebuild_matcher();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, FieldMatch, Packet, ParticipantId, PortId};
    use sdx_policy::{compile, Policy};

    fn port(n: u32) -> PortId {
        PortId::Phys(ParticipantId(n), 1)
    }

    fn web(loc: PortId) -> LocatedPacket {
        LocatedPacket::at(
            loc,
            Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 5, 80).with_len(100),
        )
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            1,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(9))]],
        ));
        t.install(FlowEntry::new(
            10,
            HeaderMatch::of(FieldMatch::TpDst(80)),
            vec![vec![Mod::SetLoc(port(2))]],
        ));
        let hit = t.lookup(&web(port(1))).unwrap();
        assert_eq!(hit.priority, 10);
        // installation order does not matter
        assert_eq!(t.entries()[0].priority, 10);
    }

    #[test]
    fn identical_priority_pattern_replaces() {
        let mut t = FlowTable::new();
        let m = HeaderMatch::of(FieldMatch::TpDst(80));
        t.install(FlowEntry::new(5, m, vec![vec![Mod::SetLoc(port(2))]]));
        t.install(FlowEntry::new(5, m, vec![vec![Mod::SetLoc(port(3))]]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].buckets[0], vec![Mod::SetLoc(port(3))]);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            1,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(2))]],
        ));
        t.lookup(&web(port(1)));
        t.lookup(&web(port(1)));
        assert_eq!(t.entries()[0].packet_count, 2);
        assert_eq!(t.entries()[0].byte_count, 200);
    }

    #[test]
    fn table_miss_is_none() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            5,
            HeaderMatch::of(FieldMatch::TpDst(443)),
            vec![],
        ));
        assert!(t.lookup(&web(port(1))).is_none());
    }

    #[test]
    fn remove_by_pattern_and_priority_band() {
        let mut t = FlowTable::new();
        let m = HeaderMatch::of(FieldMatch::TpDst(80));
        t.install(FlowEntry::new(5, m, vec![]));
        t.install(FlowEntry::new(1000, HeaderMatch::any(), vec![]));
        assert_eq!(t.remove(&m), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove_at_or_above(1000), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn classifier_installation_preserves_first_match() {
        let p = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2)))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(3)));
        let c = compile(&p);
        let mut t = FlowTable::new();
        t.install_classifier(&c, 0);
        assert_eq!(t.len(), c.rules().len());
        assert_eq!(t.forwarding_entry_count(), c.forwarding_rule_count());
        // First-match equivalence on a sample.
        let hit = t.lookup(&web(port(1))).unwrap();
        assert_eq!(hit.buckets, vec![vec![Mod::SetLoc(port(2))]]);
    }

    #[test]
    fn classify_steps_without_touching_counters() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            1,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(9))]],
        ));
        t.install(FlowEntry::new(
            10,
            HeaderMatch::of(FieldMatch::TpDst(80)),
            vec![vec![Mod::SetTpDst(8080), Mod::SetLoc(port(2))]],
        ));
        let (idx, entry) = t.classify(&web(port(1))).expect("match");
        assert_eq!(idx, 0, "highest priority entry sits first");
        assert_eq!(entry.priority, 10);
        assert_eq!(entry.packet_count, 0, "classify must not count");
        let out = FlowTable::apply_entry(entry, &web(port(1)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2));
        assert_eq!(out[0].pkt.tp_dst, 8080);
        // lookup on the same packet agrees with classify and does count.
        let hit = t.lookup(&web(port(1))).expect("match");
        assert_eq!(hit.priority, 10);
        assert_eq!(t.entries()[0].packet_count, 1);
    }

    #[test]
    fn cookie_index_tracks_every_mutation() {
        let mut t = FlowTable::new();
        let m80 = HeaderMatch::of(FieldMatch::TpDst(80));
        let m443 = HeaderMatch::of(FieldMatch::TpDst(443));
        t.install(FlowEntry::new(5, m80, vec![]).with_cookie(7));
        t.install(FlowEntry::new(6, m443, vec![]).with_cookie(7));
        t.install(FlowEntry::new(9, HeaderMatch::any(), vec![]).with_cookie(8));
        assert_eq!(t.cookie_count(7), 2);
        assert_eq!(t.cookie_count(8), 1);
        assert_eq!(t.entries_with_cookie(7).count(), 2);
        // Replacing an entry moves its count between cookies.
        t.install(FlowEntry::new(5, m80, vec![]).with_cookie(8));
        assert_eq!(t.cookie_count(7), 1);
        assert_eq!(t.cookie_count(8), 2);
        // Removal by pattern, by priority band, and by cookie all maintain
        // the index.
        assert_eq!(t.remove(&m443), 1);
        assert_eq!(t.cookie_count(7), 0);
        assert_eq!(t.remove_by_cookie(8), 2);
        assert!(t.is_empty());
        assert_eq!(t.cookie_count(8), 0);
    }

    #[test]
    fn layered_classifier_install_shadows_lower_base() {
        let low = compile(&(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2))));
        let high = compile(&(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(7))));
        let mut t = FlowTable::new();
        t.install_classifier(&low, 0);
        t.install_classifier(&high, 1000);
        let hit = t.lookup(&web(port(1))).unwrap();
        assert_eq!(hit.buckets, vec![vec![Mod::SetLoc(port(7))]]);
    }

    #[test]
    fn layered_classifier_shadows_rule_for_rule() {
        // A multi-rule policy: two disjoint forwarding classes + fallthrough.
        let policy = |web: u32, tls: u32| {
            (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(web)))
                + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(port(tls)))
        };
        let low = compile(&policy(2, 3));
        let high = compile(&policy(7, 8));
        assert_eq!(low.rules().len(), high.rules().len());
        let n = high.rules().len();
        let mut t = FlowTable::new();
        t.install_classifier(&low, 0);
        t.install_classifier(&high, 1000);
        assert_eq!(t.len(), 2 * n);
        // Every high-layer rule sits above the entire low layer, in rule
        // order: entry i IS high rule i, at priority 1000 + n - i.
        for (i, r) in high.rules().iter().enumerate() {
            let e = &t.entries()[i];
            assert_eq!(e.pattern, r.matches, "high rule {i} out of order");
            assert_eq!(e.priority, 1000 + (n - i) as u32);
        }
        for (i, r) in low.rules().iter().enumerate() {
            let e = &t.entries()[n + i];
            assert_eq!(e.pattern, r.matches, "low rule {i} out of order");
            assert_eq!(e.priority, (n - i) as u32);
        }
        // Batch-installed order equals priority order (strictly decreasing
        // within each layer's base).
        let prios: Vec<u32> = t.entries().iter().map(|e| e.priority).collect();
        let mut sorted = prios.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(prios, sorted, "entries() must be priority-sorted");
        // And each probe lands on the high layer, class by class.
        let mut tls = web(port(1));
        tls.pkt.tp_dst = 443;
        assert_eq!(
            t.lookup(&web(port(1))).unwrap().buckets,
            vec![vec![Mod::SetLoc(port(7))]]
        );
        assert_eq!(
            t.lookup(&tls).unwrap().buckets,
            vec![vec![Mod::SetLoc(port(8))]]
        );
    }

    #[test]
    fn epoch_bumps_on_every_mutation_and_matcher_follows() {
        let mut t = FlowTable::new();
        assert_eq!(t.epoch(), 0);
        let m = HeaderMatch::of(FieldMatch::TpDst(80));
        t.install(FlowEntry::new(5, m, vec![]));
        let e1 = t.epoch();
        assert!(e1 > 0);
        t.modify_in_place(5, &m, &[vec![Mod::SetLoc(port(2))]], 9);
        let e2 = t.epoch();
        assert!(e2 > e1);
        t.delete_exact(5, &m);
        assert!(t.epoch() > e2);
        assert_eq!(t.matcher_stats().epoch, t.epoch(), "matcher in lockstep");
        // Failed mutations don't bump.
        let before = t.epoch();
        assert!(!t.delete_exact(5, &m));
        assert_eq!(t.epoch(), before);
    }

    /// The fast path must agree with the linear walk index-for-index,
    /// across the whole mutation surface (the proptest in
    /// `tests/matcher_props.rs` fuzzes this; here is the deterministic
    /// spine).
    #[test]
    fn classify_agrees_with_linear_across_mutations() {
        use sdx_net::MacAddr;

        let probes: Vec<LocatedPacket> = (0..8u32)
            .map(|i| {
                let mut lp = web(port(i % 3));
                lp.pkt.tp_dst = if i % 2 == 0 { 80 } else { 443 };
                lp.pkt.dl_dst = MacAddr::vmac(i % 4);
                lp
            })
            .collect();
        let agree = |t: &FlowTable| {
            for lp in &probes {
                let fast = t.classify(lp).map(|(i, e)| (i, e.priority));
                let lin = t.classify_linear(lp).map(|(i, e)| (i, e.priority));
                assert_eq!(fast, lin, "diverged on {lp:?}");
            }
        };
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(
            9,
            HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(1))),
            vec![vec![Mod::SetLoc(port(5))]],
        ));
        agree(&t);
        t.install(FlowEntry::new(
            9,
            HeaderMatch::of(FieldMatch::TpDst(443)),
            vec![],
        ));
        t.install(FlowEntry::new(1, HeaderMatch::any(), vec![]));
        agree(&t);
        t.modify_in_place(
            9,
            &HeaderMatch::of(FieldMatch::TpDst(443)),
            &[vec![Mod::SetLoc(port(6))]],
            3,
        );
        agree(&t);
        t.delete_exact(9, &HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(1))));
        agree(&t);
        let c = compile(&(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2))));
        t.install_classifier(&c, 1000);
        agree(&t);
        t.remove_at_or_above(1000);
        agree(&t);
        t.clear();
        agree(&t);
    }

    #[test]
    fn batch_lookup_matches_sequential_and_aggregates_counters() {
        let mk = || {
            let mut t = FlowTable::new();
            t.install(FlowEntry::new(
                10,
                HeaderMatch::of(FieldMatch::TpDst(80)),
                vec![vec![Mod::SetLoc(port(2))]],
            ));
            t.install(FlowEntry::new(
                1,
                HeaderMatch::any(),
                vec![vec![Mod::SetLoc(port(9))]],
            ));
            t
        };
        let mut batch = Vec::new();
        for i in 0..6u16 {
            let mut lp = web(port(1));
            lp.pkt.tp_dst = if i % 3 == 0 { 443 } else { 80 };
            batch.push(lp);
        }
        let mut seq = mk();
        for lp in &batch {
            seq.lookup(lp);
        }
        let mut bat = mk();
        let hits = bat.lookup_batch(&batch);
        assert_eq!(
            hits,
            batch
                .iter()
                .map(|lp| seq.classify(lp).map(|(i, _)| i))
                .collect::<Vec<_>>()
        );
        assert_eq!(seq, bat, "aggregated counters must equal sequential");
        assert_eq!(bat.entries()[0].packet_count, 4);
        assert_eq!(bat.entries()[1].packet_count, 2);
    }
}
