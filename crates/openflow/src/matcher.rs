//! Compiled data-plane matcher: hash/trie fast path over the flow table.
//!
//! [`FlowTable::classify`](crate::table::FlowTable::classify) semantics are
//! a priority-ordered linear first-match walk. That is the *specification*;
//! this module is the *implementation* that makes it run at packet rate.
//! The tables the SDX deploys have a very particular shape (DESIGN.md §9):
//! VMAC tag stages are single-field exact matches on `dl_dst`, inbound
//! stages key on `in_port`, and FIB stages key on an `nw_dst` prefix. A
//! [`CompiledMatcher`] exploits that shape with three indexes:
//!
//! * **exact** — hash maps over `dl_dst` and `in_port`, the dominant
//!   discriminators. A pattern constraining `dl_dst` goes in the `dl_dst`
//!   map (keyed by the exact MAC); otherwise a pattern constraining
//!   `in_port` goes in the `in_port` map.
//! * **trie** — patterns constraining `nw_dst` (and neither exact field)
//!   live in a [`PrefixTrie`] bucket at their prefix; lookup walks the
//!   covering set via [`PrefixTrie::for_each_match`].
//! * **residual** — everything else (wide/multi-field patterns) stays in a
//!   priority-ordered list and is always scanned.
//!
//! Every entry lives in **exactly one** index, and the index it lives in is
//! probed for every packet the pattern could match (a pattern constraining
//! `dl_dst = M` can only match packets with `dl_dst = M`, which probe
//! bucket `M`; likewise for `in_port` and covering prefixes). So the
//! candidate set seen for a packet always contains every matching entry,
//! and the maximum priority among *verified* candidates (each candidate's
//! full pattern is re-checked with [`HeaderMatch::matches`]) is exactly the
//! priority the linear walk would return. The table then resolves the
//! winner *within that one priority band* in table order, reproducing
//! first-match tie-breaking bit-for-bit — which is what lets the
//! differential oracle assert `(index, entry)` identity against the linear
//! walk on every probe.
//!
//! Buckets are kept sorted by descending priority so a scan can stop at the
//! first verified match and prune against the best candidate found so far.
//! Coherence with the mutable table is by epoch tagging: every table
//! mutation bumps the table epoch and either updates the matcher
//! incrementally (single-entry install/delete), rebuilds it (bulk
//! removals, classifier installs), or just restamps it (counter/bucket
//! changes that cannot affect classification). `classify` debug-asserts
//! the epochs agree.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use sdx_net::{HeaderMatch, LocatedPacket, MacAddr, PortId, PrefixTrie};

use crate::table::FlowEntry;

/// FNV-1a, 64-bit. The keys hashed here are 6-byte MACs and small port
/// ids; FNV beats SipHash by a wide margin at that size, is fully
/// deterministic (reproducible experiments), and HashDoS is a non-concern
/// for keys the controller itself assigned.
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// An index entry: enough to rank (priority) and verify (full pattern).
#[derive(Clone, Copy, Debug)]
struct Candidate {
    priority: u32,
    pattern: HeaderMatch,
}

/// Which index satisfied a lookup — for the hit-distribution telemetry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum IndexKind {
    Exact,
    Trie,
    Residual,
}

/// Where a pattern is filed. Mirrors the module-level routing rule.
enum Route {
    DlDst(MacAddr),
    InPort(PortId),
    NwDst(sdx_net::Prefix),
    Residual,
}

fn route(pattern: &HeaderMatch) -> Route {
    if let Some(mac) = pattern.dl_dst {
        Route::DlDst(mac)
    } else if let Some(port) = pattern.in_port {
        Route::InPort(port)
    } else if let Some(p) = pattern.nw_dst {
        Route::NwDst(p)
    } else {
        Route::Residual
    }
}

/// Lookup-side hit counters. Atomics because `classify` takes `&self`
/// (the diagnostic walk must not need a mutable table) and the table must
/// stay `Sync` for the scoped-thread wave fanout.
#[derive(Debug, Default)]
struct Hits {
    exact: AtomicU64,
    trie: AtomicU64,
    residual: AtomicU64,
    miss: AtomicU64,
}

impl Clone for Hits {
    fn clone(&self) -> Self {
        Hits {
            exact: AtomicU64::new(self.exact.load(Ordering::Relaxed)),
            trie: AtomicU64::new(self.trie.load(Ordering::Relaxed)),
            residual: AtomicU64::new(self.residual.load(Ordering::Relaxed)),
            miss: AtomicU64::new(self.miss.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time snapshot of matcher shape and traffic distribution —
/// the payload behind the `dataplane.matcher.*` telemetry gauges and the
/// Mpps bench's memory/hit-rate columns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MatcherStats {
    /// Table epoch this matcher was built/updated for.
    pub epoch: u64,
    /// Distinct `dl_dst` + `in_port` hash keys.
    pub exact_keys: usize,
    /// Entries filed under the exact-match hash indexes.
    pub exact_entries: usize,
    /// Distinct prefixes in the `nw_dst` trie.
    pub trie_prefixes: usize,
    /// Entries filed under the trie.
    pub trie_entries: usize,
    /// Entries in the residual linear list.
    pub residual_entries: usize,
    /// Full rebuilds since table creation.
    pub builds: u64,
    /// Wall-clock nanoseconds of the most recent full rebuild.
    pub last_build_nanos: u64,
    /// Estimated index heap footprint in bytes (candidates + bucket and
    /// node overhead; an accounting estimate, not an allocator
    /// measurement).
    pub approx_bytes: usize,
    /// Lookups answered by the exact-match hash indexes.
    pub exact_hits: u64,
    /// Lookups answered by the prefix trie.
    pub trie_hits: u64,
    /// Lookups answered by the residual list.
    pub residual_hits: u64,
    /// Lookups that matched nothing (table miss).
    pub miss_count: u64,
}

/// The compiled fast path for one [`FlowTable`](crate::table::FlowTable).
///
/// Built and maintained by the table itself; external callers only observe
/// it through [`MatcherStats`]. See the module docs for the candidate-set
/// completeness argument that makes `best_priority` exact.
#[derive(Clone, Default)]
pub struct CompiledMatcher {
    by_dl_dst: FnvMap<MacAddr, Vec<Candidate>>,
    by_in_port: FnvMap<PortId, Vec<Candidate>>,
    by_nw_dst: PrefixTrie<Vec<Candidate>>,
    residual: Vec<Candidate>,
    epoch: u64,
    builds: u64,
    last_build_nanos: u64,
    hits: Hits,
}

/// Insert keeping the bucket sorted by descending priority (after any
/// equal-priority run; bucket-internal order among equals is irrelevant —
/// the table resolves the band).
fn insert_sorted(bucket: &mut Vec<Candidate>, c: Candidate) {
    let at = bucket.partition_point(|x| x.priority >= c.priority);
    bucket.insert(at, c);
}

fn remove_from(bucket: &mut Vec<Candidate>, priority: u32, pattern: &HeaderMatch) -> bool {
    match bucket
        .iter()
        .position(|c| c.priority == priority && &c.pattern == pattern)
    {
        Some(i) => {
            bucket.remove(i);
            true
        }
        None => false,
    }
}

impl CompiledMatcher {
    /// The table epoch this matcher reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Restamp without structural change (bucket/cookie edits cannot move
    /// a classification decision).
    pub(crate) fn touch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Files one new entry. O(bucket) — the incremental path under
    /// `install` / flow-mod `Add`.
    pub(crate) fn insert(&mut self, priority: u32, pattern: &HeaderMatch, epoch: u64) {
        let c = Candidate {
            priority,
            pattern: *pattern,
        };
        match route(pattern) {
            Route::DlDst(mac) => insert_sorted(self.by_dl_dst.entry(mac).or_default(), c),
            Route::InPort(port) => insert_sorted(self.by_in_port.entry(port).or_default(), c),
            Route::NwDst(p) => insert_sorted(self.by_nw_dst.get_or_insert_with(p, Vec::new), c),
            Route::Residual => insert_sorted(&mut self.residual, c),
        }
        self.epoch = epoch;
    }

    /// Unfiles the entry at exactly (priority, pattern). The incremental
    /// path under `delete_exact` / flow-mod `Delete`; empty buckets are
    /// pruned so memory tracks the live table.
    pub(crate) fn remove(&mut self, priority: u32, pattern: &HeaderMatch, epoch: u64) {
        match route(pattern) {
            Route::DlDst(mac) => {
                if let Some(b) = self.by_dl_dst.get_mut(&mac) {
                    remove_from(b, priority, pattern);
                    if b.is_empty() {
                        self.by_dl_dst.remove(&mac);
                    }
                }
            }
            Route::InPort(port) => {
                if let Some(b) = self.by_in_port.get_mut(&port) {
                    remove_from(b, priority, pattern);
                    if b.is_empty() {
                        self.by_in_port.remove(&port);
                    }
                }
            }
            Route::NwDst(p) => {
                if let Some(b) = self.by_nw_dst.get_mut(p) {
                    remove_from(b, priority, pattern);
                    if b.is_empty() {
                        self.by_nw_dst.remove(p);
                    }
                }
            }
            Route::Residual => {
                remove_from(&mut self.residual, priority, pattern);
            }
        }
        self.epoch = epoch;
    }

    /// Drops all indexed entries (table `clear`). Hit counters survive —
    /// they are lifetime telemetry, not table state.
    pub(crate) fn clear(&mut self, epoch: u64) {
        self.by_dl_dst.clear();
        self.by_in_port.clear();
        self.by_nw_dst.clear();
        self.residual.clear();
        self.epoch = epoch;
    }

    /// Full recompile from the live entry list — the bulk path under
    /// `install_classifier`, band/cookie removals, and explicit
    /// [`rebuild_matcher`](crate::table::FlowTable::rebuild_matcher).
    pub(crate) fn rebuild(&mut self, entries: &[FlowEntry], epoch: u64) {
        let t0 = Instant::now();
        self.by_dl_dst.clear();
        self.by_in_port.clear();
        self.by_nw_dst.clear();
        self.residual.clear();
        for e in entries {
            self.insert(e.priority, &e.pattern, epoch);
        }
        self.epoch = epoch;
        self.builds += 1;
        self.last_build_nanos = t0.elapsed().as_nanos() as u64;
    }

    /// The priority the linear first-match walk would return for `lp`, or
    /// `None` on table miss. Exact — see the module docs. Also attributes
    /// the hit to the index that produced the winning candidate (when two
    /// indexes tie on priority the earlier-probed one is credited; the
    /// distribution is telemetry, the priority is not).
    pub fn best_priority(&self, lp: &LocatedPacket) -> Option<u32> {
        fn scan(
            bucket: &[Candidate],
            lp: &LocatedPacket,
            best: &mut Option<(u32, IndexKind)>,
            kind: IndexKind,
        ) {
            for c in bucket {
                if let Some((b, _)) = best {
                    if c.priority <= *b {
                        return; // sorted desc: nothing below can win
                    }
                }
                if c.pattern.matches(lp) {
                    *best = Some((c.priority, kind));
                    return; // first match in a sorted bucket is its best
                }
            }
        }

        let mut best: Option<(u32, IndexKind)> = None;
        if let Some(bucket) = self.by_dl_dst.get(&lp.pkt.dl_dst) {
            scan(bucket, lp, &mut best, IndexKind::Exact);
        }
        if let Some(bucket) = self.by_in_port.get(&lp.loc) {
            scan(bucket, lp, &mut best, IndexKind::Exact);
        }
        if !self.by_nw_dst.is_empty() {
            self.by_nw_dst.for_each_match(lp.pkt.nw_dst, |bucket| {
                scan(bucket, lp, &mut best, IndexKind::Trie)
            });
        }
        scan(&self.residual, lp, &mut best, IndexKind::Residual);

        match best {
            Some((priority, kind)) => {
                let counter = match kind {
                    IndexKind::Exact => &self.hits.exact,
                    IndexKind::Trie => &self.hits.trie,
                    IndexKind::Residual => &self.hits.residual,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                Some(priority)
            }
            None => {
                self.hits.miss.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Shape + hit-distribution snapshot.
    pub fn stats(&self) -> MatcherStats {
        let exact_entries: usize = self
            .by_dl_dst
            .values()
            .chain(self.by_in_port.values())
            .map(Vec::len)
            .sum();
        let trie_entries: usize = self.by_nw_dst.iter().map(|(_, b)| b.len()).sum();
        let trie_nodes = self.by_nw_dst.node_count();
        let exact_keys = self.by_dl_dst.len() + self.by_in_port.len();
        let cand = std::mem::size_of::<Candidate>();
        let bucket_overhead = std::mem::size_of::<Vec<Candidate>>() + 8; // vec header + key share
        let node_overhead = 56; // Option<Vec> value + two Option<Box> children
        MatcherStats {
            epoch: self.epoch,
            exact_keys,
            exact_entries,
            trie_prefixes: self.by_nw_dst.len(),
            trie_entries,
            residual_entries: self.residual.len(),
            builds: self.builds,
            last_build_nanos: self.last_build_nanos,
            approx_bytes: (exact_entries + trie_entries + self.residual.len()) * cand
                + exact_keys * bucket_overhead
                + trie_nodes * node_overhead,
            exact_hits: self.hits.exact.load(Ordering::Relaxed),
            trie_hits: self.hits.trie.load(Ordering::Relaxed),
            residual_hits: self.hits.residual.load(Ordering::Relaxed),
            miss_count: self.hits.miss.load(Ordering::Relaxed),
        }
    }
}

/// Summarized — the full index would drown every `assert_eq!` diff on
/// `FlowTable` (whose derived `Debug` embeds this).
impl std::fmt::Debug for CompiledMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledMatcher")
            .field("epoch", &self.epoch)
            .field(
                "exact_keys",
                &(self.by_dl_dst.len() + self.by_in_port.len()),
            )
            .field("trie_prefixes", &self.by_nw_dst.len())
            .field("residual", &self.residual.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, prefix, FieldMatch, Packet, ParticipantId};

    fn port(n: u32) -> PortId {
        PortId::Phys(ParticipantId(n), 1)
    }

    fn pkt(loc: PortId, dst: &str, vmac: u32) -> LocatedPacket {
        let mut p = Packet::tcp(ip("10.0.0.1"), ip(dst), 5, 80);
        p.dl_dst = MacAddr::vmac(vmac);
        LocatedPacket::at(loc, p)
    }

    #[test]
    fn routes_to_the_expected_index() {
        let mut m = CompiledMatcher::default();
        m.insert(9, &HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(3))), 1);
        m.insert(8, &HeaderMatch::of(FieldMatch::InPort(port(1))), 2);
        m.insert(
            7,
            &HeaderMatch::of(FieldMatch::NwDst(prefix("20.0.0.0/8"))),
            3,
        );
        m.insert(1, &HeaderMatch::any(), 4);
        let s = m.stats();
        assert_eq!(s.exact_keys, 2);
        assert_eq!(s.exact_entries, 2);
        assert_eq!(s.trie_prefixes, 1);
        assert_eq!(s.trie_entries, 1);
        assert_eq!(s.residual_entries, 1);
        assert_eq!(s.epoch, 4);
        // dl_dst beats in_port in routing when both are constrained.
        let both =
            HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(3))).and(FieldMatch::InPort(port(1)));
        m.insert(10, &both, 5);
        assert_eq!(m.stats().exact_entries, 3);
        m.remove(10, &both, 6);
        assert_eq!(m.stats().exact_entries, 2);
    }

    #[test]
    fn best_priority_merges_across_indexes() {
        let mut m = CompiledMatcher::default();
        m.insert(5, &HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(3))), 1);
        m.insert(
            7,
            &HeaderMatch::of(FieldMatch::NwDst(prefix("20.0.0.0/8"))),
            2,
        );
        m.insert(1, &HeaderMatch::any(), 3);
        // All three indexes hold a matching candidate; trie has the max.
        assert_eq!(m.best_priority(&pkt(port(1), "20.0.0.1", 3)), Some(7));
        // Off-prefix packet: dl_dst bucket wins over residual.
        assert_eq!(m.best_priority(&pkt(port(1), "30.0.0.1", 3)), Some(5));
        // Nothing but the wildcard.
        assert_eq!(m.best_priority(&pkt(port(1), "30.0.0.1", 9)), Some(1));
        let s = m.stats();
        assert_eq!(s.trie_hits, 1);
        assert_eq!(s.exact_hits, 1);
        assert_eq!(s.residual_hits, 1);
        assert_eq!(s.miss_count, 0);
    }

    #[test]
    fn miss_counts_and_bucket_pruning() {
        let mut m = CompiledMatcher::default();
        let pat = HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(3)));
        m.insert(5, &pat, 1);
        assert_eq!(m.best_priority(&pkt(port(1), "20.0.0.1", 4)), None);
        assert_eq!(m.stats().miss_count, 1);
        m.remove(5, &pat, 2);
        assert_eq!(m.stats().exact_keys, 0, "empty buckets are pruned");
    }

    #[test]
    fn candidate_verification_rechecks_full_pattern() {
        // Filed under dl_dst, but carries an extra tp_dst constraint the
        // bucket key knows nothing about.
        let mut m = CompiledMatcher::default();
        let pat = HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(3))).and(FieldMatch::TpDst(443));
        m.insert(9, &pat, 1);
        m.insert(1, &HeaderMatch::any(), 2);
        // Right MAC, wrong port: the high candidate must be rejected.
        assert_eq!(m.best_priority(&pkt(port(1), "20.0.0.1", 3)), Some(1));
    }
}
