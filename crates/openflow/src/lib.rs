//! # sdx-openflow — the SDN data plane the SDX controls
//!
//! The paper's prototype drives an Open vSwitch instance over OpenFlow.
//! This crate is the equivalent substrate as a deterministic simulator:
//!
//! * [`table`] — a priority flow table with match patterns, action buckets
//!   and per-entry counters. Rule counts read from here are the metric of
//!   Figures 7 and 9.
//! * [`matcher`] — the compiled fast path: hash indexes over the exact-match
//!   discriminators (`dl_dst`, `in_port`), an `nw_dst` prefix trie, and a
//!   residual list, kept epoch-coherent with the table and guaranteed
//!   index-for-index identical to the linear walk.
//! * [`flowmod`] — the typed `Add`/`Modify`/`Delete` delta protocol the
//!   controller patches tables with: atomic per batch, epoch-tagged,
//!   cookie-indexed (§4.3.2's incremental updates made explicit).
//! * [`switch`] — the packet-processing pipeline: classify against the
//!   table, execute buckets, emit `(port, packet)` outputs.
//! * [`arp`] — the SDX ARP responder that answers queries for virtual next
//!   hops with the corresponding virtual MAC (§4.2).
//! * [`middlebox`] — middleboxes behind fabric ports and the §8
//!   service-chaining harness.
//! * [`border_router`] — the participant border-router model: a BGP-fed
//!   FIB whose next-hop-MAC rewriting implements the *first stage* of the
//!   SDX's multi-stage FIB without any switch table space (Figure 2).
//! * [`fabric`] — glues border routers and the SDX switch into an exchange
//!   point you can inject packets into and observe deliveries from.
//! * [`multiswitch`] — the §4.1 topology abstraction: the same logical
//!   classifier distributed over multiple physical switches.
//!
//! Multicast rules use group-bucket semantics (each bucket processes its
//! own copy of the packet), i.e. OpenFlow 1.1+ ALL-groups rather than the
//! OF 1.0 accumulate-and-output quirk; this matches what the compiled
//! classifiers mean and what modern switches do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod border_router;
pub mod fabric;
pub mod flowmod;
pub mod matcher;
pub mod middlebox;
pub mod multiswitch;
pub mod switch;
pub mod table;

pub use arp::ArpResponder;
pub use border_router::BorderRouter;
pub use fabric::Fabric;
pub use flowmod::{BatchStats, FlowMod, FlowModBatch, FlowModError};
pub use matcher::{CompiledMatcher, MatcherStats};
pub use middlebox::Middlebox;
pub use multiswitch::MultiFabric;
pub use switch::Switch;
pub use table::{FlowEntry, FlowTable};
