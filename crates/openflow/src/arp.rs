//! The SDX ARP responder (§4.2, §5.1).
//!
//! Virtual next hops are IP addresses that exist nowhere; when a border
//! router tries to resolve one, the SDX controller answers the ARP query
//! itself with the *virtual MAC* that tags the corresponding forwarding
//! equivalence class. Physical participant addresses are answered from the
//! same table, pre-populated from the static IXP configuration.

use std::collections::BTreeMap;

use sdx_net::{Ipv4Addr, MacAddr};

/// An ARP request: "who has `target`?"
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpRequest {
    /// Address being resolved.
    pub target: Ipv4Addr,
}

/// An ARP reply: "`target` is at `mac`."
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpReply {
    /// The resolved address.
    pub target: Ipv4Addr,
    /// Its MAC — a VMAC for virtual next hops.
    pub mac: MacAddr,
}

/// The controller-side ARP table/responder.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ArpResponder {
    table: BTreeMap<Ipv4Addr, MacAddr>,
    /// Requests that could not be answered (diagnostics/failure injection).
    pub unanswered: u64,
}

impl ArpResponder {
    /// An empty responder.
    pub fn new() -> Self {
        ArpResponder::default()
    }

    /// Binds `addr` → `mac`, returning the previous binding if any.
    /// Called by the VNH allocator whenever a new virtual next hop is
    /// assigned, and at startup for participants' physical addresses.
    pub fn bind(&mut self, addr: Ipv4Addr, mac: MacAddr) -> Option<MacAddr> {
        self.table.insert(addr, mac)
    }

    /// Removes a binding (e.g. when a VNH is retired).
    pub fn unbind(&mut self, addr: Ipv4Addr) -> Option<MacAddr> {
        self.table.remove(&addr)
    }

    /// Looks up without counting a miss.
    pub fn resolve(&self, addr: Ipv4Addr) -> Option<MacAddr> {
        self.table.get(&addr).copied()
    }

    /// Handles a request, counting unanswered ones.
    pub fn handle(&mut self, req: ArpRequest) -> Option<ArpReply> {
        match self.table.get(&req.target) {
            Some(mac) => Some(ArpReply {
                target: req.target,
                mac: *mac,
            }),
            None => {
                self.unanswered += 1;
                None
            }
        }
    }

    /// Handles a raw ARP frame off the wire: decodes it, answers requests
    /// for bound addresses, and returns the encoded reply frame. Replies
    /// and unknown targets produce `None`.
    pub fn handle_frame(&mut self, frame: &[u8]) -> Option<Vec<u8>> {
        let arp = sdx_net::wire::decode_arp(frame).ok()?;
        if !arp.is_request {
            return None;
        }
        let reply = self
            .handle(ArpRequest {
                target: arp.target_ip,
            })
            .map(|r| arp.reply_with(r.mac))?;
        Some(sdx_net::wire::encode_arp(&reply))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::ip;

    #[test]
    fn bind_and_resolve() {
        let mut arp = ArpResponder::new();
        assert!(arp.is_empty());
        assert_eq!(arp.bind(ip("172.16.255.1"), MacAddr::vmac(7)), None);
        assert_eq!(arp.resolve(ip("172.16.255.1")), Some(MacAddr::vmac(7)));
        assert_eq!(arp.len(), 1);
        // Rebinding reports the old MAC (FEC re-assignment).
        assert_eq!(
            arp.bind(ip("172.16.255.1"), MacAddr::vmac(9)),
            Some(MacAddr::vmac(7))
        );
    }

    #[test]
    fn handle_replies_and_counts_misses() {
        let mut arp = ArpResponder::new();
        arp.bind(ip("172.16.255.1"), MacAddr::vmac(7));
        let reply = arp
            .handle(ArpRequest {
                target: ip("172.16.255.1"),
            })
            .unwrap();
        assert_eq!(reply.mac, MacAddr::vmac(7));
        assert_eq!(reply.target, ip("172.16.255.1"));
        assert!(arp
            .handle(ArpRequest {
                target: ip("172.16.255.99"),
            })
            .is_none());
        assert_eq!(arp.unanswered, 1);
    }

    #[test]
    fn unbind_retires_vnh() {
        let mut arp = ArpResponder::new();
        arp.bind(ip("172.16.255.1"), MacAddr::vmac(7));
        assert_eq!(arp.unbind(ip("172.16.255.1")), Some(MacAddr::vmac(7)));
        assert_eq!(arp.resolve(ip("172.16.255.1")), None);
        assert_eq!(arp.unbind(ip("172.16.255.1")), None);
    }

    #[test]
    fn handle_frame_answers_vnh_queries() {
        use sdx_net::wire::{decode_arp, encode_arp, ArpFrame};
        let mut arp = ArpResponder::new();
        arp.bind(ip("172.16.128.9"), MacAddr::vmac(9));
        let req = ArpFrame::request(MacAddr::physical(1), ip("172.16.0.5"), ip("172.16.128.9"));
        let reply_frame = arp.handle_frame(&encode_arp(&req)).expect("answered");
        let reply = decode_arp(&reply_frame).expect("valid reply");
        assert!(!reply.is_request);
        assert_eq!(reply.sender_mac, MacAddr::vmac(9));
        // Unknown targets and non-request frames produce nothing.
        let unknown = ArpFrame::request(MacAddr::physical(1), ip("172.16.0.5"), ip("10.9.9.9"));
        assert!(arp.handle_frame(&encode_arp(&unknown)).is_none());
        assert!(arp.handle_frame(&reply_frame).is_none());
        assert!(arp.handle_frame(&[0u8; 10]).is_none());
    }
}
