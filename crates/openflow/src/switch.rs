//! The SDN switch: ports + flow table + packet pipeline.
//!
//! `process` runs one packet through the table and returns the located
//! packets emitted on output ports. A packet "output" to the port it
//! arrived on is suppressed (OpenFlow requires `IN_PORT` explicitly; the
//! SDX never hairpins).

use sdx_net::LocatedPacket;
use sdx_policy::Classifier;

use crate::table::{FlowEntry, FlowTable};

/// A software OpenFlow-style switch.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Switch {
    table: FlowTable,
    /// Packets that missed the table (dropped).
    pub miss_count: u64,
}

impl Switch {
    /// A switch with an empty table.
    pub fn new() -> Self {
        Switch::default()
    }

    /// The flow table (mutable for installation).
    pub fn table_mut(&mut self) -> &mut FlowTable {
        &mut self.table
    }

    /// The flow table (read-only).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Replaces the table with a compiled classifier at priority base 0.
    pub fn load_classifier(&mut self, c: &Classifier) {
        self.table.clear();
        self.table.install_classifier(c, 0);
    }

    /// Installs higher-priority delta rules (the §4.3.2 fast path).
    pub fn overlay_classifier(&mut self, c: &Classifier, base: u32) {
        self.table.install_classifier(c, base);
    }

    /// Installs a single entry.
    pub fn install(&mut self, entry: FlowEntry) {
        self.table.install(entry);
    }

    /// Processes one packet; returns `(output port, packet)` deliveries.
    pub fn process(&mut self, lp: LocatedPacket) -> Vec<LocatedPacket> {
        let in_port = lp.loc;
        let Some(entry) = self.table.lookup(&lp) else {
            self.miss_count += 1;
            return Vec::new();
        };
        let buckets = entry.buckets.clone();
        let mut out = Vec::with_capacity(buckets.len());
        for bucket in buckets {
            let mut copy = lp;
            for m in &bucket {
                m.apply(&mut copy);
            }
            // Suppress hairpin and "outputs" that never set a port.
            if copy.loc != in_port && !out.contains(&copy) {
                out.push(copy);
            }
        }
        out
    }

    /// Processes a batch of packets; deliveries are concatenated in input
    /// order. Semantically identical to calling [`process`](Self::process)
    /// per packet (same hairpin suppression and per-packet output dedup,
    /// same counters) but amortized: one classification pass over the
    /// shared table, no per-packet bucket cloning, and per-entry counter
    /// updates aggregated once per batch.
    pub fn process_batch(&mut self, inputs: &[LocatedPacket]) -> Vec<LocatedPacket> {
        let mut out = Vec::with_capacity(inputs.len());
        let mut misses = 0u64;
        let mut agg: std::collections::BTreeMap<usize, (u64, u64)> =
            std::collections::BTreeMap::new();
        for lp in inputs {
            let Some((idx, entry)) = self.table.classify(lp) else {
                misses += 1;
                continue;
            };
            let slot = agg.entry(idx).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += lp.pkt.payload_len as u64;
            let start = out.len();
            for bucket in &entry.buckets {
                let mut copy = *lp;
                for m in bucket {
                    m.apply(&mut copy);
                }
                // Dedup within this packet's own outputs, as `process` does.
                if copy.loc != lp.loc && !out[start..].contains(&copy) {
                    out.push(copy);
                }
            }
        }
        self.miss_count += misses;
        for (idx, (pkts, bytes)) in agg {
            self.table.credit(idx, pkts, bytes);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, FieldMatch, HeaderMatch, Mod, Packet, ParticipantId, PortId};
    use sdx_policy::{compile, Policy};

    fn port(n: u32) -> PortId {
        PortId::Phys(ParticipantId(n), 1)
    }

    fn pkt(dport: u16) -> LocatedPacket {
        LocatedPacket::at(
            port(1),
            Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 5, dport),
        )
    }

    #[test]
    fn forwards_by_table() {
        let mut sw = Switch::new();
        sw.load_classifier(&compile(
            &(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2))),
        ));
        let out = sw.process(pkt(80));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, port(2));
        assert!(sw.process(pkt(443)).is_empty());
        assert_eq!(sw.miss_count, 0, "classifier is total; drops hit rules");
    }

    #[test]
    fn miss_counter_without_catchall() {
        let mut sw = Switch::new();
        sw.install(FlowEntry::new(
            5,
            HeaderMatch::of(FieldMatch::TpDst(443)),
            vec![vec![Mod::SetLoc(port(2))]],
        ));
        assert!(sw.process(pkt(80)).is_empty());
        assert_eq!(sw.miss_count, 1);
    }

    #[test]
    fn hairpin_suppressed() {
        let mut sw = Switch::new();
        sw.install(FlowEntry::new(
            5,
            HeaderMatch::any(),
            vec![vec![Mod::SetLoc(port(1))]],
        ));
        assert!(sw.process(pkt(80)).is_empty(), "output to in-port dropped");
    }

    #[test]
    fn multicast_buckets_are_independent() {
        let mut sw = Switch::new();
        sw.install(FlowEntry::new(
            5,
            HeaderMatch::any(),
            vec![
                vec![Mod::SetNwDst(ip("9.9.9.9")), Mod::SetLoc(port(2))],
                vec![Mod::SetLoc(port(3))],
            ],
        ));
        let out = sw.process(pkt(80));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].pkt.nw_dst, ip("9.9.9.9"));
        // Second bucket must see the ORIGINAL packet (group semantics).
        assert_eq!(out[1].pkt.nw_dst, ip("20.0.0.1"));
    }

    #[test]
    fn process_batch_equals_sequential_process() {
        let build = || {
            let mut sw = Switch::new();
            sw.install(FlowEntry::new(
                10,
                HeaderMatch::of(FieldMatch::TpDst(80)),
                vec![vec![Mod::SetLoc(port(2))], vec![Mod::SetLoc(port(3))]],
            ));
            sw.install(FlowEntry::new(
                5,
                HeaderMatch::of(FieldMatch::TpDst(22)),
                vec![vec![Mod::SetLoc(port(1))]], // hairpin: suppressed
            ));
            sw
        };
        let batch: Vec<LocatedPacket> = [80, 22, 443, 80, 80, 22].iter().map(|&d| pkt(d)).collect();
        let mut seq = build();
        let expect: Vec<LocatedPacket> = batch.iter().flat_map(|lp| seq.process(*lp)).collect();
        let mut bat = build();
        let got = bat.process_batch(&batch);
        assert_eq!(got, expect, "same deliveries in the same order");
        assert_eq!(bat.miss_count, seq.miss_count);
        assert_eq!(bat, seq, "identical counters after aggregation");
    }

    #[test]
    fn overlay_shadows_base() {
        let mut sw = Switch::new();
        sw.load_classifier(&compile(
            &(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(2))),
        ));
        sw.overlay_classifier(
            &compile(&(Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(port(7)))),
            100_000,
        );
        assert_eq!(sw.process(pkt(80))[0].loc, port(7));
        // Retiring the overlay restores base behaviour.
        sw.table_mut().remove_at_or_above(100_000);
        assert_eq!(sw.process(pkt(80))[0].loc, port(2));
    }
}
