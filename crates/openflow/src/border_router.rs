//! The participant border-router model: the free first FIB stage.
//!
//! §4.2 of the paper (Figure 2): the SDX needs a two-stage FIB — stage 1
//! maps destination prefix → FEC tag, stage 2 maps tag → forwarding action.
//! Stage 1 would be enormous (500k+ prefixes), so the SDX offloads it to
//! the participant's *own border router*, transparently:
//!
//! 1. the route server re-advertises each best route with a **virtual next
//!    hop** (VNH) IP as its NEXT_HOP;
//! 2. the border router installs a FIB entry for the prefix pointing at the
//!    VNH, as any BGP router would;
//! 3. when forwarding, it ARPs for the VNH; the SDX ARP responder answers
//!    with the **virtual MAC** encoding the FEC;
//! 4. every packet the router sends into the fabric therefore carries its
//!    FEC in the destination MAC field — the tag stage 2 matches on.
//!
//! This model implements exactly that: it consumes the route server's
//! UPDATE messages, maintains a prefix-trie FIB, resolves next hops through
//! an [`ArpResponder`], and emits tagged packets. It is *unmodified-BGP*
//! faithful — nothing here knows about FECs; the tag appears purely through
//! next-hop+ARP mechanics, which is the paper's point.

use sdx_net::{Ipv4Addr, LocatedPacket, MacAddr, Packet, PortId, Prefix, PrefixTrie};

use sdx_bgp::msg::UpdateMessage;

use crate::arp::{ArpRequest, ArpResponder};

/// A FIB entry: where the router sends matching packets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FibEntry {
    /// The BGP next-hop address (a VNH at the SDX).
    pub next_hop: Ipv4Addr,
}

/// A participant's border router.
#[derive(Clone, PartialEq, Debug)]
pub struct BorderRouter {
    /// The fabric port this router is attached to.
    pub port: PortId,
    /// The router's interface MAC.
    pub mac: MacAddr,
    fib: PrefixTrie<FibEntry>,
    /// Local ARP cache, filled by querying the SDX responder.
    arp_cache: std::collections::BTreeMap<Ipv4Addr, MacAddr>,
    /// Packets dropped for lack of a route.
    pub no_route_drops: u64,
    /// Packets dropped because ARP resolution failed.
    pub no_arp_drops: u64,
}

impl BorderRouter {
    /// A router attached at `port` with interface `mac` and an empty FIB.
    pub fn new(port: PortId, mac: MacAddr) -> Self {
        BorderRouter {
            port,
            mac,
            fib: PrefixTrie::new(),
            arp_cache: std::collections::BTreeMap::new(),
            no_route_drops: 0,
            no_arp_drops: 0,
        }
    }

    /// Applies an UPDATE from the route server: withdrawals remove FIB
    /// entries, announcements install `prefix → next_hop`.
    pub fn apply_update(&mut self, update: &UpdateMessage) {
        for p in &update.withdrawn {
            self.fib.remove(*p);
        }
        if let Some(attrs) = &update.attrs {
            for p in &update.nlri {
                self.fib.insert(
                    *p,
                    FibEntry {
                        next_hop: attrs.next_hop,
                    },
                );
            }
        }
    }

    /// The FIB entry that would forward `dst`, if any (longest-prefix).
    pub fn route_for(&self, dst: Ipv4Addr) -> Option<(Prefix, FibEntry)> {
        self.fib.lookup(dst).map(|(p, e)| (p, *e))
    }

    /// Number of FIB entries (the paper's "no additional table space"
    /// claim is that this count is what the router holds *anyway*).
    pub fn fib_len(&self) -> usize {
        self.fib.len()
    }

    /// Flushes the ARP cache — required when the SDX re-binds a VNH to a
    /// new VMAC (the real system shortens ARP TTLs / sends gratuitous ARP).
    pub fn flush_arp(&mut self) {
        self.arp_cache.clear();
    }

    /// Invalidates one cached VNH→VMAC mapping (the per-address gratuitous
    /// ARP a delta-first reoptimize sends: only retired bindings are
    /// flushed, the rest of the cache survives). Returns whether an entry
    /// was present.
    pub fn invalidate_arp(&mut self, addr: Ipv4Addr) -> bool {
        self.arp_cache.remove(&addr).is_some()
    }

    /// The cached VMAC for `addr`, if resolved earlier — lets tests assert
    /// which cache entries survived a selective flush.
    pub fn cached_arp(&self, addr: Ipv4Addr) -> Option<MacAddr> {
        self.arp_cache.get(&addr).copied()
    }

    /// Number of live ARP-cache entries.
    pub fn arp_cache_len(&self) -> usize {
        self.arp_cache.len()
    }

    /// Drops every FIB entry — the effect of bouncing the BGP session to
    /// the route server (full state is re-learned from re-advertisements).
    pub fn clear_fib(&mut self) {
        self.fib.clear();
    }

    /// Forwards an IP packet originated behind this router into the
    /// fabric: FIB lookup, ARP for the next hop (through the SDX
    /// responder), MAC rewrite, and emission on the fabric port.
    ///
    /// Returns `None` when the packet has no route or ARP fails — both
    /// counted for the failure-injection tests.
    pub fn forward(&mut self, pkt: Packet, arp: &mut ArpResponder) -> Option<LocatedPacket> {
        let Some((_, entry)) = self.route_for(pkt.nw_dst) else {
            self.no_route_drops += 1;
            return None;
        };
        let mac = match self.arp_cache.get(&entry.next_hop) {
            Some(m) => *m,
            None => {
                let Some(reply) = arp.handle(ArpRequest {
                    target: entry.next_hop,
                }) else {
                    self.no_arp_drops += 1;
                    return None;
                };
                self.arp_cache.insert(entry.next_hop, reply.mac);
                reply.mac
            }
        };
        let tagged = pkt.with_macs(self.mac, mac);
        Some(LocatedPacket::at(self.port, tagged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_bgp::attrs::{AsPath, PathAttributes};
    use sdx_net::{ip, prefix, ParticipantId};

    fn router() -> BorderRouter {
        BorderRouter::new(PortId::Phys(ParticipantId(1), 1), MacAddr::physical(1))
    }

    fn announce(pfx: &str, nh: Ipv4Addr) -> UpdateMessage {
        UpdateMessage::announce(
            [prefix(pfx)],
            PathAttributes::new(AsPath::sequence([65002]), nh),
        )
    }

    #[test]
    fn fib_follows_updates() {
        let mut r = router();
        r.apply_update(&announce("74.125.0.0/16", ip("172.16.255.1")));
        assert_eq!(r.fib_len(), 1);
        let (p, e) = r.route_for(ip("74.125.1.1")).unwrap();
        assert_eq!(p, prefix("74.125.0.0/16"));
        assert_eq!(e.next_hop, ip("172.16.255.1"));
        r.apply_update(&UpdateMessage::withdraw([prefix("74.125.0.0/16")]));
        assert!(r.route_for(ip("74.125.1.1")).is_none());
    }

    #[test]
    fn forward_tags_with_vmac() {
        let mut r = router();
        let mut arp = ArpResponder::new();
        arp.bind(ip("172.16.255.1"), MacAddr::vmac(42));
        r.apply_update(&announce("74.125.0.0/16", ip("172.16.255.1")));
        let lp = r
            .forward(
                Packet::tcp(ip("10.0.0.1"), ip("74.125.1.1"), 5, 80),
                &mut arp,
            )
            .unwrap();
        // The packet enters the fabric on the router's port with the FEC
        // encoded in the destination MAC — the paper's data-plane tag.
        assert_eq!(lp.loc, PortId::Phys(ParticipantId(1), 1));
        assert_eq!(lp.pkt.dl_dst.fec_id(), Some(42));
        assert_eq!(lp.pkt.dl_src, MacAddr::physical(1));
    }

    #[test]
    fn arp_is_cached_until_flushed() {
        let mut r = router();
        let mut arp = ArpResponder::new();
        arp.bind(ip("172.16.255.1"), MacAddr::vmac(1));
        r.apply_update(&announce("74.125.0.0/16", ip("172.16.255.1")));
        let p = Packet::tcp(ip("10.0.0.1"), ip("74.125.1.1"), 5, 80);
        assert_eq!(r.forward(p, &mut arp).unwrap().pkt.dl_dst, MacAddr::vmac(1));
        // Rebind without flushing: stale cache still serves the old VMAC.
        arp.bind(ip("172.16.255.1"), MacAddr::vmac(2));
        assert_eq!(r.forward(p, &mut arp).unwrap().pkt.dl_dst, MacAddr::vmac(1));
        // Flush → new VMAC picked up.
        r.flush_arp();
        assert_eq!(r.forward(p, &mut arp).unwrap().pkt.dl_dst, MacAddr::vmac(2));
    }

    #[test]
    fn drops_are_counted() {
        let mut r = router();
        let mut arp = ArpResponder::new();
        // No route at all.
        assert!(r
            .forward(Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 5, 80), &mut arp)
            .is_none());
        assert_eq!(r.no_route_drops, 1);
        // Route exists but the VNH is unresolvable.
        r.apply_update(&announce("2.0.0.0/8", ip("172.16.255.9")));
        assert!(r
            .forward(Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 5, 80), &mut arp)
            .is_none());
        assert_eq!(r.no_arp_drops, 1);
        assert_eq!(arp.unanswered, 1);
    }

    #[test]
    fn more_specific_route_wins() {
        let mut r = router();
        let mut arp = ArpResponder::new();
        arp.bind(ip("172.16.255.1"), MacAddr::vmac(1));
        arp.bind(ip("172.16.255.2"), MacAddr::vmac(2));
        r.apply_update(&announce("74.0.0.0/8", ip("172.16.255.1")));
        r.apply_update(&announce("74.125.0.0/16", ip("172.16.255.2")));
        let lp = r
            .forward(
                Packet::tcp(ip("10.0.0.1"), ip("74.125.1.1"), 5, 80),
                &mut arp,
            )
            .unwrap();
        assert_eq!(lp.pkt.dl_dst.fec_id(), Some(2));
    }
}
