//! The typed flow-mod protocol: the controller→fabric boundary.
//!
//! Instead of swapping whole rule tables, the SDX controller describes
//! every data-plane change as a batch of typed modifications — the
//! OpenFlow `FLOW_MOD` triple of `ADD` / `MODIFY` / `DELETE` — stamped
//! with the commit epoch that produced it. Batches are applied
//! **atomically**: every mod is validated against the staged table state
//! before any of them lands, so a rejected batch leaves the table
//! untouched (the transactional guarantee `core::txn` builds on).
//!
//! This is what makes re-optimization churn proportional to *change*
//! rather than to table size: a one-prefix BGP event becomes a handful
//! of mods, not a table rewrite, and the per-batch [`BatchStats`] are
//! the churn currency the telemetry layer and `repro_rule_churn` report.

use core::fmt;

use sdx_net::{HeaderMatch, Mod};

use crate::table::{FlowEntry, FlowTable};

/// One typed table modification.
#[derive(Clone, PartialEq, Debug)]
pub enum FlowMod {
    /// Install a new entry. Rejected if an entry with the same
    /// (priority, pattern) already exists — a delta protocol never
    /// silently overwrites; it says `Modify` when it means modify.
    Add(FlowEntry),
    /// Replace the buckets (and cookie) of the entry at (priority,
    /// pattern), preserving its traffic counters. Rejected if absent.
    Modify {
        /// Priority of the target entry.
        priority: u32,
        /// Pattern of the target entry.
        pattern: HeaderMatch,
        /// The new action buckets.
        buckets: Vec<Vec<Mod>>,
        /// The new cookie.
        cookie: u64,
    },
    /// Remove the entry at exactly (priority, pattern). Rejected if
    /// absent — retired rules must be *deleted*, never assumed gone.
    Delete {
        /// Priority of the target entry.
        priority: u32,
        /// Pattern of the target entry.
        pattern: HeaderMatch,
    },
}

/// An atomic batch of flow mods, tagged with the controller commit epoch
/// that produced it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FlowModBatch {
    /// The controller's reconciliation epoch (monotonic per commit).
    pub epoch: u64,
    /// The modifications, applied in order.
    pub mods: Vec<FlowMod>,
}

impl FlowModBatch {
    /// An empty batch for `epoch`.
    pub fn new(epoch: u64) -> Self {
        FlowModBatch {
            epoch,
            mods: Vec::new(),
        }
    }

    /// Appends one mod.
    pub fn push(&mut self, m: FlowMod) {
        self.mods.push(m);
    }

    /// Number of mods in the batch.
    pub fn len(&self) -> usize {
        self.mods.len()
    }

    /// True if the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.mods.is_empty()
    }

    /// The add/modify/delete breakdown, without applying anything.
    pub fn stats(&self) -> BatchStats {
        let mut s = BatchStats::default();
        for m in &self.mods {
            match m {
                FlowMod::Add(_) => s.adds += 1,
                FlowMod::Modify { .. } => s.modifies += 1,
                FlowMod::Delete { .. } => s.deletes += 1,
            }
        }
        s
    }
}

/// Per-batch application counts — the unit of churn accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchStats {
    /// Entries installed.
    pub adds: usize,
    /// Entries whose buckets were replaced in place.
    pub modifies: usize,
    /// Entries removed.
    pub deletes: usize,
}

impl BatchStats {
    /// Total mods applied.
    pub fn total(&self) -> usize {
        self.adds + self.modifies + self.deletes
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{} ~{} -{}", self.adds, self.modifies, self.deletes)
    }
}

/// Why a batch was rejected. The whole batch is discarded; the table is
/// exactly as it was before [`FlowTable::apply_batch`].
#[derive(Clone, PartialEq, Debug)]
pub enum FlowModError {
    /// An `Add` targeted a (priority, pattern) slot already occupied.
    DuplicateAdd {
        /// Priority of the colliding slot.
        priority: u32,
        /// Pattern of the colliding slot.
        pattern: HeaderMatch,
    },
    /// A `Modify` or `Delete` targeted a (priority, pattern) slot with no
    /// entry in it.
    MissingTarget {
        /// `"modify"` or `"delete"`.
        op: &'static str,
        /// Priority of the empty slot.
        priority: u32,
        /// Pattern of the empty slot.
        pattern: HeaderMatch,
    },
}

impl fmt::Display for FlowModError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowModError::DuplicateAdd { priority, pattern } => write!(
                f,
                "flow-mod add collides with live entry at priority {priority} ({pattern:?})"
            ),
            FlowModError::MissingTarget {
                op,
                priority,
                pattern,
            } => write!(
                f,
                "flow-mod {op} targets no entry at priority {priority} ({pattern:?})"
            ),
        }
    }
}

impl FlowTable {
    /// Applies a batch atomically: every mod is staged against a working
    /// copy, and the table is replaced only if all of them validate. On
    /// error the table is untouched. `Modify` preserves the target's
    /// traffic counters; the cookie index is maintained throughout.
    pub fn apply_batch(&mut self, batch: &FlowModBatch) -> Result<BatchStats, FlowModError> {
        let mut staged = self.clone();
        let mut stats = BatchStats::default();
        for m in &batch.mods {
            match m {
                FlowMod::Add(entry) => {
                    if staged
                        .entries()
                        .iter()
                        .any(|e| e.priority == entry.priority && e.pattern == entry.pattern)
                    {
                        return Err(FlowModError::DuplicateAdd {
                            priority: entry.priority,
                            pattern: entry.pattern,
                        });
                    }
                    staged.install(entry.clone());
                    stats.adds += 1;
                }
                FlowMod::Modify {
                    priority,
                    pattern,
                    buckets,
                    cookie,
                } => {
                    if !staged.modify_in_place(*priority, pattern, buckets, *cookie) {
                        return Err(FlowModError::MissingTarget {
                            op: "modify",
                            priority: *priority,
                            pattern: *pattern,
                        });
                    }
                    stats.modifies += 1;
                }
                FlowMod::Delete { priority, pattern } => {
                    if !staged.delete_exact(*priority, pattern) {
                        return Err(FlowModError::MissingTarget {
                            op: "delete",
                            priority: *priority,
                            pattern: *pattern,
                        });
                    }
                    stats.deletes += 1;
                }
            }
        }
        *self = staged;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{FieldMatch, ParticipantId, PortId};

    fn out(n: u32) -> Vec<Vec<Mod>> {
        vec![vec![Mod::SetLoc(PortId::Phys(ParticipantId(n), 1))]]
    }

    fn seeded() -> FlowTable {
        let mut t = FlowTable::new();
        t.install(
            FlowEntry::new(10, HeaderMatch::of(FieldMatch::TpDst(80)), out(2)).with_cookie(1),
        );
        t.install(FlowEntry::new(5, HeaderMatch::any(), vec![]).with_cookie(0));
        t
    }

    #[test]
    fn batch_applies_in_order_and_counts() {
        let mut t = seeded();
        let m443 = HeaderMatch::of(FieldMatch::TpDst(443));
        let batch = FlowModBatch {
            epoch: 3,
            mods: vec![
                FlowMod::Add(FlowEntry::new(7, m443, out(3)).with_cookie(2)),
                FlowMod::Modify {
                    priority: 10,
                    pattern: HeaderMatch::of(FieldMatch::TpDst(80)),
                    buckets: out(4),
                    cookie: 9,
                },
                FlowMod::Delete {
                    priority: 5,
                    pattern: HeaderMatch::any(),
                },
            ],
        };
        assert_eq!(batch.stats(), batch.clone().stats());
        let stats = t.apply_batch(&batch).expect("valid batch");
        assert_eq!(
            stats,
            BatchStats {
                adds: 1,
                modifies: 1,
                deletes: 1
            }
        );
        assert_eq!(stats.total(), 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.cookie_count(9), 1);
        assert_eq!(t.cookie_count(1), 0);
        assert_eq!(t.entries()[0].buckets, out(4));
    }

    #[test]
    fn modify_preserves_counters() {
        let mut t = seeded();
        // Put traffic on the port-80 entry first.
        use sdx_net::{ip, LocatedPacket, Packet};
        let lp = LocatedPacket::at(
            PortId::Phys(ParticipantId(1), 1),
            Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 5, 80).with_len(64),
        );
        t.lookup(&lp);
        assert_eq!(t.entries()[0].packet_count, 1);
        t.apply_batch(&FlowModBatch {
            epoch: 1,
            mods: vec![FlowMod::Modify {
                priority: 10,
                pattern: HeaderMatch::of(FieldMatch::TpDst(80)),
                buckets: out(7),
                cookie: 1,
            }],
        })
        .expect("modify");
        assert_eq!(t.entries()[0].packet_count, 1, "counters survive modify");
        assert_eq!(t.entries()[0].byte_count, 64);
        assert_eq!(t.entries()[0].buckets, out(7));
    }

    #[test]
    fn rejected_batch_leaves_table_untouched() {
        let mut t = seeded();
        let before = t.clone();
        // Second mod is invalid: the whole batch must be discarded even
        // though the first add is fine.
        let err = t
            .apply_batch(&FlowModBatch {
                epoch: 2,
                mods: vec![
                    FlowMod::Add(FlowEntry::new(
                        99,
                        HeaderMatch::of(FieldMatch::TpDst(22)),
                        out(5),
                    )),
                    FlowMod::Delete {
                        priority: 1234,
                        pattern: HeaderMatch::any(),
                    },
                ],
            })
            .expect_err("missing delete target");
        assert!(matches!(
            err,
            FlowModError::MissingTarget { op: "delete", .. }
        ));
        assert_eq!(t, before, "atomicity: nothing from the batch landed");
    }

    #[test]
    fn duplicate_add_is_rejected() {
        let mut t = seeded();
        let err = t
            .apply_batch(&FlowModBatch {
                epoch: 2,
                mods: vec![FlowMod::Add(FlowEntry::new(
                    10,
                    HeaderMatch::of(FieldMatch::TpDst(80)),
                    out(9),
                ))],
            })
            .expect_err("slot occupied");
        assert!(matches!(
            err,
            FlowModError::DuplicateAdd { priority: 10, .. }
        ));
        // Errors render readably.
        assert!(err.to_string().contains("priority 10"));
    }

    #[test]
    fn batch_within_itself_can_delete_then_readd() {
        // Validation is sequential against the staged state, so a batch
        // may free a slot and refill it.
        let mut t = seeded();
        t.apply_batch(&FlowModBatch {
            epoch: 4,
            mods: vec![
                FlowMod::Delete {
                    priority: 10,
                    pattern: HeaderMatch::of(FieldMatch::TpDst(80)),
                },
                FlowMod::Add(FlowEntry::new(
                    10,
                    HeaderMatch::of(FieldMatch::TpDst(80)),
                    out(6),
                )),
            ],
        })
        .expect("delete-then-add");
        assert_eq!(t.entries()[0].buckets, out(6));
        assert_eq!(t.entries()[0].packet_count, 0, "re-add resets counters");
    }
}
