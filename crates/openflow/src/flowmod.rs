//! The typed flow-mod protocol: the controller→fabric boundary.
//!
//! Instead of swapping whole rule tables, the SDX controller describes
//! every data-plane change as a batch of typed modifications — the
//! OpenFlow `FLOW_MOD` triple of `ADD` / `MODIFY` / `DELETE` — stamped
//! with the commit epoch that produced it. Batches are applied
//! **atomically**: every mod is validated against the staged table state
//! before any of them lands, so a rejected batch leaves the table
//! untouched (the transactional guarantee `core::txn` builds on).
//!
//! This is what makes re-optimization churn proportional to *change*
//! rather than to table size: a one-prefix BGP event becomes a handful
//! of mods, not a table rewrite, and the per-batch [`BatchStats`] are
//! the churn currency the telemetry layer and `repro_rule_churn` report.

use core::fmt;

use sdx_net::{HeaderMatch, MacAddr, Mod};

use crate::table::{FlowEntry, FlowTable};

/// One typed table modification.
#[derive(Clone, PartialEq, Debug)]
pub enum FlowMod {
    /// Install a new entry. Rejected if an entry with the same
    /// (priority, pattern) already exists — a delta protocol never
    /// silently overwrites; it says `Modify` when it means modify.
    Add(FlowEntry),
    /// Replace the buckets (and cookie) of the entry at (priority,
    /// pattern), preserving its traffic counters. Rejected if absent.
    Modify {
        /// Priority of the target entry.
        priority: u32,
        /// Pattern of the target entry.
        pattern: HeaderMatch,
        /// The new action buckets.
        buckets: Vec<Vec<Mod>>,
        /// The new cookie.
        cookie: u64,
    },
    /// Remove the entry at exactly (priority, pattern). Rejected if
    /// absent — retired rules must be *deleted*, never assumed gone.
    Delete {
        /// Priority of the target entry.
        priority: u32,
        /// Pattern of the target entry.
        pattern: HeaderMatch,
    },
}

/// An atomic batch of flow mods, tagged with the controller commit epoch
/// that produced it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FlowModBatch {
    /// The controller's reconciliation epoch (monotonic per commit).
    pub epoch: u64,
    /// The modifications, applied in order.
    pub mods: Vec<FlowMod>,
}

impl FlowModBatch {
    /// An empty batch for `epoch`.
    pub fn new(epoch: u64) -> Self {
        FlowModBatch {
            epoch,
            mods: Vec::new(),
        }
    }

    /// Appends one mod.
    pub fn push(&mut self, m: FlowMod) {
        self.mods.push(m);
    }

    /// Number of mods in the batch.
    pub fn len(&self) -> usize {
        self.mods.len()
    }

    /// True if the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.mods.is_empty()
    }

    /// The add/modify/delete breakdown, without applying anything.
    pub fn stats(&self) -> BatchStats {
        let mut s = BatchStats::default();
        for m in &self.mods {
            match m {
                FlowMod::Add(_) => s.adds += 1,
                FlowMod::Modify { .. } => s.modifies += 1,
                FlowMod::Delete { .. } => s.deletes += 1,
            }
        }
        s
    }
}

/// Per-batch application counts — the unit of churn accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchStats {
    /// Entries installed.
    pub adds: usize,
    /// Entries whose buckets were replaced in place.
    pub modifies: usize,
    /// Entries removed.
    pub deletes: usize,
}

impl BatchStats {
    /// Total mods applied.
    pub fn total(&self) -> usize {
        self.adds + self.modifies + self.deletes
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{} ~{} -{}", self.adds, self.modifies, self.deletes)
    }
}

/// Why a batch was rejected. The whole batch is discarded; the table is
/// exactly as it was before [`FlowTable::apply_batch`].
#[derive(Clone, PartialEq, Debug)]
pub enum FlowModError {
    /// An `Add` targeted a (priority, pattern) slot already occupied.
    DuplicateAdd {
        /// Priority of the colliding slot.
        priority: u32,
        /// Pattern of the colliding slot.
        pattern: HeaderMatch,
    },
    /// A `Modify` or `Delete` targeted a (priority, pattern) slot with no
    /// entry in it.
    MissingTarget {
        /// `"modify"` or `"delete"`.
        op: &'static str,
        /// Priority of the empty slot.
        priority: u32,
        /// Pattern of the empty slot.
        pattern: HeaderMatch,
    },
    /// The batch deletes the rule handling a VMAC tag (the entry whose
    /// pattern matches that `dl_dst`) while other mods in the *same*
    /// batch still install buckets that rewrite packets to the tag and
    /// re-enter the fabric: the moment the batch commits, those packets
    /// would hit a table with no next-stage rule for them.
    DanglingTarget {
        /// The VMAC whose handler the batch removes while still
        /// referencing it as a next-stage target.
        vmac: MacAddr,
    },
}

impl fmt::Display for FlowModError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowModError::DuplicateAdd { priority, pattern } => write!(
                f,
                "flow-mod add collides with live entry at priority {priority} ({pattern:?})"
            ),
            FlowModError::MissingTarget {
                op,
                priority,
                pattern,
            } => write!(
                f,
                "flow-mod {op} targets no entry at priority {priority} ({pattern:?})"
            ),
            FlowModError::DanglingTarget { vmac } => write!(
                f,
                "flow-mod batch deletes the handler for {vmac} while other \
                 mods in the batch still reference it as a next-stage target"
            ),
        }
    }
}

/// Collects the VMAC tags (FEC ids) `buckets` writes into `dl_dst` on
/// packets that do not leave at a physical port — such packets re-enter
/// the classifier and *reference* the tag's handler rule.
fn referenced_tags(buckets: &[Vec<Mod>], out: &mut Vec<u32>) {
    for bucket in buckets {
        let mut tag = None;
        let mut physical_exit = false;
        for m in bucket {
            match m {
                Mod::SetDlDst(mac) => tag = mac.fec_id(),
                Mod::SetLoc(p) => physical_exit = p.is_physical(),
                _ => {}
            }
        }
        if let Some(v) = tag {
            if !physical_exit && !out.contains(&v) {
                out.push(v);
            }
        }
    }
}

impl FlowTable {
    /// Applies a batch atomically: every mod is staged against a working
    /// copy, and the table is replaced only if all of them validate. On
    /// error the table is untouched. `Modify` preserves the target's
    /// traffic counters; the cookie index is maintained throughout.
    pub fn apply_batch(&mut self, batch: &FlowModBatch) -> Result<BatchStats, FlowModError> {
        let mut staged = self.clone();
        let mut stats = BatchStats::default();
        // Tag bookkeeping for the dangling-target check: handlers the
        // batch deletes, and tags the batch's new buckets reference.
        let mut removed_handlers: Vec<u32> = Vec::new();
        let mut batch_refs: Vec<u32> = Vec::new();
        for m in &batch.mods {
            match m {
                FlowMod::Add(entry) => {
                    if staged.contains_exact(entry.priority, &entry.pattern) {
                        return Err(FlowModError::DuplicateAdd {
                            priority: entry.priority,
                            pattern: entry.pattern,
                        });
                    }
                    staged.install(entry.clone());
                    referenced_tags(&entry.buckets, &mut batch_refs);
                    stats.adds += 1;
                }
                FlowMod::Modify {
                    priority,
                    pattern,
                    buckets,
                    cookie,
                } => {
                    if !staged.modify_in_place(*priority, pattern, buckets, *cookie) {
                        return Err(FlowModError::MissingTarget {
                            op: "modify",
                            priority: *priority,
                            pattern: *pattern,
                        });
                    }
                    referenced_tags(buckets, &mut batch_refs);
                    stats.modifies += 1;
                }
                FlowMod::Delete { priority, pattern } => {
                    if !staged.delete_exact(*priority, pattern) {
                        return Err(FlowModError::MissingTarget {
                            op: "delete",
                            priority: *priority,
                            pattern: *pattern,
                        });
                    }
                    if let Some(v) = pattern.dl_dst.and_then(|m| m.fec_id()) {
                        if !removed_handlers.contains(&v) {
                            removed_handlers.push(v);
                        }
                    }
                    stats.deletes += 1;
                }
            }
        }
        // Dangling-target check: if the batch deleted the handler for a
        // tag its own new buckets still reference, and the staged result
        // keeps a referencing rule but no replacement handler, commit
        // would leave re-entering packets unmatchable — reject the batch.
        for &v in &removed_handlers {
            if !batch_refs.contains(&v) {
                continue;
            }
            let vmac = MacAddr::vmac(v);
            let handled = staged
                .entries()
                .iter()
                .any(|e| e.pattern.dl_dst == Some(vmac));
            if handled {
                continue;
            }
            let mut surviving_refs = Vec::new();
            for e in staged.entries() {
                referenced_tags(&e.buckets, &mut surviving_refs);
            }
            if surviving_refs.contains(&v) {
                return Err(FlowModError::DanglingTarget { vmac });
            }
        }
        *self = staged;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{FieldMatch, ParticipantId, PortId};

    fn out(n: u32) -> Vec<Vec<Mod>> {
        vec![vec![Mod::SetLoc(PortId::Phys(ParticipantId(n), 1))]]
    }

    fn seeded() -> FlowTable {
        let mut t = FlowTable::new();
        t.install(
            FlowEntry::new(10, HeaderMatch::of(FieldMatch::TpDst(80)), out(2)).with_cookie(1),
        );
        t.install(FlowEntry::new(5, HeaderMatch::any(), vec![]).with_cookie(0));
        t
    }

    #[test]
    fn batch_applies_in_order_and_counts() {
        let mut t = seeded();
        let m443 = HeaderMatch::of(FieldMatch::TpDst(443));
        let batch = FlowModBatch {
            epoch: 3,
            mods: vec![
                FlowMod::Add(FlowEntry::new(7, m443, out(3)).with_cookie(2)),
                FlowMod::Modify {
                    priority: 10,
                    pattern: HeaderMatch::of(FieldMatch::TpDst(80)),
                    buckets: out(4),
                    cookie: 9,
                },
                FlowMod::Delete {
                    priority: 5,
                    pattern: HeaderMatch::any(),
                },
            ],
        };
        assert_eq!(batch.stats(), batch.clone().stats());
        let stats = t.apply_batch(&batch).expect("valid batch");
        assert_eq!(
            stats,
            BatchStats {
                adds: 1,
                modifies: 1,
                deletes: 1
            }
        );
        assert_eq!(stats.total(), 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.cookie_count(9), 1);
        assert_eq!(t.cookie_count(1), 0);
        assert_eq!(t.entries()[0].buckets, out(4));
    }

    #[test]
    fn modify_preserves_counters() {
        let mut t = seeded();
        // Put traffic on the port-80 entry first.
        use sdx_net::{ip, LocatedPacket, Packet};
        let lp = LocatedPacket::at(
            PortId::Phys(ParticipantId(1), 1),
            Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 5, 80).with_len(64),
        );
        t.lookup(&lp);
        assert_eq!(t.entries()[0].packet_count, 1);
        t.apply_batch(&FlowModBatch {
            epoch: 1,
            mods: vec![FlowMod::Modify {
                priority: 10,
                pattern: HeaderMatch::of(FieldMatch::TpDst(80)),
                buckets: out(7),
                cookie: 1,
            }],
        })
        .expect("modify");
        assert_eq!(t.entries()[0].packet_count, 1, "counters survive modify");
        assert_eq!(t.entries()[0].byte_count, 64);
        assert_eq!(t.entries()[0].buckets, out(7));
    }

    #[test]
    fn rejected_batch_leaves_table_untouched() {
        let mut t = seeded();
        let before = t.clone();
        // Second mod is invalid: the whole batch must be discarded even
        // though the first add is fine.
        let err = t
            .apply_batch(&FlowModBatch {
                epoch: 2,
                mods: vec![
                    FlowMod::Add(FlowEntry::new(
                        99,
                        HeaderMatch::of(FieldMatch::TpDst(22)),
                        out(5),
                    )),
                    FlowMod::Delete {
                        priority: 1234,
                        pattern: HeaderMatch::any(),
                    },
                ],
            })
            .expect_err("missing delete target");
        assert!(matches!(
            err,
            FlowModError::MissingTarget { op: "delete", .. }
        ));
        assert_eq!(t, before, "atomicity: nothing from the batch landed");
    }

    #[test]
    fn duplicate_add_is_rejected() {
        let mut t = seeded();
        let err = t
            .apply_batch(&FlowModBatch {
                epoch: 2,
                mods: vec![FlowMod::Add(FlowEntry::new(
                    10,
                    HeaderMatch::of(FieldMatch::TpDst(80)),
                    out(9),
                ))],
            })
            .expect_err("slot occupied");
        assert!(matches!(
            err,
            FlowModError::DuplicateAdd { priority: 10, .. }
        ));
        // Errors render readably.
        assert!(err.to_string().contains("priority 10"));
    }

    #[test]
    fn deleting_a_handler_the_batch_still_references_is_rejected() {
        let vmac7 = HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(7)));
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(10, vmac7, out(2)));
        // The add rewrites traffic to vmac 7 and re-enters the fabric, so
        // it references the very handler the delete removes.
        let emit = vec![vec![
            Mod::SetDlDst(MacAddr::vmac(7)),
            Mod::SetLoc(PortId::Virt(ParticipantId(3))),
        ]];
        let before = t.clone();
        let err = t
            .apply_batch(&FlowModBatch {
                epoch: 1,
                mods: vec![
                    FlowMod::Add(FlowEntry::new(
                        20,
                        HeaderMatch::of(FieldMatch::TpDst(80)),
                        emit.clone(),
                    )),
                    FlowMod::Delete {
                        priority: 10,
                        pattern: vmac7,
                    },
                ],
            })
            .expect_err("dangling next-stage target");
        assert!(matches!(err, FlowModError::DanglingTarget { .. }));
        assert!(err.to_string().contains("next-stage"));
        assert_eq!(t, before, "rejected batch leaves the table untouched");

        // Installing a replacement handler in the same batch heals the
        // reference, so the batch is accepted.
        t.apply_batch(&FlowModBatch {
            epoch: 1,
            mods: vec![
                FlowMod::Add(FlowEntry::new(
                    20,
                    HeaderMatch::of(FieldMatch::TpDst(80)),
                    emit,
                )),
                FlowMod::Delete {
                    priority: 10,
                    pattern: vmac7,
                },
                FlowMod::Add(FlowEntry::new(11, vmac7, out(4))),
            ],
        })
        .expect("replacement handler heals the reference");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn deleting_handler_and_every_referencing_rule_together_is_fine() {
        let vmac7 = HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(7)));
        let emit = vec![vec![
            Mod::SetDlDst(MacAddr::vmac(7)),
            Mod::SetLoc(PortId::Virt(ParticipantId(3))),
        ]];
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(10, vmac7, out(2)));
        t.install(FlowEntry::new(
            20,
            HeaderMatch::of(FieldMatch::TpDst(80)),
            emit.clone(),
        ));
        // Retiring the whole chain in one atomic batch leaves nothing
        // dangling — but the emitter's buckets ARE batch-referenced via a
        // Modify that itself drops the tag, so only surviving references
        // count.
        t.apply_batch(&FlowModBatch {
            epoch: 2,
            mods: vec![
                FlowMod::Delete {
                    priority: 20,
                    pattern: HeaderMatch::of(FieldMatch::TpDst(80)),
                },
                FlowMod::Delete {
                    priority: 10,
                    pattern: vmac7,
                },
            ],
        })
        .expect("whole chain retired atomically");
        assert!(t.is_empty());
    }

    #[test]
    fn batch_within_itself_can_delete_then_readd() {
        // Validation is sequential against the staged state, so a batch
        // may free a slot and refill it.
        let mut t = seeded();
        t.apply_batch(&FlowModBatch {
            epoch: 4,
            mods: vec![
                FlowMod::Delete {
                    priority: 10,
                    pattern: HeaderMatch::of(FieldMatch::TpDst(80)),
                },
                FlowMod::Add(FlowEntry::new(
                    10,
                    HeaderMatch::of(FieldMatch::TpDst(80)),
                    out(6),
                )),
            ],
        })
        .expect("delete-then-add");
        assert_eq!(t.entries()[0].buckets, out(6));
        assert_eq!(t.entries()[0].packet_count, 0, "re-add resets counters");
    }
}
