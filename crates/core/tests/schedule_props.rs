//! Property-based tests for the update scheduler: random batches over
//! random deployed tables, random interleavings, and seeded wave faults.
//!
//! Two invariants carry the scheduler's whole contract:
//!
//! * **Partition** — the waves are a partition of the batch, and driving
//!   them in order produces exactly the table the raw batch produces.
//! * **Parking** — under seeded per-wave fault injection, the driver
//!   either lands every wave or aborts with the fabric holding exactly
//!   the prefix of waves it reported applied; it never commits half a
//!   wave and never misreports progress.

use proptest::prelude::*;
use sdx_core::faults::{FaultPlan, InjectionPoint, ANY_WAVE};
use sdx_core::schedule::{drive, plan, ScheduleOpts};
use sdx_core::SdxError;
use sdx_net::{FieldMatch, HeaderMatch, MacAddr, Mod, ParticipantId, PortId};
use sdx_openflow::fabric::Fabric;
use sdx_openflow::flowmod::{FlowMod, FlowModBatch};
use sdx_openflow::table::{FlowEntry, FlowTable};
use sdx_telemetry::SharedRegistry;

/// Self-contained xorshift64 so scenarios are a pure function of the
/// proptest-supplied seed (shrunk seeds replay byte-identically).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn vpat(id: u32) -> HeaderMatch {
    HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(id)))
}

fn deliver(p: u32) -> Vec<Vec<Mod>> {
    vec![vec![
        Mod::SetDlDst(MacAddr::physical(p)),
        Mod::SetLoc(PortId::Phys(ParticipantId(p), 1)),
    ]]
}

fn reenter(id: u32) -> Vec<Vec<Mod>> {
    vec![vec![
        Mod::SetDlDst(MacAddr::vmac(id)),
        Mod::SetLoc(PortId::Virt(ParticipantId(9))),
    ]]
}

/// A random deployed table plus a random *valid* batch against it:
/// deletes and modifies target live slots, adds use fresh VMAC ids, and
/// re-entering buckets only reference handlers that survive the batch
/// (kept base rules or handlers the batch itself adds), so the raw batch
/// passes the fabric's dangling-target validation in any interleaving.
fn scenario(seed: u64) -> (FlowTable, FlowModBatch) {
    let mut rng = Rng::new(seed);
    let n = 2 + rng.below(10) as u32;
    let mut table = FlowTable::new();
    let mut deleted = Vec::new();
    let mut modified = Vec::new();
    let mut kept = Vec::new();
    for id in 1..=n {
        let priority = 2000 - id * 13;
        table.install(
            FlowEntry::new(priority, vpat(id), deliver(1 + id % 4)).with_cookie(u64::from(id) + 1),
        );
        match rng.below(4) {
            0 => deleted.push((id, priority)),
            1 => modified.push((id, priority)),
            _ => kept.push(id),
        }
    }
    table.install(FlowEntry::new(3, HeaderMatch::any(), vec![]));

    fn buckets(rng: &mut Rng, targets: &[u32]) -> Vec<Vec<Mod>> {
        if !targets.is_empty() && rng.below(3) == 0 {
            reenter(targets[rng.below(targets.len() as u64) as usize])
        } else {
            deliver(1 + rng.below(4) as u32)
        }
    }
    let mut targets = kept.clone();
    let mut mods: Vec<FlowMod> = Vec::new();
    for &(id, priority) in &deleted {
        mods.push(FlowMod::Delete {
            priority,
            pattern: vpat(id),
        });
    }
    for &(id, priority) in &modified {
        let b = buckets(&mut rng, &targets);
        mods.push(FlowMod::Modify {
            priority,
            pattern: vpat(id),
            buckets: b,
            cookie: u64::from(id) + 1,
        });
    }
    for j in 0..rng.below(6) {
        let id = 100 + j as u32;
        let b = buckets(&mut rng, &targets);
        mods.push(FlowMod::Add(
            FlowEntry::new(1 + rng.below(3000) as u32, vpat(id), b).with_cookie(u64::from(id) + 1),
        ));
        // Later adds may chain into this one (created-before order keeps
        // the reference graph acyclic).
        targets.push(id);
    }
    // Random interleaving: the planner must not depend on batch order.
    for i in (1..mods.len()).rev() {
        mods.swap(i, rng.below(i as u64 + 1) as usize);
    }
    (table, FlowModBatch { epoch: 5, mods })
}

fn fabric_with(table: &FlowTable) -> Fabric {
    let mut fabric = Fabric::new();
    for e in table.entries() {
        fabric.switch.install(e.clone());
    }
    fabric
}

proptest! {
    /// The waves are a partition of the batch, every wave applies
    /// cleanly, and the waved table equals the raw-batch table.
    #[test]
    fn waves_partition_and_reproduce_the_batch(seed in any::<u64>()) {
        let (table, batch) = scenario(seed);
        let p = plan(&table, &batch);
        prop_assert_eq!(p.total_mods(), batch.len(), "no mod lost or invented");
        prop_assert_eq!(p.max_wave_width() == 0, batch.is_empty());

        let mut direct = table.clone();
        direct.apply_batch(&batch).expect("generated batches are valid");
        let mut waved = table.clone();
        for (i, wave) in p.waves.iter().enumerate() {
            waved
                .apply_batch(wave)
                .unwrap_or_else(|e| panic!("seed {seed}: wave {i} rejected: {e}"));
        }
        prop_assert_eq!(&waved, &direct, "waves converge to the batch's table");
    }

    /// Planning is deterministic: same table + batch, same waves.
    #[test]
    fn planning_is_a_pure_function(seed in any::<u64>()) {
        let (table, batch) = scenario(seed);
        let a = plan(&table, &batch);
        let b = plan(&table, &batch);
        prop_assert_eq!(a.waves, b.waves);
        prop_assert_eq!(a.dependencies, b.dependencies);
    }

    /// Under seeded per-wave faults, the driver lands everything or
    /// aborts parked on exactly the reported prefix of waves.
    #[test]
    fn seeded_wave_faults_park_exactly(seed in any::<u64>()) {
        let (table, batch) = scenario(seed);
        let p = plan(&table, &batch);
        let mut fabric = fabric_with(&table);
        let mut faults = FaultPlan::seeded(seed ^ 0xF00D)
            .fail_with_probability(InjectionPoint::FlowModApply { wave: ANY_WAVE }, 0.4);
        let reg = SharedRegistry::new();
        let opts = ScheduleOpts { max_attempts: 2, backoff_base_ms: 1 };
        match drive(&p, &mut fabric, &mut faults, &reg, &opts, None) {
            Ok(r) => {
                prop_assert_eq!(r.applied.len(), p.wave_count());
                let mut want = table.clone();
                want.apply_batch(&batch).unwrap();
                prop_assert_eq!(fabric.switch.table(), &want);
            }
            Err(SdxError::UpdateAborted { wave, applied, total, attempts }) => {
                prop_assert_eq!(total, p.wave_count());
                prop_assert!(wave < total);
                prop_assert_eq!(applied, wave, "waves land strictly in order");
                prop_assert_eq!(attempts, opts.max_attempts);
                let mut want = table.clone();
                for w in &p.waves[..applied] {
                    want.apply_batch(w).unwrap();
                }
                prop_assert_eq!(
                    fabric.switch.table(),
                    &want,
                    "parked fabric holds exactly the applied prefix"
                );
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}
