//! Integration tests for the reconciliation → fabric boundary.
//!
//! The headline regression here: [`Fabric::apply_flowmods`] must reject a
//! batch that deletes a rule other mods in the same batch still reference
//! as a next-stage target (a VMAC handler whose tag the batch's own new
//! buckets rewrite into) — committing such a batch would strand
//! re-entering packets on a table miss.

use sdx_core::reconcile::{cookie_of, diff_base_table};
use sdx_net::{FieldMatch, HeaderMatch, MacAddr, Mod, ParticipantId, PortId};
use sdx_openflow::fabric::Fabric;
use sdx_openflow::flowmod::{FlowMod, FlowModBatch, FlowModError};
use sdx_openflow::table::{FlowEntry, FlowTable};
use sdx_policy::classifier::{Action, Classifier, Rule};

fn phys(p: u32) -> PortId {
    PortId::Phys(ParticipantId(p), 1)
}

fn vpat(id: u32) -> HeaderMatch {
    HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(id)))
}

fn deliver(p: u32) -> Vec<Vec<Mod>> {
    vec![vec![
        Mod::SetDlDst(MacAddr::physical(p)),
        Mod::SetLoc(phys(p)),
    ]]
}

/// Buckets that rewrite to `id`'s VMAC and re-enter the fabric — a
/// next-stage reference to the rule matching that VMAC.
fn reenter(id: u32) -> Vec<Vec<Mod>> {
    vec![vec![
        Mod::SetDlDst(MacAddr::vmac(id)),
        Mod::SetLoc(PortId::Virt(ParticipantId(7))),
    ]]
}

#[test]
fn fabric_rejects_batch_deleting_a_still_referenced_handler() {
    let mut fabric = Fabric::new();
    fabric
        .switch
        .install(FlowEntry::new(100, vpat(1), deliver(2)));
    let before = fabric.switch.table().clone();

    // The batch installs a rule whose buckets chain into vmac 1 *and*
    // deletes vmac 1's handler: every ordering of this batch leaves the
    // committed table with a dangling next-stage target.
    let bad = FlowModBatch {
        epoch: 9,
        mods: vec![
            FlowMod::Add(FlowEntry::new(
                200,
                HeaderMatch::of(FieldMatch::TpDst(80)),
                reenter(1),
            )),
            FlowMod::Delete {
                priority: 100,
                pattern: vpat(1),
            },
        ],
    };
    let err = fabric
        .apply_flowmods(&bad)
        .expect_err("dangling next-stage target must be rejected");
    assert!(matches!(err, FlowModError::DanglingTarget { .. }));
    assert_eq!(
        fabric.switch.table(),
        &before,
        "rejected batch leaves the fabric untouched"
    );

    // Same batch plus a replacement handler is coherent and applies.
    let mut healed = bad;
    healed
        .mods
        .push(FlowMod::Add(FlowEntry::new(101, vpat(1), deliver(3))));
    fabric
        .apply_flowmods(&healed)
        .expect("replacement handler heals the reference");
    assert_eq!(fabric.switch.table().len(), 2);
}

fn vmac_rule(id: u32, out: u32) -> Rule {
    Rule {
        matches: vpat(id),
        actions: vec![Action {
            mods: vec![Mod::SetLoc(phys(out))],
        }],
    }
}

/// The diff engine must never emit a batch the dangling-target check
/// rejects: replay the same-gap squeeze that forces midpoint exhaustion
/// (and with it the full-rebase batch, whose delete-everything +
/// add-everything shape is exactly where a dangling window could hide)
/// and assert every batch commits.
#[test]
fn reconciliation_batches_always_pass_the_dangling_check() {
    let mut fabric = Fabric::new();
    let mut rules = vec![vmac_rule(1, 1), vmac_rule(1000, 1)];
    let initial = diff_base_table(
        fabric.switch.table(),
        &Classifier::from_rules(rules.clone()),
        1,
    );
    fabric
        .apply_flowmods(&initial.batch)
        .expect("initial install");

    let mut saw_rebase = false;
    for id in 2..66u32 {
        rules.insert(1, vmac_rule(id, 1));
        let c = Classifier::from_rules(rules.clone());
        let diff = diff_base_table(fabric.switch.table(), &c, u64::from(id));
        saw_rebase |= diff.rebased;
        fabric
            .apply_flowmods(&diff.batch)
            .expect("reconciliation batches are internally coherent");
        let got: Vec<u64> = fabric
            .switch
            .table()
            .entries()
            .iter()
            .map(|e| e.cookie)
            .collect();
        let want: Vec<u64> = c.rules().iter().map(|r| cookie_of(&r.matches)).collect();
        assert_eq!(got, want, "first-match order mirrors the classifier");
    }
    assert!(
        saw_rebase,
        "the squeeze must exercise the rebase batch shape"
    );
}

/// A full rebase emits Delete(old slot) + Add(same pattern, new priority)
/// pairs; the scheduler fuses true same-slot pairs and orders the rest —
/// but at the batch level, delete-then-readd of a pattern at a different
/// priority must simply apply.
#[test]
fn rebase_style_delete_and_readd_applies() {
    let mut t = FlowTable::new();
    t.install(FlowEntry::new(10, vpat(4), reenter(5)));
    t.install(FlowEntry::new(5, vpat(5), deliver(2)));
    t.apply_batch(&FlowModBatch {
        epoch: 2,
        mods: vec![
            FlowMod::Delete {
                priority: 10,
                pattern: vpat(4),
            },
            FlowMod::Delete {
                priority: 5,
                pattern: vpat(5),
            },
            FlowMod::Add(FlowEntry::new(600, vpat(4), reenter(5))),
            FlowMod::Add(FlowEntry::new(300, vpat(5), deliver(2))),
        ],
    })
    .expect("rebase batch re-creates the chain it deletes");
    assert_eq!(t.len(), 2);
}
