//! Property-based tests for the Minimum Disjoint Subset computation —
//! the §4.2 algorithm all data-plane compression rests on.

use proptest::prelude::*;
use sdx_core::fec::{minimum_disjoint_subsets, partition_by_signature};
use sdx_net::{Ipv4Addr, Prefix};

fn arb_prefix_pool() -> impl Strategy<Value = Vec<Prefix>> {
    proptest::collection::btree_set(0u32..64, 1..32).prop_map(|idxs| {
        idxs.into_iter()
            .map(|i| Prefix::new(Ipv4Addr(i << 8), 24))
            .collect()
    })
}

fn arb_sets() -> impl Strategy<Value = Vec<Vec<Prefix>>> {
    (
        arb_prefix_pool(),
        proptest::collection::vec(any::<u64>(), 0..8),
    )
        .prop_map(|(pool, masks)| {
            masks
                .into_iter()
                .map(|mask| {
                    pool.iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
                        .map(|(_, p)| *p)
                        .collect()
                })
                .collect()
        })
}

proptest! {
    /// MDS output is a partition of the union of the inputs.
    #[test]
    fn mds_is_a_partition(sets in arb_sets()) {
        let mds = minimum_disjoint_subsets(&sets);
        // Pairwise disjoint.
        for (i, a) in mds.iter().enumerate() {
            for b in mds.iter().skip(i + 1) {
                for p in a {
                    prop_assert!(!b.contains(p));
                }
            }
        }
        // Union preserved, nothing invented.
        let mut union: Vec<Prefix> = sets.concat();
        union.sort();
        union.dedup();
        let mut covered: Vec<Prefix> = mds.concat();
        covered.sort();
        prop_assert_eq!(covered, union);
    }

    /// Every input set is exactly a union of output parts (no part
    /// straddles a set boundary).
    #[test]
    fn mds_respects_input_sets(sets in arb_sets()) {
        let mds = minimum_disjoint_subsets(&sets);
        for set in &sets {
            for part in &mds {
                let inside = part.iter().filter(|p| set.contains(p)).count();
                prop_assert!(inside == 0 || inside == part.len());
            }
        }
    }

    /// Minimality: two prefixes with identical membership are never split.
    #[test]
    fn mds_is_coarsest(sets in arb_sets()) {
        let mds = minimum_disjoint_subsets(&sets);
        let membership = |p: &Prefix| -> Vec<usize> {
            sets.iter()
                .enumerate()
                .filter(|(_, s)| s.contains(p))
                .map(|(i, _)| i)
                .collect()
        };
        let mut union: Vec<Prefix> = sets.concat();
        union.sort();
        union.dedup();
        for a in &union {
            for b in &union {
                if membership(a) == membership(b) {
                    let pa = mds.iter().position(|g| g.contains(a));
                    let pb = mds.iter().position(|g| g.contains(b));
                    prop_assert_eq!(pa, pb, "{} and {} must share a group", a, b);
                }
            }
        }
    }

    /// MDS is insensitive to input-set order and duplication.
    #[test]
    fn mds_is_order_insensitive(sets in arb_sets()) {
        let forward = minimum_disjoint_subsets(&sets);
        let mut reversed = sets.clone();
        reversed.reverse();
        let backward = minimum_disjoint_subsets(&reversed);
        // Same partition as a set of sets.
        let canon = |mut v: Vec<Vec<Prefix>>| {
            for g in &mut v {
                g.sort();
            }
            v.sort();
            v
        };
        prop_assert_eq!(canon(forward.clone()), canon(backward));
        // Duplicating a set never changes the partition.
        let mut doubled = sets.clone();
        doubled.extend(sets.iter().cloned());
        prop_assert_eq!(canon(forward), canon(minimum_disjoint_subsets(&doubled)));
    }

    /// partition_by_signature groups exactly by signature equality.
    /// (One signature per prefix — the compiler computes signatures as a
    /// function of the prefix, so duplicates cannot disagree.)
    #[test]
    fn signature_partition_correct(items in proptest::collection::btree_map(0u32..32, 0u8..4, 0..32)) {
        let entries: Vec<(Prefix, u8)> = items
            .into_iter()
            .map(|(i, sig)| (Prefix::new(Ipv4Addr(i << 8), 24), sig))
            .collect();
        let parts = partition_by_signature(entries.clone());
        for part in &parts {
            let sigs: std::collections::BTreeSet<u8> = part
                .iter()
                .filter_map(|p| entries.iter().find(|(q, _)| q == p).map(|(_, s)| *s))
                .collect();
            prop_assert_eq!(sigs.len(), 1, "mixed signatures inside one part");
        }
    }
}
