//! Virtual next-hop (VNH) and virtual MAC (VMAC) allocation (§4.2).
//!
//! Every forwarding equivalence class receives a `(VNH, VMAC)` pair:
//! the VNH is an otherwise-unused IP on the IXP peering LAN that the route
//! server writes into BGP NEXT_HOP when re-advertising member prefixes to
//! the group's viewer; the VMAC is what the SDX ARP responder answers for
//! the VNH, so the viewer's border router tags the traffic.
//!
//! The allocator hands out addresses from a dedicated pool (default
//! `172.16.128.0/17`, ~32k VNHs — comfortably above the ~1,500 prefix
//! groups the paper's experiments reach) and recycles retired ids.

use sdx_net::{Ipv4Addr, MacAddr, Prefix};

use crate::error::SdxError;
use crate::fec::FecId;

/// Allocates `(FecId, VNH, VMAC)` triples from a configurable pool.
#[derive(Clone, Debug)]
pub struct VnhAllocator {
    pool: Prefix,
    next_offset: u32,
    free: Vec<u32>,
}

impl VnhAllocator {
    /// Default pool used by the paper-scale experiments.
    pub fn default_pool() -> Prefix {
        Prefix::new(Ipv4Addr::new(172, 16, 128, 0), 17)
    }

    /// An allocator drawing from `pool`. Offset 0 (the network address) is
    /// never handed out.
    pub fn new(pool: Prefix) -> Self {
        VnhAllocator {
            pool,
            next_offset: 1,
            free: Vec::new(),
        }
    }

    /// Number of VNHs currently allocatable without exhausting the pool.
    pub fn remaining(&self) -> u64 {
        self.pool.size() - self.next_offset as u64 + self.free.len() as u64
    }

    /// Allocates a fresh id/VNH/VMAC triple, or reports pool exhaustion as
    /// a typed error. The controller's transactional paths use this so a
    /// dry pool rolls back cleanly instead of tearing the process down.
    pub fn try_allocate(&mut self) -> Result<(FecId, Ipv4Addr, MacAddr), SdxError> {
        let off = match self.free.pop() {
            Some(off) => off,
            None => {
                let off = self.next_offset;
                if (off as u64) >= self.pool.size() {
                    return Err(SdxError::VnhExhausted { pool: self.pool });
                }
                self.next_offset += 1;
                off
            }
        };
        let vnh = self.pool.addr().saturating_add(off);
        Ok((FecId(off), vnh, MacAddr::vmac(off)))
    }

    /// Allocates a fresh id/VNH/VMAC triple.
    ///
    /// # Panics
    /// Panics if the pool is exhausted — a configuration error (pool too
    /// small for the workload), not a runtime condition to limp past.
    /// Recoverable callers use [`try_allocate`](Self::try_allocate).
    pub fn allocate(&mut self) -> (FecId, Ipv4Addr, MacAddr) {
        match self.try_allocate() {
            Ok(triple) => triple,
            Err(_) => panic!("VNH pool {} exhausted", self.pool),
        }
    }

    /// Computes, **without mutating the allocator**, exactly the triples
    /// the next `count` calls to [`try_allocate`](Self::try_allocate)
    /// would return, in order — free-list ids first (LIFO), then
    /// sequential offsets. The parallel compile pipeline reserves the
    /// whole batch up front, assigns triples to FEC groups in
    /// deterministic viewer order, and [`commit`](Self::commit)s once the
    /// assignment is fault-free, so allocation stays byte-identical to
    /// the serial one-at-a-time path while nothing is consumed on error.
    pub fn reserve(&self, count: usize) -> Result<VnhReservation, SdxError> {
        let mut triples = Vec::with_capacity(count);
        let mut next = self.next_offset;
        let mut free_remaining = self.free.len();
        for _ in 0..count {
            let off = if free_remaining > 0 {
                free_remaining -= 1;
                self.free[free_remaining]
            } else {
                let off = next;
                if (off as u64) >= self.pool.size() {
                    return Err(SdxError::VnhExhausted { pool: self.pool });
                }
                next += 1;
                off
            };
            triples.push((
                FecId(off),
                self.pool.addr().saturating_add(off),
                MacAddr::vmac(off),
            ));
        }
        Ok(VnhReservation {
            triples,
            base_next_offset: self.next_offset,
            base_free_len: self.free.len(),
        })
    }

    /// Applies a reservation: consumes the reserved ids as if they had
    /// been handed out by [`try_allocate`](Self::try_allocate) one at a
    /// time.
    ///
    /// # Panics
    /// Panics if the allocator was mutated since [`reserve`](Self::reserve)
    /// — committing a stale reservation would double-allocate ids.
    pub fn commit(&mut self, r: &VnhReservation) {
        assert_eq!(
            (r.base_next_offset, r.base_free_len),
            (self.next_offset, self.free.len()),
            "commit of a stale VNH reservation"
        );
        let from_free = r.triples.len().min(self.free.len());
        self.free.truncate(self.free.len() - from_free);
        self.next_offset += (r.triples.len() - from_free) as u32;
    }

    /// Returns an id to the pool for reuse.
    pub fn release(&mut self, id: FecId) {
        self.free.push(id.0);
    }

    /// The VNH address for an id (deterministic; no allocation).
    pub fn vnh_of(&self, id: FecId) -> Ipv4Addr {
        self.pool.addr().saturating_add(id.0)
    }

    /// True if `addr` lies in the VNH pool (i.e. is a virtual next hop).
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.pool.contains(addr)
    }
}

impl Default for VnhAllocator {
    fn default() -> Self {
        VnhAllocator::new(Self::default_pool())
    }
}

/// A batch of tentatively allocated `(FecId, VNH, VMAC)` triples — the
/// read-only half of the reservation-then-commit split (see
/// [`VnhAllocator::reserve`]). Dropping a reservation without committing
/// leaves the allocator untouched.
#[derive(Clone, Debug)]
pub struct VnhReservation {
    triples: Vec<(FecId, Ipv4Addr, MacAddr)>,
    base_next_offset: u32,
    base_free_len: usize,
}

impl VnhReservation {
    /// The reserved triples, in the order `try_allocate` would have
    /// produced them.
    pub fn triples(&self) -> &[(FecId, Ipv4Addr, MacAddr)] {
        &self.triples
    }

    /// Number of reserved triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when nothing was reserved.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, prefix};

    #[test]
    fn allocates_distinct_triples() {
        let mut a = VnhAllocator::default();
        let (i1, v1, m1) = a.allocate();
        let (i2, v2, m2) = a.allocate();
        assert_ne!(i1, i2);
        assert_ne!(v1, v2);
        assert_ne!(m1, m2);
        assert_eq!(m1.fec_id(), Some(i1.0));
        assert!(a.contains(v1) && a.contains(v2));
        assert_eq!(a.vnh_of(i1), v1);
    }

    #[test]
    fn network_address_is_skipped() {
        let mut a = VnhAllocator::default();
        let (_, v, _) = a.allocate();
        assert_ne!(v, VnhAllocator::default_pool().addr());
        assert_eq!(v, ip("172.16.128.1"));
    }

    #[test]
    fn release_recycles() {
        let mut a = VnhAllocator::default();
        let (i1, v1, _) = a.allocate();
        a.allocate();
        a.release(i1);
        let (i3, v3, _) = a.allocate();
        assert_eq!(i3, i1);
        assert_eq!(v3, v1);
    }

    #[test]
    fn remaining_counts_down() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/29")); // 8 addresses
        assert_eq!(a.remaining(), 7); // offset 0 excluded
        a.allocate();
        assert_eq!(a.remaining(), 6);
        let (id, _, _) = a.allocate();
        a.release(id);
        assert_eq!(a.remaining(), 6);
    }

    #[test]
    fn try_allocate_reports_typed_exhaustion_and_recovers() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/31")); // 2 addresses
        let (id, _, _) = a.try_allocate().expect("first id fits");
        assert!(matches!(
            a.try_allocate(),
            Err(SdxError::VnhExhausted { .. })
        ));
        a.release(id);
        assert!(a.try_allocate().is_ok(), "released ids are reusable");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/31")); // 2 addresses
        a.allocate(); // offset 1 — ok
        a.allocate(); // offset 2 ≥ size 2 — panics
    }

    #[test]
    fn reserve_matches_try_allocate_sequence() {
        let mut a = VnhAllocator::default();
        a.allocate();
        let (recycled, _, _) = a.allocate();
        a.allocate();
        a.release(recycled); // free list non-empty: [recycled]
        let r = a.reserve(4).expect("pool is large");
        let mut b = a.clone();
        let direct: Vec<_> = (0..4).map(|_| b.try_allocate().unwrap()).collect();
        assert_eq!(r.triples(), direct.as_slice());
        assert_eq!(r.triples()[0].0, recycled, "free ids are reserved first");
        a.commit(&r);
        assert_eq!(a.remaining(), b.remaining());
        assert_eq!(a.try_allocate().unwrap(), b.try_allocate().unwrap());
    }

    #[test]
    fn reserve_does_not_mutate_and_drop_is_free() {
        let a = VnhAllocator::new(prefix("10.0.0.0/29")); // 7 usable
        let before = a.remaining();
        let r = a.reserve(3).expect("3 of 7 fits");
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        drop(r);
        assert_eq!(
            a.remaining(),
            before,
            "uncommitted reservation costs nothing"
        );
        assert!(matches!(a.reserve(8), Err(SdxError::VnhExhausted { .. })));
        assert_eq!(a.remaining(), before, "failed reservation costs nothing");
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn commit_rejects_stale_reservation() {
        let mut a = VnhAllocator::default();
        let r = a.reserve(2).unwrap();
        a.allocate(); // allocator moved on; r is stale
        a.commit(&r);
    }

    #[test]
    fn pool_membership() {
        let a = VnhAllocator::default();
        assert!(a.contains(ip("172.16.200.5")));
        assert!(!a.contains(ip("172.16.0.5")));
        assert!(!a.contains(ip("10.0.0.1")));
    }
}
