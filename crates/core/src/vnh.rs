//! Virtual next-hop (VNH) and virtual MAC (VMAC) allocation (§4.2).
//!
//! Every forwarding equivalence class receives a `(VNH, VMAC)` pair:
//! the VNH is an otherwise-unused IP on the IXP peering LAN that the route
//! server writes into BGP NEXT_HOP when re-advertising member prefixes to
//! the group's viewer; the VMAC is what the SDX ARP responder answers for
//! the VNH, so the viewer's border router tags the traffic.
//!
//! The allocator hands out addresses from a dedicated pool (default
//! `172.16.128.0/17`, ~32k VNHs — comfortably above the ~1,500 prefix
//! groups the paper's experiments reach) and recycles retired ids.
//!
//! For churn stability the allocator additionally remembers the
//! [`FecKey`] each id was last assigned to: a *keyed* reservation
//! ([`VnhAllocator::reserve_keyed`]) hands the **same** id — hence the
//! same VNH and VMAC — back to any group whose content-addressed key is
//! unchanged since the previous compilation, so a recompile only re-labels
//! the equivalence classes that actually changed (§4.3.2's minimal-update
//! goal applied to the VNH layer).

use std::collections::BTreeMap;

use sdx_net::{Ipv4Addr, MacAddr, Prefix};

use crate::error::SdxError;
use crate::fec::{FecId, FecKey};

/// Allocates `(FecId, VNH, VMAC)` triples from a configurable pool.
#[derive(Clone, Debug)]
pub struct VnhAllocator {
    pool: Prefix,
    next_offset: u32,
    free: Vec<u32>,
    /// Stable-identity map: the key each live id was assigned under.
    /// Ids allocated through the un-keyed paths never appear here.
    keys: BTreeMap<FecKey, u32>,
    /// Reverse of `keys`, so [`release`](Self::release) can unmap.
    ids: BTreeMap<u32, FecKey>,
}

impl VnhAllocator {
    /// Default pool used by the paper-scale experiments.
    pub fn default_pool() -> Prefix {
        Prefix::new(Ipv4Addr::new(172, 16, 128, 0), 17)
    }

    /// An allocator drawing from `pool`. Offset 0 (the network address) is
    /// never handed out.
    pub fn new(pool: Prefix) -> Self {
        VnhAllocator {
            pool,
            next_offset: 1,
            free: Vec::new(),
            keys: BTreeMap::new(),
            ids: BTreeMap::new(),
        }
    }

    /// Number of VNHs currently allocatable without exhausting the pool.
    pub fn remaining(&self) -> u64 {
        self.pool.size() - self.next_offset as u64 + self.free.len() as u64
    }

    /// Allocates a fresh id/VNH/VMAC triple, or reports pool exhaustion as
    /// a typed error. The controller's transactional paths use this so a
    /// dry pool rolls back cleanly instead of tearing the process down.
    pub fn try_allocate(&mut self) -> Result<(FecId, Ipv4Addr, MacAddr), SdxError> {
        let off = match self.free.pop() {
            Some(off) => off,
            None => {
                let off = self.next_offset;
                if (off as u64) >= self.pool.size() {
                    return Err(SdxError::VnhExhausted { pool: self.pool });
                }
                self.next_offset += 1;
                off
            }
        };
        let vnh = self.pool.addr().saturating_add(off);
        Ok((FecId(off), vnh, MacAddr::vmac(off)))
    }

    /// Allocates a fresh id/VNH/VMAC triple.
    ///
    /// # Panics
    /// Panics if the pool is exhausted — a configuration error (pool too
    /// small for the workload), not a runtime condition to limp past.
    /// Recoverable callers use [`try_allocate`](Self::try_allocate).
    pub fn allocate(&mut self) -> (FecId, Ipv4Addr, MacAddr) {
        match self.try_allocate() {
            Ok(triple) => triple,
            Err(_) => panic!("VNH pool {} exhausted", self.pool),
        }
    }

    /// Computes, **without mutating the allocator**, exactly the triples
    /// the next `count` calls to [`try_allocate`](Self::try_allocate)
    /// would return, in order — free-list ids first (LIFO), then
    /// sequential offsets. The parallel compile pipeline reserves the
    /// whole batch up front, assigns triples to FEC groups in
    /// deterministic viewer order, and [`commit`](Self::commit)s once the
    /// assignment is fault-free, so allocation stays byte-identical to
    /// the serial one-at-a-time path while nothing is consumed on error.
    pub fn reserve(&self, count: usize) -> Result<VnhReservation, SdxError> {
        let mut triples = Vec::with_capacity(count);
        let mut next = self.next_offset;
        let mut free_remaining = self.free.len();
        for _ in 0..count {
            let off = if free_remaining > 0 {
                free_remaining -= 1;
                self.free[free_remaining]
            } else {
                let off = next;
                if (off as u64) >= self.pool.size() {
                    return Err(SdxError::VnhExhausted { pool: self.pool });
                }
                next += 1;
                off
            };
            triples.push((
                FecId(off),
                self.pool.addr().saturating_add(off),
                MacAddr::vmac(off),
            ));
        }
        Ok(VnhReservation {
            drawn_from_free: self.free.len() - free_remaining,
            drawn_sequential: next - self.next_offset,
            triples,
            new_keys: Vec::new(),
            base_next_offset: self.next_offset,
            base_free_len: self.free.len(),
        })
    }

    /// Computes, **without mutating the allocator**, one triple per key —
    /// reusing the id a key is already mapped to, and drawing fresh ids
    /// (free-list LIFO, then sequential, exactly like
    /// [`reserve`](Self::reserve)) only for keys never seen before. On
    /// [`commit`](Self::commit) the fresh keys become mapped; until then
    /// nothing is consumed, so an aborted compile leaves the allocator —
    /// key maps included — byte-identical.
    ///
    /// This is what makes re-optimization churn-stable: an unchanged FEC
    /// group (same viewer, same member prefixes, same best next hop) keeps
    /// its exact VNH and VMAC across recompilations, so neither its flow
    /// rules, its ARP binding, nor its FIB advertisements need to move.
    pub fn reserve_keyed(&self, wanted: &[FecKey]) -> Result<VnhReservation, SdxError> {
        let mut triples = Vec::with_capacity(wanted.len());
        let mut new_keys = Vec::new();
        let mut next = self.next_offset;
        let mut free_remaining = self.free.len();
        // Keys drawn earlier in this same batch (defensive: the compiler
        // never emits duplicates, but aliasing an id would corrupt state).
        let mut batch: BTreeMap<&FecKey, u32> = BTreeMap::new();
        for key in wanted {
            let off = if let Some(&off) = self.keys.get(key).or_else(|| batch.get(key)) {
                off
            } else {
                let off = if free_remaining > 0 {
                    free_remaining -= 1;
                    self.free[free_remaining]
                } else {
                    let off = next;
                    if (off as u64) >= self.pool.size() {
                        return Err(SdxError::VnhExhausted { pool: self.pool });
                    }
                    next += 1;
                    off
                };
                batch.insert(key, off);
                new_keys.push((key.clone(), off));
                off
            };
            triples.push((
                FecId(off),
                self.pool.addr().saturating_add(off),
                MacAddr::vmac(off),
            ));
        }
        Ok(VnhReservation {
            drawn_from_free: self.free.len() - free_remaining,
            drawn_sequential: next - self.next_offset,
            triples,
            new_keys,
            base_next_offset: self.next_offset,
            base_free_len: self.free.len(),
        })
    }

    /// Applies a reservation: consumes the freshly drawn ids as if they
    /// had been handed out by [`try_allocate`](Self::try_allocate) one at
    /// a time, and installs the key mappings of a keyed reservation.
    ///
    /// # Panics
    /// Panics if the allocator was mutated since the reservation was taken
    /// — committing a stale reservation would double-allocate ids.
    pub fn commit(&mut self, r: &VnhReservation) {
        assert_eq!(
            (r.base_next_offset, r.base_free_len),
            (self.next_offset, self.free.len()),
            "commit of a stale VNH reservation"
        );
        self.free.truncate(self.free.len() - r.drawn_from_free);
        self.next_offset += r.drawn_sequential;
        for (key, off) in &r.new_keys {
            let prev = self.keys.insert(key.clone(), *off);
            debug_assert!(prev.is_none(), "keyed commit over a live key");
            self.ids.insert(*off, key.clone());
        }
    }

    /// Returns an id to the pool for reuse, forgetting any key it was
    /// mapped under (so the key allocates fresh if it ever reappears).
    pub fn release(&mut self, id: FecId) {
        if let Some(key) = self.ids.remove(&id.0) {
            self.keys.remove(&key);
        }
        self.free.push(id.0);
    }

    /// The id currently mapped to `key`, if any — lets the controller
    /// compute which previously live keys a recompilation retired.
    pub fn id_of_key(&self, key: &FecKey) -> Option<FecId> {
        self.keys.get(key).copied().map(FecId)
    }

    /// The key an id is currently mapped under, if any.
    pub fn key_of_id(&self, id: FecId) -> Option<&FecKey> {
        self.ids.get(&id.0)
    }

    /// Number of live key↦id mappings.
    pub fn keyed_len(&self) -> usize {
        self.keys.len()
    }

    /// The VNH address for an id (deterministic; no allocation).
    pub fn vnh_of(&self, id: FecId) -> Ipv4Addr {
        self.pool.addr().saturating_add(id.0)
    }

    /// True if `addr` lies in the VNH pool (i.e. is a virtual next hop).
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.pool.contains(addr)
    }
}

impl Default for VnhAllocator {
    fn default() -> Self {
        VnhAllocator::new(Self::default_pool())
    }
}

/// A batch of tentatively allocated `(FecId, VNH, VMAC)` triples — the
/// read-only half of the reservation-then-commit split (see
/// [`VnhAllocator::reserve`]). Dropping a reservation without committing
/// leaves the allocator untouched.
#[derive(Clone, Debug)]
pub struct VnhReservation {
    triples: Vec<(FecId, Ipv4Addr, MacAddr)>,
    /// Keys not previously mapped, paired with the fresh id each drew.
    /// Empty for un-keyed reservations. Installed on commit.
    new_keys: Vec<(FecKey, u32)>,
    /// How many of the fresh ids came off the free list. Explicit (rather
    /// than recomputed at commit) because a keyed reservation's reused ids
    /// consume nothing at all.
    drawn_from_free: usize,
    /// How many fresh ids advanced the sequential frontier.
    drawn_sequential: u32,
    base_next_offset: u32,
    base_free_len: usize,
}

impl VnhReservation {
    /// The reserved triples, in the order `try_allocate` would have
    /// produced them.
    pub fn triples(&self) -> &[(FecId, Ipv4Addr, MacAddr)] {
        &self.triples
    }

    /// Number of reserved triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when nothing was reserved.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of triples that are *fresh* draws (not key reuse).
    pub fn fresh_len(&self) -> usize {
        self.drawn_from_free + self.drawn_sequential as usize
    }

    /// Number of triples reusing an id their key already held — the
    /// churn-stability figure of merit.
    pub fn reused_len(&self) -> usize {
        self.triples.len() - self.fresh_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, prefix};

    #[test]
    fn allocates_distinct_triples() {
        let mut a = VnhAllocator::default();
        let (i1, v1, m1) = a.allocate();
        let (i2, v2, m2) = a.allocate();
        assert_ne!(i1, i2);
        assert_ne!(v1, v2);
        assert_ne!(m1, m2);
        assert_eq!(m1.fec_id(), Some(i1.0));
        assert!(a.contains(v1) && a.contains(v2));
        assert_eq!(a.vnh_of(i1), v1);
    }

    #[test]
    fn network_address_is_skipped() {
        let mut a = VnhAllocator::default();
        let (_, v, _) = a.allocate();
        assert_ne!(v, VnhAllocator::default_pool().addr());
        assert_eq!(v, ip("172.16.128.1"));
    }

    #[test]
    fn release_recycles() {
        let mut a = VnhAllocator::default();
        let (i1, v1, _) = a.allocate();
        a.allocate();
        a.release(i1);
        let (i3, v3, _) = a.allocate();
        assert_eq!(i3, i1);
        assert_eq!(v3, v1);
    }

    #[test]
    fn remaining_counts_down() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/29")); // 8 addresses
        assert_eq!(a.remaining(), 7); // offset 0 excluded
        a.allocate();
        assert_eq!(a.remaining(), 6);
        let (id, _, _) = a.allocate();
        a.release(id);
        assert_eq!(a.remaining(), 6);
    }

    #[test]
    fn try_allocate_reports_typed_exhaustion_and_recovers() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/31")); // 2 addresses
        let (id, _, _) = a.try_allocate().expect("first id fits");
        assert!(matches!(
            a.try_allocate(),
            Err(SdxError::VnhExhausted { .. })
        ));
        a.release(id);
        assert!(a.try_allocate().is_ok(), "released ids are reusable");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/31")); // 2 addresses
        a.allocate(); // offset 1 — ok
        a.allocate(); // offset 2 ≥ size 2 — panics
    }

    #[test]
    fn reserve_matches_try_allocate_sequence() {
        let mut a = VnhAllocator::default();
        a.allocate();
        let (recycled, _, _) = a.allocate();
        a.allocate();
        a.release(recycled); // free list non-empty: [recycled]
        let r = a.reserve(4).expect("pool is large");
        let mut b = a.clone();
        let direct: Vec<_> = (0..4).map(|_| b.try_allocate().unwrap()).collect();
        assert_eq!(r.triples(), direct.as_slice());
        assert_eq!(r.triples()[0].0, recycled, "free ids are reserved first");
        a.commit(&r);
        assert_eq!(a.remaining(), b.remaining());
        assert_eq!(a.try_allocate().unwrap(), b.try_allocate().unwrap());
    }

    #[test]
    fn reserve_does_not_mutate_and_drop_is_free() {
        let a = VnhAllocator::new(prefix("10.0.0.0/29")); // 7 usable
        let before = a.remaining();
        let r = a.reserve(3).expect("3 of 7 fits");
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        drop(r);
        assert_eq!(
            a.remaining(),
            before,
            "uncommitted reservation costs nothing"
        );
        assert!(matches!(a.reserve(8), Err(SdxError::VnhExhausted { .. })));
        assert_eq!(a.remaining(), before, "failed reservation costs nothing");
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn commit_rejects_stale_reservation() {
        let mut a = VnhAllocator::default();
        let r = a.reserve(2).unwrap();
        a.allocate(); // allocator moved on; r is stale
        a.commit(&r);
    }

    fn key(viewer: u32, pfx: &str, nh: u32) -> FecKey {
        FecKey {
            viewer: sdx_net::ParticipantId(viewer),
            prefixes: vec![prefix(pfx)],
            default_next_hop: Some(sdx_net::ParticipantId(nh)),
        }
    }

    #[test]
    fn keyed_reuse_is_stable_across_recompiles() {
        let mut a = VnhAllocator::default();
        let ks = vec![key(1, "10.0.0.0/8", 2), key(1, "20.0.0.0/8", 3)];
        let r1 = a.reserve_keyed(&ks).unwrap();
        assert_eq!(r1.fresh_len(), 2);
        assert_eq!(r1.reused_len(), 0);
        let first: Vec<_> = r1.triples().to_vec();
        a.commit(&r1);
        assert_eq!(a.keyed_len(), 2);
        // Recompile with the same keys, plus one new group in the middle.
        let ks2 = vec![
            key(1, "10.0.0.0/8", 2),
            key(2, "10.0.0.0/8", 3),
            key(1, "20.0.0.0/8", 3),
        ];
        let r2 = a.reserve_keyed(&ks2).unwrap();
        assert_eq!(r2.reused_len(), 2);
        assert_eq!(r2.fresh_len(), 1);
        assert_eq!(r2.triples()[0], first[0], "unchanged key keeps VNH+VMAC");
        assert_eq!(r2.triples()[2], first[1]);
        a.commit(&r2);
        assert_eq!(a.keyed_len(), 3);
        assert_eq!(a.id_of_key(&ks[0]), Some(first[0].0));
    }

    #[test]
    fn keyed_reservation_abort_leaves_allocator_identical() {
        let mut a = VnhAllocator::default();
        a.commit(&a.reserve_keyed(&[key(1, "10.0.0.0/8", 2)]).unwrap());
        let before = format!("{a:?}");
        let r = a
            .reserve_keyed(&[key(1, "10.0.0.0/8", 2), key(9, "90.0.0.0/8", 1)])
            .unwrap();
        drop(r); // compile aborted — e.g. an injected VnhAlloc fault
        assert_eq!(
            format!("{a:?}"),
            before,
            "abort costs nothing, maps included"
        );
    }

    #[test]
    fn release_unmaps_key_so_reappearance_allocates_fresh_mapping() {
        let mut a = VnhAllocator::default();
        let k = key(1, "10.0.0.0/8", 2);
        let r = a.reserve_keyed(std::slice::from_ref(&k)).unwrap();
        let id = r.triples()[0].0;
        a.commit(&r);
        assert_eq!(a.key_of_id(id), Some(&k));
        a.release(id);
        assert_eq!(a.keyed_len(), 0);
        assert_eq!(a.id_of_key(&k), None);
        // The key coming back draws from the free list — which happens to
        // hand the same id back (LIFO), but through a fresh mapping.
        let r2 = a.reserve_keyed(std::slice::from_ref(&k)).unwrap();
        assert_eq!(r2.fresh_len(), 1);
        assert_eq!(r2.triples()[0].0, id);
    }

    #[test]
    fn keyed_pure_reuse_consumes_nothing() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/29")); // 7 usable
        let ks = vec![key(1, "10.0.0.0/8", 2)];
        a.commit(&a.reserve_keyed(&ks).unwrap());
        let remaining = a.remaining();
        // Recompiling the identical workload forever never drains the pool.
        for _ in 0..20 {
            let r = a.reserve_keyed(&ks).unwrap();
            assert_eq!(r.fresh_len(), 0);
            a.commit(&r);
        }
        assert_eq!(a.remaining(), remaining);
    }

    #[test]
    fn duplicate_keys_in_one_batch_share_one_id() {
        let a = VnhAllocator::default();
        let k = key(1, "10.0.0.0/8", 2);
        let r = a.reserve_keyed(&[k.clone(), k]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.fresh_len(), 1);
        assert_eq!(r.triples()[0], r.triples()[1]);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn keyed_commit_rejects_stale_reservation() {
        let mut a = VnhAllocator::default();
        let r = a.reserve_keyed(&[key(1, "10.0.0.0/8", 2)]).unwrap();
        a.allocate();
        a.commit(&r);
    }

    #[test]
    fn keyed_exhaustion_is_typed_and_pure() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/31")); // 1 usable
        a.commit(&a.reserve_keyed(&[key(1, "10.0.0.0/8", 2)]).unwrap());
        // Reusing the live key still fits; adding a second group does not.
        assert!(a.reserve_keyed(&[key(1, "10.0.0.0/8", 2)]).is_ok());
        assert!(matches!(
            a.reserve_keyed(&[key(1, "10.0.0.0/8", 2), key(2, "20.0.0.0/8", 1)]),
            Err(SdxError::VnhExhausted { .. })
        ));
        assert_eq!(a.keyed_len(), 1, "failed reservation mutated nothing");
    }

    #[test]
    fn pool_membership() {
        let a = VnhAllocator::default();
        assert!(a.contains(ip("172.16.200.5")));
        assert!(!a.contains(ip("172.16.0.5")));
        assert!(!a.contains(ip("10.0.0.1")));
    }
}
