//! Virtual next-hop (VNH) and virtual MAC (VMAC) allocation (§4.2).
//!
//! Every forwarding equivalence class receives a `(VNH, VMAC)` pair:
//! the VNH is an otherwise-unused IP on the IXP peering LAN that the route
//! server writes into BGP NEXT_HOP when re-advertising member prefixes to
//! the group's viewer; the VMAC is what the SDX ARP responder answers for
//! the VNH, so the viewer's border router tags the traffic.
//!
//! The allocator hands out addresses from a dedicated pool (default
//! `172.16.128.0/17`, ~32k VNHs — comfortably above the ~1,500 prefix
//! groups the paper's experiments reach) and recycles retired ids.
//!
//! For churn stability the allocator additionally remembers the
//! [`FecKey`] each id was last assigned to: a *keyed* reservation
//! ([`VnhAllocator::reserve_keyed`]) hands the **same** id — hence the
//! same VNH and VMAC — back to any group whose content-addressed key is
//! unchanged since the previous compilation, so a recompile only re-labels
//! the equivalence classes that actually changed (§4.3.2's minimal-update
//! goal applied to the VNH layer).
//!
//! ## Range partitioning (sharded compilation)
//!
//! For `core::shard`'s sharded pipeline the pool can be split into `n`
//! disjoint contiguous id sub-ranges with
//! [`ensure_partitions`](VnhAllocator::ensure_partitions). Each shard's
//! compile unit then draws fresh ids only from its own sub-range
//! ([`reserve_keyed_sharded`](VnhAllocator::reserve_keyed_sharded)), so
//! per-shard allocation is deterministic regardless of how other shards
//! churn, and keyed reuse keeps holding *shard-locally*: an unchanged
//! group keeps its id even when every other shard recompiles.
//! Exhaustion errors name the dry sub-range
//! (`SdxError::VnhExhausted { shard: Some(i), .. }`). An unpartitioned
//! allocator is the single-slot special case — every legacy path behaves
//! byte-identically to the pre-partitioned implementation.

use std::collections::BTreeMap;

use sdx_net::{Ipv4Addr, MacAddr, Prefix};

use crate::error::SdxError;
use crate::fec::{FecId, FecKey};

/// One contiguous id sub-range with its own frontier, free list and
/// key↦id maps. An unpartitioned allocator is exactly one slot spanning
/// the whole pool.
#[derive(Clone, Debug)]
struct Slot {
    /// First usable offset (inclusive).
    base: u32,
    /// One past the last usable offset (exclusive).
    limit: u32,
    /// Sequential frontier: next never-used offset.
    next: u32,
    /// Released offsets, reused LIFO before the frontier advances.
    free: Vec<u32>,
    /// Stable-identity map: the key each live id was assigned under.
    /// Ids allocated through the un-keyed paths never appear here.
    keys: BTreeMap<FecKey, u32>,
    /// Reverse of `keys`, so [`VnhAllocator::release`] can unmap.
    ids: BTreeMap<u32, FecKey>,
}

impl Slot {
    fn new(base: u32, limit: u32) -> Self {
        Slot {
            base,
            limit,
            next: base,
            free: Vec::new(),
            keys: BTreeMap::new(),
            ids: BTreeMap::new(),
        }
    }

    /// True when nothing was ever drawn (and nothing is mapped).
    fn is_pristine(&self) -> bool {
        self.next == self.base && self.free.is_empty() && self.keys.is_empty()
    }

    fn remaining(&self) -> u64 {
        u64::from(self.limit.saturating_sub(self.next)) + self.free.len() as u64
    }
}

/// Allocates `(FecId, VNH, VMAC)` triples from a configurable pool,
/// optionally range-partitioned into per-shard sub-ranges.
#[derive(Clone, Debug)]
pub struct VnhAllocator {
    pool: Prefix,
    slots: Vec<Slot>,
}

impl VnhAllocator {
    /// Default pool used by the paper-scale experiments.
    pub fn default_pool() -> Prefix {
        Prefix::new(Ipv4Addr::new(172, 16, 128, 0), 17)
    }

    /// The usable offset span of `pool`: offset 0 (the network address)
    /// is never handed out; the upper bound saturates at `u32::MAX`.
    fn span(pool: Prefix) -> (u32, u32) {
        (1, pool.size().min(u64::from(u32::MAX)) as u32)
    }

    /// An allocator drawing from `pool`. Offset 0 (the network address) is
    /// never handed out. Starts unpartitioned (one slot spanning the
    /// whole pool).
    pub fn new(pool: Prefix) -> Self {
        let (lo, hi) = Self::span(pool);
        VnhAllocator {
            pool,
            slots: vec![Slot::new(lo, hi)],
        }
    }

    /// Splits the pool into `n` equal contiguous id sub-ranges (clamped to
    /// ≥ 1), one per compile shard. A no-op when already partitioned into
    /// exactly `n`. Errors if the allocator holds live state under a
    /// different partition count — repartitioning live ids would tear the
    /// per-shard determinism the sub-ranges exist to provide; start a
    /// fresh allocator (or keep the shard count stable) instead.
    pub fn ensure_partitions(&mut self, n: usize) -> Result<(), SdxError> {
        let n = n.max(1);
        if self.slots.len() == n {
            return Ok(());
        }
        if !self.slots.iter().all(Slot::is_pristine) {
            return Err(SdxError::InvalidCommit(format!(
                "cannot repartition VNH pool {} from {} to {n} sub-ranges with live ids",
                self.pool,
                self.slots.len()
            )));
        }
        let (lo, hi) = Self::span(self.pool);
        let width = (hi - lo) / n as u32;
        self.slots = (0..n)
            .map(|i| {
                let base = lo + width * i as u32;
                let limit = if i + 1 == n {
                    hi
                } else {
                    lo + width * (i as u32 + 1)
                };
                Slot::new(base, limit)
            })
            .collect();
        Ok(())
    }

    /// Number of sub-ranges the pool is split into (1 = unpartitioned).
    pub fn partitions(&self) -> usize {
        self.slots.len()
    }

    /// The sub-range an id belongs to, or `None` when unpartitioned.
    pub fn partition_of(&self, id: FecId) -> Option<usize> {
        if self.slots.len() == 1 {
            return None;
        }
        self.slots
            .iter()
            .position(|s| s.base <= id.0 && id.0 < s.limit)
    }

    /// The shard index reported in exhaustion errors: `None` while the
    /// allocator is unpartitioned (there is only "the pool").
    fn shard_label(&self, slot: usize) -> Option<usize> {
        (self.slots.len() > 1).then_some(slot)
    }

    /// The slot an offset falls in (for release routing). Defaults to
    /// slot 0 for out-of-range offsets, mirroring the pre-partitioned
    /// allocator's unchecked push.
    fn slot_of_offset(&self, off: u32) -> usize {
        self.slots
            .iter()
            .position(|s| s.base <= off && off < s.limit)
            .unwrap_or(0)
    }

    /// Number of VNHs currently allocatable without exhausting the pool.
    pub fn remaining(&self) -> u64 {
        self.slots.iter().map(Slot::remaining).sum()
    }

    /// Allocates a fresh id/VNH/VMAC triple, or reports pool exhaustion as
    /// a typed error. The controller's transactional paths use this so a
    /// dry pool rolls back cleanly instead of tearing the process down.
    ///
    /// Keyless allocations (the fast-path delta overlays) always draw
    /// from the **first** sub-range; delta ids are short-lived (released
    /// at the next reoptimize), so they never fragment the other shards'
    /// ranges.
    pub fn try_allocate(&mut self) -> Result<(FecId, Ipv4Addr, MacAddr), SdxError> {
        let shard = self.shard_label(0);
        let pool = self.pool;
        let slot = &mut self.slots[0];
        let off = match slot.free.pop() {
            Some(off) => off,
            None => {
                let off = slot.next;
                if off >= slot.limit {
                    return Err(SdxError::VnhExhausted { pool, shard });
                }
                slot.next += 1;
                off
            }
        };
        let vnh = self.pool.addr().saturating_add(off);
        Ok((FecId(off), vnh, MacAddr::vmac(off)))
    }

    /// Allocates a fresh id/VNH/VMAC triple.
    ///
    /// # Panics
    /// Panics if the pool is exhausted — a configuration error (pool too
    /// small for the workload), not a runtime condition to limp past.
    /// Recoverable callers use [`try_allocate`](Self::try_allocate).
    pub fn allocate(&mut self) -> (FecId, Ipv4Addr, MacAddr) {
        match self.try_allocate() {
            Ok(triple) => triple,
            Err(_) => panic!("VNH pool {} exhausted", self.pool),
        }
    }

    /// Computes, **without mutating the allocator**, exactly the triples
    /// the next `count` calls to [`try_allocate`](Self::try_allocate)
    /// would return, in order — free-list ids first (LIFO), then
    /// sequential offsets. The parallel compile pipeline reserves the
    /// whole batch up front, assigns triples to FEC groups in
    /// deterministic viewer order, and [`commit`](Self::commit)s once the
    /// assignment is fault-free, so allocation stays byte-identical to
    /// the serial one-at-a-time path while nothing is consumed on error.
    pub fn reserve(&self, count: usize) -> Result<VnhReservation, SdxError> {
        let mut draft = Draft::new(self);
        let mut triples = Vec::with_capacity(count);
        for _ in 0..count {
            let off = draft.draw(self, 0)?;
            triples.push(self.triple(off));
        }
        Ok(draft.into_reservation(self, triples, Vec::new()))
    }

    /// Computes, **without mutating the allocator**, one triple per key —
    /// reusing the id a key is already mapped to, and drawing fresh ids
    /// (free-list LIFO, then sequential, exactly like
    /// [`reserve`](Self::reserve)) only for keys never seen before. On
    /// [`commit`](Self::commit) the fresh keys become mapped; until then
    /// nothing is consumed, so an aborted compile leaves the allocator —
    /// key maps included — byte-identical.
    ///
    /// This is what makes re-optimization churn-stable: an unchanged FEC
    /// group (same viewer, same member prefixes, same best next hop) keeps
    /// its exact VNH and VMAC across recompilations, so neither its flow
    /// rules, its ARP binding, nor its FIB advertisements need to move.
    pub fn reserve_keyed(&self, wanted: &[FecKey]) -> Result<VnhReservation, SdxError> {
        self.reserve_keyed_sharded(wanted, |_| 0)
    }

    /// [`reserve_keyed`](Self::reserve_keyed) with a per-key owner shard:
    /// fresh ids for a key are drawn from `owner(key)`'s sub-range (the
    /// shard that compiled the group), while **reuse is looked up across
    /// every sub-range** — a key that survived a repartition-free plan
    /// change keeps its id wherever it lives. Owner indices past the
    /// partition count clamp to the last sub-range.
    pub fn reserve_keyed_sharded(
        &self,
        wanted: &[FecKey],
        owner: impl Fn(&FecKey) -> usize,
    ) -> Result<VnhReservation, SdxError> {
        let mut draft = Draft::new(self);
        let mut triples = Vec::with_capacity(wanted.len());
        let mut new_keys: Vec<(FecKey, u32, usize)> = Vec::new();
        // Keys drawn earlier in this same batch (defensive: the compiler
        // never emits duplicates, but aliasing an id would corrupt state).
        let mut batch: BTreeMap<&FecKey, u32> = BTreeMap::new();
        for key in wanted {
            let mapped = self
                .slots
                .iter()
                .find_map(|s| s.keys.get(key))
                .or_else(|| batch.get(key));
            let off = if let Some(&off) = mapped {
                off
            } else {
                let s = owner(key).min(self.slots.len() - 1);
                let off = draft.draw(self, s)?;
                batch.insert(key, off);
                new_keys.push((key.clone(), off, s));
                off
            };
            triples.push(self.triple(off));
        }
        Ok(draft.into_reservation(self, triples, new_keys))
    }

    fn triple(&self, off: u32) -> (FecId, Ipv4Addr, MacAddr) {
        (
            FecId(off),
            self.pool.addr().saturating_add(off),
            MacAddr::vmac(off),
        )
    }

    /// Applies a reservation: consumes the freshly drawn ids as if they
    /// had been handed out by [`try_allocate`](Self::try_allocate) one at
    /// a time, and installs the key mappings of a keyed reservation.
    ///
    /// # Panics
    /// Panics if the allocator was mutated since the reservation was taken
    /// — committing a stale reservation would double-allocate ids.
    pub fn commit(&mut self, r: &VnhReservation) {
        assert_eq!(
            r.draws.len(),
            self.slots.len(),
            "commit of a stale VNH reservation (partition count changed)"
        );
        for (slot, draw) in self.slots.iter().zip(&r.draws) {
            assert_eq!(
                (draw.base_next, draw.base_free_len),
                (slot.next, slot.free.len()),
                "commit of a stale VNH reservation"
            );
        }
        for (slot, draw) in self.slots.iter_mut().zip(&r.draws) {
            slot.free.truncate(slot.free.len() - draw.drawn_from_free);
            slot.next += draw.drawn_sequential;
        }
        for (key, off, s) in &r.new_keys {
            let slot = &mut self.slots[*s];
            let prev = slot.keys.insert(key.clone(), *off);
            debug_assert!(prev.is_none(), "keyed commit over a live key");
            slot.ids.insert(*off, key.clone());
        }
    }

    /// Returns an id to the pool for reuse, forgetting any key it was
    /// mapped under (so the key allocates fresh if it ever reappears).
    /// Routed to the sub-range the id belongs to, so a released sharded
    /// id is recycled by its own shard.
    pub fn release(&mut self, id: FecId) {
        let s = self.slot_of_offset(id.0);
        let slot = &mut self.slots[s];
        if let Some(key) = slot.ids.remove(&id.0) {
            slot.keys.remove(&key);
        }
        slot.free.push(id.0);
    }

    /// The id currently mapped to `key`, if any — lets the controller
    /// compute which previously live keys a recompilation retired.
    pub fn id_of_key(&self, key: &FecKey) -> Option<FecId> {
        self.slots
            .iter()
            .find_map(|s| s.keys.get(key))
            .copied()
            .map(FecId)
    }

    /// The key an id is currently mapped under, if any.
    pub fn key_of_id(&self, id: FecId) -> Option<&FecKey> {
        self.slots.iter().find_map(|s| s.ids.get(&id.0))
    }

    /// Number of live key↦id mappings.
    pub fn keyed_len(&self) -> usize {
        self.slots.iter().map(|s| s.keys.len()).sum()
    }

    /// The VNH address for an id (deterministic; no allocation).
    pub fn vnh_of(&self, id: FecId) -> Ipv4Addr {
        self.pool.addr().saturating_add(id.0)
    }

    /// True if `addr` lies in the VNH pool (i.e. is a virtual next hop).
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.pool.contains(addr)
    }
}

impl Default for VnhAllocator {
    fn default() -> Self {
        VnhAllocator::new(Self::default_pool())
    }
}

/// Pure draw bookkeeping while a reservation is being computed: per-slot
/// shadow frontier + shadow free-list cursor, nothing mutated.
struct Draft {
    next: Vec<u32>,
    free_remaining: Vec<usize>,
}

impl Draft {
    fn new(a: &VnhAllocator) -> Self {
        Draft {
            next: a.slots.iter().map(|s| s.next).collect(),
            free_remaining: a.slots.iter().map(|s| s.free.len()).collect(),
        }
    }

    fn draw(&mut self, a: &VnhAllocator, s: usize) -> Result<u32, SdxError> {
        if self.free_remaining[s] > 0 {
            self.free_remaining[s] -= 1;
            return Ok(a.slots[s].free[self.free_remaining[s]]);
        }
        let off = self.next[s];
        if off >= a.slots[s].limit {
            return Err(SdxError::VnhExhausted {
                pool: a.pool,
                shard: a.shard_label(s),
            });
        }
        self.next[s] += 1;
        Ok(off)
    }

    fn into_reservation(
        self,
        a: &VnhAllocator,
        triples: Vec<(FecId, Ipv4Addr, MacAddr)>,
        new_keys: Vec<(FecKey, u32, usize)>,
    ) -> VnhReservation {
        let draws = a
            .slots
            .iter()
            .enumerate()
            .map(|(i, slot)| SlotDraw {
                drawn_from_free: slot.free.len() - self.free_remaining[i],
                drawn_sequential: self.next[i] - slot.next,
                base_next: slot.next,
                base_free_len: slot.free.len(),
            })
            .collect();
        VnhReservation {
            triples,
            new_keys,
            draws,
        }
    }
}

/// Per-slot consumption of one reservation, plus the base state it was
/// computed against (the staleness check at commit).
#[derive(Clone, Debug)]
struct SlotDraw {
    /// How many of the fresh ids came off the free list. Explicit (rather
    /// than recomputed at commit) because a keyed reservation's reused ids
    /// consume nothing at all.
    drawn_from_free: usize,
    /// How many fresh ids advanced the sequential frontier.
    drawn_sequential: u32,
    base_next: u32,
    base_free_len: usize,
}

/// A batch of tentatively allocated `(FecId, VNH, VMAC)` triples — the
/// read-only half of the reservation-then-commit split (see
/// [`VnhAllocator::reserve`]). Dropping a reservation without committing
/// leaves the allocator untouched.
#[derive(Clone, Debug)]
pub struct VnhReservation {
    triples: Vec<(FecId, Ipv4Addr, MacAddr)>,
    /// Keys not previously mapped, paired with the fresh id each drew and
    /// the slot it was drawn from. Empty for un-keyed reservations.
    /// Installed on commit.
    new_keys: Vec<(FecKey, u32, usize)>,
    /// Per-slot draw accounting, parallel to the allocator's slots.
    draws: Vec<SlotDraw>,
}

impl VnhReservation {
    /// The reserved triples, in the order `try_allocate` would have
    /// produced them.
    pub fn triples(&self) -> &[(FecId, Ipv4Addr, MacAddr)] {
        &self.triples
    }

    /// Number of reserved triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when nothing was reserved.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of triples that are *fresh* draws (not key reuse).
    pub fn fresh_len(&self) -> usize {
        self.draws
            .iter()
            .map(|d| d.drawn_from_free + d.drawn_sequential as usize)
            .sum()
    }

    /// Number of triples reusing an id their key already held — the
    /// churn-stability figure of merit.
    pub fn reused_len(&self) -> usize {
        self.triples.len() - self.fresh_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, prefix};

    #[test]
    fn allocates_distinct_triples() {
        let mut a = VnhAllocator::default();
        let (i1, v1, m1) = a.allocate();
        let (i2, v2, m2) = a.allocate();
        assert_ne!(i1, i2);
        assert_ne!(v1, v2);
        assert_ne!(m1, m2);
        assert_eq!(m1.fec_id(), Some(i1.0));
        assert!(a.contains(v1) && a.contains(v2));
        assert_eq!(a.vnh_of(i1), v1);
    }

    #[test]
    fn network_address_is_skipped() {
        let mut a = VnhAllocator::default();
        let (_, v, _) = a.allocate();
        assert_ne!(v, VnhAllocator::default_pool().addr());
        assert_eq!(v, ip("172.16.128.1"));
    }

    #[test]
    fn release_recycles() {
        let mut a = VnhAllocator::default();
        let (i1, v1, _) = a.allocate();
        a.allocate();
        a.release(i1);
        let (i3, v3, _) = a.allocate();
        assert_eq!(i3, i1);
        assert_eq!(v3, v1);
    }

    #[test]
    fn remaining_counts_down() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/29")); // 8 addresses
        assert_eq!(a.remaining(), 7); // offset 0 excluded
        a.allocate();
        assert_eq!(a.remaining(), 6);
        let (id, _, _) = a.allocate();
        a.release(id);
        assert_eq!(a.remaining(), 6);
    }

    #[test]
    fn try_allocate_reports_typed_exhaustion_and_recovers() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/31")); // 2 addresses
        let (id, _, _) = a.try_allocate().expect("first id fits");
        assert!(matches!(
            a.try_allocate(),
            Err(SdxError::VnhExhausted { shard: None, .. })
        ));
        a.release(id);
        assert!(a.try_allocate().is_ok(), "released ids are reusable");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/31")); // 2 addresses
        a.allocate(); // offset 1 — ok
        a.allocate(); // offset 2 ≥ size 2 — panics
    }

    #[test]
    fn reserve_matches_try_allocate_sequence() {
        let mut a = VnhAllocator::default();
        a.allocate();
        let (recycled, _, _) = a.allocate();
        a.allocate();
        a.release(recycled); // free list non-empty: [recycled]
        let r = a.reserve(4).expect("pool is large");
        let mut b = a.clone();
        let direct: Vec<_> = (0..4).map(|_| b.try_allocate().unwrap()).collect();
        assert_eq!(r.triples(), direct.as_slice());
        assert_eq!(r.triples()[0].0, recycled, "free ids are reserved first");
        a.commit(&r);
        assert_eq!(a.remaining(), b.remaining());
        assert_eq!(a.try_allocate().unwrap(), b.try_allocate().unwrap());
    }

    #[test]
    fn reserve_does_not_mutate_and_drop_is_free() {
        let a = VnhAllocator::new(prefix("10.0.0.0/29")); // 7 usable
        let before = a.remaining();
        let r = a.reserve(3).expect("3 of 7 fits");
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        drop(r);
        assert_eq!(
            a.remaining(),
            before,
            "uncommitted reservation costs nothing"
        );
        assert!(matches!(a.reserve(8), Err(SdxError::VnhExhausted { .. })));
        assert_eq!(a.remaining(), before, "failed reservation costs nothing");
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn commit_rejects_stale_reservation() {
        let mut a = VnhAllocator::default();
        let r = a.reserve(2).unwrap();
        a.allocate(); // allocator moved on; r is stale
        a.commit(&r);
    }

    fn key(viewer: u32, pfx: &str, nh: u32) -> FecKey {
        FecKey {
            viewer: sdx_net::ParticipantId(viewer),
            prefixes: vec![prefix(pfx)],
            default_next_hop: Some(sdx_net::ParticipantId(nh)),
        }
    }

    #[test]
    fn keyed_reuse_is_stable_across_recompiles() {
        let mut a = VnhAllocator::default();
        let ks = vec![key(1, "10.0.0.0/8", 2), key(1, "20.0.0.0/8", 3)];
        let r1 = a.reserve_keyed(&ks).unwrap();
        assert_eq!(r1.fresh_len(), 2);
        assert_eq!(r1.reused_len(), 0);
        let first: Vec<_> = r1.triples().to_vec();
        a.commit(&r1);
        assert_eq!(a.keyed_len(), 2);
        // Recompile with the same keys, plus one new group in the middle.
        let ks2 = vec![
            key(1, "10.0.0.0/8", 2),
            key(2, "10.0.0.0/8", 3),
            key(1, "20.0.0.0/8", 3),
        ];
        let r2 = a.reserve_keyed(&ks2).unwrap();
        assert_eq!(r2.reused_len(), 2);
        assert_eq!(r2.fresh_len(), 1);
        assert_eq!(r2.triples()[0], first[0], "unchanged key keeps VNH+VMAC");
        assert_eq!(r2.triples()[2], first[1]);
        a.commit(&r2);
        assert_eq!(a.keyed_len(), 3);
        assert_eq!(a.id_of_key(&ks[0]), Some(first[0].0));
    }

    #[test]
    fn keyed_reservation_abort_leaves_allocator_identical() {
        let mut a = VnhAllocator::default();
        a.commit(&a.reserve_keyed(&[key(1, "10.0.0.0/8", 2)]).unwrap());
        let before = format!("{a:?}");
        let r = a
            .reserve_keyed(&[key(1, "10.0.0.0/8", 2), key(9, "90.0.0.0/8", 1)])
            .unwrap();
        drop(r); // compile aborted — e.g. an injected VnhAlloc fault
        assert_eq!(
            format!("{a:?}"),
            before,
            "abort costs nothing, maps included"
        );
    }

    /// The PR 4 abort guarantee extended to a *partitioned* allocator: a
    /// sharded keyed reservation that is dropped (or that fails) leaves
    /// every sub-range — frontiers, free lists, and key maps — byte-for-
    /// byte identical.
    #[test]
    fn sharded_reservation_abort_leaves_allocator_identical() {
        let mut a = VnhAllocator::default();
        a.ensure_partitions(4).unwrap();
        let owner = |k: &FecKey| k.viewer.0 as usize % 4;
        a.commit(
            &a.reserve_keyed_sharded(&[key(1, "10.0.0.0/8", 2), key(2, "20.0.0.0/8", 1)], owner)
                .unwrap(),
        );
        let before = format!("{a:?}");
        // Abort path 1: a computed reservation is dropped uncommitted.
        let r = a
            .reserve_keyed_sharded(
                &[
                    key(1, "10.0.0.0/8", 2), // reuse in shard 1
                    key(3, "30.0.0.0/8", 1), // fresh in shard 3
                    key(4, "40.0.0.0/8", 1), // fresh in shard 0
                ],
                owner,
            )
            .unwrap();
        assert_eq!(r.reused_len(), 1);
        assert_eq!(r.fresh_len(), 2);
        drop(r);
        assert_eq!(format!("{a:?}"), before, "dropped reservation is free");
        // Abort path 2: the reservation itself fails (one sub-range dry).
        let mut tiny = VnhAllocator::new(prefix("10.0.0.0/28")); // 15 usable
        tiny.ensure_partitions(4).unwrap(); // 3 usable per shard
        let snap = format!("{tiny:?}");
        let overflow: Vec<FecKey> = (0..5)
            .map(|i| key(8, &format!("{}.0.0.0/8", 50 + i), 1))
            .collect();
        let err = tiny.reserve_keyed_sharded(&overflow, |_| 2).unwrap_err();
        assert!(
            matches!(err, SdxError::VnhExhausted { shard: Some(2), .. }),
            "exhaustion names the dry sub-range: {err}"
        );
        assert_eq!(format!("{tiny:?}"), snap, "failed reservation is free");
    }

    #[test]
    fn sharded_draws_come_from_disjoint_subranges() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/24")); // 255 usable
        a.ensure_partitions(4).unwrap();
        assert_eq!(a.partitions(), 4);
        let ks = [
            key(1, "10.0.0.0/8", 2),
            key(2, "20.0.0.0/8", 1),
            key(3, "30.0.0.0/8", 1),
        ];
        let owner = |k: &FecKey| (k.viewer.0 as usize) % 4;
        let r = a.reserve_keyed_sharded(&ks, owner).unwrap();
        a.commit(&r);
        let parts: Vec<Option<usize>> = r.triples().iter().map(|t| a.partition_of(t.0)).collect();
        assert_eq!(parts, vec![Some(1), Some(2), Some(3)]);
        // Reuse holds shard-locally: recompiling only viewer 2's key gives
        // the same id even after other shards churn.
        let churn: Vec<FecKey> = (0..10)
            .map(|i| key(1, &format!("{}.0.0.0/8", 100 + i), 7))
            .collect();
        a.commit(&a.reserve_keyed_sharded(&churn, owner).unwrap());
        let again = a.reserve_keyed_sharded(&[ks[1].clone()], owner).unwrap();
        assert_eq!(again.reused_len(), 1);
        assert_eq!(again.triples()[0], r.triples()[1]);
        // Released sharded ids recycle within their own sub-range.
        let id = r.triples()[2].0;
        a.release(id);
        let back = a
            .reserve_keyed_sharded(&[key(5, "50.0.0.0/8", 1)], |_| 3)
            .unwrap();
        assert_eq!(back.triples()[0].0, id, "shard 3 recycles its own ids");
    }

    #[test]
    fn repartition_requires_pristine_state() {
        let mut a = VnhAllocator::default();
        a.ensure_partitions(8).unwrap();
        a.ensure_partitions(8).unwrap(); // same count: no-op
        let (id, _, _) = a.try_allocate().unwrap();
        assert!(
            a.ensure_partitions(4).is_err(),
            "live ids block repartition"
        );
        a.release(id);
        // A released id still counts as state (the free list must not be
        // silently discarded).
        assert!(a.ensure_partitions(4).is_err());
        let mut fresh = VnhAllocator::default();
        fresh.ensure_partitions(8).unwrap();
        fresh.ensure_partitions(1).unwrap();
        assert_eq!(fresh.partitions(), 1);
    }

    #[test]
    fn release_unmaps_key_so_reappearance_allocates_fresh_mapping() {
        let mut a = VnhAllocator::default();
        let k = key(1, "10.0.0.0/8", 2);
        let r = a.reserve_keyed(std::slice::from_ref(&k)).unwrap();
        let id = r.triples()[0].0;
        a.commit(&r);
        assert_eq!(a.key_of_id(id), Some(&k));
        a.release(id);
        assert_eq!(a.keyed_len(), 0);
        assert_eq!(a.id_of_key(&k), None);
        // The key coming back draws from the free list — which happens to
        // hand the same id back (LIFO), but through a fresh mapping.
        let r2 = a.reserve_keyed(std::slice::from_ref(&k)).unwrap();
        assert_eq!(r2.fresh_len(), 1);
        assert_eq!(r2.triples()[0].0, id);
    }

    #[test]
    fn keyed_pure_reuse_consumes_nothing() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/29")); // 7 usable
        let ks = vec![key(1, "10.0.0.0/8", 2)];
        a.commit(&a.reserve_keyed(&ks).unwrap());
        let remaining = a.remaining();
        // Recompiling the identical workload forever never drains the pool.
        for _ in 0..20 {
            let r = a.reserve_keyed(&ks).unwrap();
            assert_eq!(r.fresh_len(), 0);
            a.commit(&r);
        }
        assert_eq!(a.remaining(), remaining);
    }

    #[test]
    fn duplicate_keys_in_one_batch_share_one_id() {
        let a = VnhAllocator::default();
        let k = key(1, "10.0.0.0/8", 2);
        let r = a.reserve_keyed(&[k.clone(), k]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.fresh_len(), 1);
        assert_eq!(r.triples()[0], r.triples()[1]);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn keyed_commit_rejects_stale_reservation() {
        let mut a = VnhAllocator::default();
        let r = a.reserve_keyed(&[key(1, "10.0.0.0/8", 2)]).unwrap();
        a.allocate();
        a.commit(&r);
    }

    #[test]
    fn keyed_exhaustion_is_typed_and_pure() {
        let mut a = VnhAllocator::new(prefix("10.0.0.0/31")); // 1 usable
        a.commit(&a.reserve_keyed(&[key(1, "10.0.0.0/8", 2)]).unwrap());
        // Reusing the live key still fits; adding a second group does not.
        assert!(a.reserve_keyed(&[key(1, "10.0.0.0/8", 2)]).is_ok());
        assert!(matches!(
            a.reserve_keyed(&[key(1, "10.0.0.0/8", 2), key(2, "20.0.0.0/8", 1)]),
            Err(SdxError::VnhExhausted { .. })
        ));
        assert_eq!(a.keyed_len(), 1, "failed reservation mutated nothing");
    }

    #[test]
    fn pool_membership() {
        let a = VnhAllocator::default();
        assert!(a.contains(ip("172.16.200.5")));
        assert!(!a.contains(ip("172.16.0.5")));
        assert!(!a.contains(ip("10.0.0.1")));
    }
}
