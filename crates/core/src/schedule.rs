//! Provably safe update scheduling: dependency-DAG flow-mod waves.
//!
//! [`crate::reconcile::diff_base_table`] emits the *minimal* batch that
//! patches the deployed table — but minimal says nothing about *order*.
//! A real switch applies flow-mods over time, and a half-applied batch is
//! a live table: delete a rule before its replacement exists and the
//! overlap traffic falls through to whatever lies beneath; install a
//! low-priority clause before the high-priority clause that shadows it
//! and packets take a route neither the old nor the new configuration
//! ever prescribed.
//!
//! This module turns a [`FlowModBatch`] into an [`UpdatePlan`]: a
//! dependency DAG over the batch's operations, partitioned into maximal
//! **waves** of mutually independent mods. Each wave is applied as one
//! atomic batch (a commit barrier); between waves the table is a live
//! intermediate state, and the dependency edges guarantee that every such
//! state routes each packet either the *old* way or the *new* way — the
//! per-packet consistency discipline of consistent-updates work, applied
//! to the SDX's single-stage classifier:
//!
//! * **same-slot replace** — a `Delete` and an `Add` at identical
//!   (priority, pattern) fuse into one wave, delete ordered first inside
//!   the atomic batch, so the slot never flickers empty;
//! * **make-before-break** — an `Add` or `Modify` precedes every
//!   overlapping `Delete`, so traffic leaving a doomed rule has its new
//!   rule waiting;
//! * **shadow order** — of two overlapping `Add`s the higher priority
//!   lands first (it shadows, so the overlap flips straight to the new
//!   behaviour); of two overlapping `Delete`s the lower priority goes
//!   first (the overlap keeps its old behaviour until the end); an `Add`
//!   above an overlapping `Modify` precedes it;
//! * **tag reference order** — a rule whose buckets rewrite `dl_dst` to a
//!   VMAC and re-enter the fabric *references* the rule matching that
//!   VMAC: the handler's `Add` precedes the referencing rule, and
//!   referencing rules are deleted before the handler's `Delete`
//!   (add-before-reference / delete-after-unreference).
//!
//! [`drive`] then pushes the waves through [`Fabric::apply_flowmods`]
//! with an optional per-wave safety checker (the oracle crate supplies
//! one that walks a packet corpus over every intermediate table), a
//! [`FaultPlan`] crossing per wave attempt
//! ([`InjectionPoint::FlowModApply`]), bounded exponential backoff on
//! injected failures, and — on retry exhaustion — an abort that leaves
//! the fabric **parked in the last verified-safe intermediate state**
//! with a journaled [`Event::UpdateAborted`] and a typed
//! [`SdxError::UpdateAborted`], so the controller can fall back to a
//! fresh reconciliation from wherever the update stalled.

use std::collections::BTreeMap;

use sdx_net::{HeaderMatch, MacAddr, Mod};
use sdx_openflow::fabric::Fabric;
use sdx_openflow::flowmod::{FlowMod, FlowModBatch};
use sdx_openflow::multiswitch::MultiFabric;
use sdx_openflow::table::FlowTable;
use sdx_telemetry::{Event, SharedRegistry};

use crate::error::SdxError;
use crate::faults::{FaultPlan, InjectionPoint};

/// The operation kind, ordered by within-wave application order: deletes
/// first (frees same-slot positions), then modifies, then adds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Kind {
    Delete,
    Modify,
    Add,
}

/// Per-op analysis extracted once from the batch + pre-update table.
struct OpInfo {
    kind: Kind,
    priority: u32,
    pattern: HeaderMatch,
    /// The VMAC FEC id this rule's pattern matches (it *handles* the tag).
    handles: Option<u32>,
    /// Tags the op's **new** buckets write into `dl_dst` before sending
    /// the packet somewhere non-physical (it will re-enter and reference
    /// the tag's handler). Empty for `Delete`.
    emits_new: Vec<u32>,
    /// Tags the op's **old** buckets (from the pre-update table) emitted.
    /// Empty for `Add`.
    emits_old: Vec<u32>,
}

/// Tags a bucket list writes into `dl_dst` on packets that do not leave
/// at a physical port (so the classifier will see them again).
fn emitted_tags(buckets: &[Vec<Mod>]) -> Vec<u32> {
    let mut tags = Vec::new();
    for bucket in buckets {
        let mut tag = None;
        let mut physical_exit = false;
        for m in bucket {
            match m {
                Mod::SetDlDst(mac) => tag = mac.fec_id(),
                Mod::SetLoc(p) => physical_exit = p.is_physical(),
                _ => {}
            }
        }
        if let Some(v) = tag {
            if !physical_exit && !tags.contains(&v) {
                tags.push(v);
            }
        }
    }
    tags
}

/// A schedule: the batch's mods partitioned into dependency-ordered
/// waves, each itself an atomic [`FlowModBatch`] (same epoch).
#[derive(Clone, Debug)]
pub struct UpdatePlan {
    /// The commit epoch of the source batch, stamped on every wave.
    pub epoch: u64,
    /// The waves, in application order. Mods within a wave are mutually
    /// independent except for fused same-slot delete→add pairs, which the
    /// wave's internal order (deletes, then modifies, then adds) handles.
    pub waves: Vec<FlowModBatch>,
    /// Dependency edges found between distinct waves-to-be (a measure of
    /// how constrained the batch was).
    pub dependencies: usize,
    /// True when the dependency graph had a cycle and the plan collapsed
    /// to a single atomic wave (always safe, never wrong — just maximally
    /// conservative).
    pub collapsed: bool,
}

impl UpdatePlan {
    /// Number of waves.
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// The widest wave (mods applied in one barrier), 0 if empty.
    pub fn max_wave_width(&self) -> usize {
        self.waves.iter().map(FlowModBatch::len).max().unwrap_or(0)
    }

    /// Total mods across all waves (= the source batch's length).
    pub fn total_mods(&self) -> usize {
        self.waves.iter().map(FlowModBatch::len).sum()
    }

    /// True when there is nothing to apply.
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }
}

/// Union-find over op indices (path-halving).
fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        parent[ra] = rb;
    }
}

/// Builds the dependency-DAG schedule for `batch` against the
/// **pre-update** `table` (needed to recover the buckets a `Modify` or
/// `Delete` is retiring). The plan's waves, applied in order with any
/// interleaving *within* a wave, keep every intermediate table
/// per-packet contained between the old and the new table.
pub fn plan(table: &FlowTable, batch: &FlowModBatch) -> UpdatePlan {
    let n = batch.mods.len();
    if n == 0 {
        return UpdatePlan {
            epoch: batch.epoch,
            waves: Vec::new(),
            dependencies: 0,
            collapsed: false,
        };
    }

    // Pre-update entries indexed by priority, for old-bucket recovery.
    let mut by_priority: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, e) in table.entries().iter().enumerate() {
        by_priority.entry(e.priority).or_default().push(i);
    }
    let old_buckets = |priority: u32, pattern: &HeaderMatch| -> Option<&[Vec<Mod>]> {
        by_priority.get(&priority)?.iter().find_map(|&i| {
            let e = &table.entries()[i];
            (&e.pattern == pattern).then_some(e.buckets.as_slice())
        })
    };

    let infos: Vec<OpInfo> = batch
        .mods
        .iter()
        .map(|m| match m {
            FlowMod::Add(e) => OpInfo {
                kind: Kind::Add,
                priority: e.priority,
                pattern: e.pattern,
                handles: e.pattern.dl_dst.and_then(MacAddr::fec_id),
                emits_new: emitted_tags(&e.buckets),
                emits_old: Vec::new(),
            },
            FlowMod::Modify {
                priority,
                pattern,
                buckets,
                ..
            } => OpInfo {
                kind: Kind::Modify,
                priority: *priority,
                pattern: *pattern,
                handles: pattern.dl_dst.and_then(MacAddr::fec_id),
                emits_new: emitted_tags(buckets),
                emits_old: old_buckets(*priority, pattern)
                    .map(emitted_tags)
                    .unwrap_or_default(),
            },
            FlowMod::Delete { priority, pattern } => OpInfo {
                kind: Kind::Delete,
                priority: *priority,
                pattern: *pattern,
                handles: pattern.dl_dst.and_then(MacAddr::fec_id),
                emits_new: Vec::new(),
                emits_old: old_buckets(*priority, pattern)
                    .map(emitted_tags)
                    .unwrap_or_default(),
            },
        })
        .collect();

    // Overlap candidates, pruned by the concrete `dl_dst` the pattern
    // pins: two patterns pinning *different* MACs are disjoint, and in an
    // SDX table almost every rule pins a distinct VMAC — so the quadratic
    // pair scan collapses to tiny per-tag groups plus the wildcard band.
    let mut by_mac: BTreeMap<MacAddr, Vec<usize>> = BTreeMap::new();
    let mut wild: Vec<usize> = Vec::new();
    for (i, info) in infos.iter().enumerate() {
        match info.pattern.dl_dst {
            Some(mac) => by_mac.entry(mac).or_default().push(i),
            None => wild.push(i),
        }
    }
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for group in by_mac.values() {
        for (gi, &a) in group.iter().enumerate() {
            for &b in &group[gi + 1..] {
                candidates.push((a, b));
            }
        }
    }
    for (wi, &a) in wild.iter().enumerate() {
        for &b in &wild[wi + 1..] {
            candidates.push((a, b));
        }
        for group in by_mac.values() {
            for &b in group {
                candidates.push((a, b));
            }
        }
    }

    let mut parent: Vec<usize> = (0..n).collect();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (a, b) in candidates {
        let (ia, ib) = (&infos[a], &infos[b]);
        if ia.pattern.disjoint(&ib.pattern) {
            continue;
        }
        if ia.priority == ib.priority && ia.pattern == ib.pattern {
            // Same slot: a delete→add replacement pair (any other
            // combination would make the batch invalid). Fuse into one
            // atomic wave; the wave's delete-first internal order makes
            // the replacement flicker-free.
            union(&mut parent, a, b);
            continue;
        }
        // `hi` is the op with the higher priority of an overlapping pair.
        let (hi, lo) = if ia.priority >= ib.priority {
            (a, b)
        } else {
            (b, a)
        };
        match (infos[hi].kind, infos[lo].kind) {
            // Make-before-break: the add/modify precedes the overlapping
            // delete regardless of which sits higher.
            (Kind::Add | Kind::Modify, Kind::Delete) => edges.push((hi, lo)),
            (Kind::Delete, Kind::Add | Kind::Modify) => edges.push((lo, hi)),
            // Two adds: the shadowing (higher) one first, so the overlap
            // flips directly from old behaviour to new behaviour.
            (Kind::Add, Kind::Add) => {
                if infos[hi].priority > infos[lo].priority {
                    edges.push((hi, lo));
                }
            }
            // Two deletes: the shadowed (lower) one first, so the overlap
            // keeps its old behaviour until the very end.
            (Kind::Delete, Kind::Delete) => {
                if infos[hi].priority > infos[lo].priority {
                    edges.push((lo, hi));
                }
            }
            // An add that will shadow a modified rule must land first;
            // the reverse layering needs no order (the higher modify
            // governs the overlap before and after either op).
            (Kind::Add, Kind::Modify) => {
                if infos[hi].priority > infos[lo].priority {
                    edges.push((hi, lo));
                }
            }
            (Kind::Modify, Kind::Add) | (Kind::Modify, Kind::Modify) => {}
        }
    }

    // Tag reference edges: handler adds before referencing rules;
    // referencing rules deleted (or rewritten away) before handler
    // deletes.
    let mut handler_adds: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    let mut handler_dels: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, info) in infos.iter().enumerate() {
        if let Some(v) = info.handles {
            match info.kind {
                Kind::Add => handler_adds.entry(v).or_default().push(i),
                Kind::Delete => handler_dels.entry(v).or_default().push(i),
                Kind::Modify => {}
            }
        }
    }
    for (i, info) in infos.iter().enumerate() {
        for v in &info.emits_new {
            for &p in handler_adds.get(v).into_iter().flatten() {
                if p != i {
                    edges.push((p, i));
                }
            }
        }
        for v in &info.emits_old {
            for &q in handler_dels.get(v).into_iter().flatten() {
                if q != i {
                    edges.push((i, q));
                }
            }
        }
    }

    // Collapse edges onto fused clusters and drop intra-cluster edges.
    let cluster_of: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    let mut cedges: Vec<(usize, usize)> = edges
        .iter()
        .map(|&(u, v)| (cluster_of[u], cluster_of[v]))
        .filter(|&(u, v)| u != v)
        .collect();
    cedges.sort_unstable();
    cedges.dedup();
    let dependencies = cedges.len();

    // Longest-path wave depth per cluster (Kahn's algorithm); a cycle
    // collapses the whole plan to one atomic wave.
    let mut indeg: BTreeMap<usize, usize> = BTreeMap::new();
    let mut succs: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &c in &cluster_of {
        indeg.entry(c).or_insert(0);
    }
    for &(u, v) in &cedges {
        *indeg.entry(v).or_insert(0) += 1;
        succs.entry(u).or_default().push(v);
    }
    let mut depth: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: Vec<usize> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&c, _)| c)
        .collect();
    for &c in &queue {
        depth.insert(c, 0);
    }
    let mut processed = 0usize;
    while let Some(u) = queue.pop() {
        processed += 1;
        let du = depth[&u];
        for &v in succs.get(&u).into_iter().flatten() {
            let dv = depth.entry(v).or_insert(0);
            *dv = (*dv).max(du + 1);
            let d = indeg.get_mut(&v).expect("edge target has an indegree");
            *d -= 1;
            if *d == 0 {
                queue.push(v);
            }
        }
    }
    let collapsed = processed < indeg.len();

    // Assemble waves: by depth, deletes → modifies → adds within a wave
    // (stable on batch position), so fused same-slot pairs validate.
    let mut order: Vec<usize> = (0..n).collect();
    let wave_of = |i: usize| -> usize {
        if collapsed {
            0
        } else {
            depth[&cluster_of[i]]
        }
    };
    order.sort_by_key(|&i| (wave_of(i), infos[i].kind, i));
    let wave_count = order.iter().map(|&i| wave_of(i) + 1).max().unwrap_or(0);
    let mut waves: Vec<FlowModBatch> = (0..wave_count)
        .map(|_| FlowModBatch::new(batch.epoch))
        .collect();
    for i in order {
        waves[wave_of(i)].push(batch.mods[i].clone());
    }
    UpdatePlan {
        epoch: batch.epoch,
        waves,
        dependencies,
        collapsed,
    }
}

/// Knobs for [`drive`]'s failure handling.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleOpts {
    /// Attempts per wave before aborting the update, including the first
    /// (minimum 1).
    pub max_attempts: u32,
    /// Base of the exponential backoff between attempts, in simulated
    /// milliseconds: attempt `k`'s retry waits `base << (k - 1)`. The
    /// driver *accounts* the waits (metrics + report) without sleeping,
    /// keeping tests instant and deterministic.
    pub backoff_base_ms: u64,
}

impl Default for ScheduleOpts {
    fn default() -> Self {
        ScheduleOpts {
            max_attempts: 4,
            backoff_base_ms: 8,
        }
    }
}

/// A per-wave safety checker: inspects the fabric *after* a wave landed
/// and returns a counterexample description if the intermediate state is
/// unsafe (loops, or a packet routed neither the old nor the new way).
/// The oracle crate builds these; `core` only defines the seam so the
/// crate layering stays acyclic.
pub type WaveChecker<'a> = dyn FnMut(&Fabric, usize) -> Result<(), String> + 'a;

/// A per-wave fan-out target for [`drive_fanout`]: after a wave lands on
/// the driving fabric (and passes its safety check), the sink applies the
/// *same* wave everywhere else it must go — every switch of a
/// [`MultiFabric`], or external switch agents over OpenFlow channels.
///
/// `apply_wave` must not return until the wave is fully applied at every
/// target: **its return is the per-wave barrier** that keeps the whole
/// fleet moving through the same sequence of verified-safe intermediate
/// states. An implementation is free to apply to its targets concurrently,
/// as long as it joins them all before returning.
pub trait WaveSink {
    /// Applies wave `wave` (zero-based, of `total`) to every target.
    /// An error aborts the schedule: the driving fabric is rolled back to
    /// the pre-wave barrier and [`SdxError::InvalidCommit`] is returned.
    fn apply_wave(&mut self, wave: usize, total: usize, batch: &FlowModBatch)
        -> Result<(), String>;
}

/// Fans each wave out across every switch of a [`MultiFabric`]
/// concurrently: one scoped thread per switch table, joined before
/// returning — the join is the per-wave barrier. This closes the
/// "potential parallelism" the single-switch driver could only express:
/// within a wave the mods are mutually independent *and* the per-switch
/// tables are independent borrows, so all switches program in parallel
/// and no switch starts wave *n+1* before every switch finished wave *n*.
pub struct MultiFabricSink<'a> {
    fabric: &'a mut MultiFabric,
}

impl<'a> MultiFabricSink<'a> {
    /// A sink driving every switch of `fabric`.
    pub fn new(fabric: &'a mut MultiFabric) -> Self {
        MultiFabricSink { fabric }
    }
}

impl WaveSink for MultiFabricSink<'_> {
    fn apply_wave(
        &mut self,
        wave: usize,
        _total: usize,
        batch: &FlowModBatch,
    ) -> Result<(), String> {
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .fabric
                .tables_mut()
                .into_iter()
                .map(|(id, table)| s.spawn(move || (id, table.apply_batch(batch))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("wave worker panicked"))
                .collect()
        });
        for (id, r) in results {
            r.map_err(|e| format!("wave {wave} rejected by switch {}: {e}", id.0))?;
        }
        Ok(())
    }
}

/// What one applied wave cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WaveReport {
    /// Zero-based wave index.
    pub wave: usize,
    /// Mods in the wave.
    pub mods: usize,
    /// Attempts spent (1 = clean).
    pub attempts: u32,
    /// Simulated backoff accumulated before the wave landed, ms.
    pub backoff_ms: u64,
}

/// The outcome of a completed [`drive`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ScheduleReport {
    /// Commit epoch of the scheduled update.
    pub epoch: u64,
    /// Per-wave accounting, in application order (all waves on success).
    pub applied: Vec<WaveReport>,
    /// Total waves the plan had.
    pub total_waves: usize,
    /// Retries across all waves.
    pub retries: u64,
    /// Total simulated backoff, ms.
    pub backoff_ms: u64,
}

/// Applies `plan` to `fabric` wave by wave.
///
/// Per wave: cross [`InjectionPoint::FlowModApply`] (a firing models the
/// switch failing the wave — nothing lands), retrying with bounded
/// exponential backoff up to [`ScheduleOpts::max_attempts`]; then apply
/// the wave atomically; then run `checker` against the new intermediate
/// state. Every applied-and-verified wave journals
/// [`Event::UpdateWaveApplied`] and counts `schedule.waves.count` /
/// `schedule.wave_width`.
///
/// Failure semantics:
///
/// * retry exhaustion → `schedule.abort.count`, a journaled
///   [`Event::UpdateAborted`], and [`SdxError::UpdateAborted`]; the fabric
///   stays **parked** with exactly the previously verified waves applied;
/// * a checker rejection → the offending wave is rolled back (snapshot)
///   and [`SdxError::UnsafeSchedule`] carries the counterexample; the
///   fabric parks in the pre-wave (verified) state;
/// * a batch the switch itself rejects → [`SdxError::InvalidCommit`]
///   (deterministic, so no retry), fabric parked pre-wave.
pub fn drive(
    plan: &UpdatePlan,
    fabric: &mut Fabric,
    faults: &mut FaultPlan,
    telemetry: &SharedRegistry,
    opts: &ScheduleOpts,
    checker: Option<&mut WaveChecker>,
) -> Result<ScheduleReport, SdxError> {
    drive_fanout(plan, fabric, faults, telemetry, opts, checker, None)
}

/// [`drive`], plus a multi-channel [`WaveSink`]: after each wave lands on
/// the driving `fabric` and passes `checker`, `sink.apply_wave` pushes the
/// identical wave to every fan-out target and blocks until all confirm —
/// the per-wave barrier now spans the whole fleet. A sink failure rolls
/// the driving fabric back to the pre-wave barrier (so local state never
/// runs ahead of a fleet that stopped) and surfaces as
/// [`SdxError::InvalidCommit`].
pub fn drive_fanout(
    plan: &UpdatePlan,
    fabric: &mut Fabric,
    faults: &mut FaultPlan,
    telemetry: &SharedRegistry,
    opts: &ScheduleOpts,
    mut checker: Option<&mut WaveChecker>,
    mut sink: Option<&mut dyn WaveSink>,
) -> Result<ScheduleReport, SdxError> {
    let mut report = ScheduleReport {
        epoch: plan.epoch,
        total_waves: plan.waves.len(),
        ..ScheduleReport::default()
    };
    let max_attempts = opts.max_attempts.max(1);
    for (i, wave) in plan.waves.iter().enumerate() {
        let mut attempts = 0u32;
        let mut wave_backoff = 0u64;
        loop {
            attempts += 1;
            let point = InjectionPoint::FlowModApply {
                wave: u32::try_from(i).unwrap_or(u32::MAX - 1),
            };
            match faults.check(point) {
                Ok(()) => break,
                Err(e) => {
                    telemetry.record_event(Event::FaultInjected {
                        point: point.to_string(),
                    });
                    if attempts >= max_attempts {
                        telemetry.inc("schedule.abort.count");
                        telemetry.record_event(Event::UpdateAborted {
                            epoch: plan.epoch,
                            wave: i,
                            applied: report.applied.len(),
                            total: plan.waves.len(),
                        });
                        debug_assert!(matches!(e, SdxError::Injected(_)));
                        return Err(SdxError::UpdateAborted {
                            wave: i,
                            applied: report.applied.len(),
                            total: plan.waves.len(),
                            attempts,
                        });
                    }
                    report.retries += 1;
                    telemetry.inc("schedule.retry.count");
                    // Bounded exponential backoff, accounted not slept.
                    let wait = opts
                        .backoff_base_ms
                        .saturating_mul(1u64 << (attempts - 1).min(16));
                    wave_backoff += wait;
                    report.backoff_ms += wait;
                    telemetry.add("schedule.backoff_ms", wait);
                }
            }
        }
        let snapshot = (checker.is_some() || sink.is_some()).then(|| fabric.snapshot());
        fabric.apply_flowmods(wave).map_err(|e| {
            SdxError::InvalidCommit(format!("scheduled wave {i} rejected by the switch: {e}"))
        })?;
        if let Some(ref mut check) = checker {
            if let Err(counterexample) = check(fabric, i) {
                if let Some(snap) = snapshot {
                    fabric.restore(snap);
                }
                telemetry.inc("schedule.unsafe.count");
                return Err(SdxError::UnsafeSchedule {
                    wave: i,
                    counterexample,
                });
            }
        }
        if let Some(ref mut s) = sink {
            if let Err(e) = s.apply_wave(i, plan.waves.len(), wave) {
                if let Some(snap) = snapshot {
                    fabric.restore(snap);
                }
                telemetry.inc("schedule.fanout_failed.count");
                return Err(SdxError::InvalidCommit(format!(
                    "scheduled wave {i} failed to fan out: {e}"
                )));
            }
        }
        telemetry.inc("schedule.waves.count");
        telemetry.observe("schedule.wave_width", wave.len() as u64);
        telemetry.record_event(Event::UpdateWaveApplied {
            epoch: plan.epoch,
            wave: i,
            total: plan.waves.len(),
            mods: wave.len(),
            attempts,
        });
        report.applied.push(WaveReport {
            wave: i,
            mods: wave.len(),
            attempts,
            backoff_ms: wave_backoff,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{FieldMatch, ParticipantId, PortId};
    use sdx_openflow::table::FlowEntry;

    fn phys(p: u32) -> PortId {
        PortId::Phys(ParticipantId(p), 1)
    }

    fn vpat(id: u32) -> HeaderMatch {
        HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(id)))
    }

    fn out(p: u32) -> Vec<Vec<Mod>> {
        vec![vec![
            Mod::SetDlDst(MacAddr::physical(p)),
            Mod::SetLoc(phys(p)),
        ]]
    }

    fn add(priority: u32, pattern: HeaderMatch, buckets: Vec<Vec<Mod>>) -> FlowMod {
        FlowMod::Add(FlowEntry::new(priority, pattern, buckets))
    }

    fn batch(mods: Vec<FlowMod>) -> FlowModBatch {
        FlowModBatch { epoch: 7, mods }
    }

    /// The kinds of each wave, compressed for assertions.
    fn shape(plan: &UpdatePlan) -> Vec<Vec<&'static str>> {
        plan.waves
            .iter()
            .map(|w| {
                w.mods
                    .iter()
                    .map(|m| match m {
                        FlowMod::Add(_) => "add",
                        FlowMod::Modify { .. } => "mod",
                        FlowMod::Delete { .. } => "del",
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_batch_plans_no_waves() {
        let p = plan(&FlowTable::new(), &batch(vec![]));
        assert!(p.is_empty());
        let mut fabric = Fabric::new();
        let mut faults = FaultPlan::disabled();
        let reg = SharedRegistry::new();
        let r = drive(
            &p,
            &mut fabric,
            &mut faults,
            &reg,
            &ScheduleOpts::default(),
            None,
        )
        .expect("trivial");
        assert_eq!(r.total_waves, 0);
    }

    #[test]
    fn disjoint_vmac_ops_share_one_wave() {
        let b = batch(vec![
            add(10, vpat(1), out(1)),
            add(20, vpat(2), out(2)),
            FlowMod::Delete {
                priority: 5,
                pattern: vpat(3),
            },
        ]);
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(5, vpat(3), out(9)));
        let p = plan(&t, &b);
        assert_eq!(p.wave_count(), 1, "{:?}", shape(&p));
        assert_eq!(p.max_wave_width(), 3);
        assert_eq!(p.dependencies, 0);
        assert!(!p.collapsed);
    }

    #[test]
    fn same_slot_replace_fuses_delete_before_add() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(10, vpat(1), out(9)));
        let b = batch(vec![
            add(10, vpat(1), out(2)),
            FlowMod::Delete {
                priority: 10,
                pattern: vpat(1),
            },
        ]);
        let p = plan(&t, &b);
        assert_eq!(shape(&p), vec![vec!["del", "add"]], "fused, delete first");
        // The fused wave must actually apply (delete frees the slot).
        let mut fabric = Fabric::new();
        fabric.switch.install(FlowEntry::new(10, vpat(1), out(9)));
        let mut faults = FaultPlan::disabled();
        let reg = SharedRegistry::new();
        drive(
            &p,
            &mut fabric,
            &mut faults,
            &reg,
            &ScheduleOpts::default(),
            None,
        )
        .expect("replacement wave applies");
        assert_eq!(fabric.switch.table().entries()[0].buckets, out(2));
    }

    #[test]
    fn make_before_break_orders_add_ahead_of_overlapping_delete() {
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(5, HeaderMatch::any(), out(9)));
        let b = batch(vec![
            FlowMod::Delete {
                priority: 5,
                pattern: HeaderMatch::any(),
            },
            add(10, vpat(1), out(2)),
        ]);
        let p = plan(&t, &b);
        assert_eq!(shape(&p), vec![vec!["add"], vec!["del"]]);
        assert_eq!(p.dependencies, 1);
    }

    #[test]
    fn overlapping_adds_install_high_priority_first() {
        let m80 = HeaderMatch::of(FieldMatch::TpDst(80));
        let b = batch(vec![
            add(5, HeaderMatch::any(), out(1)),
            add(10, m80, out(2)),
        ]);
        let p = plan(&FlowTable::new(), &b);
        assert_eq!(shape(&p), vec![vec!["add"], vec!["add"]]);
        match &p.waves[0].mods[0] {
            FlowMod::Add(e) => assert_eq!(e.priority, 10, "shadowing add first"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn overlapping_deletes_remove_low_priority_first() {
        let m80 = HeaderMatch::of(FieldMatch::TpDst(80));
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(5, HeaderMatch::any(), out(1)));
        t.install(FlowEntry::new(10, m80, out(2)));
        let b = batch(vec![
            FlowMod::Delete {
                priority: 10,
                pattern: m80,
            },
            FlowMod::Delete {
                priority: 5,
                pattern: HeaderMatch::any(),
            },
        ]);
        let p = plan(&t, &b);
        assert_eq!(shape(&p), vec![vec!["del"], vec!["del"]]);
        match &p.waves[0].mods[0] {
            FlowMod::Delete { priority, .. } => assert_eq!(*priority, 5, "shadowed delete first"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tag_handler_adds_precede_referencing_rules_and_outlive_them() {
        // The emitter rewrites to vmac 7 and re-enters at a virtual port;
        // the handler matches vmac 7. Install handler first, delete the
        // old emitter before the old handler goes.
        let emit7 = vec![vec![
            Mod::SetDlDst(MacAddr::vmac(7)),
            Mod::SetLoc(PortId::Virt(ParticipantId(3))),
        ]];
        let b_install = batch(vec![
            add(20, vpat(9), emit7.clone()),
            add(10, vpat(7), out(2)),
        ]);
        let p = plan(&FlowTable::new(), &b_install);
        assert_eq!(shape(&p), vec![vec!["add"], vec!["add"]]);
        match &p.waves[0].mods[0] {
            FlowMod::Add(e) => assert_eq!(e.pattern, vpat(7), "handler lands first"),
            other => panic!("unexpected {other:?}"),
        }

        let mut t = FlowTable::new();
        t.install(FlowEntry::new(20, vpat(9), emit7));
        t.install(FlowEntry::new(10, vpat(7), out(2)));
        let b_retire = batch(vec![
            FlowMod::Delete {
                priority: 10,
                pattern: vpat(7),
            },
            FlowMod::Delete {
                priority: 20,
                pattern: vpat(9),
            },
        ]);
        let p = plan(&t, &b_retire);
        assert_eq!(shape(&p), vec![vec!["del"], vec!["del"]]);
        match &p.waves[0].mods[0] {
            FlowMod::Delete { pattern, .. } => {
                assert_eq!(*pattern, vpat(9), "emitter retires first");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn injected_wave_failure_retries_with_backoff_then_succeeds() {
        let b = batch(vec![
            add(5, HeaderMatch::any(), out(1)),
            add(10, HeaderMatch::of(FieldMatch::TpDst(80)), out(2)),
        ]);
        let p = plan(&FlowTable::new(), &b);
        assert_eq!(p.wave_count(), 2);
        let mut fabric = Fabric::new();
        let mut faults = FaultPlan::seeded(1).fail_nth(InjectionPoint::FlowModApply { wave: 1 }, 1);
        let reg = SharedRegistry::new();
        let r = drive(
            &p,
            &mut fabric,
            &mut faults,
            &reg,
            &ScheduleOpts::default(),
            None,
        )
        .expect("second attempt lands");
        assert_eq!(r.retries, 1);
        assert_eq!(r.applied[1].attempts, 2);
        assert_eq!(r.applied[1].backoff_ms, 8, "base backoff before retry");
        assert_eq!(fabric.switch.table().len(), 2, "both waves applied");
        let kinds = reg.journal().kinds();
        assert_eq!(
            kinds,
            vec![
                "update_wave_applied",
                "fault_injected",
                "update_wave_applied"
            ]
        );
    }

    #[test]
    fn retry_exhaustion_aborts_parked_at_last_safe_wave() {
        let b = batch(vec![
            add(5, HeaderMatch::any(), out(1)),
            add(10, HeaderMatch::of(FieldMatch::TpDst(80)), out(2)),
        ]);
        let p = plan(&FlowTable::new(), &b);
        let mut fabric = Fabric::new();
        let mut faults = FaultPlan::seeded(1)
            .fail_with_probability(InjectionPoint::FlowModApply { wave: 1 }, 1.0);
        let reg = SharedRegistry::new();
        let opts = ScheduleOpts {
            max_attempts: 3,
            backoff_base_ms: 4,
        };
        let err =
            drive(&p, &mut fabric, &mut faults, &reg, &opts, None).expect_err("wave 1 never lands");
        assert_eq!(
            err,
            SdxError::UpdateAborted {
                wave: 1,
                applied: 1,
                total: 2,
                attempts: 3,
            }
        );
        assert_eq!(fabric.switch.table().len(), 1, "parked after wave 0");
        assert_eq!(reg.counter("schedule.abort.count").get(), 1);
        assert_eq!(reg.counter("schedule.retry.count").get(), 2);
        assert!(reg.journal().kinds().contains(&"update_aborted"));
    }

    #[test]
    fn checker_rejection_rolls_the_wave_back() {
        let b = batch(vec![add(5, HeaderMatch::any(), out(1))]);
        let p = plan(&FlowTable::new(), &b);
        let mut fabric = Fabric::new();
        let mut faults = FaultPlan::disabled();
        let reg = SharedRegistry::new();
        let mut reject = |_: &Fabric, wave: usize| Err(format!("wave {wave}: probe looped"));
        let err = drive(
            &p,
            &mut fabric,
            &mut faults,
            &reg,
            &ScheduleOpts::default(),
            Some(&mut reject),
        )
        .expect_err("checker vetoes");
        assert_eq!(
            err,
            SdxError::UnsafeSchedule {
                wave: 0,
                counterexample: "wave 0: probe looped".into(),
            }
        );
        assert!(fabric.switch.table().is_empty(), "vetoed wave rolled back");
        assert_eq!(reg.counter("schedule.unsafe.count").get(), 1);
    }

    #[test]
    fn fanout_applies_every_wave_to_every_switch_in_order() {
        use sdx_openflow::multiswitch::SwitchId;
        let b = batch(vec![
            add(5, HeaderMatch::any(), out(1)),
            add(10, HeaderMatch::of(FieldMatch::TpDst(80)), out(2)),
        ]);
        let p = plan(&FlowTable::new(), &b);
        assert_eq!(p.wave_count(), 2);
        let mut fabric = Fabric::new();
        let mut multi = MultiFabric::new();
        for id in 0..4 {
            multi.add_switch(SwitchId(id));
        }
        let mut faults = FaultPlan::disabled();
        let reg = SharedRegistry::new();
        let mut sink = MultiFabricSink::new(&mut multi);
        let r = drive_fanout(
            &p,
            &mut fabric,
            &mut faults,
            &reg,
            &ScheduleOpts::default(),
            None,
            Some(&mut sink),
        )
        .expect("fan-out succeeds");
        assert_eq!(r.applied.len(), 2);
        // Every switch ends up identical to the driving fabric's table.
        for id in multi.switch_ids() {
            assert_eq!(multi.table_of(id).unwrap(), fabric.switch.table());
        }
        assert_eq!(multi.total_rules(), 4 * 2);
    }

    #[test]
    fn fanout_failure_rolls_the_driving_fabric_back_to_the_barrier() {
        struct FailAt(usize);
        impl WaveSink for FailAt {
            fn apply_wave(
                &mut self,
                wave: usize,
                _total: usize,
                _batch: &FlowModBatch,
            ) -> Result<(), String> {
                if wave == self.0 {
                    Err(format!("agent unreachable at wave {wave}"))
                } else {
                    Ok(())
                }
            }
        }
        let b = batch(vec![
            add(5, HeaderMatch::any(), out(1)),
            add(10, HeaderMatch::of(FieldMatch::TpDst(80)), out(2)),
        ]);
        let p = plan(&FlowTable::new(), &b);
        let mut fabric = Fabric::new();
        let mut faults = FaultPlan::disabled();
        let reg = SharedRegistry::new();
        let mut sink = FailAt(1);
        let err = drive_fanout(
            &p,
            &mut fabric,
            &mut faults,
            &reg,
            &ScheduleOpts::default(),
            None,
            Some(&mut sink),
        )
        .expect_err("wave 1 cannot fan out");
        assert!(matches!(err, SdxError::InvalidCommit(_)), "{err}");
        // The local fabric parks at the wave-0 barrier: wave 1 was applied
        // locally, failed to fan out, and was rolled back.
        assert_eq!(fabric.switch.table().len(), 1);
        assert_eq!(reg.counter("schedule.fanout_failed.count").get(), 1);
        assert_eq!(reg.counter("schedule.waves.count").get(), 1);
    }

    #[test]
    fn planning_is_deterministic() {
        let m80 = HeaderMatch::of(FieldMatch::TpDst(80));
        let mut t = FlowTable::new();
        t.install(FlowEntry::new(5, HeaderMatch::any(), out(9)));
        let b = batch(vec![
            add(10, m80, out(2)),
            FlowMod::Delete {
                priority: 5,
                pattern: HeaderMatch::any(),
            },
            add(30, vpat(4), out(4)),
        ]);
        let p1 = plan(&t, &b);
        let p2 = plan(&t, &b);
        assert_eq!(p1.waves, p2.waves);
        assert_eq!(p1.total_mods(), 3);
    }
}
