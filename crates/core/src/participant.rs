//! Participant configuration and policy slots.

use sdx_bgp::rib::RouteSource;
use sdx_net::{Asn, Ipv4Addr, MacAddr, ParticipantId, PortId, RouterId};
use sdx_policy::Policy;

/// One physical attachment of a participant's border router to the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PhysicalPort {
    /// Interface index (the `1` in the paper's `A1`).
    pub index: u8,
    /// The router interface's MAC address.
    pub mac: MacAddr,
    /// The router's address on the IXP peering LAN.
    pub addr: Ipv4Addr,
}

/// Static configuration of one SDX participant.
#[derive(Clone, Debug)]
pub struct ParticipantConfig {
    /// The participant's identity at the exchange.
    pub id: ParticipantId,
    /// Its AS number.
    pub asn: Asn,
    /// Its physical ports (most participants have one; large ones more).
    pub ports: Vec<PhysicalPort>,
    /// Outbound policy (applies to traffic this participant sends).
    /// `None` means "all traffic follows default BGP forwarding" — the
    /// paper's simplest application.
    pub outbound: Option<Policy>,
    /// Inbound policy (applies to traffic destined to this participant).
    pub inbound: Option<Policy>,
}

impl ParticipantConfig {
    /// A participant with `nports` ports and no policies. Port MACs and
    /// peering addresses are derived deterministically from the id, which
    /// keeps every experiment reproducible.
    pub fn new(id: u32, asn: u32, nports: u8) -> Self {
        assert!(nports >= 1, "a participant needs at least one port");
        ParticipantConfig {
            id: ParticipantId(id),
            asn: Asn(asn),
            ports: (1..=nports)
                .map(|i| PhysicalPort {
                    index: i,
                    mac: MacAddr::physical(id * 16 + i as u32),
                    addr: Ipv4Addr::new(172, 16, (id >> 6) as u8, ((id << 2) as u8) | i),
                })
                .collect(),
            outbound: None,
            inbound: None,
        }
    }

    /// Builder-style outbound policy setter.
    pub fn with_outbound(mut self, p: Policy) -> Self {
        self.outbound = Some(p);
        self
    }

    /// Builder-style inbound policy setter.
    pub fn with_inbound(mut self, p: Policy) -> Self {
        self.inbound = Some(p);
        self
    }

    /// The fabric port ids of this participant.
    pub fn port_ids(&self) -> impl Iterator<Item = PortId> + '_ {
        self.ports
            .iter()
            .map(move |p| PortId::Phys(self.id, p.index))
    }

    /// The primary port (lowest index) — the default delivery target.
    pub fn primary_port(&self) -> &PhysicalPort {
        self.ports
            .iter()
            .min_by_key(|p| p.index)
            .expect("at least one port by construction")
    }

    /// The MAC of a given interface index, if it exists.
    pub fn port_mac(&self, index: u8) -> Option<MacAddr> {
        self.ports.iter().find(|p| p.index == index).map(|p| p.mac)
    }

    /// The BGP session identity this participant peers with the route
    /// server as (primary port address; router id derived from it).
    pub fn route_source(&self) -> RouteSource {
        let primary = self.primary_port();
        RouteSource {
            participant: self.id,
            asn: self.asn,
            router_id: RouterId::from_addr(primary.addr),
            peer_addr: primary.addr,
        }
    }

    /// True if this participant has any policy installed.
    pub fn has_policy(&self) -> bool {
        self.outbound.is_some() || self.inbound.is_some()
    }

    /// A BGP announcement of `prefixes` via `as_path`, with NEXT_HOP set to
    /// this participant's peering address — what its border router would
    /// actually send. Keeps fixtures and workload generators honest: the
    /// ARP-resolvable next hop is the announcer's own port address.
    pub fn announce(
        &self,
        prefixes: impl IntoIterator<Item = sdx_net::Prefix>,
        as_path: &[u32],
    ) -> sdx_bgp::msg::UpdateMessage {
        sdx_bgp::msg::UpdateMessage::announce(
            prefixes,
            sdx_bgp::attrs::PathAttributes::new(
                sdx_bgp::attrs::AsPath::sequence(as_path.iter().copied()),
                self.primary_port().addr,
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_ports() {
        let a = ParticipantConfig::new(1, 65001, 2);
        let b = ParticipantConfig::new(1, 65001, 2);
        assert_eq!(a.ports, b.ports);
        assert_eq!(a.ports.len(), 2);
        assert_eq!(a.primary_port().index, 1);
        assert_eq!(a.port_mac(2), Some(a.ports[1].mac));
        assert_eq!(a.port_mac(3), None);
        let ids: Vec<_> = a.port_ids().collect();
        assert_eq!(
            ids,
            vec![
                PortId::Phys(ParticipantId(1), 1),
                PortId::Phys(ParticipantId(1), 2)
            ]
        );
    }

    #[test]
    fn distinct_participants_get_distinct_addresses() {
        let a = ParticipantConfig::new(1, 65001, 1);
        let b = ParticipantConfig::new(2, 65002, 1);
        assert_ne!(a.ports[0].mac, b.ports[0].mac);
        assert_ne!(a.ports[0].addr, b.ports[0].addr);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        ParticipantConfig::new(1, 65001, 0);
    }

    #[test]
    fn route_source_uses_primary_port() {
        let a = ParticipantConfig::new(3, 65003, 2);
        let src = a.route_source();
        assert_eq!(src.participant, ParticipantId(3));
        assert_eq!(src.asn, Asn(65003));
        assert_eq!(src.peer_addr, a.primary_port().addr);
    }

    #[test]
    fn has_policy_tracks_slots() {
        let mut a = ParticipantConfig::new(1, 65001, 1);
        assert!(!a.has_policy());
        a.outbound = Some(Policy::id());
        assert!(a.has_policy());
    }
}
