//! Incremental updates: the §4.3.2 two-stage compilation.
//!
//! When a BGP update changes the best path for a prefix `p`, waiting for a
//! full pipeline run (minutes at scale — Figure 8) is unacceptable. The
//! fast path instead:
//!
//! 1. **assumes a new VNH is needed** — allocating a *fresh* `(VNH, VMAC)`
//!    for `p` alone skips the whole minimum-disjoint-subset computation
//!    *and* sidesteps ARP-cache staleness (the border router learns a
//!    brand-new next-hop address, so no binding has to change under it);
//! 2. recompiles **only the parts of the policy related to `p`**: the
//!    affected viewers' forwarding rules restricted to the new tag, plus a
//!    default rule and the receivers' delivery rules for the new tag;
//! 3. installs the result at a **higher priority** than the optimized
//!    table, where it shadows the stale rules until background
//!    re-optimization (a full [`SdxCompiler::compile_all`]) replaces
//!    everything and retires the deltas.
//!
//! The cost is extra rules (Figure 9 measures them); the benefit is
//! sub-second reaction (Figure 10 measures it).

use std::time::{Duration, Instant};

use sdx_bgp::route_server::RouteServer;
use sdx_net::{Ipv4Addr, MacAddr, ParticipantId, PortId, Prefix};
use sdx_policy::classifier::{Classifier, Rule};

use crate::compiler::SdxCompiler;
use crate::error::SdxError;
use crate::faults::{FaultPlan, InjectionPoint};
use crate::fec::FecGroup;
use crate::transform::{self, dst_coverage, expand_fwd_rule, Coverage};
use crate::vnh::VnhAllocator;

/// The product of one fast-path recompilation.
#[derive(Clone, Debug, Default)]
pub struct DeltaResult {
    /// Rules to overlay at high priority (already composed through the
    /// delivery stage; ready for the switch).
    pub rules: Vec<Rule>,
    /// New ARP bindings (fresh VNH → fresh VMAC).
    pub arp_bindings: Vec<(Ipv4Addr, MacAddr)>,
    /// NEXT_HOP rewrites to re-advertise: (viewer, prefix, new VNH).
    /// `None` means advertise the best route's real next hop (the prefix no
    /// longer needs SDX processing for this viewer).
    pub vnh_updates: Vec<(ParticipantId, Prefix, Option<Ipv4Addr>)>,
    /// Wall-clock of the fast path (the Figure 10 metric).
    pub elapsed: Duration,
}

impl DeltaResult {
    /// Additional forwarding rules this delta installs (Figure 9 metric).
    pub fn additional_rules(&self) -> usize {
        self.rules.iter().filter(|r| !r.is_drop()).count()
    }
}

impl SdxCompiler {
    /// The §4.3.2 fast path for one changed prefix. Must be called after
    /// the route server has already applied the triggering update.
    pub fn fast_update(
        &mut self,
        rs: &RouteServer,
        vnh: &mut VnhAllocator,
        prefix: Prefix,
    ) -> Result<DeltaResult, SdxError> {
        self.fast_update_with_faults(rs, vnh, prefix, &mut FaultPlan::disabled())
    }

    /// [`fast_update`](Self::fast_update) with a fault-injection plan
    /// threaded through each VNH allocation.
    pub fn fast_update_with_faults(
        &mut self,
        rs: &RouteServer,
        vnh: &mut VnhAllocator,
        prefix: Prefix,
        faults: &mut FaultPlan,
    ) -> Result<DeltaResult, SdxError> {
        let t0 = Instant::now();
        let mut out = DeltaResult::default();

        let viewers: Vec<ParticipantId> = self.participants().keys().copied().collect();
        for viewer in viewers {
            // Every viewer needs the re-advertisement — a best-path change
            // must reach policy-less participants' FIBs too. Only the
            // rule recompilation is conditional on having policies.
            let rules = match self.effective_outbound(viewer) {
                Some(outbound) => {
                    // Served from the §4.3.1 memo cache in steady state.
                    let mut scratch = crate::compiler::CompileStats::default();
                    let compiled = self.compile_raw(&outbound, &mut scratch);
                    transform::outbound_fwd_rules(viewer, &compiled)?
                }
                None => Vec::new(),
            };

            // Which of the viewer's rules touch this prefix now?
            let mut member = Vec::new();
            let mut partial = Vec::new();
            for (k, rule) in rules.iter().enumerate() {
                if rule.rewritten_dst().is_some() {
                    // Rewrite (load-balancer) rules are recompiled only by
                    // the background pass; prefix churn does not move them.
                    continue;
                }
                let Some(PortId::Virt(nh)) = rule.target else {
                    continue;
                };
                if !rs.reachable_via(viewer, prefix).contains(&nh) {
                    continue;
                }
                match dst_coverage(&rule.matches, prefix) {
                    Coverage::None => {}
                    Coverage::Full => member.push(k),
                    Coverage::Partial => {
                        member.push(k);
                        partial.push(k);
                    }
                }
            }
            let best = rs.best_for(viewer, prefix);
            if member.is_empty() {
                // The prefix is no longer policy-affected for this viewer:
                // fall back to plain route-server behaviour (real next hop).
                out.vnh_updates.push((viewer, prefix, None));
                continue;
            }

            // Fresh singleton group — no MDS, no ARP invalidation.
            faults.check(InjectionPoint::VnhAlloc)?;
            let (id, addr, vmac) = vnh.try_allocate()?;
            self.telemetry().inc("vnh.alloc.count");
            let group = FecGroup {
                id,
                viewer,
                prefixes: vec![prefix],
                vnh: addr,
                vmac,
                default_next_hop: best.map(|r| r.source.participant),
            };
            out.arp_bindings.push((addr, vmac));
            out.vnh_updates.push((viewer, prefix, Some(addr)));

            // Stage-1 delta: the member policy rules + the default rule,
            // all restricted to the fresh tag.
            let groups = [group.clone()];
            let mut stage1 = Vec::new();
            for &k in &member {
                let Some(target) = rules[k].target else {
                    continue;
                };
                stage1.extend(expand_fwd_rule(
                    &rules[k],
                    target,
                    &groups,
                    |_| true,
                    |_| partial.contains(&k),
                ));
            }
            stage1.extend(transform::default_stage1_rules(&groups));

            // Compose with fresh mini-blocks for exactly the receivers the
            // delta can reach.
            let mut receivers = std::collections::BTreeSet::new();
            for &k in &member {
                if let Some(t) = rules[k].target {
                    receivers.insert(t.participant());
                }
            }
            if let Some(nh) = group.default_next_hop {
                receivers.insert(nh);
            }
            let mut blocks = std::collections::BTreeMap::new();
            for r in receivers {
                let Some(cfg) = self.participant(r).cloned() else {
                    continue;
                };
                let mut scratch = crate::compiler::CompileStats::default();
                let inbound = cfg
                    .inbound
                    .clone()
                    .map(|p| self.compile_raw(&p, &mut scratch));
                let foreign_mac = |owner: ParticipantId, idx: u8| {
                    self.participant(owner).and_then(|c| c.port_mac(idx))
                };
                blocks.insert(
                    r,
                    transform::stage2_block(&cfg, inbound.as_ref(), &[vmac], &foreign_mac)?,
                );
            }
            let composed = transform::compose_optimized(&stage1, &blocks);
            // Skip the synthetic catch-alls: deltas overlay, they must not
            // shadow the base table for unrelated traffic.
            out.rules.extend(
                composed
                    .rules()
                    .iter()
                    .filter(|r| !(r.matches.is_wildcard() && r.is_drop()))
                    .cloned(),
            );
        }

        out.elapsed = t0.elapsed();
        self.telemetry()
            .observe_duration("fastpath.update", out.elapsed);
        Ok(out)
    }

    /// Convenience: run the fast path for a burst of changed prefixes,
    /// returning one merged delta (the Figure 9 experiment's unit).
    pub fn fast_update_burst(
        &mut self,
        rs: &RouteServer,
        vnh: &mut VnhAllocator,
        prefixes: &[Prefix],
    ) -> Result<DeltaResult, SdxError> {
        self.fast_update_burst_with_faults(rs, vnh, prefixes, &mut FaultPlan::disabled())
    }

    /// [`fast_update_burst`](Self::fast_update_burst) with a
    /// fault-injection plan threaded through each VNH allocation.
    pub fn fast_update_burst_with_faults(
        &mut self,
        rs: &RouteServer,
        vnh: &mut VnhAllocator,
        prefixes: &[Prefix],
        faults: &mut FaultPlan,
    ) -> Result<DeltaResult, SdxError> {
        let t0 = Instant::now();
        let mut merged = DeltaResult::default();
        for &p in prefixes {
            let d = self.fast_update_with_faults(rs, vnh, p, faults)?;
            merged.rules.extend(d.rules);
            merged.arp_bindings.extend(d.arp_bindings);
            merged.vnh_updates.extend(d.vnh_updates);
        }
        merged.elapsed = t0.elapsed();
        Ok(merged)
    }
}

/// Builds a classifier from delta rules for overlay installation (no
/// catch-all semantics of its own — the base table provides totality).
pub fn delta_classifier(rules: Vec<Rule>) -> Classifier {
    Classifier::from_rules(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::ParticipantConfig;
    use sdx_bgp::msg::{simple_announce, UpdateMessage};
    use sdx_bgp::route_server::ExportPolicy;
    use sdx_net::{ip, prefix, FieldMatch};
    use sdx_policy::Policy as P;

    fn setup() -> (SdxCompiler, RouteServer, VnhAllocator) {
        let mut compiler = SdxCompiler::new();
        let a = ParticipantConfig::new(1, 65001, 1).with_outbound(
            P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(ParticipantId(2))),
        );
        let b = ParticipantConfig::new(2, 65002, 1);
        let c = ParticipantConfig::new(3, 65003, 1);
        let mut rs = RouteServer::new();
        rs.add_peer(a.route_source(), ExportPolicy::allow_all());
        rs.add_peer(b.route_source(), ExportPolicy::allow_all());
        rs.add_peer(c.route_source(), ExportPolicy::allow_all());
        compiler.upsert_participant(a);
        compiler.upsert_participant(b);
        compiler.upsert_participant(c);
        rs.process_update(
            ParticipantId(2),
            &simple_announce(prefix("10.0.0.0/8"), &[65002, 9], ip("172.16.0.10")),
        );
        rs.process_update(
            ParticipantId(3),
            &simple_announce(prefix("10.0.0.0/8"), &[65003], ip("172.16.0.14")),
        );
        (compiler, rs, VnhAllocator::default())
    }

    #[test]
    fn fast_update_produces_fresh_tag_rules() {
        let (mut compiler, mut rs, mut vnh) = setup();
        // C withdraws its route: A's best for the prefix flips to B.
        rs.process_update(
            ParticipantId(3),
            &UpdateMessage::withdraw([prefix("10.0.0.0/8")]),
        );
        let delta = compiler
            .fast_update(&rs, &mut vnh, prefix("10.0.0.0/8"))
            .unwrap();
        // Viewer A is affected (policy matches p via B); every viewer gets
        // a re-advertisement so no FIB goes stale.
        assert_eq!(delta.arp_bindings.len(), 1);
        assert_eq!(delta.vnh_updates.len(), 3);
        let (viewer, p, nh) = delta.vnh_updates[0];
        assert_eq!(viewer, ParticipantId(1));
        assert_eq!(p, prefix("10.0.0.0/8"));
        assert!(nh.is_some(), "the affected viewer gets a fresh VNH");
        assert!(
            delta.vnh_updates[1..].iter().all(|(_, _, nh)| nh.is_none()),
            "unaffected viewers re-learn the plain next hop"
        );
        assert!(delta.additional_rules() >= 2, "policy rule + default rule");
        // No wildcard catch-all leaks into the overlay.
        assert!(delta
            .rules
            .iter()
            .all(|r| !(r.matches.is_wildcard() && r.is_drop())));
    }

    #[test]
    fn fast_update_unaffected_prefix_reverts_to_plain_rs() {
        let (mut compiler, mut rs, mut vnh) = setup();
        // A prefix B stops exporting entirely: A's policy can't touch it.
        rs.process_update(
            ParticipantId(2),
            &UpdateMessage::withdraw([prefix("10.0.0.0/8")]),
        );
        rs.process_update(
            ParticipantId(3),
            &UpdateMessage::withdraw([prefix("10.0.0.0/8")]),
        );
        let delta = compiler
            .fast_update(&rs, &mut vnh, prefix("10.0.0.0/8"))
            .unwrap();
        assert!(delta.rules.is_empty());
        assert_eq!(
            delta.vnh_updates,
            vec![
                (ParticipantId(1), prefix("10.0.0.0/8"), None),
                (ParticipantId(2), prefix("10.0.0.0/8"), None),
                (ParticipantId(3), prefix("10.0.0.0/8"), None),
            ]
        );
    }

    #[test]
    fn delta_rules_route_through_delivery() {
        let (mut compiler, rs, mut vnh) = setup();
        let delta = compiler
            .fast_update(&rs, &mut vnh, prefix("10.0.0.0/8"))
            .unwrap();
        // Every forwarding delta rule ends at a physical port with a
        // rewritten (non-virtual) destination MAC.
        for r in delta.rules.iter().filter(|r| !r.is_drop()) {
            for a in &r.actions {
                let loc = a.mods.iter().rev().find_map(|m| match m {
                    sdx_net::Mod::SetLoc(p) => Some(*p),
                    _ => None,
                });
                assert!(matches!(loc, Some(PortId::Phys(..))), "rule {r}");
            }
        }
    }

    #[test]
    fn burst_merges_deltas() {
        let (mut compiler, mut rs, mut vnh) = setup();
        rs.process_update(
            ParticipantId(2),
            &simple_announce(prefix("20.0.0.0/8"), &[65002], ip("172.16.0.10")),
        );
        let delta = compiler
            .fast_update_burst(&rs, &mut vnh, &[prefix("10.0.0.0/8"), prefix("20.0.0.0/8")])
            .unwrap();
        assert_eq!(delta.arp_bindings.len(), 2);
        assert!(delta.additional_rules() >= 4);
    }

    #[test]
    fn fast_path_is_fast() {
        let (mut compiler, rs, mut vnh) = setup();
        let delta = compiler
            .fast_update(&rs, &mut vnh, prefix("10.0.0.0/8"))
            .unwrap();
        // The paper's bar is < 1 s; at this scale it must be far below.
        assert!(delta.elapsed < Duration::from_millis(100));
    }
}
