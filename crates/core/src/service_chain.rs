//! Service chaining (§8's envisioned extension): steering a traffic class
//! through a *sequence* of middleboxes before final delivery.
//!
//! A chain is realized purely through the existing policy machinery — no
//! new data-plane mechanism:
//!
//! * the **consumer** participant's inbound policy diverts the traffic
//!   class to the first middlebox port instead of its own router;
//! * each **middlebox host** gets an outbound clause keyed on the
//!   middlebox's own in-port (re-injected traffic) steering to the next
//!   hop's port;
//! * the **last hop** steers straight to the consumer's physical port —
//!   bypassing the consumer's inbound policy, which would otherwise
//!   re-divert the traffic into the chain forever.
//!
//! Forward progress is by construction: every synthesized clause matches
//! a distinct in-port and sends strictly down the chain.

use sdx_net::{FieldMatch, ParticipantId, PortId};
use sdx_policy::{Policy, Pred};

use crate::controller::SdxController;

/// A service chain description.
#[derive(Clone, Debug)]
pub struct ServiceChain {
    /// The traffic class to steer (e.g. `srcip ∈ YouTubePrefixes`).
    pub traffic: Pred,
    /// The participant whose incoming traffic is chained.
    pub consumer: ParticipantId,
    /// Middlebox ports, in traversal order. Must be physical ports and
    /// must not include any of the consumer's own ports.
    pub hops: Vec<PortId>,
}

/// Errors from chain installation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChainError {
    /// A hop is a virtual port or repeats.
    BadHop(PortId),
    /// The chain is empty.
    Empty,
    /// The consumer is unknown to the controller.
    UnknownConsumer(ParticipantId),
}

impl core::fmt::Display for ChainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChainError::BadHop(p) => write!(f, "invalid chain hop {p}"),
            ChainError::Empty => write!(f, "empty service chain"),
            ChainError::UnknownConsumer(p) => write!(f, "unknown consumer {p}"),
        }
    }
}

impl std::error::Error for ChainError {}

impl ServiceChain {
    /// Validates the chain against a controller's participant book.
    pub fn validate(&self, ctl: &SdxController) -> Result<(), ChainError> {
        if self.hops.is_empty() {
            return Err(ChainError::Empty);
        }
        let Some(_) = ctl.compiler.participant(self.consumer) else {
            return Err(ChainError::UnknownConsumer(self.consumer));
        };
        let mut seen = std::collections::BTreeSet::new();
        for &h in &self.hops {
            let ok = matches!(h, PortId::Phys(owner, _)
                if owner != self.consumer && seen.insert(h) && ctl.compiler.participant(owner).is_some());
            if !ok {
                return Err(ChainError::BadHop(h));
            }
        }
        Ok(())
    }

    /// Synthesizes and installs the chain's policies on the controller
    /// (the caller re-optimizes afterwards, as for any policy change).
    pub fn install(&self, ctl: &mut SdxController) -> Result<(), ChainError> {
        self.validate(ctl)?;
        let consumer_cfg = ctl
            .compiler
            .participant(self.consumer)
            .expect("validated")
            .clone();
        let final_port = PortId::Phys(self.consumer, consumer_cfg.primary_port().index);

        // Consumer inbound: divert the class to hop 0.
        let divert = Policy::filter(self.traffic.clone()) >> Policy::fwd(self.hops[0]);
        let merged = match consumer_cfg.inbound.clone() {
            Some(p) => divert + p, // the chain takes precedence
            None => divert,
        };
        ctl.set_inbound(self.consumer, Some(merged));

        // Per-hop outbound steering: from hop i's port to hop i+1 (or the
        // consumer's port after the last hop).
        for (i, &hop) in self.hops.iter().enumerate() {
            let next = self.hops.get(i + 1).copied().unwrap_or(final_port);
            let clause = Policy::filter(Pred::Test(FieldMatch::InPort(hop)) & self.traffic.clone())
                >> Policy::fwd(next);
            let owner = hop.participant();
            let existing = ctl
                .compiler
                .participant(owner)
                .and_then(|c| c.outbound.clone());
            let merged = match existing {
                Some(p) => clause + p,
                None => clause,
            };
            ctl.set_outbound(owner, Some(merged));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::ParticipantConfig;
    use sdx_bgp::route_server::ExportPolicy;
    use sdx_net::{ip, prefix, Packet};
    use sdx_openflow::middlebox::{run_through_chain, Middlebox};

    fn pid(n: u32) -> ParticipantId {
        ParticipantId(n)
    }

    /// A: consumer (announces its eyeball prefix). B: transit sending the
    /// traffic. E and F: middlebox hosts.
    fn chain_setup() -> (SdxController, Vec<Middlebox>) {
        let mut ctl = SdxController::new();
        let a = ParticipantConfig::new(1, 65001, 1);
        let b = ParticipantConfig::new(2, 65002, 1);
        let e = ParticipantConfig::new(5, 65005, 1);
        let f = ParticipantConfig::new(6, 65006, 1);
        ctl.add_participant(a.clone(), ExportPolicy::allow_all());
        ctl.add_participant(b, ExportPolicy::allow_all());
        ctl.add_participant(e, ExportPolicy::allow_all());
        ctl.add_participant(f, ExportPolicy::allow_all());
        ctl.rs
            .process_update(pid(1), &a.announce([prefix("99.0.0.0/8")], &[65001]));
        let mboxes = vec![
            Middlebox::passthrough(PortId::Phys(pid(5), 1), "scrubber"),
            Middlebox::passthrough(PortId::Phys(pid(6), 1), "transcoder"),
        ];
        (ctl, mboxes)
    }

    #[test]
    fn two_hop_chain_traverses_in_order() {
        let (mut ctl, mut mboxes) = chain_setup();
        let chain = ServiceChain {
            traffic: Pred::Test(FieldMatch::NwSrc(prefix("208.65.152.0/22"))),
            consumer: pid(1),
            hops: vec![PortId::Phys(pid(5), 1), PortId::Phys(pid(6), 1)],
        };
        chain.install(&mut ctl).expect("installs");
        let mut fabric = ctl.deploy().expect("deploy");

        let out = run_through_chain(
            &mut fabric,
            &mut mboxes,
            PortId::Phys(pid(2), 1),
            Packet::udp(ip("208.65.153.9"), ip("99.0.0.1"), 1935, 40_000),
            8,
        )
        .expect("chain terminates");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(1), 1), "delivered to consumer");
        assert_eq!(mboxes[0].processed, 1, "scrubber saw the flow");
        assert_eq!(mboxes[1].processed, 1, "transcoder saw the flow");
    }

    #[test]
    fn non_matching_traffic_skips_the_chain() {
        let (mut ctl, mut mboxes) = chain_setup();
        let chain = ServiceChain {
            traffic: Pred::Test(FieldMatch::NwSrc(prefix("208.65.152.0/22"))),
            consumer: pid(1),
            hops: vec![PortId::Phys(pid(5), 1), PortId::Phys(pid(6), 1)],
        };
        chain.install(&mut ctl).expect("installs");
        let mut fabric = ctl.deploy().expect("deploy");
        let out = run_through_chain(
            &mut fabric,
            &mut mboxes,
            PortId::Phys(pid(2), 1),
            Packet::udp(ip("151.101.1.1"), ip("99.0.0.1"), 443, 40_000),
            8,
        )
        .expect("terminates");
        assert_eq!(out[0].loc, PortId::Phys(pid(1), 1));
        assert_eq!(mboxes[0].processed, 0);
        assert_eq!(mboxes[1].processed, 0);
    }

    #[test]
    fn validation_rejects_bad_chains() {
        let (ctl, _) = chain_setup();
        let base = ServiceChain {
            traffic: Pred::Any,
            consumer: pid(1),
            hops: vec![],
        };
        assert_eq!(base.validate(&ctl), Err(ChainError::Empty));
        let own_port = ServiceChain {
            hops: vec![PortId::Phys(pid(1), 1)],
            ..base.clone()
        };
        assert!(matches!(
            own_port.validate(&ctl),
            Err(ChainError::BadHop(_))
        ));
        let repeated = ServiceChain {
            hops: vec![PortId::Phys(pid(5), 1), PortId::Phys(pid(5), 1)],
            ..base.clone()
        };
        assert!(matches!(
            repeated.validate(&ctl),
            Err(ChainError::BadHop(_))
        ));
        let virt = ServiceChain {
            hops: vec![PortId::Virt(pid(5))],
            ..base.clone()
        };
        assert!(matches!(virt.validate(&ctl), Err(ChainError::BadHop(_))));
        let unknown = ServiceChain {
            consumer: pid(42),
            hops: vec![PortId::Phys(pid(5), 1)],
            ..base
        };
        assert_eq!(
            unknown.validate(&ctl),
            Err(ChainError::UnknownConsumer(pid(42)))
        );
    }
}
