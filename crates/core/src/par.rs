//! Minimal scoped-thread fan-out for the compile pipeline.
//!
//! The workspace is deliberately dependency-free (no rayon), so parallel
//! pipeline phases are built on [`std::thread::scope`]: a shared atomic
//! cursor hands work items to a fixed pool of scoped workers, each worker
//! collects `(index, result)` pairs, and the results are re-assembled in
//! item order. Ordering is therefore *deterministic regardless of thread
//! scheduling* — the property the compiler's byte-identical-output
//! guarantee rests on (see DESIGN.md §11).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning the results in item order.
///
/// With `threads <= 1` (or fewer than two items) this degrades to a plain
/// serial map on the calling thread — the `Parallelism::Serial` ablation
/// path runs exactly this, with no thread machinery in the way.
///
/// # Panics
/// Propagates a panic from `f` (the worker's panic aborts the map).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("compile worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = parallel_map(1, &items, |i, &x| (i as u64) * 1000 + x * x);
        let parallel = parallel_map(8, &items, |i, &x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[3], 3 * 1000 + 9);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u8, 2, 3];
        assert_eq!(parallel_map(64, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }
}
