//! Sharded full-table compilation (ROADMAP item 1).
//!
//! A whole-world [`compile_all`](crate::compiler::SdxCompiler::compile_all)
//! tops out around 200 participants / 24k prefixes; a real large IXP
//! (AMS-IX in the paper's Table 1) has ~600 peers and a near-full Internet
//! table. This module partitions the prefix space into contiguous ranges —
//! a [`ShardPlan`] — so the expensive per-viewer phase (BGP joins, affected
//! sets, decision resolution) runs **per (shard, viewer) unit** over only
//! its slice of the Loc-RIB, with a range-partitioned
//! [`VnhAllocator`](crate::vnh::VnhAllocator) giving each shard a disjoint
//! id sub-range.
//!
//! ## Equivalence by construction
//!
//! The design invariant that makes sharding *provable* rather than merely
//! plausible: the FEC signature of a prefix (`(rule membership, partial
//! marks, best next hop)`) is computed **per prefix** — it never looks at
//! any other prefix. So restricting a compile unit to a contiguous prefix
//! range and then unioning the per-shard signature maps reproduces the
//! unsharded signature map *exactly*, and the global
//! [`partition_by_signature`](crate::fec::partition_by_signature) over the
//! merged map yields the identical FEC partition, group for group. The
//! merge step — plus the global partition, the per-viewer best-route
//! defaults it carries, and the shared VMAC tag space — *is* the bounded
//! cross-shard coordination the ROADMAP calls for; wide-match policies
//! that straddle ranges need no special casing because every shard joins
//! the same rules against its own slice.
//!
//! The one observable difference is **id numbering**: a sharded compile
//! draws each group's `(FecId, VNH, VMAC)` from its owner shard's
//! sub-range, so ids differ from the unsharded run's sequential order
//! while the induced forwarding function is the same.
//! [`canonicalize_report`] quotients that away — it relabels any report's
//! ids into a canonical enumeration order so equivalence suites can assert
//! *byte equality* between sharded and unsharded output (see
//! `tests/shard_props.rs`), and the differential oracle checks the
//! uncanonicalized artifacts end-to-end (`tests/shard_oracle.rs`).
//!
//! ## Incremental recompilation
//!
//! The payoff beyond the one-shot compile: the compiler caches each
//! `(shard, viewer)` unit's signature slice and recomputes only units
//! whose shard contains a dirty prefix (tracked by the route server's
//! compile-dirty set). A BGP burst that touches one /8 recompiles one
//! shard's units; an idle reoptimize recomputes **zero**
//! (`compile.shard.skipped.count` equals the shard count). This is where
//! the AMS-IX replay bench (`repro_shard_scaling`) gets its speedup — the
//! phase-A join dominates compile time, and churn is spatially local.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sdx_net::{Ipv4Addr, MacAddr, ParticipantId, Prefix};
use sdx_openflow::flowmod::{FlowMod, FlowModBatch};
use sdx_policy::classifier::{Classifier, Rule};

use crate::compiler::CompileReport;
use crate::fec::{FecGroup, FecId};

/// Upper bound on the shard count — far above any useful fan-out, but
/// keeps a typo'd `Shards(1 << 30)` from allocating absurd plans.
pub const MAX_SHARDS: usize = 4096;

/// How [`compile_all`](crate::compiler::SdxCompiler::compile_all)
/// partitions the prefix space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Sharding {
    /// The whole-world pipeline, unchanged (the equivalence baseline).
    #[default]
    Off,
    /// Exactly `n` contiguous prefix-range shards (rounded up to a power
    /// of two, clamped to `[1, MAX_SHARDS]`).
    Shards(usize),
    /// Follow the VNH allocator's existing partition count when it is
    /// already partitioned (so compile-side sharding and id sub-ranges
    /// can never disagree), else 8.
    Auto,
}

impl Sharding {
    /// The resolved shard count: `None` means run unsharded.
    /// `vnh_partitions` is the allocator's current partition count.
    pub fn resolve(self, vnh_partitions: usize) -> Option<usize> {
        match self {
            Sharding::Off => None,
            Sharding::Shards(n) => Some(clamp_shards(n)),
            Sharding::Auto => Some(clamp_shards(if vnh_partitions > 1 {
                vnh_partitions
            } else {
                8
            })),
        }
    }
}

fn clamp_shards(n: usize) -> usize {
    n.clamp(1, MAX_SHARDS).next_power_of_two()
}

/// A partition of the IPv4 prefix space into contiguous address ranges.
///
/// Shard `i` covers network addresses in `[starts[i], starts[i+1])` (the
/// last shard runs to the top of the address space). A prefix belongs to
/// the shard containing its **network address** — prefixes are never
/// split, so every compile unit sees whole Loc-RIB entries and the union
/// over shards is exactly the full table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// First covered address per shard; `starts[0] == 0`, strictly
    /// increasing.
    starts: Vec<u32>,
}

impl ShardPlan {
    /// `n` equal-width address ranges (`n` clamped to a power of two).
    /// Address-uniform, not load-uniform — prefer [`balanced`](Self::balanced)
    /// when the announced table is known.
    pub fn uniform(n: usize) -> ShardPlan {
        let n = clamp_shards(n);
        let starts = (0..n)
            .map(|i| ((i as u64) << 32 >> n.trailing_zeros()) as u32)
            .collect();
        ShardPlan { starts }
    }

    /// `n` ranges with boundaries at the quantiles of the *announced*
    /// prefix distribution, so each shard holds a comparable slice of the
    /// actual table (real tables cluster: a plan uniform in address space
    /// would leave most shards empty). Boundaries the table cannot supply
    /// (fewer distinct addresses than shards) are filled by bisecting the
    /// widest remaining range. Degenerates to [`uniform`](Self::uniform)
    /// on an empty table.
    pub fn balanced(n: usize, prefixes: impl IntoIterator<Item = Prefix>) -> ShardPlan {
        let n = clamp_shards(n);
        let mut addrs: Vec<u32> = prefixes.into_iter().map(|p| p.addr().0).collect();
        addrs.sort_unstable();
        addrs.dedup();
        if addrs.is_empty() {
            return ShardPlan::uniform(n);
        }
        let mut starts: BTreeSet<u32> = [0].into();
        for i in 1..n {
            starts.insert(addrs[i * addrs.len() / n]);
        }
        // Quantiles can collide (heavy clustering); top the plan back up
        // to n ranges by bisecting the widest range until no range can be
        // split further.
        while starts.len() < n {
            let v: Vec<u32> = starts.iter().copied().collect();
            let (mut at, mut width) = (0u32, 0u64);
            for (i, &s) in v.iter().enumerate() {
                let end = v.get(i + 1).map_or(1u64 << 32, |&e| u64::from(e));
                let w = end - u64::from(s);
                if w > width {
                    width = w;
                    at = s;
                }
            }
            if width < 2 || !starts.insert(at + (width / 2) as u32) {
                break;
            }
        }
        ShardPlan {
            starts: starts.into_iter().collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Always false — a plan has at least one shard.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard whose range contains address `a`.
    pub fn shard_of_addr(&self, a: Ipv4Addr) -> usize {
        self.starts.partition_point(|&s| s <= a.0) - 1
    }

    /// The shard owning prefix `p` (by its network address).
    pub fn shard_of(&self, p: Prefix) -> usize {
        self.shard_of_addr(p.addr())
    }

    /// Shard `i`'s range as `[lo, hi)`; `hi == None` means "to the top of
    /// the address space". Compile units pass these straight to the route
    /// server's bounded join.
    pub fn range(&self, i: usize) -> (Ipv4Addr, Option<Ipv4Addr>) {
        (
            Ipv4Addr(self.starts[i]),
            self.starts.get(i + 1).map(|&s| Ipv4Addr(s)),
        )
    }

    /// The boundary addresses between consecutive shards (`starts[1..]`) —
    /// the places where cross-shard coordination could plausibly go wrong,
    /// and exactly where the oracle fuzz suite aims its probes.
    pub fn boundaries(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.starts[1..].iter().map(|&s| Ipv4Addr(s))
    }
}

/// One cached `(shard, viewer)` compile unit: the signature slice and
/// batched decisions for the viewer restricted to the shard's range.
/// Merging the per-shard `sig`/`best_nh` maps (disjoint key ranges)
/// reproduces the viewer's unsharded phase-A output exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct ShardUnit {
    /// prefix → (rule memberships, partial-coverage marks), restricted to
    /// the shard's range. Rule indices are per-viewer positions, stable
    /// while the viewer's outbound rule list is (the policy-delta
    /// invalidation pass compares cached rule lists to decide exactly
    /// which units a rule-list change can perturb).
    pub(crate) sig: BTreeMap<Prefix, (BTreeSet<usize>, BTreeSet<usize>)>,
    /// prefix → viewer's best-route next hop, same restriction.
    pub(crate) best_nh: BTreeMap<Prefix, Option<ParticipantId>>,
}

/// The compiler's incremental shard cache: the stable plan plus every
/// clean `(shard, viewer)` unit from the previous compile, fingerprinted
/// by everything phase A reads (route-server identity, sabotage knob, the
/// *structural* policy-book epoch). Any fingerprint mismatch throws the
/// whole cache away. Within a valid cache, two partial-invalidation axes
/// compose: BGP churn invalidates by dirty shard (the route server's
/// compile-dirty set is authoritative), and policy churn invalidates
/// per `(participant, shard)` by diffing the viewer's cached outbound
/// rule list against the fresh one (see
/// `SdxCompiler::compile_fecs_sharded`).
#[derive(Debug)]
pub(crate) struct ShardCache {
    pub(crate) plan: ShardPlan,
    /// Policy version counters the units were built under: the book epoch
    /// gates the whole cache; per-participant outbound versions gate each
    /// viewer's units.
    pub(crate) versions: sdx_policy::PolicyVersions,
    /// Each viewer's outbound forwarding-rule list as compiled last time —
    /// the ground truth the policy-delta invalidation diffs against
    /// (signature rule indices are positions in this list).
    pub(crate) rules: HashMap<ParticipantId, Vec<crate::transform::FwdRule>>,
    /// Identity of the route server instance the units were built from
    /// (fresh per instance and per clone — see `RouteServer::compile_id`).
    pub(crate) rs_id: u64,
    /// The consistency-sabotage ablation changes what phase A joins on.
    pub(crate) break_consistency: bool,
    /// The merged FECs depend on whether grouping is enabled.
    pub(crate) fec_grouping: bool,
    pub(crate) units: HashMap<(usize, ParticipantId), ShardUnit>,
    /// Per-viewer merged phase-A output from the previous compile, valid
    /// while every one of the viewer's units is unchanged: recomputing a
    /// dirty shard's unit and getting an identical slice back (churn that
    /// cancels, or dirt in prefixes the viewer never sees) skips the
    /// viewer's merge + re-partition entirely.
    pub(crate) merged: HashMap<ParticipantId, MergedFecs>,
}

/// A viewer's merged phase-A result: FEC member lists, their memberships,
/// and their default next hops, in partition order.
pub(crate) type MergedFecs = (
    Vec<Vec<Prefix>>,
    Vec<(BTreeSet<usize>, BTreeSet<usize>)>,
    Vec<Option<ParticipantId>>,
);

/// Relabels a report's `(FecId, VNH, VMAC)` identities into canonical
/// enumeration order — groups numbered from 1 in `(viewer, position)`
/// order — leaving everything else untouched. Two reports that induce the
/// same forwarding function but drew ids differently (sharded sub-range
/// draws, keyed reuse from an older allocator) canonicalize to **equal**
/// reports, so equivalence tests get to use plain `assert_eq!` instead of
/// a bespoke bisimulation. Stats are copied verbatim (they carry
/// wall-clock and are excluded from comparisons anyway).
///
/// The relabeling is injective (old id → canonical id is a bijection on
/// the ids the report uses), so rule structure — shadowing, composition,
/// priority order — is preserved isomorphically; only MAC bytes and VNH
/// addresses in the artifacts change.
pub fn canonicalize_report(report: &CompileReport, pool: Prefix) -> CompileReport {
    let mut vnh_map: HashMap<Ipv4Addr, Ipv4Addr> = HashMap::new();
    let mut vmac_map: HashMap<MacAddr, MacAddr> = HashMap::new();
    let mut id_map: HashMap<FecId, FecId> = HashMap::new();
    let mut next: u32 = 1;
    for vgroups in report.groups.values() {
        for g in vgroups {
            id_map.insert(g.id, FecId(next));
            vnh_map.insert(g.vnh, pool.addr().saturating_add(next));
            vmac_map.insert(g.vmac, MacAddr::vmac(next));
            next += 1;
        }
    }
    let relabel_group = |g: &FecGroup| FecGroup {
        id: id_map[&g.id],
        viewer: g.viewer,
        prefixes: g.prefixes.clone(),
        vnh: vnh_map[&g.vnh],
        vmac: vmac_map[&g.vmac],
        default_next_hop: g.default_next_hop,
    };
    let groups = report
        .groups
        .iter()
        .map(|(&v, gs)| (v, gs.iter().map(relabel_group).collect()))
        .collect();
    let arp_bindings = report
        .arp_bindings
        .iter()
        .map(|&(a, m)| (vnh_map[&a], vmac_map[&m]))
        .collect();
    let vnh_of = report
        .vnh_of
        .iter()
        .map(|(&k, &v)| (k, vnh_map[&v]))
        .collect();
    let rules: Vec<Rule> = report
        .classifier
        .rules()
        .iter()
        .map(|r| relabel_rule(r, &vmac_map))
        .collect();
    CompileReport {
        // Composed classifiers are total (they end in a wildcard rule), so
        // `from_rules` preserves the rule list byte-for-byte.
        classifier: Classifier::from_rules(rules),
        groups,
        arp_bindings,
        vnh_of,
        stats: report.stats,
    }
}

fn relabel_rule(r: &Rule, vmac_map: &HashMap<MacAddr, MacAddr>) -> Rule {
    let mut out = r.clone();
    if let Some(m) = out.matches.dl_dst {
        if let Some(&canon) = vmac_map.get(&m) {
            out.matches.dl_dst = Some(canon);
        }
    }
    if let Some(m) = out.matches.dl_src {
        if let Some(&canon) = vmac_map.get(&m) {
            out.matches.dl_src = Some(canon);
        }
    }
    for action in &mut out.actions {
        for m in &mut action.mods {
            match m {
                sdx_net::Mod::SetDlDst(mac) | sdx_net::Mod::SetDlSrc(mac) => {
                    if let Some(&canon) = vmac_map.get(mac) {
                        *mac = canon;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Attributes a reconcile batch's flow-mods to the shards that produced
/// them, for `reconcile.shard.*` telemetry: a mod whose pattern carries a
/// VMAC is charged to the shard owning that group's first prefix; else a
/// `nw_dst` pattern is charged by address; mods with neither (wildcards,
/// MAC-learning defaults) land in the trailing *global* bucket. Returns
/// `plan.len() + 1` counts.
pub fn mods_by_shard(plan: &ShardPlan, report: &CompileReport, batch: &FlowModBatch) -> Vec<usize> {
    let mut shard_of_vmac: HashMap<MacAddr, usize> = HashMap::new();
    for g in report.groups.values().flatten() {
        if let Some(&p) = g.prefixes.first() {
            shard_of_vmac.insert(g.vmac, plan.shard_of(p));
        }
    }
    let mut counts = vec![0usize; plan.len() + 1];
    for m in &batch.mods {
        let pattern = match m {
            FlowMod::Add(entry) => &entry.pattern,
            FlowMod::Modify { pattern, .. } | FlowMod::Delete { pattern, .. } => pattern,
        };
        let shard = pattern
            .dl_dst
            .and_then(|mac| shard_of_vmac.get(&mac).copied())
            .or_else(|| pattern.nw_dst.map(|p| plan.shard_of(p)))
            .unwrap_or(plan.len());
        counts[shard] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, prefix};

    #[test]
    fn resolve_rounds_and_clamps() {
        assert_eq!(Sharding::Off.resolve(1), None);
        assert_eq!(Sharding::Shards(3).resolve(1), Some(4));
        assert_eq!(Sharding::Shards(8).resolve(1), Some(8));
        assert_eq!(Sharding::Shards(0).resolve(1), Some(1));
        assert_eq!(Sharding::Shards(usize::MAX).resolve(1), Some(MAX_SHARDS));
        assert_eq!(Sharding::Auto.resolve(1), Some(8));
        assert_eq!(Sharding::Auto.resolve(4), Some(4));
        assert_eq!(Sharding::default(), Sharding::Off);
    }

    #[test]
    fn uniform_plan_covers_the_space() {
        let plan = ShardPlan::uniform(4);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.shard_of_addr(ip("0.0.0.1")), 0);
        assert_eq!(plan.shard_of_addr(ip("63.255.255.255")), 0);
        assert_eq!(plan.shard_of_addr(ip("64.0.0.0")), 1);
        assert_eq!(plan.shard_of_addr(ip("128.0.0.0")), 2);
        assert_eq!(plan.shard_of_addr(ip("255.255.255.255")), 3);
        assert_eq!(plan.range(0), (Ipv4Addr(0), Some(ip("64.0.0.0"))));
        assert_eq!(plan.range(3), (ip("192.0.0.0"), None));
        assert_eq!(plan.boundaries().count(), 3);
        // Prefixes route by network address, never split.
        assert_eq!(plan.shard_of(prefix("63.0.0.0/8")), 0);
    }

    #[test]
    fn balanced_plan_tracks_the_table() {
        // A table clustered entirely in 100/8 (the ixp synthetic universe):
        // a uniform plan would put everything in one shard; balanced splits
        // the cluster.
        let table: Vec<Prefix> = (0..64)
            .map(|i| Prefix::new(Ipv4Addr::new(100, i, 0, 0), 24))
            .collect();
        let plan = ShardPlan::balanced(4, table.iter().copied());
        assert_eq!(plan.len(), 4);
        let mut per_shard = vec![0usize; 4];
        for &p in &table {
            per_shard[plan.shard_of(p)] += 1;
        }
        assert!(
            per_shard.iter().all(|&c| c >= 8),
            "no shard is starved: {per_shard:?}"
        );
        // Degenerate inputs still produce full plans.
        assert_eq!(ShardPlan::balanced(4, []), ShardPlan::uniform(4));
        let tiny = ShardPlan::balanced(8, [prefix("10.0.0.0/8")]);
        assert_eq!(tiny.len(), 8, "bisection tops up missing boundaries");
    }

    #[test]
    fn every_address_has_exactly_one_shard() {
        for plan in [
            ShardPlan::uniform(1),
            ShardPlan::uniform(8),
            ShardPlan::balanced(
                4,
                (0..10).map(|i| Prefix::new(Ipv4Addr::new(10 * i, 0, 0, 0), 8)),
            ),
        ] {
            let mut prev_end = Some(Ipv4Addr(0));
            for i in 0..plan.len() {
                let (lo, hi) = plan.range(i);
                assert_eq!(Some(lo), prev_end, "ranges tile with no gap");
                assert_eq!(plan.shard_of_addr(lo), i);
                prev_end = hi;
            }
            assert_eq!(prev_end, None, "last range is open-ended");
        }
    }
}
