//! Transactional fabric commits.
//!
//! Every controller-driven mutation of the data plane — a fast-path delta
//! in [`process_update`](crate::controller::SdxController::process_update)
//! or a full swap in
//! [`reoptimize`](crate::controller::SdxController::reoptimize) — is
//! staged as a [`FabricTxn`]: the complete last-known-good state (fabric
//! image plus the controller's allocator and synchronization bookkeeping)
//! is captured first, the compiled result is validated against the
//! invariants below, and only then is the fabric mutated. Any failure at
//! any step rolls everything back, so an observer of the data plane sees
//! either the old state or the new state, never a torn mixture.
//!
//! Validation invariants (violations indicate a compiler bug, and must
//! never reach the switch):
//!
//! * every non-drop rule delivers to a **physical** port — a virtual
//!   location in an installed rule blackholes traffic;
//! * every advertised VNH has an ARP binding, so border routers can always
//!   resolve the next hops we hand them;
//! * every ARP binding resolves to a well-formed VMAC carrying its FEC id.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use sdx_bgp::rib::AdjRibOut;
use sdx_net::{Ipv4Addr, ParticipantId, PortId, Prefix};
use sdx_openflow::fabric::{Fabric, FabricSnapshot};
use sdx_policy::classifier::Rule;

use crate::compiler::CompileReport;
use crate::controller::SdxController;
use crate::error::SdxError;
use crate::fec::FecId;
use crate::incremental::DeltaResult;
use crate::vnh::VnhAllocator;

/// A staged commit: the complete pre-transaction state of the fabric and
/// the controller's fabric-facing bookkeeping.
///
/// Dropping a `FabricTxn` without calling
/// [`rollback`](FabricTxn::rollback) commits implicitly — the snapshot is
/// simply discarded.
#[derive(Clone, Debug)]
pub struct FabricTxn {
    fabric: FabricSnapshot,
    vnh: VnhAllocator,
    report: Option<CompileReport>,
    delta_layers: u32,
    next_delta_priority: u32,
    live_delta_ids: Vec<FecId>,
    pending_fib: Vec<(ParticipantId, Prefix, Option<Ipv4Addr>)>,
    rib_out: BTreeMap<ParticipantId, AdjRibOut>,
}

impl FabricTxn {
    /// Captures the last-known-good state of `ctl` and `fabric`.
    pub fn begin(ctl: &SdxController, fabric: &Fabric) -> Self {
        FabricTxn {
            fabric: fabric.snapshot(),
            vnh: ctl.vnh.clone(),
            report: ctl.report.clone(),
            delta_layers: ctl.delta_layers,
            next_delta_priority: ctl.next_delta_priority,
            live_delta_ids: ctl.live_delta_ids.clone(),
            pending_fib: ctl.pending_fib.clone(),
            rib_out: ctl.rib_out.clone(),
        }
    }

    /// The fabric image captured at [`begin`](FabricTxn::begin).
    pub fn fabric_image(&self) -> &Fabric {
        self.fabric.view()
    }

    /// Restores `ctl` and `fabric` to the captured state, discarding every
    /// change made inside the transaction.
    pub fn rollback(self, ctl: &mut SdxController, fabric: &mut Fabric) {
        fabric.restore(self.fabric);
        ctl.vnh = self.vnh;
        ctl.report = self.report;
        ctl.delta_layers = self.delta_layers;
        ctl.next_delta_priority = self.next_delta_priority;
        ctl.live_delta_ids = self.live_delta_ids;
        ctl.pending_fib = self.pending_fib;
        ctl.rib_out = self.rib_out;
    }
}

/// A staged fast-path commit: captures only the state the two-stage fast
/// path can mutate before its last fallible point, so beginning and
/// rolling back cost O(delta), not O(exchange).
///
/// The fast path appends overlay rules at fresh, monotonically increasing
/// priorities and defers every RIB-out / FIB / ARP write until after its
/// last fallible point, so the undo is exact: drop the appended table
/// entries and restore the small allocator/bookkeeping fields. The full
/// [`FabricTxn`] snapshot remains the right tool for the slow path, whose
/// whole-table swap really can touch everything.
#[derive(Clone, Debug)]
pub struct DeltaTxn {
    vnh: VnhAllocator,
    delta_layers: u32,
    next_delta_priority: u32,
    live_delta_ids_len: usize,
    pending_fib: Vec<(ParticipantId, Prefix, Option<Ipv4Addr>)>,
}

impl DeltaTxn {
    /// Captures the fast-path-mutable state of `ctl`.
    pub fn begin(ctl: &SdxController) -> Self {
        DeltaTxn {
            vnh: ctl.vnh.clone(),
            delta_layers: ctl.delta_layers,
            next_delta_priority: ctl.next_delta_priority,
            live_delta_ids_len: ctl.live_delta_ids.len(),
            pending_fib: ctl.pending_fib.clone(),
        }
    }

    /// Discards every change the fast path made inside the transaction:
    /// overlay rules staged at priorities at or above the captured
    /// watermark are removed (they are exactly this transaction's
    /// installs), and the allocator and bookkeeping are restored.
    pub fn rollback(self, ctl: &mut SdxController, fabric: &mut Fabric) {
        fabric
            .switch
            .table_mut()
            .remove_at_or_above(self.next_delta_priority);
        ctl.vnh = self.vnh;
        ctl.delta_layers = self.delta_layers;
        ctl.next_delta_priority = self.next_delta_priority;
        ctl.live_delta_ids.truncate(self.live_delta_ids_len);
        ctl.pending_fib = self.pending_fib;
    }
}

/// Validates a rule set destined for the switch: every non-drop action
/// must end at a physical delivery port.
pub fn validate_rules(rules: &[Rule]) -> Result<(), SdxError> {
    for rule in rules {
        if rule.is_drop() {
            continue;
        }
        for action in &rule.actions {
            let last_loc = action.mods.iter().rev().find_map(|m| match m {
                sdx_net::Mod::SetLoc(p) => Some(*p),
                _ => None,
            });
            match last_loc {
                Some(PortId::Phys(..)) => {}
                other => {
                    return Err(SdxError::InvalidCommit(format!(
                        "rule {rule} delivers to {other:?}, not a physical port"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Validates VNH → VMAC bindings: each must resolve to a VMAC (a MAC that
/// carries its FEC id), and every next hop in `advertised` must be bound.
fn validate_bindings<'a>(
    bindings: &[(Ipv4Addr, sdx_net::MacAddr)],
    advertised: impl Iterator<Item = &'a Ipv4Addr>,
) -> Result<(), SdxError> {
    let bound: BTreeSet<Ipv4Addr> = bindings.iter().map(|(a, _)| *a).collect();
    for (addr, mac) in bindings {
        if mac.fec_id().is_none() {
            return Err(SdxError::InvalidCommit(format!(
                "ARP binding {addr} -> {mac} is not a VMAC"
            )));
        }
    }
    for vnh in advertised {
        if !bound.contains(vnh) {
            return Err(SdxError::InvalidCommit(format!(
                "advertised VNH {vnh} has no ARP binding"
            )));
        }
    }
    Ok(())
}

/// Pre-commit validation of a full compilation (rules + ARP + FIB map).
pub fn validate_report(report: &CompileReport) -> Result<(), SdxError> {
    validate_rules(report.classifier.rules())?;
    validate_bindings(&report.arp_bindings, report.vnh_of.values())
}

/// Pre-commit validation of a fast-path delta.
pub fn validate_delta(delta: &DeltaResult) -> Result<(), SdxError> {
    validate_rules(&delta.rules)?;
    validate_bindings(
        &delta.arp_bindings,
        delta
            .vnh_updates
            .iter()
            .filter_map(|(_, _, nh)| nh.as_ref()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::{ip, FieldMatch, HeaderMatch, MacAddr, Mod};
    use sdx_policy::classifier::Action;

    fn phys_rule() -> Rule {
        Rule::unicast(
            HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(1))),
            Action {
                mods: vec![
                    Mod::SetDlDst(MacAddr::physical(9)),
                    Mod::SetLoc(PortId::Phys(ParticipantId(2), 1)),
                ],
            },
        )
    }

    #[test]
    fn physical_delivery_and_drops_pass() {
        let rules = vec![phys_rule(), Rule::drop(HeaderMatch::any())];
        assert!(validate_rules(&rules).is_ok());
    }

    #[test]
    fn virtual_delivery_is_rejected() {
        let rule = Rule::unicast(
            HeaderMatch::any(),
            Action::of(Mod::SetLoc(PortId::Virt(ParticipantId(2)))),
        );
        let err = validate_rules(&[rule]).unwrap_err();
        assert!(matches!(err, SdxError::InvalidCommit(_)));
    }

    #[test]
    fn missing_final_location_is_rejected() {
        let rule = Rule::unicast(
            HeaderMatch::any(),
            Action::of(Mod::SetDlDst(MacAddr::physical(9))),
        );
        assert!(validate_rules(&[rule]).is_err());
    }

    #[test]
    fn delta_with_unbound_vnh_is_rejected() {
        let delta = DeltaResult {
            rules: vec![phys_rule()],
            arp_bindings: vec![],
            vnh_updates: vec![(
                ParticipantId(1),
                sdx_net::prefix("10.0.0.0/8"),
                Some(ip("172.16.128.1")),
            )],
            ..DeltaResult::default()
        };
        assert!(validate_delta(&delta).is_err());
        let ok = DeltaResult {
            rules: vec![phys_rule()],
            arp_bindings: vec![(ip("172.16.128.1"), MacAddr::vmac(1))],
            vnh_updates: vec![(
                ParticipantId(1),
                sdx_net::prefix("10.0.0.0/8"),
                Some(ip("172.16.128.1")),
            )],
            ..DeltaResult::default()
        };
        assert!(validate_delta(&ok).is_ok());
    }

    #[test]
    fn non_vmac_binding_is_rejected() {
        let delta = DeltaResult {
            arp_bindings: vec![(ip("172.16.128.1"), MacAddr::physical(3))],
            ..DeltaResult::default()
        };
        assert!(validate_delta(&delta).is_err());
    }
}
