//! The SDX compilation pipeline (§4.1–§4.3.1).
//!
//! [`SdxCompiler::compile_all`] runs the whole pipeline:
//!
//! 1. compile each participant's raw policies to classifiers (memoized —
//!    "many policy idioms appear more than once");
//! 2. compute per-viewer **affected prefix sets** by joining each outbound
//!    forwarding rule with the BGP routes its target exported to the viewer
//!    (the consistency transformation);
//! 3. run the FEC grouping (signature partition = Minimum Disjoint Subset)
//!    and allocate a `(VNH, VMAC)` per group;
//! 4. rewrite outbound rules to match VMAC tags, attach per-group default
//!    forwarding, add the global MAC-learning defaults, and build each
//!    receiver's stage-2 delivery block;
//! 5. compose stage 1 with stage 2 — per target participant only ("most
//!    policies concern a subset of participants"; "policies are disjoint by
//!    design"), or naively as one quadratic cross product when the
//!    optimization is disabled (the ablation baseline).
//!
//! The output [`CompileReport`] carries everything the controller must
//! install: the switch classifier, the ARP bindings (VNH → VMAC), and the
//! per-(viewer, prefix) VNH map the route server rewrites NEXT_HOP with.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

use sdx_bgp::route_server::RouteServer;
use sdx_net::Mod;
use sdx_net::{Ipv4Addr, MacAddr, ParticipantId, PortId, Prefix};
use sdx_policy::classifier::{Action, Classifier, Rule};
use sdx_policy::{compile as compile_policy, Policy};
use sdx_telemetry::{MetricsSnapshot, Registry, SharedRegistry};

use crate::error::SdxError;
use crate::faults::{FaultPlan, InjectionPoint};
use crate::fec::{partition_by_signature, FecGroup};
use crate::participant::ParticipantConfig;
use crate::transform::{
    self, compose_optimized, dst_coverage, expand_fwd_rule, Coverage, FwdRule, TransformError,
};
use crate::vnh::VnhAllocator;

/// Per FEC group: rule indices whose affected set contains the group,
/// plus the subset that only partially covers it.
type GroupMembership = (BTreeSet<usize>, BTreeSet<usize>);

/// Switches for the §4.3.1 optimizations — all on by default; the ablation
/// benches turn them off one at a time.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Compose each stage-1 rule only with its target's stage-2 block
    /// instead of the full quadratic cross product.
    pub pair_pruning: bool,
    /// Cache compiled raw participant policies across pipeline runs.
    pub memoize: bool,
    /// Group prefixes into FECs; when off, every affected prefix becomes
    /// its own group (the data-plane-state ablation).
    pub fec_grouping: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            pair_pruning: true,
            memoize: true,
            fec_grouping: true,
        }
    }
}

/// Timing and size accounting for one pipeline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileStats {
    /// Wall-clock for the whole pipeline.
    pub total: Duration,
    /// Time spent computing affected sets + FEC groups + VNH assignment
    /// (the paper reports this separately; it dominates at scale).
    pub vnh_time: Duration,
    /// Time spent in classifier composition.
    pub compose_time: Duration,
    /// Total switch rules produced.
    pub rule_count: usize,
    /// Non-drop rules (the Figure 7 metric).
    pub forwarding_rules: usize,
    /// FEC groups across all viewers (the Figure 6 metric, controller
    /// variant).
    pub group_count: usize,
    /// Raw-policy compilations served from the memo cache.
    pub memo_hits: usize,
}

/// Everything one pipeline run produced.
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// The classifier to install on the fabric switch.
    pub classifier: Classifier,
    /// Per-viewer FEC groups.
    pub groups: BTreeMap<ParticipantId, Vec<FecGroup>>,
    /// ARP bindings the responder must serve: VNH address → VMAC.
    pub arp_bindings: Vec<(Ipv4Addr, MacAddr)>,
    /// NEXT_HOP rewrites for the route server: (viewer, prefix) → VNH.
    /// Prefixes absent from this map are re-advertised unchanged.
    pub vnh_of: BTreeMap<(ParticipantId, Prefix), Ipv4Addr>,
    /// Accounting.
    pub stats: CompileStats,
}

impl CompileReport {
    /// This run's accounting as a [`MetricsSnapshot`], keyed with the
    /// workspace metric naming convention (timers in nanoseconds). The
    /// snapshot is *derived* from [`CompileStats`] — both views come from
    /// the same measurements, so they cannot disagree.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let r = Registry::new();
        r.observe_duration("compile.total", self.stats.total);
        r.observe_duration("compile.fec", self.stats.vnh_time);
        r.observe_duration("compile.compose", self.stats.compose_time);
        r.add("compile.rules.count", self.stats.rule_count as u64);
        r.add(
            "compile.forwarding_rules.count",
            self.stats.forwarding_rules as u64,
        );
        r.add("compile.groups.count", self.stats.group_count as u64);
        r.add("compile.memo_hits.count", self.stats.memo_hits as u64);
        r.snapshot()
    }
}

/// The pipeline driver. Holds the participant book and the memo cache;
/// route state comes in per call so the compiler can be re-run as BGP
/// changes.
#[derive(Debug, Default)]
pub struct SdxCompiler {
    participants: BTreeMap<ParticipantId, ParticipantConfig>,
    memo: HashMap<Policy, Classifier>,
    /// Policies installed by *remote* participants (no packets of their
    /// own at this ingress), applied to every sender's traffic — the
    /// wide-area load-balancer application (§3.1). Tagged with the owner
    /// for bookkeeping.
    global_policies: Vec<(ParticipantId, Policy)>,
    /// Options applied by `compile_all`.
    pub options: CompileOptions,
    /// Where stage timings and allocation counters land. Defaults to a
    /// private sink; the controller shares its own registry in.
    pub(crate) telemetry: SharedRegistry,
}

impl SdxCompiler {
    /// A compiler with default (fully optimized) options.
    pub fn new() -> Self {
        SdxCompiler::default()
    }

    /// Points this compiler's stage timers at `reg` (the controller calls
    /// this so the whole stack shares one sink).
    pub fn set_telemetry(&mut self, reg: SharedRegistry) {
        self.telemetry = reg;
    }

    /// The registry this compiler emits into.
    pub fn telemetry(&self) -> &SharedRegistry {
        &self.telemetry
    }

    /// Adds or replaces a participant.
    pub fn upsert_participant(&mut self, cfg: ParticipantConfig) {
        self.participants.insert(cfg.id, cfg);
    }

    /// Removes a participant from the book (its policies go with it).
    pub fn remove_participant(&mut self, id: ParticipantId) -> Option<ParticipantConfig> {
        self.participants.remove(&id)
    }

    /// Installs/clears a participant's outbound policy.
    pub fn set_outbound(&mut self, id: ParticipantId, policy: Option<Policy>) {
        if let Some(p) = self.participants.get_mut(&id) {
            p.outbound = policy;
        }
    }

    /// Installs/clears a participant's inbound policy.
    pub fn set_inbound(&mut self, id: ParticipantId, policy: Option<Policy>) {
        if let Some(p) = self.participants.get_mut(&id) {
            p.inbound = policy;
        }
    }

    /// The participant book.
    pub fn participants(&self) -> &BTreeMap<ParticipantId, ParticipantConfig> {
        &self.participants
    }

    /// Looks up a participant.
    pub fn participant(&self, id: ParticipantId) -> Option<&ParticipantConfig> {
        self.participants.get(&id)
    }

    /// Installs a remote participant's global policy fragment (applied to
    /// every sender's outbound traffic).
    pub fn add_global_policy(&mut self, owner: ParticipantId, policy: Policy) {
        self.global_policies.push((owner, policy));
    }

    /// Removes all global fragments owned by `owner`.
    pub fn clear_global_policies(&mut self, owner: ParticipantId) {
        self.global_policies.retain(|(o, _)| *o != owner);
    }

    /// The outbound policy effective for `viewer`: its own policy plus
    /// every remote fragment, in parallel.
    pub fn effective_outbound(&self, viewer: ParticipantId) -> Option<Policy> {
        let own = self
            .participants
            .get(&viewer)
            .and_then(|c| c.outbound.clone());
        let globals: Vec<Policy> = self
            .global_policies
            .iter()
            .map(|(_, p)| p.clone())
            .collect();
        match (own, globals.is_empty()) {
            (own, true) => own,
            (None, false) => globals.into_iter().reduce(|a, b| a + b),
            (Some(own), false) => Some(globals.into_iter().fold(own, |acc, g| acc + g)),
        }
    }

    pub(crate) fn compile_raw(&mut self, policy: &Policy, stats: &mut CompileStats) -> Classifier {
        if !self.options.memoize {
            return compile_policy(policy);
        }
        if let Some(c) = self.memo.get(policy) {
            stats.memo_hits += 1;
            return c.clone();
        }
        let c = compile_policy(policy);
        self.memo.insert(policy.clone(), c.clone());
        c
    }

    /// Runs the full pipeline against the current routes.
    pub fn compile_all(
        &mut self,
        rs: &RouteServer,
        vnh: &mut VnhAllocator,
    ) -> Result<CompileReport, SdxError> {
        self.compile_all_with_faults(rs, vnh, &mut FaultPlan::disabled())
    }

    /// [`compile_all`](Self::compile_all) with a fault-injection plan
    /// threaded through the named pipeline points (compilation entry and
    /// each VNH allocation).
    pub fn compile_all_with_faults(
        &mut self,
        rs: &RouteServer,
        vnh: &mut VnhAllocator,
        faults: &mut FaultPlan,
    ) -> Result<CompileReport, SdxError> {
        faults.check(InjectionPoint::Compile)?;
        let reg = self.telemetry.clone();
        let t0 = Instant::now();
        let mut stats = CompileStats::default();

        // ---- Step 1: raw policy classifiers + outbound clause extraction.
        let t_classifiers = Instant::now();
        let ids: Vec<ParticipantId> = self.participants.keys().copied().collect();
        let mut fwd_rules: BTreeMap<ParticipantId, Vec<FwdRule>> = BTreeMap::new();
        let mut inbound_compiled: BTreeMap<ParticipantId, Classifier> = BTreeMap::new();
        for &id in &ids {
            let outbound = self.effective_outbound(id);
            let inbound = self.participants[&id].inbound.clone();
            if let Some(pol) = outbound {
                let c = self.compile_raw(&pol, &mut stats);
                fwd_rules.insert(id, transform::outbound_fwd_rules(id, &c)?);
            }
            if let Some(pol) = inbound {
                inbound_compiled.insert(id, self.compile_raw(&pol, &mut stats));
            }
        }

        reg.observe_duration("compile.classifiers", t_classifiers.elapsed());

        // ---- Steps 2–3: affected sets, FEC grouping, VNH assignment.
        let vnh_allocs = reg.counter("vnh.alloc.count");
        let t_vnh = Instant::now();
        let mut groups: BTreeMap<ParticipantId, Vec<FecGroup>> = BTreeMap::new();
        // (viewer, group-id) → set of rule indices whose affected set
        // contains the group, plus partial-coverage marks.
        let mut rule_membership: BTreeMap<ParticipantId, Vec<GroupMembership>> = BTreeMap::new();
        // prefixes_via scans the whole Loc-RIB; many rules share the same
        // (viewer, target) pair, so cache the scan.
        let mut via_cache: HashMap<(ParticipantId, ParticipantId), Vec<Prefix>> = HashMap::new();
        for (&viewer, rules) in &fwd_rules {
            // Affected set per rule: prefixes the target exported to the
            // viewer, overlapped by the rule's destination constraint.
            // signature(p) = (rules touching p, partial marks, default nh).
            let mut sig: BTreeMap<Prefix, (BTreeSet<usize>, BTreeSet<usize>)> = BTreeMap::new();
            for (k, rule) in rules.iter().enumerate() {
                if rule.rewritten_dst().is_some() {
                    continue; // rewrite rules join BGP on the NEW address
                }
                let Some(PortId::Virt(nh)) = rule.target else {
                    continue; // port steering / no-op: no BGP join
                };
                let via = via_cache
                    .entry((viewer, nh))
                    .or_insert_with(|| rs.prefixes_via(viewer, nh));
                for &p in via.iter() {
                    match dst_coverage(&rule.matches, p) {
                        Coverage::None => {}
                        Coverage::Full => {
                            sig.entry(p).or_default().0.insert(k);
                        }
                        Coverage::Partial => {
                            let e = sig.entry(p).or_default();
                            e.0.insert(k);
                            e.1.insert(k);
                        }
                    }
                }
            }
            // Partition by (rule membership, partial marks, default next hop).
            let items: Vec<(Prefix, _)> = sig
                .iter()
                .map(|(&p, (mem, part))| {
                    let nh = rs.best_for(viewer, p).map(|r| r.source.participant);
                    let key = if self.options.fec_grouping {
                        (mem.clone(), part.clone(), nh, None)
                    } else {
                        // Ablation: every prefix its own group.
                        (mem.clone(), part.clone(), nh, Some(p))
                    };
                    (p, key)
                })
                .collect();
            // Remember signatures so groups can recover their memberships.
            let sig_of_prefix = sig;
            let parts = partition_by_signature(items);
            let mut viewer_groups = Vec::with_capacity(parts.len());
            let mut memberships = Vec::with_capacity(parts.len());
            for prefixes in parts {
                faults.check(InjectionPoint::VnhAlloc)?;
                let (id, addr, vmac) = vnh.try_allocate()?;
                vnh_allocs.inc();
                let first = prefixes[0];
                let default_next_hop = rs.best_for(viewer, first).map(|r| r.source.participant);
                let (mem, part) = sig_of_prefix[&first].clone();
                viewer_groups.push(FecGroup {
                    id,
                    viewer,
                    prefixes,
                    vnh: addr,
                    vmac,
                    default_next_hop,
                });
                memberships.push((mem, part));
            }
            rule_membership.insert(viewer, memberships);
            groups.insert(viewer, viewer_groups);
        }
        stats.vnh_time = t_vnh.elapsed();
        reg.observe_duration("compile.fec", stats.vnh_time);

        // ---- Step 4: stage-1 rules.
        let mut stage1: Vec<Rule> = Vec::new();
        // VMACs deliverable at each receiver (policy targets + defaults).
        let mut deliverable: BTreeMap<ParticipantId, BTreeSet<MacAddr>> = BTreeMap::new();
        for (&viewer, rules) in &fwd_rules {
            let vgroups = &groups[&viewer];
            let memberships = &rule_membership[&viewer];
            for (k, rule) in rules.iter().enumerate() {
                // Wide-area-LB rewrite rules: consistency is checked on the
                // rewritten address, and the rule follows that address's
                // BGP route when no explicit fwd was written.
                if let Some(new_dst) = rule.rewritten_dst() {
                    let nh = match rule.target {
                        Some(PortId::Virt(nh))
                            if rs.reachable_via_addr(viewer, new_dst).contains(&nh) =>
                        {
                            Some(nh)
                        }
                        Some(_) => None, // explicit target can't reach it
                        None => rs
                            .best_for_addr(viewer, new_dst)
                            .map(|r| r.source.participant),
                    };
                    let Some(nh) = nh else {
                        continue; // rewritten address unroutable: drop rule
                    };
                    let Some(nh_cfg) = self.participants.get(&nh) else {
                        continue;
                    };
                    let nh_mac = nh_cfg.primary_port().mac;
                    // Isolation: one rule per sender port, unless the rule
                    // already pinned one of the sender's own ports.
                    let sender_ports: Vec<PortId> = match rule.matches.in_port {
                        Some(p) => vec![p],
                        None => self.participants[&viewer].port_ids().collect(),
                    };
                    for sp in sender_ports {
                        let mut m = rule.matches;
                        m.set(sdx_net::FieldMatch::InPort(sp));
                        let mut mods = rule.mods.clone();
                        mods.push(Mod::SetDlDst(nh_mac));
                        mods.push(Mod::SetLoc(PortId::Virt(nh)));
                        stage1.push(Rule::unicast(m, Action { mods }));
                    }
                    continue;
                }
                match rule.target {
                    Some(PortId::Virt(nh)) => {
                        let expanded = expand_fwd_rule(
                            rule,
                            PortId::Virt(nh),
                            vgroups,
                            |g| {
                                vgroups
                                    .iter()
                                    .position(|x| x.id == g.id)
                                    .is_some_and(|idx| memberships[idx].0.contains(&k))
                            },
                            |g| {
                                vgroups
                                    .iter()
                                    .position(|x| x.id == g.id)
                                    .is_some_and(|idx| memberships[idx].1.contains(&k))
                            },
                        );
                        for r in &expanded {
                            if let Some(v) = r.matches.dl_dst {
                                deliverable.entry(nh).or_default().insert(v);
                            }
                        }
                        stage1.extend(expanded);
                    }
                    Some(PortId::Phys(owner, idx)) => {
                        // Middlebox/port steering: isolate per sender port,
                        // rewrite the MAC to the target port's.
                        let Some(target_cfg) = self.participants.get(&owner) else {
                            continue;
                        };
                        let Some(mac) = target_cfg.port_mac(idx) else {
                            return Err(TransformError::NoSuchPort(owner, idx).into());
                        };
                        // Port steering is a *direct output* — `fwd(E1)`
                        // means "this exact port". It deliberately bypasses
                        // the owner's virtual switch (and hence its inbound
                        // policy), which is also what keeps service chains
                        // loop-free: the final hop's steering back to the
                        // consumer must not re-enter the consumer's divert.
                        let sender_ports: Vec<PortId> = match rule.matches.in_port {
                            Some(p) => vec![p],
                            None => self.participants[&viewer].port_ids().collect(),
                        };
                        for sp in sender_ports {
                            let mut m = rule.matches;
                            m.set(sdx_net::FieldMatch::InPort(sp));
                            let mut mods = rule.mods.clone();
                            mods.push(Mod::SetDlDst(mac));
                            mods.push(Mod::SetLoc(PortId::Phys(owner, idx)));
                            stage1.push(Rule::unicast(m, Action { mods }));
                        }
                    }
                    None => {} // no-op rule (no fwd, no rewrite)
                }
            }
        }
        // Per-group defaults (below policy rules).
        for (viewer, vgroups) in &groups {
            let _ = viewer;
            for g in vgroups {
                if let Some(nh) = g.default_next_hop {
                    deliverable.entry(nh).or_default().insert(g.vmac);
                }
            }
            stage1.extend(transform::default_stage1_rules(vgroups));
        }
        // Global MAC-learning defaults.
        stage1.extend(transform::mac_default_rules(&self.participants));

        // ---- Step 4b: stage-2 blocks.
        let mut blocks: BTreeMap<ParticipantId, Classifier> = BTreeMap::new();
        for (&id, cfg) in &self.participants {
            let vmacs: Vec<MacAddr> = deliverable
                .get(&id)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            let foreign_mac = |owner: ParticipantId, idx: u8| {
                self.participants.get(&owner).and_then(|c| c.port_mac(idx))
            };
            let block =
                transform::stage2_block(cfg, inbound_compiled.get(&id), &vmacs, &foreign_mac)?;
            blocks.insert(id, block);
        }

        // ---- Step 5: composition.
        let t_compose = Instant::now();
        let classifier = if self.options.pair_pruning {
            compose_optimized(&stage1, &blocks)
        } else {
            // Naive baseline: full sequential cross product of the summed
            // stages, as if every pair of participants exchanged traffic.
            let stage1_c = Classifier::from_rules(stage1);
            let stage2_all = Classifier::from_rules(
                blocks
                    .values()
                    .flat_map(|b| b.rules().iter().cloned())
                    .filter(|r| !r.matches.is_wildcard() || !r.is_drop())
                    .collect(),
            );
            stage1_c.sequential(&stage2_all)
        };
        stats.compose_time = t_compose.elapsed();
        reg.observe_duration("compile.compose", stats.compose_time);

        // ---- Report assembly.
        let mut arp_bindings = Vec::new();
        let mut vnh_of = BTreeMap::new();
        for vgroups in groups.values() {
            for g in vgroups {
                arp_bindings.push((g.vnh, g.vmac));
                for &p in &g.prefixes {
                    vnh_of.insert((g.viewer, p), g.vnh);
                }
            }
        }
        stats.rule_count = classifier.len();
        stats.forwarding_rules = classifier.forwarding_rule_count();
        stats.group_count = groups.values().map(Vec::len).sum();
        stats.total = t0.elapsed();
        reg.observe_duration("compile.total", stats.total);
        reg.inc("compile.count");

        Ok(CompileReport {
            classifier,
            groups,
            arp_bindings,
            vnh_of,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_bgp::route_server::ExportPolicy;
    use sdx_net::{ip, prefix, FieldMatch, LocatedPacket, Packet};
    use sdx_policy::Policy as P;

    /// The paper's Figure 1 topology: A (one port), B (two ports), C (one
    /// port), plus D (no policies touch it). B announces p1–p4 but does
    /// not export p4 to A; C announces p1, p2, p4; D announces p5. A runs
    /// the application-specific peering policy; B runs the inbound TE
    /// policy. p5 must remain untouched by SDX processing.
    fn figure1() -> (SdxCompiler, RouteServer) {
        let mut compiler = SdxCompiler::new();
        let a = ParticipantConfig::new(1, 65001, 1).with_outbound(
            (P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(ParticipantId(2))))
                + (P::match_(FieldMatch::TpDst(443)) >> P::fwd(PortId::Virt(ParticipantId(3)))),
        );
        let b = ParticipantConfig::new(2, 65002, 2).with_inbound(
            (P::match_(FieldMatch::NwSrc(prefix("0.0.0.0/1")))
                >> P::fwd(PortId::Phys(ParticipantId(2), 1)))
                + (P::match_(FieldMatch::NwSrc(prefix("128.0.0.0/1")))
                    >> P::fwd(PortId::Phys(ParticipantId(2), 2))),
        );
        let c = ParticipantConfig::new(3, 65003, 1);
        let d = ParticipantConfig::new(4, 65004, 1);
        let mut rs = RouteServer::new();
        rs.add_peer(a.route_source(), ExportPolicy::allow_all());
        let mut b_export = ExportPolicy::allow_all();
        b_export.deny(ParticipantId(1), prefix("40.0.0.0/8"));
        rs.add_peer(b.route_source(), b_export);
        rs.add_peer(c.route_source(), ExportPolicy::allow_all());
        rs.add_peer(d.route_source(), ExportPolicy::allow_all());

        // Announcements: p1..p5 (10/8, 20/8, 30/8, 40/8, 50/8).
        for (pfx, path) in [
            ("10.0.0.0/8", vec![65002, 100, 200]),
            ("20.0.0.0/8", vec![65002, 100, 200]),
            ("30.0.0.0/8", vec![65002, 300]),
            ("40.0.0.0/8", vec![65002, 400]),
        ] {
            rs.process_update(ParticipantId(2), &b.announce([prefix(pfx)], &path));
        }
        for (pfx, path) in [
            ("10.0.0.0/8", vec![65003, 200]),
            ("20.0.0.0/8", vec![65003, 200]),
            ("40.0.0.0/8", vec![65003, 400]),
        ] {
            rs.process_update(ParticipantId(3), &c.announce([prefix(pfx)], &path));
        }
        rs.process_update(
            ParticipantId(4),
            &d.announce([prefix("50.0.0.0/8")], &[65004, 500]),
        );
        compiler.upsert_participant(a);
        compiler.upsert_participant(b);
        compiler.upsert_participant(c);
        compiler.upsert_participant(d);
        (compiler, rs)
    }

    fn run(compiler: &mut SdxCompiler, rs: &RouteServer) -> CompileReport {
        let mut vnh = VnhAllocator::default();
        compiler.compile_all(rs, &mut vnh).expect("compile")
    }

    /// Sends `pkt` through the compiled data plane the way a border router
    /// would: resolve the viewer's VNH for the destination, tag, classify.
    fn send(report: &CompileReport, viewer: u32, pkt: Packet) -> Vec<LocatedPacket> {
        let viewer_id = ParticipantId(viewer);
        // Stage 1 of the multi-stage FIB (what the border router does):
        // find the most specific announced prefix covering the destination.
        let vnh = report
            .vnh_of
            .iter()
            .filter(|((v, p), _)| *v == viewer_id && p.contains(pkt.nw_dst))
            .max_by_key(|((_, p), _)| p.len())
            .map(|(_, nh)| *nh);
        let tagged = match vnh {
            Some(nh) => {
                let vmac = report
                    .arp_bindings
                    .iter()
                    .find(|(a, _)| *a == nh)
                    .map(|(_, m)| *m)
                    .expect("ARP binding for every VNH");
                pkt.with_macs(MacAddr::physical(viewer * 16 + 1), vmac)
            }
            None => pkt,
        };
        let lp = LocatedPacket::at(PortId::Phys(viewer_id, 1), tagged);
        report.classifier.evaluate(&lp)
    }

    #[test]
    fn figure1_app_specific_peering() {
        let (mut compiler, rs) = figure1();
        let report = run(&mut compiler, &rs);

        // Web traffic from A to p1 goes via B — and B's inbound TE sends
        // low-source-half traffic out port B1.
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("10.0.0.9"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(2), 1));

        // High-source-half web traffic exits B2 (inbound TE).
        let out = send(
            &report,
            1,
            Packet::tcp(ip("200.0.0.1"), ip("10.0.0.9"), 5000, 80),
        );
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(2), 2));

        // HTTPS traffic to p1 goes via C.
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("10.0.0.9"), 5000, 443),
        );
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(3), 1));
    }

    #[test]
    fn figure1_default_follows_best_route() {
        let (mut compiler, rs) = figure1();
        let report = run(&mut compiler, &rs);
        // Non-web traffic to p1 follows A's best BGP route (C: shorter path).
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("10.0.0.9"), 5000, 22),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(3), 1));
        // Traffic to p3 (announced only by B) defaults via B.
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("30.0.0.9"), 5000, 22),
        );
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(2), 1));
    }

    #[test]
    fn figure1_bgp_consistency() {
        let (mut compiler, rs) = figure1();
        let report = run(&mut compiler, &rs);
        // B did not export p4 to A: A's web traffic to p4 must NOT go to B.
        // Default is C (the only exporter), and the web policy cannot
        // override it toward B.
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("40.0.0.9"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(3), 1));
        // p5 is untouched by any policy: no VNH was allocated for it.
        assert!(!report
            .vnh_of
            .keys()
            .any(|(_, p)| *p == prefix("50.0.0.0/8")));
        // Default delivery for p5 still works via the MAC-learning rules
        // (next hop = D's physical address, untouched by the SDX)…
        let best = rs.best_for(ParticipantId(1), prefix("50.0.0.0/8")).unwrap();
        assert_eq!(best.source.participant, ParticipantId(4));
    }

    #[test]
    fn figure1_group_shapes() {
        let (mut compiler, rs) = figure1();
        let report = run(&mut compiler, &rs);
        // Only A has outbound policies, so only A has groups.
        assert!(report.groups[&ParticipantId(1)].len() >= 2);
        assert!(!report.groups.contains_key(&ParticipantId(2)));
        // p1 and p2 share identical behaviour → same group (the paper's
        // worked example).
        let ga = &report.groups[&ParticipantId(1)];
        let find = |pfx: &str| {
            ga.iter()
                .position(|g| g.prefixes.contains(&prefix(pfx)))
                .unwrap_or_else(|| panic!("no group contains {pfx}"))
        };
        assert_eq!(find("10.0.0.0/8"), find("20.0.0.0/8"));
        assert_ne!(find("10.0.0.0/8"), find("30.0.0.0/8"));
        assert_ne!(find("10.0.0.0/8"), find("40.0.0.0/8"));
    }

    #[test]
    fn memoization_hits_on_recompile() {
        let (mut compiler, rs) = figure1();
        let mut vnh = VnhAllocator::default();
        let r1 = compiler.compile_all(&rs, &mut vnh).unwrap();
        assert_eq!(r1.stats.memo_hits, 0);
        let r2 = compiler.compile_all(&rs, &mut vnh).unwrap();
        assert_eq!(r2.stats.memo_hits, 2, "A's outbound + B's inbound cached");
    }

    #[test]
    fn naive_composition_agrees_with_optimized() {
        let (mut compiler, rs) = figure1();
        let opt = run(&mut compiler, &rs);
        compiler.options.pair_pruning = false;
        compiler.options.memoize = false;
        let mut vnh = VnhAllocator::default();
        let naive = compiler.compile_all(&rs, &mut vnh).unwrap();
        // Same observable behaviour on a probe battery. (VNH ids realign
        // because allocation order is deterministic.)
        for (src, dst, port) in [
            ("99.0.0.1", "10.0.0.9", 80u16),
            ("200.0.0.1", "10.0.0.9", 80),
            ("99.0.0.1", "10.0.0.9", 443),
            ("99.0.0.1", "30.0.0.9", 22),
            ("99.0.0.1", "40.0.0.9", 80),
        ] {
            let a = send(&opt, 1, Packet::tcp(ip(src), ip(dst), 5000, port));
            let b = send(&naive, 1, Packet::tcp(ip(src), ip(dst), 5000, port));
            assert_eq!(a, b, "probe {src}->{dst}:{port}");
        }
    }

    #[test]
    fn fec_ablation_allocates_per_prefix() {
        let (mut compiler, rs) = figure1();
        let grouped = run(&mut compiler, &rs);
        compiler.options.fec_grouping = false;
        compiler.memo.clear();
        let mut vnh = VnhAllocator::default();
        let ungrouped = compiler.compile_all(&rs, &mut vnh).unwrap();
        assert!(ungrouped.stats.group_count > grouped.stats.group_count);
        assert!(ungrouped.stats.forwarding_rules >= grouped.stats.forwarding_rules);
    }
}
