//! The SDX compilation pipeline (§4.1–§4.3.1).
//!
//! [`SdxCompiler::compile_all`] runs the whole pipeline:
//!
//! 1. compile each participant's raw policies to classifiers (memoized —
//!    "many policy idioms appear more than once");
//! 2. compute per-viewer **affected prefix sets** by joining each outbound
//!    forwarding rule with the BGP routes its target exported to the viewer
//!    (the consistency transformation);
//! 3. run the FEC grouping (signature partition = Minimum Disjoint Subset)
//!    and allocate a `(VNH, VMAC)` per group;
//! 4. rewrite outbound rules to match VMAC tags, attach per-group default
//!    forwarding, add the global MAC-learning defaults, and build each
//!    receiver's stage-2 delivery block;
//! 5. compose stage 1 with stage 2 — per target participant only ("most
//!    policies concern a subset of participants"; "policies are disjoint by
//!    design"), or naively as one quadratic cross product when the
//!    optimization is disabled (the ablation baseline).
//!
//! Steps 2–4 fan out per viewer, and step 5 per receiver block, on scoped
//! worker threads ([`CompileOptions::parallelism`]); results are merged in
//! `ParticipantId` order and VNH ids are assigned from a single serial
//! reservation, so the report is byte-identical for every worker count
//! (see DESIGN.md §11).
//!
//! The output [`CompileReport`] carries everything the controller must
//! install: the switch classifier, the ARP bindings (VNH → VMAC), and the
//! per-(viewer, prefix) VNH map the route server rewrites NEXT_HOP with.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sdx_bgp::route_server::RouteServer;
use sdx_net::Mod;
use sdx_net::{Ipv4Addr, MacAddr, ParticipantId, PortId, Prefix};
use sdx_policy::classifier::{Action, Classifier, Rule};
use sdx_policy::{compile as compile_policy, Policy, PolicyVersions};
use sdx_telemetry::{MetricsSnapshot, Registry, SharedRegistry};

use crate::error::SdxError;
use crate::faults::{FaultPlan, InjectionPoint};
use crate::fec::{partition_by_signature, FecGroup, FecKey};
use crate::par::parallel_map;
use crate::participant::ParticipantConfig;
use crate::shard::{ShardCache, ShardPlan, ShardUnit, Sharding};
use crate::transform::{
    self, compose_optimized_parallel, dst_coverage, expand_fwd_rule, Coverage, FwdRule,
    TransformError,
};
use crate::vnh::VnhAllocator;

/// Per FEC group: rule indices whose affected set contains the group,
/// plus the subset that only partially covers it.
type GroupMembership = (BTreeSet<usize>, BTreeSet<usize>);

/// One viewer's phase-A output: the FEC prefix partition, per-group rule
/// memberships, and per-group default next hops.
type ViewerFecs = (
    Vec<Vec<Prefix>>,           // prefix partition (the FEC groups)
    Vec<GroupMembership>,       // per group: rule memberships
    Vec<Option<ParticipantId>>, // per group: default next hop
);

/// Default bound on the raw-policy memo cache (entries). Generous — the
/// paper's workloads compile a few hundred distinct policies — but finite,
/// so a long-lived controller under policy churn cannot grow without bound.
pub const DEFAULT_MEMO_CAP: usize = 4096;

/// How many worker threads the compile pipeline fans out on.
///
/// Per-viewer pipeline phases (and per-receiver composition) run on scoped
/// threads (see [`crate::par`]); results are merged in `ParticipantId`
/// order, so the produced [`CompileReport`] is byte-identical whichever
/// variant runs it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Use [`std::thread::available_parallelism`].
    #[default]
    Auto,
    /// Single-threaded, no thread machinery at all — the ablation baseline
    /// and the pre-parallel pipeline's exact behaviour.
    Serial,
    /// Exactly `n` workers (clamped to ≥ 1).
    Threads(usize),
}

impl Parallelism {
    /// The resolved worker count (always ≥ 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// Switches for the §4.3.1 optimizations — all on by default; the ablation
/// benches turn them off one at a time.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Compose each stage-1 rule only with its target's stage-2 block
    /// instead of the full quadratic cross product.
    pub pair_pruning: bool,
    /// Cache compiled raw participant policies across pipeline runs.
    pub memoize: bool,
    /// Group prefixes into FECs; when off, every affected prefix becomes
    /// its own group (the data-plane-state ablation).
    pub fec_grouping: bool,
    /// Worker threads for the per-viewer and per-receiver pipeline phases.
    pub parallelism: Parallelism,
    /// Serve BGP joins from the route server's inverted announcer index
    /// and decision cache; when off, every query re-scans the full Loc-RIB
    /// (the index ablation / scan baseline).
    pub index_acceleration: bool,
    /// Maximum entries kept in the raw-policy memo cache; least-recently
    /// used entries are evicted past this (counted in
    /// `compile.memo_evictions.count`).
    pub memo_cap: usize,
    /// **Deliberate sabotage, tests only**: joins policy clauses against
    /// every prefix the target *announced* instead of the prefixes it
    /// *exported to the viewer*, skipping the §4.1 BGP consistency filter.
    /// This reproduces the Prelude-style SDX compilation bug class
    /// (forwarding to a neighbor that never offered the route) so the
    /// differential oracle's acceptance test can prove it catches wrong
    /// forwarding with a readable per-stage trace. Never enable outside a
    /// harness.
    pub break_consistency_filter: bool,
    /// Partition the prefix space into contiguous range shards and run the
    /// FEC phase per `(shard, viewer)` unit with incremental caching (see
    /// [`crate::shard`]); the merged output is provably equivalent to the
    /// unsharded pipeline modulo VNH id numbering. Sharded compilation
    /// always uses the indexed BGP joins (the range-bounded join has no
    /// scan variant), so `index_acceleration = false` only ablates the
    /// unsharded path.
    pub sharding: Sharding,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            pair_pruning: true,
            memoize: true,
            fec_grouping: true,
            parallelism: Parallelism::Auto,
            index_acceleration: true,
            memo_cap: DEFAULT_MEMO_CAP,
            break_consistency_filter: false,
            sharding: Sharding::Off,
        }
    }
}

/// Timing and size accounting for one pipeline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileStats {
    /// Wall-clock for the whole pipeline.
    pub total: Duration,
    /// Time spent computing affected sets + FEC groups + VNH assignment
    /// (the paper reports this separately; it dominates at scale).
    pub vnh_time: Duration,
    /// Time spent in classifier composition.
    pub compose_time: Duration,
    /// Total switch rules produced.
    pub rule_count: usize,
    /// Non-drop rules (the Figure 7 metric).
    pub forwarding_rules: usize,
    /// FEC groups across all viewers (the Figure 6 metric, controller
    /// variant).
    pub group_count: usize,
    /// Raw-policy compilations served from the memo cache.
    pub memo_hits: usize,
}

/// Everything one pipeline run produced.
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// The classifier to install on the fabric switch.
    pub classifier: Classifier,
    /// Per-viewer FEC groups.
    pub groups: BTreeMap<ParticipantId, Vec<FecGroup>>,
    /// ARP bindings the responder must serve: VNH address → VMAC.
    pub arp_bindings: Vec<(Ipv4Addr, MacAddr)>,
    /// NEXT_HOP rewrites for the route server: (viewer, prefix) → VNH.
    /// Prefixes absent from this map are re-advertised unchanged.
    pub vnh_of: BTreeMap<(ParticipantId, Prefix), Ipv4Addr>,
    /// Accounting.
    pub stats: CompileStats,
}

impl CompileReport {
    /// This run's accounting as a [`MetricsSnapshot`], keyed with the
    /// workspace metric naming convention (timers in nanoseconds). The
    /// snapshot is *derived* from [`CompileStats`] — both views come from
    /// the same measurements, so they cannot disagree.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let r = Registry::new();
        r.observe_duration("compile.total", self.stats.total);
        r.observe_duration("compile.fec", self.stats.vnh_time);
        r.observe_duration("compile.compose", self.stats.compose_time);
        r.add("compile.rules.count", self.stats.rule_count as u64);
        r.add(
            "compile.forwarding_rules.count",
            self.stats.forwarding_rules as u64,
        );
        r.add("compile.groups.count", self.stats.group_count as u64);
        r.add("compile.memo_hits.count", self.stats.memo_hits as u64);
        r.snapshot()
    }

    /// The stage-1 FIB decision a border router makes for `viewer` and a
    /// concrete destination: the most specific prefix in the VNH map
    /// covering `dst`, with its virtual next hop. `None` means the SDX
    /// left the destination on its plain BGP path (no policy touches it).
    ///
    /// This is the compiled artifact the differential oracle's fabric
    /// side seeds its evaluation with — it reads only what this report
    /// says, never the route server's opinion.
    pub fn vnh_for(&self, viewer: ParticipantId, dst: Ipv4Addr) -> Option<(Prefix, Ipv4Addr)> {
        self.vnh_of
            .iter()
            .filter(|((v, p), _)| *v == viewer && p.contains(dst))
            .max_by_key(|((_, p), _)| p.len())
            .map(|((_, p), nh)| (*p, *nh))
    }

    /// The VMAC the SDX ARP responder answers for `vnh` — the tag a
    /// border router stamps into `dl_dst` after resolving its FIB entry.
    pub fn vmac_for(&self, vnh: Ipv4Addr) -> Option<MacAddr> {
        self.arp_bindings
            .iter()
            .find(|(a, _)| *a == vnh)
            .map(|(_, m)| *m)
    }
}

/// The raw-policy memo: compiled classifier + last-use stamp per policy,
/// with a logical clock for LRU eviction. Behind a [`Mutex`] so
/// [`SdxCompiler::compile_raw`] can take `&self` (the pipeline borrows the
/// compiler immutably from worker threads).
#[derive(Debug, Default)]
struct MemoCache {
    map: HashMap<Policy, (Classifier, u64)>,
    clock: u64,
}

/// The pipeline driver. Holds the participant book and the memo cache;
/// route state comes in per call so the compiler can be re-run as BGP
/// changes.
#[derive(Debug, Default)]
pub struct SdxCompiler {
    participants: BTreeMap<ParticipantId, ParticipantConfig>,
    memo: Mutex<MemoCache>,
    /// Policies installed by *remote* participants (no packets of their
    /// own at this ingress), applied to every sender's traffic — the
    /// wide-area load-balancer application (§3.1). Tagged with the owner
    /// for bookkeeping.
    global_policies: Vec<(ParticipantId, Policy)>,
    /// Options applied by `compile_all`.
    pub options: CompileOptions,
    /// Where stage timings and allocation counters land. Defaults to a
    /// private sink; the controller shares its own registry in.
    pub(crate) telemetry: SharedRegistry,
    /// Versioned view of the policy store: the *book* epoch moves on
    /// structural mutations (enroll/remove, global fragments) and gates
    /// the whole shard cache; per-participant counters move on single
    /// policy edits and gate only that viewer's cached units — the seam
    /// that lets a one-participant [`PolicyDelta`](sdx_policy::PolicyDelta)
    /// recompile a handful of units instead of the world.
    versions: PolicyVersions,
    /// Clean per-`(shard, viewer)` phase-A slices from the previous
    /// sharded compile. `None` until a sharded compile runs (and reset by
    /// any unsharded compile).
    shard_cache: Option<ShardCache>,
}

impl SdxCompiler {
    /// A compiler with default (fully optimized) options.
    pub fn new() -> Self {
        SdxCompiler::default()
    }

    /// Points this compiler's stage timers at `reg` (the controller calls
    /// this so the whole stack shares one sink).
    pub fn set_telemetry(&mut self, reg: SharedRegistry) {
        self.telemetry = reg;
    }

    /// The registry this compiler emits into.
    pub fn telemetry(&self) -> &SharedRegistry {
        &self.telemetry
    }

    /// The prefix-space partition the last sharded compile ran under, if
    /// any. The controller uses it to attribute reconciliation flow-mods
    /// back to shards; `None` after an unsharded compile.
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard_cache.as_ref().map(|c| &c.plan)
    }

    /// Adds or replaces a participant (a structural book mutation: the
    /// whole shard cache is invalidated).
    pub fn upsert_participant(&mut self, cfg: ParticipantConfig) {
        self.versions.bump_book();
        self.participants.insert(cfg.id, cfg);
    }

    /// Removes a participant from the book (its policies go with it).
    pub fn remove_participant(&mut self, id: ParticipantId) -> Option<ParticipantConfig> {
        self.versions.bump_book();
        self.participants.remove(&id)
    }

    /// Installs/clears a participant's outbound policy. Bumps only that
    /// participant's outbound version: cached compile state for every
    /// other viewer stays valid.
    pub fn set_outbound(&mut self, id: ParticipantId, policy: Option<Policy>) {
        if let Some(p) = self.participants.get_mut(&id) {
            self.versions.bump_outbound(id);
            p.outbound = policy;
        }
    }

    /// Installs/clears a participant's inbound policy. Bumps only that
    /// participant's inbound version; inbound policies never touch the
    /// FEC phase, so no shard unit is invalidated at all.
    pub fn set_inbound(&mut self, id: ParticipantId, policy: Option<Policy>) {
        if let Some(p) = self.participants.get_mut(&id) {
            self.versions.bump_inbound(id);
            p.inbound = policy;
        }
    }

    /// The policy store's version counters (see
    /// [`PolicyVersions`](sdx_policy::PolicyVersions)).
    pub fn policy_versions(&self) -> &PolicyVersions {
        &self.versions
    }

    /// The participant book.
    pub fn participants(&self) -> &BTreeMap<ParticipantId, ParticipantConfig> {
        &self.participants
    }

    /// Looks up a participant.
    pub fn participant(&self, id: ParticipantId) -> Option<&ParticipantConfig> {
        self.participants.get(&id)
    }

    /// Installs a remote participant's global policy fragment (applied to
    /// every sender's outbound traffic — a structural mutation, since it
    /// folds into *every* viewer's effective outbound policy).
    pub fn add_global_policy(&mut self, owner: ParticipantId, policy: Policy) {
        self.versions.bump_book();
        self.global_policies.push((owner, policy));
    }

    /// Removes all global fragments owned by `owner`.
    pub fn clear_global_policies(&mut self, owner: ParticipantId) {
        self.versions.bump_book();
        self.global_policies.retain(|(o, _)| *o != owner);
    }

    /// The outbound policy effective for `viewer`: its own policy plus
    /// every remote fragment, in parallel.
    ///
    /// In the common case (no global fragments) this *borrows* the
    /// participant's installed policy — the per-compile clone the old
    /// signature forced is gone. Only when remote fragments must be folded
    /// in does it build an owned combination.
    pub fn effective_outbound(&self, viewer: ParticipantId) -> Option<Cow<'_, Policy>> {
        let own = self
            .participants
            .get(&viewer)
            .and_then(|c| c.outbound.as_ref());
        if self.global_policies.is_empty() {
            return own.map(Cow::Borrowed);
        }
        let mut globals = self.global_policies.iter().map(|(_, p)| p.clone());
        let first = match own {
            Some(own) => own.clone() + globals.next().expect("non-empty globals"),
            None => globals.next().expect("non-empty globals"),
        };
        Some(Cow::Owned(globals.fold(first, |acc, g| acc + g)))
    }

    /// Drops every memoized raw-policy compilation (the ablation benches
    /// use this to re-measure from a cold cache).
    pub fn clear_memo(&mut self) {
        let mut memo = self.memo.lock().expect("memo lock poisoned");
        memo.map.clear();
        memo.clock = 0;
    }

    /// Entries currently held in the raw-policy memo cache.
    pub fn memo_len(&self) -> usize {
        self.memo.lock().expect("memo lock poisoned").map.len()
    }

    pub(crate) fn compile_raw(&self, policy: &Policy, stats: &mut CompileStats) -> Classifier {
        if !self.options.memoize {
            return compile_policy(policy);
        }
        let mut memo = self.memo.lock().expect("memo lock poisoned");
        memo.clock += 1;
        let stamp = memo.clock;
        if let Some((c, used)) = memo.map.get_mut(policy) {
            *used = stamp;
            stats.memo_hits += 1;
            return c.clone();
        }
        let c = compile_policy(policy);
        memo.map.insert(policy.clone(), (c.clone(), stamp));
        let cap = self.options.memo_cap.max(1);
        while memo.map.len() > cap {
            let victim = memo
                .map
                .iter()
                .min_by_key(|(_, &(_, used))| used)
                .map(|(p, _)| p.clone())
                .expect("memo over cap is non-empty");
            memo.map.remove(&victim);
            self.telemetry.inc("compile.memo_evictions.count");
        }
        c
    }

    /// Runs the full pipeline against the current routes.
    pub fn compile_all(
        &mut self,
        rs: &RouteServer,
        vnh: &mut VnhAllocator,
    ) -> Result<CompileReport, SdxError> {
        self.compile_all_with_faults(rs, vnh, &mut FaultPlan::disabled())
    }

    /// [`compile_all`](Self::compile_all) with a fault-injection plan
    /// threaded through the named pipeline points (compilation entry and
    /// each VNH allocation).
    pub fn compile_all_with_faults(
        &mut self,
        rs: &RouteServer,
        vnh: &mut VnhAllocator,
        faults: &mut FaultPlan,
    ) -> Result<CompileReport, SdxError> {
        faults.check(InjectionPoint::Compile)?;
        let reg = self.telemetry.clone();
        let t0 = Instant::now();
        let mut stats = CompileStats::default();
        let workers = self.options.parallelism.workers();
        let use_index = self.options.index_acceleration;

        // ---- Step 1 (serial): raw policy classifiers + outbound clause
        // extraction. Cheap relative to the BGP joins, and the memo cache
        // sees every policy exactly once here.
        let t_classifiers = Instant::now();
        let ids: Vec<ParticipantId> = self.participants.keys().copied().collect();
        let mut fwd_rules: BTreeMap<ParticipantId, Vec<FwdRule>> = BTreeMap::new();
        let mut inbound_compiled: BTreeMap<ParticipantId, Classifier> = BTreeMap::new();
        for &id in &ids {
            if let Some(pol) = self.effective_outbound(id) {
                let c = self.compile_raw(&pol, &mut stats);
                fwd_rules.insert(id, transform::outbound_fwd_rules(id, &c)?);
            }
            if let Some(pol) = self.participants[&id].inbound.as_ref() {
                let c = self.compile_raw(pol, &mut stats);
                inbound_compiled.insert(id, c);
            }
        }

        reg.observe_duration("compile.classifiers", t_classifiers.elapsed());

        // ---- Phase A (parallel per viewer): affected sets + FEC
        // partition. Each viewer's work is independent — it reads the
        // route server (Sync: the decision cache is behind a lock) and its
        // own forwarding rules. Results merge in ParticipantId order
        // below, so output is identical for any worker count.
        let vnh_allocs = reg.counter("vnh.alloc.count");
        let t_vnh = Instant::now();
        let viewer_rules: Vec<(ParticipantId, &[FwdRule])> =
            fwd_rules.iter().map(|(&v, r)| (v, r.as_slice())).collect();
        let fec_grouping = self.options.fec_grouping;
        let break_consistency = self.options.break_consistency_filter;
        let resolved_shards = self.options.sharding.resolve(vnh.partitions());
        let fecs: Vec<ViewerFecs> = if let Some(n) = resolved_shards {
            self.compile_fecs_sharded(rs, n, workers, &viewer_rules, &reg)
        } else {
            // An unsharded compile invalidates any cached shard slices —
            // it does not drain the route server's compile-dirty set, so
            // the cache could no longer tell what changed underneath it.
            self.shard_cache = None;
            parallel_map(workers, &viewer_rules, |_, &(viewer, rules)| {
                let _viewer_timer = reg.start_timer("compile.viewer");
                // Affected set per rule: prefixes the target exported to the
                // viewer, overlapped by the rule's destination constraint.
                // signature(p) = (rules touching p, partial marks, default nh).
                let mut sig: BTreeMap<Prefix, GroupMembership> = BTreeMap::new();
                // Many rules share the same target: cache the BGP join per
                // next hop (indexed O(k) walk, or the full Loc-RIB scan when
                // index acceleration is ablated away).
                let mut via_cache: HashMap<ParticipantId, Vec<Prefix>> = HashMap::new();
                for (k, rule) in rules.iter().enumerate() {
                    if rule.rewritten_dst().is_some() {
                        continue; // rewrite rules join BGP on the NEW address
                    }
                    let Some(PortId::Virt(nh)) = rule.target else {
                        continue; // port steering / no-op: no BGP join
                    };
                    let via = via_cache.entry(nh).or_insert_with(|| {
                        if break_consistency {
                            // Sabotage knob (see `CompileOptions`): ignore the
                            // Adj-RIB-Out filter and join on everything the
                            // target ever announced.
                            rs.loc_rib().announced_by(nh).collect()
                        } else if use_index {
                            rs.prefixes_via(viewer, nh)
                        } else {
                            rs.prefixes_via_scan(viewer, nh)
                        }
                    });
                    for &p in via.iter() {
                        match dst_coverage(&rule.matches, p) {
                            Coverage::None => {}
                            Coverage::Full => {
                                sig.entry(p).or_default().0.insert(k);
                            }
                            Coverage::Partial => {
                                let e = sig.entry(p).or_default();
                                e.0.insert(k);
                                e.1.insert(k);
                            }
                        }
                    }
                }
                // One batched decision pass per viewer: every affected prefix
                // is resolved exactly once (the old pipeline re-ran best_for
                // per group on top of the per-item pass).
                let best_nh: BTreeMap<Prefix, Option<ParticipantId>> = sig
                    .keys()
                    .map(|&p| {
                        let best = if use_index {
                            rs.best_for(viewer, p)
                        } else {
                            rs.best_for_scan(viewer, p)
                        };
                        (p, best.map(|r| r.source.participant))
                    })
                    .collect();
                // Partition by (rule membership, partial marks, default next hop).
                let items: Vec<(Prefix, _)> = sig
                    .iter()
                    .map(|(&p, (mem, part))| {
                        let nh = best_nh[&p];
                        let key = if fec_grouping {
                            (mem.clone(), part.clone(), nh, None)
                        } else {
                            // Ablation: every prefix its own group.
                            (mem.clone(), part.clone(), nh, Some(p))
                        };
                        (p, key)
                    })
                    .collect();
                let parts = partition_by_signature(items);
                let memberships = parts.iter().map(|ps| sig[&ps[0]].clone()).collect();
                let defaults = parts.iter().map(|ps| best_nh[&ps[0]]).collect();
                (parts, memberships, defaults)
            })
        };

        // ---- Phase B (serial, viewer order): VNH assignment. The whole
        // batch is reserved up front *by content-addressed key* and
        // committed only after every fault check passes — an injected
        // fault or exhaustion leaves the allocator (key maps included)
        // untouched. Keyed reservation means a group whose identity
        // (viewer, member prefixes, best next hop) survived from the
        // previous compilation keeps its exact id/VNH/VMAC, so
        // re-optimization only relabels what actually changed; on a fresh
        // allocator no key is mapped and id order matches what
        // one-at-a-time serial allocation produced.
        let mut groups: BTreeMap<ParticipantId, Vec<FecGroup>> = BTreeMap::new();
        let mut rule_membership: BTreeMap<ParticipantId, Vec<GroupMembership>> = BTreeMap::new();
        let wanted: Vec<FecKey> = viewer_rules
            .iter()
            .zip(&fecs)
            .flat_map(|(&(viewer, _), (parts, _, defaults))| {
                parts
                    .iter()
                    .zip(defaults)
                    .map(move |(prefixes, &nh)| FecKey {
                        viewer,
                        prefixes: prefixes.clone(),
                        default_next_hop: nh,
                    })
            })
            .collect();
        // Sharded: each group's fresh id comes from the sub-range of the
        // shard owning its first member prefix, so per-shard id draws are
        // independent of how other shards churn (keyed reuse still looks
        // up across the whole pool). Repartitioning an allocator with
        // live ids is impossible without renumbering, so when sharding is
        // switched on mid-life we *defer*: compile sharded against the
        // allocator's current (coarser) partitioning — purely a perf
        // concession, keyed identity and equivalence are id-agnostic —
        // and count the deferral so operators can see it.
        let shard_plan: Option<ShardPlan> = if let Some(n) = resolved_shards {
            if vnh.ensure_partitions(n).is_err() {
                reg.inc("compile.shard.repartition_deferred.count");
            }
            self.shard_cache.as_ref().map(|c| c.plan.clone())
        } else {
            None
        };
        let reservation = match &shard_plan {
            Some(plan) => vnh.reserve_keyed_sharded(&wanted, |k| {
                k.prefixes.first().map_or(0, |&p| plan.shard_of(p))
            })?,
            None => vnh.reserve_keyed(&wanted)?,
        };
        reg.add("vnh.reused.count", reservation.reused_len() as u64);
        reg.add("vnh.fresh.count", reservation.fresh_len() as u64);
        let mut triples = reservation.triples().iter();
        for (&(viewer, _), (parts, memberships, defaults)) in viewer_rules.iter().zip(fecs) {
            let mut viewer_groups = Vec::with_capacity(parts.len());
            for (prefixes, default_next_hop) in parts.into_iter().zip(defaults) {
                faults.check(InjectionPoint::VnhAlloc)?;
                let &(id, addr, vmac) = triples.next().expect("one reserved id per group");
                vnh_allocs.inc();
                viewer_groups.push(FecGroup {
                    id,
                    viewer,
                    prefixes,
                    vnh: addr,
                    vmac,
                    default_next_hop,
                });
            }
            rule_membership.insert(viewer, memberships);
            groups.insert(viewer, viewer_groups);
        }
        vnh.commit(&reservation);
        stats.vnh_time = t_vnh.elapsed();
        reg.observe_duration("compile.fec", stats.vnh_time);

        // ---- Phase C (parallel per viewer): stage-1 rules. Membership
        // closures index a FecId → position map instead of re-scanning the
        // group list per query (the old quadratic inner loop). Viewers
        // emit rule batches independently; the merge below concatenates
        // them in ParticipantId order, so rule priority order is exactly
        // the serial pipeline's.
        let participants = &self.participants;
        type Stage1Batch = Result<(Vec<Rule>, Vec<(ParticipantId, MacAddr)>), SdxError>;
        let batches: Vec<Stage1Batch> =
            parallel_map(workers, &viewer_rules, |_, &(viewer, rules)| {
                let vgroups = &groups[&viewer];
                let memberships = &rule_membership[&viewer];
                let idx_of: HashMap<crate::fec::FecId, usize> =
                    vgroups.iter().enumerate().map(|(i, g)| (g.id, i)).collect();
                let mut stage1: Vec<Rule> = Vec::new();
                let mut deliverable: Vec<(ParticipantId, MacAddr)> = Vec::new();
                for (k, rule) in rules.iter().enumerate() {
                    // Wide-area-LB rewrite rules: consistency is checked on the
                    // rewritten address, and the rule follows that address's
                    // BGP route when no explicit fwd was written.
                    if let Some(new_dst) = rule.rewritten_dst() {
                        let nh = match rule.target {
                            Some(PortId::Virt(nh))
                                if rs.reachable_via_addr(viewer, new_dst).contains(&nh) =>
                            {
                                Some(nh)
                            }
                            Some(_) => None, // explicit target can't reach it
                            None => rs
                                .best_for_addr(viewer, new_dst)
                                .map(|r| r.source.participant),
                        };
                        let Some(nh) = nh else {
                            continue; // rewritten address unroutable: drop rule
                        };
                        let Some(nh_cfg) = participants.get(&nh) else {
                            continue;
                        };
                        let nh_mac = nh_cfg.primary_port().mac;
                        // Isolation: one rule per sender port, unless the rule
                        // already pinned one of the sender's own ports.
                        let sender_ports: Vec<PortId> = match rule.matches.in_port {
                            Some(p) => vec![p],
                            None => participants[&viewer].port_ids().collect(),
                        };
                        for sp in sender_ports {
                            let mut m = rule.matches;
                            m.set(sdx_net::FieldMatch::InPort(sp));
                            let mut mods = rule.mods.clone();
                            mods.push(Mod::SetDlDst(nh_mac));
                            mods.push(Mod::SetLoc(PortId::Virt(nh)));
                            stage1.push(Rule::unicast(m, Action { mods }));
                        }
                        continue;
                    }
                    match rule.target {
                        Some(PortId::Virt(nh)) => {
                            let expanded = expand_fwd_rule(
                                rule,
                                PortId::Virt(nh),
                                vgroups,
                                |g| {
                                    idx_of
                                        .get(&g.id)
                                        .is_some_and(|&idx| memberships[idx].0.contains(&k))
                                },
                                |g| {
                                    idx_of
                                        .get(&g.id)
                                        .is_some_and(|&idx| memberships[idx].1.contains(&k))
                                },
                            );
                            for r in &expanded {
                                if let Some(v) = r.matches.dl_dst {
                                    deliverable.push((nh, v));
                                }
                            }
                            stage1.extend(expanded);
                        }
                        Some(PortId::Phys(owner, idx)) => {
                            // Middlebox/port steering: isolate per sender port,
                            // rewrite the MAC to the target port's.
                            let Some(target_cfg) = participants.get(&owner) else {
                                continue;
                            };
                            let Some(mac) = target_cfg.port_mac(idx) else {
                                return Err(TransformError::NoSuchPort(owner, idx).into());
                            };
                            // Port steering is a *direct output* — `fwd(E1)`
                            // means "this exact port". It deliberately bypasses
                            // the owner's virtual switch (and hence its inbound
                            // policy), which is also what keeps service chains
                            // loop-free: the final hop's steering back to the
                            // consumer must not re-enter the consumer's divert.
                            let sender_ports: Vec<PortId> = match rule.matches.in_port {
                                Some(p) => vec![p],
                                None => participants[&viewer].port_ids().collect(),
                            };
                            for sp in sender_ports {
                                let mut m = rule.matches;
                                m.set(sdx_net::FieldMatch::InPort(sp));
                                let mut mods = rule.mods.clone();
                                mods.push(Mod::SetDlDst(mac));
                                mods.push(Mod::SetLoc(PortId::Phys(owner, idx)));
                                stage1.push(Rule::unicast(m, Action { mods }));
                            }
                        }
                        None => {} // no-op rule (no fwd, no rewrite)
                    }
                }
                Ok((stage1, deliverable))
            });
        // Merge in viewer order; `deliverable` is a set union, so push
        // order within it cannot affect the outcome.
        let mut stage1: Vec<Rule> = Vec::new();
        let mut deliverable: BTreeMap<ParticipantId, BTreeSet<MacAddr>> = BTreeMap::new();
        for batch in batches {
            let (rules, delivered) = batch?;
            stage1.extend(rules);
            for (nh, vmac) in delivered {
                deliverable.entry(nh).or_default().insert(vmac);
            }
        }
        // Per-group defaults (below policy rules).
        for vgroups in groups.values() {
            for g in vgroups {
                if let Some(nh) = g.default_next_hop {
                    deliverable.entry(nh).or_default().insert(g.vmac);
                }
            }
            stage1.extend(transform::default_stage1_rules(vgroups));
        }
        // Global MAC-learning defaults.
        stage1.extend(transform::mac_default_rules(&self.participants));

        // ---- Phase D (parallel per receiver): stage-2 delivery blocks.
        // Each receiver's deliverable VMACs are ordered by *group
        // enumeration rank* (viewer asc, group position), not by MAC
        // bytes: on a fresh unpartitioned allocator the two orders
        // coincide (ids are drawn sequentially in enumeration order), but
        // under sharded sub-range draws — or keyed reuse from an older
        // allocator — byte order would follow the accidents of id
        // assignment and stage-2 rule order would diverge between
        // equivalent compiles. Rank order makes stage 2 a function of the
        // groups themselves.
        let mac_rank: HashMap<MacAddr, u32> = groups
            .values()
            .flatten()
            .enumerate()
            .map(|(i, g)| (g.vmac, i as u32))
            .collect();
        let receivers: Vec<(ParticipantId, &ParticipantConfig)> = self
            .participants
            .iter()
            .map(|(&id, cfg)| (id, cfg))
            .collect();
        let block_results = parallel_map(workers, &receivers, |_, &(id, cfg)| {
            let mut vmacs: Vec<MacAddr> = deliverable
                .get(&id)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            vmacs.sort_by_key(|m| (mac_rank.get(m).copied().unwrap_or(u32::MAX), *m));
            let foreign_mac = |owner: ParticipantId, idx: u8| {
                participants.get(&owner).and_then(|c| c.port_mac(idx))
            };
            transform::stage2_block(cfg, inbound_compiled.get(&id), &vmacs, &foreign_mac)
                .map(|block| (id, block))
        });
        let mut blocks: BTreeMap<ParticipantId, Classifier> = BTreeMap::new();
        for r in block_results {
            let (id, block) = r?;
            blocks.insert(id, block);
        }

        // ---- Phase E: composition, fanned out per receiver block.
        let t_compose = Instant::now();
        let classifier = if self.options.pair_pruning {
            compose_optimized_parallel(&stage1, &blocks, workers)
        } else {
            // Naive baseline: full sequential cross product of the summed
            // stages, as if every pair of participants exchanged traffic.
            let stage1_c = Classifier::from_rules(stage1);
            let stage2_all = Classifier::from_rules(
                blocks
                    .values()
                    .flat_map(|b| b.rules().iter().cloned())
                    .filter(|r| !r.matches.is_wildcard() || !r.is_drop())
                    .collect(),
            );
            stage1_c.sequential(&stage2_all)
        };
        stats.compose_time = t_compose.elapsed();
        reg.observe_duration("compile.compose", stats.compose_time);

        // ---- Report assembly.
        let mut arp_bindings = Vec::new();
        let mut vnh_of = BTreeMap::new();
        for vgroups in groups.values() {
            for g in vgroups {
                arp_bindings.push((g.vnh, g.vmac));
                for &p in &g.prefixes {
                    vnh_of.insert((g.viewer, p), g.vnh);
                }
            }
        }
        stats.rule_count = classifier.len();
        stats.forwarding_rules = classifier.forwarding_rule_count();
        stats.group_count = groups.values().map(Vec::len).sum();
        stats.total = t0.elapsed();
        reg.observe_duration("compile.total", stats.total);
        reg.inc("compile.count");

        Ok(CompileReport {
            classifier,
            groups,
            arp_bindings,
            vnh_of,
            stats,
        })
    }

    /// Phase A, sharded (see [`crate::shard`]): recompute the signature
    /// slice of every **dirty** `(shard, viewer)` unit — a shard is dirty
    /// when the route server's compile-dirty set names a prefix in its
    /// range — reuse every clean unit from the cache, then merge the
    /// disjoint per-shard slices per viewer and run the *global* FEC
    /// partition over the union. Because signatures are per-prefix, the
    /// merged map equals the unsharded phase-A map exactly, so the
    /// partition (and everything downstream) is the unsharded one; the
    /// merge plus the shared partition is the entire cross-shard
    /// coordination pass (per-viewer best-route defaults ride in the
    /// signature, wide-match policies are joined by every shard against
    /// its own slice, and VMAC tag sub-ranges are assigned in phase B).
    ///
    /// The cache is thrown away whole on any fingerprint mismatch (plan
    /// size, structural book epoch, route-server identity,
    /// consistency-sabotage flag). Within a valid cache, two partial
    /// invalidation axes compose:
    ///
    /// * **BGP churn** invalidates by dirty shard — the route server's
    ///   compile-dirty set is authoritative.
    /// * **Policy churn** invalidates per `(participant, shard)`: a viewer
    ///   whose outbound version moved has its fresh rule list diffed
    ///   against the cached one. Signature rule indices are list
    ///   positions, so a unit survives a rule-list change only if (a) its
    ///   memberships reference exclusively the unchanged common prefix of
    ///   the two lists, and (b) no *new* trailing rule's destination
    ///   constraint can reach the unit's shard — where "reach" covers
    ///   both announced subnets inside the constraint's address range and
    ///   announced supernets (whose network addresses are the ≤ 33
    ///   masked-down variants of the constraint's address). Everything
    ///   else about a unit is a function of the rule list and the route
    ///   server, so the surviving units are *exactly* the ones a full
    ///   recompute would reproduce.
    fn compile_fecs_sharded(
        &mut self,
        rs: &RouteServer,
        n: usize,
        workers: usize,
        viewer_rules: &[(ParticipantId, &[FwdRule])],
        reg: &SharedRegistry,
    ) -> Vec<ViewerFecs> {
        let fec_grouping = self.options.fec_grouping;
        let break_consistency = self.options.break_consistency_filter;
        let valid = match self.shard_cache.take() {
            Some(c)
                if c.plan.len() == n
                    && c.versions.book() == self.versions.book()
                    && c.rs_id == rs.compile_id()
                    && c.break_consistency == break_consistency
                    && c.fec_grouping == fec_grouping =>
            {
                Some(c)
            }
            _ => None,
        };
        let drained = rs.take_compile_dirty();
        reg.add("compile.shard.dirty_prefixes.count", drained.len() as u64);
        let (mut cache, dirty, fresh): (ShardCache, BTreeSet<usize>, bool) = match valid {
            Some(c) => {
                let dirty = drained.iter().map(|&p| c.plan.shard_of(p)).collect();
                (c, dirty, false)
            }
            None => (
                ShardCache {
                    // The plan is computed once from the announced table
                    // and held stable while the cache lives: plan
                    // stability is what lets dirty prefixes map to the
                    // same shards across compiles (balance drifts with
                    // churn; correctness does not).
                    plan: ShardPlan::balanced(n, rs.all_prefixes()),
                    versions: self.versions.clone(),
                    rules: HashMap::new(),
                    rs_id: rs.compile_id(),
                    break_consistency,
                    fec_grouping,
                    units: HashMap::new(),
                    merged: HashMap::new(),
                },
                (0..n).collect(),
                true,
            ),
        };
        reg.set_gauge("compile.shard.count", n as i64);
        reg.add("compile.shard.recompiled.count", dirty.len() as u64);
        reg.add("compile.shard.skipped.count", (n - dirty.len()) as u64);

        // ---- Policy-delta invalidation (per participant, per shard). A
        // viewer whose outbound version is unchanged keeps every cached
        // unit; a changed viewer's fresh rule list is diffed against the
        // cached list to find exactly the units the change can perturb.
        let mut policy_stale: HashSet<(usize, ParticipantId)> = HashSet::new();
        let mut retired_units = 0u64;
        if !fresh {
            // Viewers that no longer compile any outbound rules (policy
            // retracted): their units would never be refreshed — purge.
            let current: HashSet<ParticipantId> = viewer_rules.iter().map(|&(v, _)| v).collect();
            let before = cache.units.len();
            cache.units.retain(|&(_, v), _| current.contains(&v));
            retired_units = (before - cache.units.len()) as u64;
            cache.merged.retain(|v, _| current.contains(v));
            cache.rules.retain(|v, _| current.contains(v));
            for &(viewer, new_rules) in viewer_rules {
                let Some(old_rules) = cache.rules.get(&viewer) else {
                    // Viewer gained its first outbound policy since the
                    // cache was built: every unit must be built fresh.
                    policy_stale.extend((0..n).map(|s| (s, viewer)));
                    continue;
                };
                if cache.versions.outbound_of(viewer) == self.versions.outbound_of(viewer) {
                    continue;
                }
                let common = old_rules
                    .iter()
                    .zip(new_rules.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                if common == old_rules.len() && common == new_rules.len() {
                    continue; // version moved, compiled rules did not
                }
                // Shards a *new* trailing rule's BGP join could reach:
                // announced subnets live inside the constraint's address
                // range; announced supernets' network addresses are the
                // constraint's address masked to each shorter length.
                let mut touched: BTreeSet<usize> = BTreeSet::new();
                let mut all_shards = false;
                for rule in &new_rules[common..] {
                    if rule.rewritten_dst().is_some()
                        || !matches!(rule.target, Some(PortId::Virt(_)))
                    {
                        continue; // no BGP join ⇒ no signature contribution
                    }
                    let Some(d) = rule.matches.nw_dst else {
                        all_shards = true;
                        break;
                    };
                    for k in 0..=d.len() {
                        touched.insert(cache.plan.shard_of(Prefix::new(d.addr(), k)));
                    }
                    let lo = cache.plan.shard_of_addr(d.addr());
                    let top = (u64::from(d.addr().0) + d.size() - 1).min(u64::from(u32::MAX));
                    let hi = cache.plan.shard_of_addr(Ipv4Addr(top as u32));
                    touched.extend(lo..=hi);
                }
                for s in 0..n {
                    let index_stale = cache.units.get(&(s, viewer)).is_some_and(|u| {
                        u.sig
                            .values()
                            .any(|(mem, _)| mem.iter().any(|&k| k >= common))
                    });
                    if all_shards || touched.contains(&s) || index_stale {
                        policy_stale.insert((s, viewer));
                    }
                }
            }
        }
        reg.add(
            "policy.dirty_units.count",
            policy_stale.len() as u64 + retired_units,
        );
        // Refresh the cached rule lists and versions to the state this
        // compile runs under (the diff above already consumed the old
        // ones).
        for &(viewer, new_rules) in viewer_rules {
            match cache.rules.get(&viewer) {
                Some(old) if old.as_slice() == new_rules => {}
                _ => {
                    cache.rules.insert(viewer, new_rules.to_vec());
                }
            }
        }
        cache.versions = self.versions.clone();

        // Unit pruning: within a dirty shard, a cached `(shard, viewer)`
        // unit can only have changed if some dirty prefix is already in
        // its signature slice (its rule memberships or best route could
        // move) or is *currently announced* by one of the viewer's rule
        // next-hops (it could enter the slice). Everything the unit reads
        // beyond announcements — export policies, session resets — marks
        // the affected prefixes dirty too, so the test is conservative:
        // it only ever skips units the dirty set provably cannot touch.
        let mut dirty_by_shard: HashMap<usize, Vec<Prefix>> = HashMap::new();
        for &p in &drained {
            dirty_by_shard
                .entry(cache.plan.shard_of(p))
                .or_default()
                .push(p);
        }
        let could_affect = |unit: &ShardUnit, ps: &[Prefix], rules: &[FwdRule]| {
            ps.iter().any(|&p| {
                unit.sig.contains_key(&p)
                    || rules.iter().any(|r| {
                        r.rewritten_dst().is_none()
                            && matches!(
                                r.target,
                                Some(PortId::Virt(nh)) if rs.loc_rib().announces(nh, p)
                            )
                    })
            })
        };
        // Work list: policy-stale units recompute regardless of route
        // dirt; clean-policy viewers walk only the route-dirty shards (the
        // steady-state churn path pays nothing for the policy machinery).
        let policy_viewers: HashSet<ParticipantId> = policy_stale.iter().map(|&(_, v)| v).collect();
        let mut pruned = 0u64;
        let mut work: Vec<(usize, ParticipantId, &[FwdRule])> = Vec::new();
        for &(v, rules) in viewer_rules {
            let route_hit = |s: usize, unit: &ShardUnit| {
                dirty_by_shard
                    .get(&s)
                    .is_none_or(|ps| could_affect(unit, ps, rules))
            };
            if policy_viewers.contains(&v) {
                for s in 0..n {
                    match cache.units.get(&(s, v)) {
                        None => work.push((s, v, rules)),
                        Some(unit) => {
                            if policy_stale.contains(&(s, v)) {
                                work.push((s, v, rules));
                            } else if dirty.contains(&s) {
                                if route_hit(s, unit) {
                                    work.push((s, v, rules));
                                } else {
                                    pruned += 1;
                                }
                            }
                        }
                    }
                }
            } else {
                for &s in &dirty {
                    match cache.units.get(&(s, v)) {
                        None => work.push((s, v, rules)),
                        Some(unit) => {
                            if route_hit(s, unit) {
                                work.push((s, v, rules));
                            } else {
                                pruned += 1;
                            }
                        }
                    }
                }
            }
        }
        reg.add("compile.shard.unit_pruned.count", pruned);
        let plan = &cache.plan;
        let units: Vec<ShardUnit> = parallel_map(workers, &work, |_, &(s, viewer, rules)| {
            let _unit_timer = reg.start_timer("compile.shard.unit");
            let (lo, hi) = plan.range(s);
            let mut sig: BTreeMap<Prefix, GroupMembership> = BTreeMap::new();
            let mut via_cache: HashMap<ParticipantId, Vec<Prefix>> = HashMap::new();
            for (k, rule) in rules.iter().enumerate() {
                if rule.rewritten_dst().is_some() {
                    continue; // rewrite rules join BGP on the NEW address
                }
                let Some(PortId::Virt(nh)) = rule.target else {
                    continue; // port steering / no-op: no BGP join
                };
                let via = via_cache.entry(nh).or_insert_with(|| {
                    if break_consistency {
                        // Sabotage knob, range-restricted like the real
                        // join so the oracle acceptance test still works
                        // against sharded compiles.
                        rs.loc_rib().announced_by_in(nh, lo, hi).collect()
                    } else {
                        rs.prefixes_via_bounded(viewer, nh, lo, hi)
                    }
                });
                for &p in via.iter() {
                    match dst_coverage(&rule.matches, p) {
                        Coverage::None => {}
                        Coverage::Full => {
                            sig.entry(p).or_default().0.insert(k);
                        }
                        Coverage::Partial => {
                            let e = sig.entry(p).or_default();
                            e.0.insert(k);
                            e.1.insert(k);
                        }
                    }
                }
            }
            let best_nh = sig
                .keys()
                .map(|&p| (p, rs.best_for(viewer, p).map(|r| r.source.participant)))
                .collect();
            ShardUnit { sig, best_nh }
        });
        // A recomputed unit that comes back identical to the cached one
        // (churn that canceled, or dirt in prefixes this viewer never
        // sees) leaves the viewer's merged output valid — only genuinely
        // changed units force a re-merge.
        let mut merge_dirty: BTreeSet<ParticipantId> = BTreeSet::new();
        for ((s, viewer, _), unit) in work.into_iter().zip(units) {
            match cache.units.get(&(s, viewer)) {
                Some(old) if *old == unit => {}
                _ => {
                    merge_dirty.insert(viewer);
                    cache.units.insert((s, viewer), unit);
                }
            }
        }

        // Deterministic merge: per viewer, union the per-shard slices
        // (disjoint prefix ranges, so insertion order is irrelevant) and
        // partition globally — identical inputs to the unsharded
        // partition, hence identical groups. Viewers whose units all
        // survived unchanged reuse last compile's merged output.
        let merge_t = Instant::now();
        let fecs: Vec<ViewerFecs> = viewer_rules
            .iter()
            .map(|&(viewer, _)| {
                if !merge_dirty.contains(&viewer) {
                    if let Some(m) = cache.merged.get(&viewer) {
                        return m.clone();
                    }
                }
                let mut sig: BTreeMap<Prefix, &GroupMembership> = BTreeMap::new();
                let mut best_nh: BTreeMap<Prefix, Option<ParticipantId>> = BTreeMap::new();
                for s in 0..n {
                    let unit = cache
                        .units
                        .get(&(s, viewer))
                        .expect("every (shard, viewer) unit is cached or recomputed");
                    for (&p, mem) in &unit.sig {
                        sig.insert(p, mem);
                    }
                    for (&p, &nh) in &unit.best_nh {
                        best_nh.insert(p, nh);
                    }
                }
                // Signature keys borrow the cached sets: grouping only
                // needs Ord/Eq, and `&BTreeSet` compares by contents, so
                // the partition is identical to the unsharded one without
                // cloning two sets per prefix on every compile.
                let items: Vec<(Prefix, _)> = sig
                    .iter()
                    .map(|(&p, &mem)| {
                        let nh = best_nh[&p];
                        (p, (&mem.0, &mem.1, nh, (!fec_grouping).then_some(p)))
                    })
                    .collect();
                let parts = partition_by_signature(items);
                let memberships: Vec<GroupMembership> =
                    parts.iter().map(|ps| (*sig[&ps[0]]).clone()).collect();
                let defaults: Vec<Option<ParticipantId>> =
                    parts.iter().map(|ps| best_nh[&ps[0]]).collect();
                (parts, memberships, defaults)
            })
            .collect();
        for (&(viewer, _), f) in viewer_rules.iter().zip(&fecs) {
            if merge_dirty.contains(&viewer) || !cache.merged.contains_key(&viewer) {
                cache.merged.insert(viewer, f.clone());
            }
        }
        reg.observe_duration("compile.shard.merge", merge_t.elapsed());
        self.shard_cache = Some(cache);
        fecs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_bgp::route_server::ExportPolicy;
    use sdx_net::{ip, prefix, FieldMatch, LocatedPacket, Packet};
    use sdx_policy::Policy as P;

    /// The paper's Figure 1 topology: A (one port), B (two ports), C (one
    /// port), plus D (no policies touch it). B announces p1–p4 but does
    /// not export p4 to A; C announces p1, p2, p4; D announces p5. A runs
    /// the application-specific peering policy; B runs the inbound TE
    /// policy. p5 must remain untouched by SDX processing.
    fn figure1() -> (SdxCompiler, RouteServer) {
        let mut compiler = SdxCompiler::new();
        let a = ParticipantConfig::new(1, 65001, 1).with_outbound(
            (P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(ParticipantId(2))))
                + (P::match_(FieldMatch::TpDst(443)) >> P::fwd(PortId::Virt(ParticipantId(3)))),
        );
        let b = ParticipantConfig::new(2, 65002, 2).with_inbound(
            (P::match_(FieldMatch::NwSrc(prefix("0.0.0.0/1")))
                >> P::fwd(PortId::Phys(ParticipantId(2), 1)))
                + (P::match_(FieldMatch::NwSrc(prefix("128.0.0.0/1")))
                    >> P::fwd(PortId::Phys(ParticipantId(2), 2))),
        );
        let c = ParticipantConfig::new(3, 65003, 1);
        let d = ParticipantConfig::new(4, 65004, 1);
        let mut rs = RouteServer::new();
        rs.add_peer(a.route_source(), ExportPolicy::allow_all());
        let mut b_export = ExportPolicy::allow_all();
        b_export.deny(ParticipantId(1), prefix("40.0.0.0/8"));
        rs.add_peer(b.route_source(), b_export);
        rs.add_peer(c.route_source(), ExportPolicy::allow_all());
        rs.add_peer(d.route_source(), ExportPolicy::allow_all());

        // Announcements: p1..p5 (10/8, 20/8, 30/8, 40/8, 50/8).
        for (pfx, path) in [
            ("10.0.0.0/8", vec![65002, 100, 200]),
            ("20.0.0.0/8", vec![65002, 100, 200]),
            ("30.0.0.0/8", vec![65002, 300]),
            ("40.0.0.0/8", vec![65002, 400]),
        ] {
            rs.process_update(ParticipantId(2), &b.announce([prefix(pfx)], &path));
        }
        for (pfx, path) in [
            ("10.0.0.0/8", vec![65003, 200]),
            ("20.0.0.0/8", vec![65003, 200]),
            ("40.0.0.0/8", vec![65003, 400]),
        ] {
            rs.process_update(ParticipantId(3), &c.announce([prefix(pfx)], &path));
        }
        rs.process_update(
            ParticipantId(4),
            &d.announce([prefix("50.0.0.0/8")], &[65004, 500]),
        );
        compiler.upsert_participant(a);
        compiler.upsert_participant(b);
        compiler.upsert_participant(c);
        compiler.upsert_participant(d);
        (compiler, rs)
    }

    fn run(compiler: &mut SdxCompiler, rs: &RouteServer) -> CompileReport {
        let mut vnh = VnhAllocator::default();
        compiler.compile_all(rs, &mut vnh).expect("compile")
    }

    /// Sends `pkt` through the compiled data plane the way a border router
    /// would: resolve the viewer's VNH for the destination, tag, classify.
    fn send(report: &CompileReport, viewer: u32, pkt: Packet) -> Vec<LocatedPacket> {
        let viewer_id = ParticipantId(viewer);
        // Stage 1 of the multi-stage FIB (what the border router does):
        // find the most specific announced prefix covering the destination.
        let vnh = report
            .vnh_of
            .iter()
            .filter(|((v, p), _)| *v == viewer_id && p.contains(pkt.nw_dst))
            .max_by_key(|((_, p), _)| p.len())
            .map(|(_, nh)| *nh);
        let tagged = match vnh {
            Some(nh) => {
                let vmac = report
                    .arp_bindings
                    .iter()
                    .find(|(a, _)| *a == nh)
                    .map(|(_, m)| *m)
                    .expect("ARP binding for every VNH");
                pkt.with_macs(MacAddr::physical(viewer * 16 + 1), vmac)
            }
            None => pkt,
        };
        let lp = LocatedPacket::at(PortId::Phys(viewer_id, 1), tagged);
        report.classifier.evaluate(&lp)
    }

    #[test]
    fn figure1_app_specific_peering() {
        let (mut compiler, rs) = figure1();
        let report = run(&mut compiler, &rs);

        // Web traffic from A to p1 goes via B — and B's inbound TE sends
        // low-source-half traffic out port B1.
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("10.0.0.9"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(2), 1));

        // High-source-half web traffic exits B2 (inbound TE).
        let out = send(
            &report,
            1,
            Packet::tcp(ip("200.0.0.1"), ip("10.0.0.9"), 5000, 80),
        );
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(2), 2));

        // HTTPS traffic to p1 goes via C.
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("10.0.0.9"), 5000, 443),
        );
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(3), 1));
    }

    #[test]
    fn figure1_default_follows_best_route() {
        let (mut compiler, rs) = figure1();
        let report = run(&mut compiler, &rs);
        // Non-web traffic to p1 follows A's best BGP route (C: shorter path).
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("10.0.0.9"), 5000, 22),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(3), 1));
        // Traffic to p3 (announced only by B) defaults via B.
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("30.0.0.9"), 5000, 22),
        );
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(2), 1));
    }

    #[test]
    fn figure1_bgp_consistency() {
        let (mut compiler, rs) = figure1();
        let report = run(&mut compiler, &rs);
        // B did not export p4 to A: A's web traffic to p4 must NOT go to B.
        // Default is C (the only exporter), and the web policy cannot
        // override it toward B.
        let out = send(
            &report,
            1,
            Packet::tcp(ip("99.0.0.1"), ip("40.0.0.9"), 5000, 80),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(ParticipantId(3), 1));
        // p5 is untouched by any policy: no VNH was allocated for it.
        assert!(!report
            .vnh_of
            .keys()
            .any(|(_, p)| *p == prefix("50.0.0.0/8")));
        // Default delivery for p5 still works via the MAC-learning rules
        // (next hop = D's physical address, untouched by the SDX)…
        let best = rs.best_for(ParticipantId(1), prefix("50.0.0.0/8")).unwrap();
        assert_eq!(best.source.participant, ParticipantId(4));
    }

    #[test]
    fn figure1_group_shapes() {
        let (mut compiler, rs) = figure1();
        let report = run(&mut compiler, &rs);
        // Only A has outbound policies, so only A has groups.
        assert!(report.groups[&ParticipantId(1)].len() >= 2);
        assert!(!report.groups.contains_key(&ParticipantId(2)));
        // p1 and p2 share identical behaviour → same group (the paper's
        // worked example).
        let ga = &report.groups[&ParticipantId(1)];
        let find = |pfx: &str| {
            ga.iter()
                .position(|g| g.prefixes.contains(&prefix(pfx)))
                .unwrap_or_else(|| panic!("no group contains {pfx}"))
        };
        assert_eq!(find("10.0.0.0/8"), find("20.0.0.0/8"));
        assert_ne!(find("10.0.0.0/8"), find("30.0.0.0/8"));
        assert_ne!(find("10.0.0.0/8"), find("40.0.0.0/8"));
    }

    #[test]
    fn memoization_hits_on_recompile() {
        let (mut compiler, rs) = figure1();
        let mut vnh = VnhAllocator::default();
        let r1 = compiler.compile_all(&rs, &mut vnh).unwrap();
        assert_eq!(r1.stats.memo_hits, 0);
        let r2 = compiler.compile_all(&rs, &mut vnh).unwrap();
        assert_eq!(r2.stats.memo_hits, 2, "A's outbound + B's inbound cached");
    }

    #[test]
    fn naive_composition_agrees_with_optimized() {
        let (mut compiler, rs) = figure1();
        let opt = run(&mut compiler, &rs);
        compiler.options.pair_pruning = false;
        compiler.options.memoize = false;
        let mut vnh = VnhAllocator::default();
        let naive = compiler.compile_all(&rs, &mut vnh).unwrap();
        // Same observable behaviour on a probe battery. (VNH ids realign
        // because allocation order is deterministic.)
        for (src, dst, port) in [
            ("99.0.0.1", "10.0.0.9", 80u16),
            ("200.0.0.1", "10.0.0.9", 80),
            ("99.0.0.1", "10.0.0.9", 443),
            ("99.0.0.1", "30.0.0.9", 22),
            ("99.0.0.1", "40.0.0.9", 80),
        ] {
            let a = send(&opt, 1, Packet::tcp(ip(src), ip(dst), 5000, port));
            let b = send(&naive, 1, Packet::tcp(ip(src), ip(dst), 5000, port));
            assert_eq!(a, b, "probe {src}->{dst}:{port}");
        }
    }

    /// Field-by-field CompileReport equality (stats carry wall-clock, so
    /// they are deliberately excluded).
    fn assert_reports_identical(a: &CompileReport, b: &CompileReport, what: &str) {
        assert_eq!(a.classifier, b.classifier, "{what}: classifier differs");
        assert_eq!(a.groups, b.groups, "{what}: groups differ");
        assert_eq!(
            a.arp_bindings, b.arp_bindings,
            "{what}: ARP bindings differ"
        );
        assert_eq!(a.vnh_of, b.vnh_of, "{what}: VNH map differs");
    }

    #[test]
    fn parallel_pipeline_output_is_byte_identical_to_serial() {
        let (mut compiler, rs) = figure1();
        compiler.options.parallelism = Parallelism::Serial;
        let serial = run(&mut compiler, &rs);
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            compiler.options.parallelism = par;
            let report = run(&mut compiler, &rs);
            assert_reports_identical(&report, &serial, &format!("{par:?}"));
        }
    }

    #[test]
    fn index_ablation_output_is_byte_identical() {
        let (mut compiler, rs) = figure1();
        let indexed = run(&mut compiler, &rs);
        compiler.options.index_acceleration = false;
        let scanned = run(&mut compiler, &rs);
        assert_reports_identical(&indexed, &scanned, "index ablation");
    }

    #[test]
    fn memo_is_bounded_with_lru_eviction() {
        let mut compiler = SdxCompiler::new();
        compiler.options.memo_cap = 2;
        let pol = |port: u16| {
            P::match_(FieldMatch::TpDst(port)) >> P::fwd(PortId::Virt(ParticipantId(2)))
        };
        let mut stats = CompileStats::default();
        for port in 0..5u16 {
            compiler.compile_raw(&pol(port), &mut stats);
        }
        assert_eq!(compiler.memo_len(), 2, "cap bounds the cache");
        assert_eq!(
            compiler
                .telemetry()
                .counter("compile.memo_evictions.count")
                .get(),
            3
        );
        // LRU: the most recent entries survive, the oldest were evicted.
        compiler.compile_raw(&pol(4), &mut stats);
        compiler.compile_raw(&pol(3), &mut stats);
        assert_eq!(stats.memo_hits, 2, "recent entries still cached");
        compiler.compile_raw(&pol(0), &mut stats);
        assert_eq!(stats.memo_hits, 2, "oldest entry was evicted");
    }

    #[test]
    fn memo_evictions_count_through_compile_all() {
        // End-to-end variant of the LRU test: the real pipeline compiles
        // one raw classifier per installed policy (A's outbound + B's
        // inbound on Figure 1), so a cap of 1 forces an eviction *during*
        // `compile_all` and the telemetry counter must say so.
        let (mut compiler, rs) = figure1();
        compiler.options.memo_cap = 1;
        let mut vnh = VnhAllocator::default();
        compiler.compile_all(&rs, &mut vnh).expect("compiles");
        assert_eq!(compiler.memo_len(), 1, "cap bounds the cache");
        assert!(
            compiler
                .telemetry()
                .counter("compile.memo_evictions.count")
                .get()
                >= 1,
            "compile_all past memo_cap must record evictions"
        );
    }

    #[test]
    fn sharded_compile_is_canonically_identical_to_unsharded() {
        let (mut compiler, rs) = figure1();
        let pool = VnhAllocator::default_pool();
        let baseline = crate::shard::canonicalize_report(&run(&mut compiler, &rs), pool);
        for sharding in [
            crate::shard::Sharding::Shards(2),
            crate::shard::Sharding::Shards(8),
            crate::shard::Sharding::Auto,
        ] {
            compiler.options.sharding = sharding;
            let report = crate::shard::canonicalize_report(&run(&mut compiler, &rs), pool);
            assert_reports_identical(&report, &baseline, &format!("{sharding:?}"));
        }
    }

    #[test]
    fn sharded_idle_recompile_skips_every_shard() {
        let (mut compiler, rs) = figure1();
        compiler.options.sharding = crate::shard::Sharding::Shards(4);
        let mut vnh = VnhAllocator::default();
        let r1 = compiler.compile_all(&rs, &mut vnh).unwrap();
        let skipped = compiler.telemetry().counter("compile.shard.skipped.count");
        let recompiled = compiler
            .telemetry()
            .counter("compile.shard.recompiled.count");
        let (s0, r0) = (skipped.get(), recompiled.get());
        // Nothing changed: the cache serves every unit, and keyed VNH
        // reuse makes the reports identical without canonicalization.
        let r2 = compiler.compile_all(&rs, &mut vnh).unwrap();
        assert_eq!(skipped.get() - s0, 4, "all four shards skipped");
        assert_eq!(recompiled.get() - r0, 0, "no shard recomputed");
        assert_reports_identical(&r1, &r2, "idle sharded recompile");
    }

    #[test]
    fn sharded_delta_recompile_touches_only_dirty_shards_and_matches_unsharded() {
        let (mut compiler, mut rs) = figure1();
        compiler.options.sharding = crate::shard::Sharding::Shards(4);
        let mut vnh = VnhAllocator::default();
        compiler.compile_all(&rs, &mut vnh).unwrap();
        // One prefix churns (B's path for p1 changes): exactly one shard
        // is dirty, and the patched sharded output equals a from-scratch
        // unsharded compile of the same world.
        let msg = compiler
            .participant(ParticipantId(2))
            .unwrap()
            .announce([prefix("10.0.0.0/8")], &[65002, 999]);
        rs.process_update(ParticipantId(2), &msg);
        let recompiled = compiler
            .telemetry()
            .counter("compile.shard.recompiled.count");
        let r0 = recompiled.get();
        let sharded = compiler.compile_all(&rs, &mut vnh).unwrap();
        assert_eq!(recompiled.get() - r0, 1, "one dirty prefix, one shard");
        let (mut fresh, mut rs2) = figure1();
        rs2.process_update(ParticipantId(2), &msg);
        let unsharded = run(&mut fresh, &rs2);
        let pool = VnhAllocator::default_pool();
        assert_reports_identical(
            &crate::shard::canonicalize_report(&sharded, pool),
            &crate::shard::canonicalize_report(&unsharded, pool),
            "sharded delta vs unsharded from scratch",
        );
    }

    #[test]
    fn export_policy_change_leaves_idle_shards_cache_served() {
        let (mut compiler, mut rs) = figure1();
        compiler.options.sharding = crate::shard::Sharding::Shards(4);
        let mut vnh = VnhAllocator::default();
        compiler.compile_all(&rs, &mut vnh).unwrap();
        // D announces exactly one prefix (50/8). Denying D's exports to A
        // dirties only 50/8's shard; the other three are cache-served.
        let mut export = ExportPolicy::allow_all();
        export.deny(ParticipantId(1), prefix("50.0.0.0/8"));
        rs.set_export_policy(ParticipantId(4), export.clone());
        let skipped = compiler.telemetry().counter("compile.shard.skipped.count");
        let recompiled = compiler
            .telemetry()
            .counter("compile.shard.recompiled.count");
        let (s0, r0) = (skipped.get(), recompiled.get());
        let warm = compiler.compile_all(&rs, &mut vnh).unwrap();
        assert_eq!(recompiled.get() - r0, 1, "only 50/8's shard recompiles");
        assert_eq!(skipped.get() - s0, 3, "idle shards are cache-served");
        // The narrowed invalidation is still correct: the patched table
        // equals a from-scratch compile of the same world.
        let (mut cold, mut rs2) = figure1();
        rs2.set_export_policy(ParticipantId(4), export);
        cold.options.sharding = crate::shard::Sharding::Shards(4);
        let cold_report = run(&mut cold, &rs2);
        let pool = VnhAllocator::default_pool();
        assert_reports_identical(
            &crate::shard::canonicalize_report(&warm, pool),
            &crate::shard::canonicalize_report(&cold_report, pool),
            "export-policy delta vs from scratch",
        );
    }

    #[test]
    fn shard_cache_invalidates_on_policy_change_and_foreign_route_server() {
        let (mut compiler, rs) = figure1();
        compiler.options.sharding = crate::shard::Sharding::Shards(4);
        let mut vnh = VnhAllocator::default();
        compiler.compile_all(&rs, &mut vnh).unwrap();
        let recompiled = compiler
            .telemetry()
            .counter("compile.shard.recompiled.count");
        let dirty_units = compiler.telemetry().counter("policy.dirty_units.count");
        // An inbound edit never touches phase A: zero shards, zero units.
        let (r0, d0) = (recompiled.get(), dirty_units.get());
        compiler.set_inbound(ParticipantId(2), None);
        compiler.compile_all(&rs, &mut vnh).unwrap();
        assert_eq!(recompiled.get() - r0, 0, "inbound edit recompiles nothing");
        assert_eq!(dirty_units.get() - d0, 0, "no unit dirtied");
        // An outbound edit invalidates only that viewer's units — and only
        // where the rule-list diff can reach; other viewers stay cached.
        let d1 = dirty_units.get();
        compiler.set_outbound(
            ParticipantId(1),
            Some(P::match_(FieldMatch::TpDst(80)) >> P::fwd(PortId::Virt(ParticipantId(2)))),
        );
        compiler.compile_all(&rs, &mut vnh).unwrap();
        let dirtied = dirty_units.get() - d1;
        assert!(dirtied >= 1, "the edited viewer's units recompute");
        assert!(dirtied <= 4, "only one viewer's units recompute: {dirtied}");
        // A structural book mutation bumps the epoch → full rebuild.
        let r1 = recompiled.get();
        compiler.upsert_participant(ParticipantConfig::new(9, 65009, 1));
        compiler.compile_all(&rs, &mut vnh).unwrap();
        assert_eq!(
            recompiled.get() - r1,
            4,
            "book mutation rebuilds all shards"
        );
        // A *different* route server instance (here: a clone) has a fresh
        // compile identity → full rebuild, never stale slices.
        let r2 = recompiled.get();
        let snapshot = rs.clone();
        compiler.compile_all(&snapshot, &mut vnh).unwrap();
        assert_eq!(
            recompiled.get() - r2,
            4,
            "foreign instance rebuilds all shards"
        );
    }

    #[test]
    fn policy_delta_recompile_matches_from_scratch() {
        // The equivalence spine of the policy-churn path: mutate policies
        // every which way against a warm shard cache and require the
        // incremental output to equal a cold compile of the same world.
        let (mut compiler, rs) = figure1();
        compiler.options.sharding = crate::shard::Sharding::Shards(4);
        let mut vnh = VnhAllocator::default();
        compiler.compile_all(&rs, &mut vnh).unwrap();
        let pool = VnhAllocator::default_pool();
        let mutations: Vec<(&str, Box<dyn Fn(&mut SdxCompiler)>)> = vec![
            (
                "narrow an existing outbound policy",
                Box::new(|c: &mut SdxCompiler| {
                    c.set_outbound(
                        ParticipantId(1),
                        Some(
                            P::match_(FieldMatch::TpDst(80))
                                >> P::fwd(PortId::Virt(ParticipantId(2))),
                        ),
                    );
                }),
            ),
            (
                "grow it back with a dst-constrained clause",
                Box::new(|c: &mut SdxCompiler| {
                    c.set_outbound(
                        ParticipantId(1),
                        Some(
                            (P::match_(FieldMatch::TpDst(80))
                                >> P::fwd(PortId::Virt(ParticipantId(2))))
                                + (P::match_(FieldMatch::NwDst(prefix("20.0.0.0/8")))
                                    >> P::match_(FieldMatch::TpDst(443))
                                    >> P::fwd(PortId::Virt(ParticipantId(3)))),
                        ),
                    );
                }),
            ),
            (
                "first-ever policy for a quiet viewer",
                Box::new(|c: &mut SdxCompiler| {
                    c.set_outbound(
                        ParticipantId(4),
                        Some(
                            P::match_(FieldMatch::TpDst(443))
                                >> P::fwd(PortId::Virt(ParticipantId(2))),
                        ),
                    );
                }),
            ),
            (
                "retract a viewer's policy entirely",
                Box::new(|c: &mut SdxCompiler| {
                    c.set_outbound(ParticipantId(4), None);
                }),
            ),
        ];
        for (what, mutate) in mutations {
            mutate(&mut compiler);
            let incremental = compiler.compile_all(&rs, &mut vnh).unwrap();
            let (mut cold, rs2) = (figure1().0, rs.clone());
            // Copy the warm book over so the cold compiler sees the same
            // post-mutation world.
            for cfg in compiler.participants().clone().into_values() {
                cold.upsert_participant(cfg);
            }
            let cold_report = run(&mut cold, &rs2);
            assert_reports_identical(
                &crate::shard::canonicalize_report(&incremental, pool),
                &crate::shard::canonicalize_report(&cold_report, pool),
                what,
            );
        }
    }

    #[test]
    fn fec_ablation_allocates_per_prefix() {
        let (mut compiler, rs) = figure1();
        let grouped = run(&mut compiler, &rs);
        compiler.options.fec_grouping = false;
        compiler.clear_memo();
        let mut vnh = VnhAllocator::default();
        let ungrouped = compiler.compile_all(&rs, &mut vnh).unwrap();
        assert!(ungrouped.stats.group_count > grouped.stats.group_count);
        assert!(ungrouped.stats.forwarding_rules >= grouped.stats.forwarding_rules);
    }
}
