//! The §4.1 policy transformations, applied at the classifier level.
//!
//! The paper's pipeline transforms each participant's abstract policy in
//! four steps: (1) isolation to its virtual switch, (2) restriction to
//! BGP-consistent forwarding, (3) defaulting to the best BGP route, and
//! (4) composition across the virtual topology. We implement the steps on
//! *compiled classifiers* rather than policy trees: a compiled rule exposes
//! exactly the destination constraint and forwarding target the BGP-
//! consistency and FEC machinery needs, with no normal-form assumptions
//! about how the participant wrote the policy.
//!
//! Key encoding fact used throughout (see [`crate::fec`]): VMACs are
//! globally unique per (viewer, group), and only the viewer's own border
//! router ever tags packets with its groups' VMACs — so rules matching a
//! VMAC need **no in-port isolation**. Only rules that cannot be expressed
//! through the VMAC tag (physical-port steering to middleboxes) are
//! isolated by explicit in-port matches, duplicated per physical port.

use std::collections::BTreeMap;

use sdx_net::{FieldMatch, HeaderMatch, MacAddr, Mod, ParticipantId, PortId, Prefix};
use sdx_policy::classifier::{Action, Classifier, Rule};

use crate::fec::FecGroup;
use crate::participant::ParticipantConfig;

/// Errors raised while transforming participant policies.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransformError {
    /// An outbound rule multicasts; the SDX optimizes for unicast outbound
    /// policies (§4.3.1) and rejects multicast ones at installation time.
    MulticastOutbound(ParticipantId),
    /// An inbound rule forwards to a port the participant does not own —
    /// an isolation violation.
    InboundEscapesSwitch(ParticipantId, PortId),
    /// An outbound rule matches on a port outside the writer's switch.
    MatchOutsideSwitch(ParticipantId, PortId),
    /// An inbound rule forwards to a nonexistent local port index.
    NoSuchPort(ParticipantId, u8),
}

impl core::fmt::Display for TransformError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransformError::MulticastOutbound(p) => {
                write!(f, "{p}: multicast outbound policies are not supported")
            }
            TransformError::InboundEscapesSwitch(p, port) => {
                write!(
                    f,
                    "{p}: inbound policy forwards outside its switch ({port})"
                )
            }
            TransformError::MatchOutsideSwitch(p, port) => {
                write!(f, "{p}: policy matches traffic outside its switch ({port})")
            }
            TransformError::NoSuchPort(p, idx) => {
                write!(f, "{p}: no physical port with index {idx}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// One outbound forwarding clause extracted from a compiled policy:
/// `matches → forward to target` (unicast).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FwdRule {
    /// The match constraint as the participant wrote it (pre-BGP).
    pub matches: HeaderMatch,
    /// Modifications the rule applies before forwarding (e.g. a dst-IP
    /// rewrite for the load-balancing application).
    pub mods: Vec<Mod>,
    /// Where the traffic goes: a peer's virtual switch, a specific
    /// physical port (middlebox steering), or `None` — "follow BGP for the
    /// (possibly rewritten) destination", the paper's load-balancer idiom
    /// `match(...) >> mod(dstip=...)` with no explicit `fwd`.
    pub target: Option<PortId>,
}

impl FwdRule {
    /// The destination-address rewrite this rule applies, if any (the
    /// last `SetNwDst` in its modification list).
    pub fn rewritten_dst(&self) -> Option<sdx_net::Ipv4Addr> {
        self.mods.iter().rev().find_map(|m| match m {
            Mod::SetNwDst(a) => Some(*a),
            _ => None,
        })
    }
}

/// Extracts the forwarding clauses of a compiled outbound policy, in
/// priority order, validating isolation and the unicast restriction.
/// Drop rules are skipped: under the paper's `if_` construction, traffic a
/// policy does not forward falls through to default BGP forwarding.
pub fn outbound_fwd_rules(
    writer: ParticipantId,
    compiled: &Classifier,
) -> Result<Vec<FwdRule>, TransformError> {
    let mut out = Vec::new();
    for rule in compiled.rules() {
        if rule.is_drop() {
            continue;
        }
        if rule.actions.len() > 1 {
            return Err(TransformError::MulticastOutbound(writer));
        }
        if let Some(port) = rule.matches.in_port {
            if !crate::vswitch::may_reference(writer, port, true) {
                return Err(TransformError::MatchOutsideSwitch(writer, port));
            }
        }
        let action = &rule.actions[0];
        let target = action.mods.iter().rev().find_map(|m| match m {
            Mod::SetLoc(p) => Some(*p),
            _ => None,
        });
        let mods: Vec<Mod> = action
            .mods
            .iter()
            .copied()
            .filter(|m| !matches!(m, Mod::SetLoc(_)))
            .collect();
        out.push(FwdRule {
            matches: rule.matches,
            mods,
            target,
        });
    }
    Ok(out)
}

/// Does `rule` apply to (traffic destined into) `prefix`?
/// `Full` when the rule's destination constraint covers the whole prefix
/// (the constraint can then be replaced by the VMAC tag), `Partial` when it
/// overlaps a sub-range (the constraint must be kept alongside the tag).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Coverage {
    /// The rule does not touch the prefix.
    None,
    /// The rule covers part of the prefix.
    Partial,
    /// The rule covers the entire prefix.
    Full,
}

/// Classifies how a rule's `nw_dst` constraint covers an announced prefix.
pub fn dst_coverage(matches: &HeaderMatch, prefix: Prefix) -> Coverage {
    match matches.nw_dst {
        None => Coverage::Full,
        Some(m) if m.covers(prefix) => Coverage::Full,
        Some(m) if prefix.covers(m) => Coverage::Partial,
        Some(_) => Coverage::None,
    }
}

/// Expands one outbound forwarding rule over the viewer's FEC groups:
/// for every group wholly inside the rule's affected set, emit a rule
/// matching the group's VMAC (destination-prefix constraint dropped when
/// the rule covers the whole group, kept when partial).
///
/// `affected(g)` says whether group `g` lies inside this rule's
/// BGP-filtered destination set; `partial(g)` whether any member prefix is
/// only partially covered.
pub fn expand_fwd_rule(
    rule: &FwdRule,
    target: PortId,
    groups: &[FecGroup],
    affected: impl Fn(&FecGroup) -> bool,
    partial: impl Fn(&FecGroup) -> bool,
) -> Vec<Rule> {
    let mut out = Vec::new();
    for g in groups {
        if !affected(g) {
            continue;
        }
        let mut m = rule.matches;
        if !partial(g) {
            m.nw_dst = None; // the VMAC tag subsumes the destination match
        }
        m.set(FieldMatch::DlDst(g.vmac));
        // The VMAC implies the sender, so no isolation in-port is *added*;
        // a port the participant matched on itself (service chaining keys
        // each hop on the previous middlebox's port) is preserved.
        if rule.matches.in_port.is_none() {
            m.in_port = None;
        }
        let mut mods = rule.mods.clone();
        mods.push(Mod::SetLoc(target));
        out.push(Rule::unicast(m, Action { mods }));
    }
    out
}

/// Builds the viewer's stage-1 default rules: one per FEC group, matching
/// the group's VMAC and forwarding to the group's default next hop (drop
/// if no route remains). These sit *below* the policy rules, realizing the
/// paper's `if_(policy matches, policy, default)`.
pub fn default_stage1_rules(groups: &[FecGroup]) -> Vec<Rule> {
    groups
        .iter()
        .map(|g| {
            let m = HeaderMatch::of(FieldMatch::DlDst(g.vmac));
            match g.default_next_hop {
                Some(nh) => Rule::unicast(m, Action::of(Mod::SetLoc(PortId::Virt(nh)))),
                None => Rule::drop(m),
            }
        })
        .collect()
}

/// The global MAC-"learning" default rules (§4.1): traffic whose
/// destination MAC is a participant port's physical MAC goes to that
/// participant's virtual switch. These carry the default forwarding of
/// every prefix the SDX left untouched (the route server re-advertised it
/// with the real next hop). Sender-independent, hence un-isolated.
pub fn mac_default_rules(participants: &BTreeMap<ParticipantId, ParticipantConfig>) -> Vec<Rule> {
    let mut out = Vec::new();
    for cfg in participants.values() {
        for port in &cfg.ports {
            out.push(Rule::unicast(
                HeaderMatch::of(FieldMatch::DlDst(port.mac)),
                Action::of(Mod::SetLoc(PortId::Virt(cfg.id))),
            ));
        }
    }
    out
}

/// Builds participant `cfg`'s stage-2 block: its (isolated, MAC-rewriting)
/// inbound policy rules above the delivery defaults.
///
/// * `inbound` — the compiled raw inbound policy, or `None`;
/// * `deliverable_vmacs` — the VMAC tags whose traffic can arrive at this
///   participant (its own groups' defaults plus peers' policy targets);
///   each needs a delivery rule rewriting the tag to a physical MAC;
/// * `foreign_mac` — resolves `(participant, port index)` to that port's
///   MAC for *middlebox steering*: an inbound policy may divert arriving
///   traffic to another participant's physical port (the paper's
///   `fwd(E1)` redirection, §3.2), though never to a peer's virtual
///   switch.
pub fn stage2_block(
    cfg: &ParticipantConfig,
    inbound: Option<&Classifier>,
    deliverable_vmacs: &[MacAddr],
    foreign_mac: &dyn Fn(ParticipantId, u8) -> Option<MacAddr>,
) -> Result<Classifier, TransformError> {
    let me = cfg.id;
    let ingress = FieldMatch::InPort(PortId::Virt(me));
    let mut rules = Vec::new();

    // Inbound policy rules: isolate to the participant's virtual ingress,
    // rewrite the destination MAC to the chosen physical port's.
    if let Some(c) = inbound {
        for r in c.rules() {
            if r.is_drop() {
                continue; // unfiltered traffic falls through to delivery
            }
            if let Some(port) = r.matches.in_port {
                if !crate::vswitch::may_reference(me, port, true) {
                    return Err(TransformError::MatchOutsideSwitch(me, port));
                }
            }
            let mut actions = Vec::with_capacity(r.actions.len());
            for a in &r.actions {
                let target = a.mods.iter().rev().find_map(|m| match m {
                    Mod::SetLoc(p) => Some(*p),
                    _ => None,
                });
                let Some(PortId::Phys(owner, idx)) = target else {
                    let bad = target.unwrap_or(PortId::Virt(me));
                    return Err(TransformError::InboundEscapesSwitch(me, bad));
                };
                // Own port: normal delivery. Foreign physical port:
                // middlebox steering (allowed; matching there is not).
                let mac = if owner == me {
                    cfg.port_mac(idx)
                        .ok_or(TransformError::NoSuchPort(me, idx))?
                } else {
                    foreign_mac(owner, idx).ok_or(TransformError::NoSuchPort(owner, idx))?
                };
                let mut mods: Vec<Mod> = a
                    .mods
                    .iter()
                    .copied()
                    .filter(|m| !matches!(m, Mod::SetLoc(_)))
                    .collect();
                mods.push(Mod::SetDlDst(mac));
                mods.push(Mod::SetLoc(PortId::Phys(owner, idx)));
                actions.push(Action { mods });
            }
            rules.push(Rule {
                matches: r.matches.and(ingress),
                actions,
            });
        }
    }

    // Delivery defaults: physical-MAC traffic out the matching port…
    for port in &cfg.ports {
        rules.push(Rule::unicast(
            HeaderMatch::of(ingress).and(FieldMatch::DlDst(port.mac)),
            Action::of(Mod::SetLoc(PortId::Phys(me, port.index))),
        ));
    }
    // …and VMAC-tagged traffic rewritten to the primary port's MAC.
    let primary = cfg.primary_port();
    for &vmac in deliverable_vmacs {
        rules.push(Rule::unicast(
            HeaderMatch::of(ingress).and(FieldMatch::DlDst(vmac)),
            Action {
                mods: vec![
                    Mod::SetDlDst(primary.mac),
                    Mod::SetLoc(PortId::Phys(me, primary.index)),
                ],
            },
        ));
    }

    Ok(Classifier::from_rules(rules))
}

/// Optimized virtual-topology composition (§4.3.1): each stage-1 rule is
/// sequentially composed *only* with the stage-2 block of the participant
/// it forwards to, instead of with the sum of every participant's policy.
/// Rule order — and therefore first-match semantics — is preserved by
/// emitting composition results in stage-1 rule order.
pub fn compose_optimized(
    stage1: &[Rule],
    blocks: &BTreeMap<ParticipantId, Classifier>,
) -> Classifier {
    compose_optimized_parallel(stage1, blocks, 1)
}

/// The stage-2 receiver a stage-1 rule forwards to, if any.
///
/// Unicast stage-1 rules by construction (multicast outbound is rejected
/// earlier; defaults and MAC rules are unicast).
fn compose_receiver(r1: &Rule) -> Option<ParticipantId> {
    if r1.is_drop() {
        return None;
    }
    r1.actions[0].mods.iter().rev().find_map(|m| match m {
        Mod::SetLoc(PortId::Virt(p)) => Some(*p),
        _ => None,
    })
}

/// Composes one stage-1 rule with its receiver's stage-2 block.
fn compose_rule(r1: &Rule, blocks: &BTreeMap<ParticipantId, Classifier>) -> Vec<Rule> {
    let Some(receiver) = compose_receiver(r1) else {
        // Drop rule, or already at a physical location (shouldn't happen
        // in stage 1, but harmless): emit unchanged.
        return vec![r1.clone()];
    };
    let Some(block) = blocks.get(&receiver) else {
        // Forwarding to a participant with no stage-2 block: drop.
        return vec![Rule::drop(r1.matches)];
    };
    let a = &r1.actions[0];
    let mut rules = Vec::new();
    for r2 in block.rules() {
        if let Some(m) = r1.matches.seq_compose(&a.mods, &r2.matches) {
            rules.push(Rule {
                matches: m,
                actions: r2.actions.iter().map(|a2| a.then(a2)).collect(),
            });
        }
    }
    rules
}

/// [`compose_optimized`] fanned out over `workers` scoped threads, one
/// work batch per receiver block (all the stage-1 rules forwarding to one
/// participant compose against the same block, so a worker touches one
/// block at a time). Each rule's composition results are scattered back by
/// stage-1 rule index before the final classifier is built, so first-match
/// order — and hence the output — is byte-identical to the serial path.
pub fn compose_optimized_parallel(
    stage1: &[Rule],
    blocks: &BTreeMap<ParticipantId, Classifier>,
    workers: usize,
) -> Classifier {
    let rules: Vec<Rule> = if workers <= 1 {
        stage1
            .iter()
            .flat_map(|r1| compose_rule(r1, blocks))
            .collect()
    } else {
        let mut by_receiver: BTreeMap<Option<ParticipantId>, Vec<usize>> = BTreeMap::new();
        for (i, r1) in stage1.iter().enumerate() {
            by_receiver.entry(compose_receiver(r1)).or_default().push(i);
        }
        let batches: Vec<Vec<usize>> = by_receiver.into_values().collect();
        let composed = crate::par::parallel_map(workers, &batches, |_, batch| {
            batch
                .iter()
                .map(|&i| (i, compose_rule(&stage1[i], blocks)))
                .collect::<Vec<_>>()
        });
        let mut slots: Vec<Vec<Rule>> = vec![Vec::new(); stage1.len()];
        for (i, composed_rules) in composed.into_iter().flatten() {
            slots[i] = composed_rules;
        }
        slots.into_iter().flatten().collect()
    };
    let mut c = Classifier::from_rules(rules);
    c.shadow_eliminate();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fec::{FecGroup, FecId};
    use sdx_net::{ip, prefix, Ipv4Addr};
    use sdx_policy::{compile, Policy};

    fn pid(n: u32) -> ParticipantId {
        ParticipantId(n)
    }

    fn group(id: u32, viewer: u32, prefixes: &[&str], nh: Option<u32>) -> FecGroup {
        FecGroup {
            id: FecId(id),
            viewer: pid(viewer),
            prefixes: prefixes.iter().map(|s| prefix(s)).collect(),
            vnh: Ipv4Addr::new(172, 16, 128, id as u8),
            vmac: MacAddr::vmac(id),
            default_next_hop: nh.map(pid),
        }
    }

    #[test]
    fn outbound_extraction_orders_and_filters() {
        let pol = (Policy::match_(FieldMatch::TpDst(80)) >> Policy::fwd(PortId::Virt(pid(2))))
            + (Policy::match_(FieldMatch::TpDst(443)) >> Policy::fwd(PortId::Virt(pid(3))));
        let rules = outbound_fwd_rules(pid(1), &compile(&pol)).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].target, Some(PortId::Virt(pid(2))));
        assert_eq!(rules[0].matches.tp_dst, Some(80));
        assert_eq!(rules[1].target, Some(PortId::Virt(pid(3))));
        assert!(rules[0].mods.is_empty());
    }

    #[test]
    fn outbound_extraction_keeps_rewrites() {
        let pol = Policy::match_(FieldMatch::NwDst(prefix("74.125.1.1/32")))
            >> Policy::modify(Mod::SetNwDst(ip("74.125.224.161")))
            >> Policy::fwd(PortId::Virt(pid(2)));
        let rules = outbound_fwd_rules(pid(1), &compile(&pol)).unwrap();
        assert_eq!(rules[0].mods, vec![Mod::SetNwDst(ip("74.125.224.161"))]);
    }

    #[test]
    fn outbound_multicast_rejected() {
        let pol = Policy::fwd(PortId::Virt(pid(2))) + Policy::fwd(PortId::Virt(pid(3)));
        assert_eq!(
            outbound_fwd_rules(pid(1), &compile(&pol)),
            Err(TransformError::MulticastOutbound(pid(1)))
        );
    }

    #[test]
    fn outbound_match_on_foreign_port_rejected() {
        let pol = Policy::match_(FieldMatch::InPort(PortId::Phys(pid(2), 1)))
            >> Policy::fwd(PortId::Virt(pid(3)));
        assert!(matches!(
            outbound_fwd_rules(pid(1), &compile(&pol)),
            Err(TransformError::MatchOutsideSwitch(..))
        ));
    }

    #[test]
    fn coverage_classification() {
        let full = HeaderMatch::of(FieldMatch::NwDst(prefix("10.0.0.0/8")));
        assert_eq!(dst_coverage(&full, prefix("10.1.0.0/16")), Coverage::Full);
        assert_eq!(dst_coverage(&full, prefix("10.0.0.0/8")), Coverage::Full);
        assert_eq!(dst_coverage(&full, prefix("0.0.0.0/4")), Coverage::Partial);
        assert_eq!(dst_coverage(&full, prefix("11.0.0.0/8")), Coverage::None);
        assert_eq!(
            dst_coverage(&HeaderMatch::any(), prefix("11.0.0.0/8")),
            Coverage::Full
        );
    }

    #[test]
    fn expansion_replaces_dst_with_vmac() {
        let rule = FwdRule {
            matches: HeaderMatch::of(FieldMatch::TpDst(80))
                .and(FieldMatch::NwDst(prefix("0.0.0.0/0"))),
            mods: vec![],
            target: Some(PortId::Virt(pid(2))),
        };
        let groups = vec![
            group(1, 1, &["10.0.0.0/8"], Some(3)),
            group(2, 1, &["20.0.0.0/8"], Some(3)),
        ];
        let expanded = expand_fwd_rule(&rule, PortId::Virt(pid(2)), &groups, |_| true, |_| false);
        assert_eq!(expanded.len(), 2);
        for (r, g) in expanded.iter().zip(&groups) {
            assert_eq!(r.matches.dl_dst, Some(g.vmac));
            assert_eq!(r.matches.nw_dst, None, "dst subsumed by the tag");
            assert_eq!(r.matches.tp_dst, Some(80));
            assert_eq!(r.matches.in_port, None, "no isolation needed");
        }
    }

    #[test]
    fn expansion_keeps_partial_dst() {
        let rule = FwdRule {
            matches: HeaderMatch::of(FieldMatch::NwDst(prefix("10.0.0.0/9"))),
            mods: vec![],
            target: Some(PortId::Virt(pid(2))),
        };
        let groups = vec![group(1, 1, &["10.0.0.0/8"], Some(3))];
        let expanded = expand_fwd_rule(&rule, PortId::Virt(pid(2)), &groups, |_| true, |_| true);
        assert_eq!(expanded[0].matches.nw_dst, Some(prefix("10.0.0.0/9")));
        assert_eq!(expanded[0].matches.dl_dst, Some(MacAddr::vmac(1)));
    }

    #[test]
    fn default_rules_follow_group_next_hop() {
        let groups = vec![
            group(1, 1, &["10.0.0.0/8"], Some(3)),
            group(2, 1, &["20.0.0.0/8"], None),
        ];
        let rules = default_stage1_rules(&groups);
        assert_eq!(rules.len(), 2);
        assert_eq!(
            rules[0].actions[0].mods,
            vec![Mod::SetLoc(PortId::Virt(pid(3)))]
        );
        assert!(rules[1].is_drop(), "routeless group drops");
    }

    #[test]
    fn mac_defaults_cover_every_port() {
        let mut parts = BTreeMap::new();
        parts.insert(pid(1), ParticipantConfig::new(1, 65001, 2));
        parts.insert(pid(2), ParticipantConfig::new(2, 65002, 1));
        let rules = mac_default_rules(&parts);
        assert_eq!(rules.len(), 3);
        for r in &rules {
            assert!(r.matches.dl_dst.is_some());
            assert_eq!(r.actions.len(), 1);
        }
    }

    #[test]
    fn stage2_block_delivers_and_rewrites() {
        let cfg = ParticipantConfig::new(2, 65002, 2);
        let block = stage2_block(&cfg, None, &[MacAddr::vmac(7)], &|_, _| None).unwrap();
        // 2 physical-MAC deliveries + 1 VMAC delivery + catch-all.
        assert_eq!(block.len(), 4);
        let vmac_rule = &block.rules()[2];
        assert_eq!(vmac_rule.matches.dl_dst, Some(MacAddr::vmac(7)));
        assert_eq!(
            vmac_rule.actions[0].mods,
            vec![
                Mod::SetDlDst(cfg.primary_port().mac),
                Mod::SetLoc(PortId::Phys(pid(2), 1))
            ]
        );
    }

    #[test]
    fn stage2_inbound_policy_rewrites_macs() {
        let cfg = ParticipantConfig::new(2, 65002, 2);
        // Figure 1a: inbound TE splitting by source half.
        let pol = (Policy::match_(FieldMatch::NwSrc(prefix("0.0.0.0/1")))
            >> Policy::fwd(PortId::Phys(pid(2), 1)))
            + (Policy::match_(FieldMatch::NwSrc(prefix("128.0.0.0/1")))
                >> Policy::fwd(PortId::Phys(pid(2), 2)));
        let block = stage2_block(&cfg, Some(&compile(&pol)), &[], &|_, _| None).unwrap();
        let r0 = &block.rules()[0];
        assert_eq!(r0.matches.in_port, Some(PortId::Virt(pid(2))));
        assert_eq!(
            r0.actions[0].mods,
            vec![
                Mod::SetDlDst(cfg.port_mac(1).unwrap()),
                Mod::SetLoc(PortId::Phys(pid(2), 1))
            ]
        );
    }

    #[test]
    fn stage2_inbound_escape_rejected() {
        let cfg = ParticipantConfig::new(2, 65002, 1);
        // Forwarding to another participant's *virtual switch* from an
        // inbound policy is an isolation violation…
        let pol2 = Policy::fwd(PortId::Virt(pid(3)));
        assert!(matches!(
            stage2_block(&cfg, Some(&compile(&pol2)), &[], &|_, _| None),
            Err(TransformError::InboundEscapesSwitch(..))
        ));
        // …and forwarding to an unknown port index fails loudly.
        let pol3 = Policy::fwd(PortId::Phys(pid(2), 9));
        assert!(matches!(
            stage2_block(&cfg, Some(&compile(&pol3)), &[], &|_, _| None),
            Err(TransformError::NoSuchPort(_, 9))
        ));
        // A *known* foreign physical port is middlebox steering: allowed.
        let mbox_mac = MacAddr::physical(0x31);
        let pol = Policy::fwd(PortId::Phys(pid(3), 1));
        let block = stage2_block(&cfg, Some(&compile(&pol)), &[], &|owner, idx| {
            (owner == pid(3) && idx == 1).then_some(mbox_mac)
        })
        .expect("steering allowed");
        let steering = &block.rules()[0];
        assert_eq!(
            steering.actions[0].mods,
            vec![
                Mod::SetDlDst(mbox_mac),
                Mod::SetLoc(PortId::Phys(pid(3), 1))
            ]
        );
        // An unknown foreign port is rejected.
        assert!(matches!(
            stage2_block(&cfg, Some(&compile(&pol)), &[], &|_, _| None),
            Err(TransformError::NoSuchPort(..))
        ));
    }

    #[test]
    fn compose_optimized_end_to_end() {
        use sdx_net::{LocatedPacket, Packet};
        // Stage 1: VMAC 7 → B's switch. Stage 2 (B): deliver VMAC 7.
        let cfg_b = ParticipantConfig::new(2, 65002, 1);
        let stage1 = vec![Rule::unicast(
            HeaderMatch::of(FieldMatch::DlDst(MacAddr::vmac(7))),
            Action::of(Mod::SetLoc(PortId::Virt(pid(2)))),
        )];
        let mut blocks = BTreeMap::new();
        blocks.insert(
            pid(2),
            stage2_block(&cfg_b, None, &[MacAddr::vmac(7)], &|_, _| None).unwrap(),
        );
        let c = compose_optimized(&stage1, &blocks);
        let pkt = LocatedPacket::at(
            PortId::Phys(pid(1), 1),
            Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 5, 80)
                .with_macs(MacAddr::physical(99), MacAddr::vmac(7)),
        );
        let out = c.evaluate(&pkt);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].loc, PortId::Phys(pid(2), 1));
        assert_eq!(out[0].pkt.dl_dst, cfg_b.primary_port().mac);
        // Untagged traffic drops.
        let stray = LocatedPacket::at(
            PortId::Phys(pid(1), 1),
            Packet::tcp(ip("10.0.0.1"), ip("20.0.0.1"), 5, 80),
        );
        assert!(c.evaluate(&stray).is_empty());
    }

    #[test]
    fn compose_optimized_missing_block_drops() {
        let stage1 = vec![Rule::unicast(
            HeaderMatch::any(),
            Action::of(Mod::SetLoc(PortId::Virt(pid(9)))),
        )];
        let c = compose_optimized(&stage1, &BTreeMap::new());
        use sdx_net::{LocatedPacket, Packet};
        let pkt = LocatedPacket::at(
            PortId::Phys(pid(1), 1),
            Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 5, 80),
        );
        assert!(c.evaluate(&pkt).is_empty());
    }
}
