//! Deterministic fault injection for the controller runtime.
//!
//! A [`FaultPlan`] arms named [`InjectionPoint`]s in the pipeline —
//! compilation start, VNH allocation, mid-fabric-commit — and decides,
//! deterministically from a seed, whether each crossing of a point fails.
//! The controller threads its plan through
//! [`compile_all_with_faults`](crate::compiler::SdxCompiler::compile_all_with_faults)
//! and the fast path, so recovery logic (transactional rollback, pool
//! recycling) can be exercised by tests at exactly reproducible moments.
//!
//! A disarmed plan (the default) never fires and costs one branch per
//! crossing, so production paths carry no measurable overhead.

use std::collections::BTreeMap;

use crate::error::SdxError;

/// Named points in the controller pipeline where a fault can fire.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum InjectionPoint {
    /// Entry of a full pipeline run (`compile_all`).
    Compile,
    /// A virtual-next-hop allocation (full pipeline or fast path).
    VnhAlloc,
    /// Mid-way through applying a compiled result to the fabric — after
    /// flow rules are staged but before ARP/FIB synchronization, so a
    /// firing here exercises rollback of a half-mutated fabric.
    FabricCommit,
    /// Application of one scheduled flow-mod wave to the fabric (see
    /// [`crate::schedule`]). The payload selects which wave fails:
    /// crossings are counted per wave index, so `fail_nth(FlowModApply {
    /// wave: 2 }, 1)` fails the first attempt of wave 2 and nothing
    /// else. Arm with [`ANY_WAVE`] to target every wave.
    FlowModApply {
        /// Zero-based wave index, or [`ANY_WAVE`] when arming to match
        /// all waves.
        wave: u32,
    },
}

/// Wildcard wave index for arming [`InjectionPoint::FlowModApply`]: an
/// armed trigger carrying this value matches a crossing of any wave.
/// Crossing counts stay per concrete wave, so `Nth` triggers armed with
/// `ANY_WAVE` fire on the n-th *attempt of each wave*, which is what
/// retry tests want.
pub const ANY_WAVE: u32 = u32::MAX;

impl core::fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InjectionPoint::Compile => write!(f, "compile"),
            InjectionPoint::VnhAlloc => write!(f, "vnh-alloc"),
            InjectionPoint::FabricCommit => write!(f, "fabric-commit"),
            InjectionPoint::FlowModApply { wave: ANY_WAVE } => write!(f, "flowmod-apply[*]"),
            InjectionPoint::FlowModApply { wave } => write!(f, "flowmod-apply[{wave}]"),
        }
    }
}

impl InjectionPoint {
    /// Whether an armed point (`self`) matches a crossed point. Exact
    /// equality, except that a [`FlowModApply`](Self::FlowModApply)
    /// armed with [`ANY_WAVE`] matches a crossing of any wave.
    fn matches(self, crossed: InjectionPoint) -> bool {
        match (self, crossed) {
            (
                InjectionPoint::FlowModApply { wave: ANY_WAVE },
                InjectionPoint::FlowModApply { .. },
            ) => true,
            (a, b) => a == b,
        }
    }
}

/// When an armed point fires.
#[derive(Clone, Copy, Debug)]
enum Trigger {
    /// Fire on exactly the n-th crossing (1-based) of the point.
    Nth(u64),
    /// Fire on each crossing with this probability, drawn from the plan's
    /// seeded generator.
    Probability(f64),
}

/// A seeded, deterministic schedule of faults.
///
/// Two plans built with the same seed and the same arming calls make
/// identical decisions at every crossing, independent of wall clock or
/// global state — reruns of a failing test replay the exact fault.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Xorshift64 state; zero means "no probabilistic faults possible"
    /// (the disarmed default).
    rng: u64,
    armed: Vec<(InjectionPoint, Trigger)>,
    crossings: BTreeMap<InjectionPoint, u64>,
    fired: u64,
}

impl FaultPlan {
    /// A plan with nothing armed: every [`check`](Self::check) passes.
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// An empty plan whose probabilistic decisions derive from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            // Xorshift needs a nonzero state; fold seed 0 onto a constant.
            rng: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
            ..FaultPlan::default()
        }
    }

    /// Arms `point` to fail on its `n`-th crossing (1-based), once.
    pub fn fail_nth(mut self, point: InjectionPoint, n: u64) -> Self {
        self.armed.push((point, Trigger::Nth(n.max(1))));
        self
    }

    /// Arms `point` to fail each crossing with probability `p` (clamped to
    /// `[0, 1]`), decided by the seeded generator.
    pub fn fail_with_probability(mut self, point: InjectionPoint, p: f64) -> Self {
        self.armed
            .push((point, Trigger::Probability(p.clamp(0.0, 1.0))));
        self
    }

    /// True if any injection point is armed.
    pub fn is_armed(&self) -> bool {
        !self.armed.is_empty()
    }

    /// How many times `point` has been crossed so far.
    pub fn crossings(&self, point: InjectionPoint) -> u64 {
        self.crossings.get(&point).copied().unwrap_or(0)
    }

    /// Total faults fired by this plan.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Records a crossing of `point` and decides whether it fails.
    ///
    /// The pipeline calls this at each named point; a disarmed plan
    /// returns `Ok(())` without bookkeeping.
    pub fn check(&mut self, point: InjectionPoint) -> Result<(), SdxError> {
        if self.armed.is_empty() {
            return Ok(());
        }
        let count = self.crossings.entry(point).or_insert(0);
        *count += 1;
        let count = *count;
        let mut fire = false;
        for (p, trigger) in &self.armed {
            if !p.matches(point) {
                continue;
            }
            match trigger {
                Trigger::Nth(n) => fire |= count == *n,
                Trigger::Probability(prob) => {
                    let draw = (Self::next(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
                    fire |= draw < *prob;
                }
            }
        }
        if fire {
            self.fired += 1;
            Err(SdxError::Injected(point))
        } else {
            Ok(())
        }
    }

    fn next(state: &mut u64) -> u64 {
        // Xorshift64: deterministic, dependency-free, good enough to
        // decorrelate successive probability draws.
        let mut x = if *state == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            *state
        };
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_fires() {
        let mut plan = FaultPlan::disabled();
        for _ in 0..1000 {
            assert!(plan.check(InjectionPoint::VnhAlloc).is_ok());
        }
        assert_eq!(plan.fired(), 0);
        assert!(!plan.is_armed());
    }

    #[test]
    fn nth_crossing_fires_exactly_once() {
        let mut plan = FaultPlan::seeded(1).fail_nth(InjectionPoint::Compile, 3);
        assert!(plan.check(InjectionPoint::Compile).is_ok());
        assert!(plan.check(InjectionPoint::Compile).is_ok());
        assert_eq!(
            plan.check(InjectionPoint::Compile),
            Err(SdxError::Injected(InjectionPoint::Compile))
        );
        assert!(plan.check(InjectionPoint::Compile).is_ok());
        assert_eq!(plan.fired(), 1);
        assert_eq!(plan.crossings(InjectionPoint::Compile), 4);
    }

    #[test]
    fn points_are_counted_independently() {
        let mut plan = FaultPlan::seeded(1).fail_nth(InjectionPoint::VnhAlloc, 1);
        assert!(plan.check(InjectionPoint::Compile).is_ok());
        assert!(plan.check(InjectionPoint::FabricCommit).is_ok());
        assert!(plan.check(InjectionPoint::VnhAlloc).is_err());
    }

    #[test]
    fn probability_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let mut plan =
                FaultPlan::seeded(seed).fail_with_probability(InjectionPoint::VnhAlloc, 0.5);
            (0..64)
                .map(|_| plan.check(InjectionPoint::VnhAlloc).is_err())
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seeds diverge");
        let fired = run(42).iter().filter(|&&b| b).count();
        assert!(
            fired > 10 && fired < 54,
            "p=0.5 fires roughly half: {fired}"
        );
    }

    #[test]
    fn flowmod_apply_waves_are_distinct_points() {
        let w = |wave| InjectionPoint::FlowModApply { wave };
        let mut plan = FaultPlan::seeded(3).fail_nth(w(1), 1);
        assert!(plan.check(w(0)).is_ok(), "wave 0 is a different point");
        assert!(plan.check(w(1)).is_err(), "wave 1 fires on first crossing");
        assert!(plan.check(w(1)).is_ok(), "nth fires once");
        assert_eq!(plan.crossings(w(0)), 1);
        assert_eq!(plan.crossings(w(1)), 2);
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn any_wave_matches_every_wave_with_per_wave_counts() {
        let w = |wave| InjectionPoint::FlowModApply { wave };
        let mut plan = FaultPlan::seeded(3).fail_nth(w(ANY_WAVE), 2);
        // First attempt of each wave passes; the second (the retry) fails,
        // because crossings are counted per concrete wave.
        for wave in 0..3 {
            assert!(plan.check(w(wave)).is_ok());
            assert_eq!(
                plan.check(w(wave)),
                Err(SdxError::Injected(w(wave))),
                "retry of wave {wave} fails"
            );
        }
        assert_eq!(plan.fired(), 3);
        // The wildcard itself is never crossed, only matched against.
        assert_eq!(plan.crossings(w(ANY_WAVE)), 0);
    }

    #[test]
    fn flowmod_apply_probability_is_seed_deterministic() {
        let w = |wave| InjectionPoint::FlowModApply { wave };
        let run = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::seeded(seed).fail_with_probability(w(ANY_WAVE), 0.4);
            (0..48).map(|i| plan.check(w(i % 4)).is_err()).collect()
        };
        assert_eq!(run(9), run(9), "same seed, same wave-fault schedule");
        assert_ne!(run(9), run(10), "different seeds diverge");
    }

    #[test]
    fn probability_extremes() {
        let mut never = FaultPlan::seeded(7).fail_with_probability(InjectionPoint::Compile, 0.0);
        let mut always = FaultPlan::seeded(7).fail_with_probability(InjectionPoint::Compile, 1.0);
        for _ in 0..32 {
            assert!(never.check(InjectionPoint::Compile).is_ok());
            assert!(always.check(InjectionPoint::Compile).is_err());
        }
    }
}
