//! The virtual SDX switch abstraction (§3.1).
//!
//! Each participant sees a private virtual switch: its own physical ports
//! (`A1`, `A2`, …) plus one virtual port per peer participant (`B`, `C`).
//! Policies are written against these names; this module builds the
//! per-participant [`PortResolver`] the DSL parser uses, and checks the
//! isolation constraint — a participant's policy may only name its own
//! ports and its peers' virtual switches.

use std::collections::BTreeMap;

use sdx_net::{ParticipantId, PortId};
use sdx_policy::dsl::PortResolver;

/// Letter names for the first participants (`A`, `B`, …) as the paper
/// writes them; numeric fallback `P7` beyond 26.
pub fn participant_name(id: ParticipantId) -> String {
    let n = id.0;
    if (1..=26).contains(&n) {
        char::from(b'A' + (n - 1) as u8).to_string()
    } else {
        format!("P{n}")
    }
}

/// The name table for the participant `writer`'s virtual switch:
/// * `A1`, `A2`, … — its own physical ports (if `writer` is `A`);
/// * `B`, `C`, … — the virtual ports leading to every other participant;
/// * other participants' physical port names (`E1`) resolve too, so a
///   policy can steer traffic to a middlebox hosted on a specific port
///   (§3.2's `fwd(E1)` example).
pub fn resolver_for(
    writer: ParticipantId,
    participants: &BTreeMap<ParticipantId, Vec<u8>>,
) -> PortResolver {
    let mut r = PortResolver::new();
    for (&pid, ports) in participants {
        let name = participant_name(pid);
        if pid == writer {
            // Own switch: also the bare name = "any of my ports" is not a
            // single port; the DSL uses explicit indices for physical ports.
            for &idx in ports {
                r.add(format!("{name}{idx}"), PortId::Phys(pid, idx));
            }
        } else {
            r.add(name.clone(), PortId::Virt(pid));
            for &idx in ports {
                r.add(format!("{name}{idx}"), PortId::Phys(pid, idx));
            }
        }
    }
    r
}

/// Isolation check: may `writer`'s policy legitimately mention `port`?
///
/// As a **match** (`as_match = true`) only the writer's own switch ports
/// are visible: its physical ports and its own virtual ingress. As a
/// **forwarding target** the writer may send to any peer's virtual switch
/// and to any physical port (the latter enables middlebox steering like
/// the paper's `fwd(E1)`), but never observe traffic there.
pub fn may_reference(writer: ParticipantId, port: PortId, as_match: bool) -> bool {
    if !as_match {
        return true;
    }
    match port {
        PortId::Phys(owner, _) => owner == writer,
        PortId::Virt(owner) => owner == writer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> BTreeMap<ParticipantId, Vec<u8>> {
        BTreeMap::from([
            (ParticipantId(1), vec![1]),
            (ParticipantId(2), vec![1, 2]),
            (ParticipantId(5), vec![1]),
        ])
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(participant_name(ParticipantId(1)), "A");
        assert_eq!(participant_name(ParticipantId(2)), "B");
        assert_eq!(participant_name(ParticipantId(26)), "Z");
        assert_eq!(participant_name(ParticipantId(27)), "P27");
    }

    #[test]
    fn resolver_names_own_and_peer_ports() {
        let r = resolver_for(ParticipantId(1), &setup());
        assert_eq!(r.resolve("A1"), Some(PortId::Phys(ParticipantId(1), 1)));
        assert_eq!(r.resolve("B"), Some(PortId::Virt(ParticipantId(2))));
        assert_eq!(r.resolve("B2"), Some(PortId::Phys(ParticipantId(2), 2)));
        assert_eq!(r.resolve("E1"), Some(PortId::Phys(ParticipantId(5), 1)));
        // A has no virtual port to itself.
        assert_eq!(r.resolve("A"), None);
        assert_eq!(r.resolve("Z"), None);
    }

    #[test]
    fn isolation_rules() {
        let a = ParticipantId(1);
        let b = ParticipantId(2);
        // Matching on own physical port: fine.
        assert!(may_reference(a, PortId::Phys(a, 1), true));
        // Matching on B's physical port: forbidden.
        assert!(!may_reference(a, PortId::Phys(b, 1), true));
        // Forwarding to B's physical port (middlebox steering): allowed.
        assert!(may_reference(a, PortId::Phys(b, 1), false));
        // Forwarding to B's virtual switch: allowed.
        assert!(may_reference(a, PortId::Virt(b), false));
        // Matching on own virtual ingress (inbound policy): allowed.
        assert!(may_reference(a, PortId::Virt(a), true));
        // Matching traffic at B's virtual switch: forbidden.
        assert!(!may_reference(a, PortId::Virt(b), true));
    }
}
