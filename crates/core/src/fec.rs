//! Forwarding Equivalence Classes and the Minimum Disjoint Subset
//! computation (§4.2 of the paper).
//!
//! The data-plane state reduction hinges on grouping prefixes that the
//! fabric treats identically. Given the collection `C` of prefix sets that
//! matter — one set per (policy rule × its BGP filter), plus the grouping
//! by default next hop — the *Minimum Disjoint Subset* `C'` is the coarsest
//! partition of `⋃C` such that every element of `C` is a union of parts.
//!
//! Two prefixes belong to the same part **iff they are members of exactly
//! the same sets of `C`** — so the polynomial-time algorithm the paper
//! alludes to is partition by membership signature, implemented here with
//! one hash pass (`O(Σ|Cᵢ|)`).
//!
//! Worked example (the paper's §4.2, Figure 1): with
//! `C = {{p1,p2,p3}, {p1,p2,p3,p4}, {p1,p2,p4}, {p3}}` the signatures are
//! `p1,p2 → {0,1,2}`, `p3 → {0,1,3}`, `p4 → {1,2}` giving
//! `C' = {{p1,p2}, {p3}, {p4}}` — the paper's answer.

use std::collections::BTreeMap;

use sdx_net::{Ipv4Addr, MacAddr, ParticipantId, Prefix};

/// Identifier of a forwarding equivalence class; encoded in the VMAC.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FecId(pub u32);

/// One computed equivalence class, with its data-plane identity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FecGroup {
    /// Globally unique id.
    pub id: FecId,
    /// The viewer (sending participant) whose forwarding behaviour this
    /// group captures. VMACs are globally unique, so the tag implicitly
    /// names the sender — which is why VMAC rules need no in-port match.
    pub viewer: ParticipantId,
    /// The member prefixes, sorted.
    pub prefixes: Vec<Prefix>,
    /// The virtual next-hop address advertised to the viewer.
    pub vnh: Ipv4Addr,
    /// The virtual MAC tag (ARP answer for `vnh`).
    pub vmac: MacAddr,
    /// The viewer's default (best-route) next hop for every member prefix —
    /// uniform within a group because the default next hop is part of the
    /// grouping signature. `None` when no route remains.
    pub default_next_hop: Option<ParticipantId>,
}

/// The content-addressed identity of a FEC group: the viewer it belongs
/// to, its exact (sorted) member prefix set, and the viewer's best-route
/// next hop for those members.
///
/// Two compilations that produce a group with the same key mean the same
/// forwarding equivalence class — so the VNH allocator can hand back the
/// *same* `(FecId, VNH, VMAC)` across recompilations
/// ([`crate::vnh::VnhAllocator::reserve_keyed`]), and a BGP event only
/// churns the identities whose keys actually changed. The exact structure
/// is used as the map key (not a hash), so identity can never alias.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FecKey {
    /// The viewer whose forwarding behaviour the group captures.
    pub viewer: ParticipantId,
    /// The member prefixes, sorted (the partition order is canonical).
    pub prefixes: Vec<Prefix>,
    /// The viewer's best-route next hop for every member prefix.
    pub default_next_hop: Option<ParticipantId>,
}

impl FecKey {
    /// The key describing an already-built group.
    pub fn of_group(g: &FecGroup) -> FecKey {
        FecKey {
            viewer: g.viewer,
            prefixes: g.prefixes.clone(),
            default_next_hop: g.default_next_hop,
        }
    }
}

/// Computes the Minimum Disjoint Subset of a collection of prefix sets:
/// the coarsest partition of the union such that every input set is a
/// union of output parts. Output parts are sorted internally and ordered
/// by their smallest member, so the result is deterministic.
///
/// ```
/// use sdx_core::fec::minimum_disjoint_subsets;
/// use sdx_net::prefix;
///
/// // The paper's §4.2 worked example.
/// let (p1, p2, p3, p4) = (
///     prefix("10.0.0.0/8"),
///     prefix("20.0.0.0/8"),
///     prefix("30.0.0.0/8"),
///     prefix("40.0.0.0/8"),
/// );
/// let c = vec![vec![p1, p2, p3], vec![p1, p2, p3, p4], vec![p1, p2, p4], vec![p3]];
/// assert_eq!(
///     minimum_disjoint_subsets(&c),
///     vec![vec![p1, p2], vec![p3], vec![p4]],
/// );
/// ```
pub fn minimum_disjoint_subsets(sets: &[Vec<Prefix>]) -> Vec<Vec<Prefix>> {
    // signature := sorted list of set indices containing the prefix.
    let mut membership: BTreeMap<Prefix, Vec<u32>> = BTreeMap::new();
    for (i, set) in sets.iter().enumerate() {
        for &p in set {
            let sig = membership.entry(p).or_default();
            // Sets may contain duplicates; record each index once.
            if sig.last() != Some(&(i as u32)) {
                sig.push(i as u32);
            }
        }
    }
    let mut groups: BTreeMap<Vec<u32>, Vec<Prefix>> = BTreeMap::new();
    for (p, sig) in membership {
        groups.entry(sig).or_default().push(p);
    }
    let mut out: Vec<Vec<Prefix>> = groups.into_values().collect();
    // Each group is sorted (BTreeMap iteration); order groups by first member.
    out.sort_by_key(|g| g[0]);
    out
}

/// Partition prefixes by an arbitrary signature in one pass: the
/// generalization used by the compiler, whose signatures combine policy-set
/// membership with the default next hop.
pub fn partition_by_signature<S: Ord>(
    items: impl IntoIterator<Item = (Prefix, S)>,
) -> Vec<Vec<Prefix>> {
    let mut groups: BTreeMap<S, Vec<Prefix>> = BTreeMap::new();
    for (p, sig) in items {
        groups.entry(sig).or_default().push(p);
    }
    let mut out: Vec<Vec<Prefix>> = groups.into_values().collect();
    for g in &mut out {
        g.sort();
        g.dedup();
    }
    out.sort_by_key(|g| g[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdx_net::prefix;

    fn p(s: &str) -> Prefix {
        prefix(s)
    }

    #[test]
    fn paper_example_exact() {
        let (p1, p2, p3, p4) = (
            p("10.0.0.0/8"),
            p("20.0.0.0/8"),
            p("30.0.0.0/8"),
            p("40.0.0.0/8"),
        );
        let c = vec![
            vec![p1, p2, p3],
            vec![p1, p2, p3, p4],
            vec![p1, p2, p4],
            vec![p3],
        ];
        let mds = minimum_disjoint_subsets(&c);
        assert_eq!(mds, vec![vec![p1, p2], vec![p3], vec![p4]]);
    }

    #[test]
    fn empty_input() {
        assert!(minimum_disjoint_subsets(&[]).is_empty());
        assert!(minimum_disjoint_subsets(&[vec![]]).is_empty());
    }

    #[test]
    fn single_set_is_one_group() {
        let c = vec![vec![p("1.0.0.0/8"), p("2.0.0.0/8")]];
        assert_eq!(minimum_disjoint_subsets(&c).len(), 1);
    }

    #[test]
    fn disjoint_sets_stay_apart() {
        let c = vec![vec![p("1.0.0.0/8")], vec![p("2.0.0.0/8")]];
        let mds = minimum_disjoint_subsets(&c);
        assert_eq!(mds.len(), 2);
    }

    #[test]
    fn duplicates_within_a_set_are_harmless() {
        let c = vec![vec![p("1.0.0.0/8"), p("1.0.0.0/8"), p("2.0.0.0/8")]];
        let mds = minimum_disjoint_subsets(&c);
        assert_eq!(mds, vec![vec![p("1.0.0.0/8"), p("2.0.0.0/8")]]);
    }

    #[test]
    fn partition_property_every_input_is_union_of_parts() {
        // Randomish structured input; verify the defining property.
        let prefixes: Vec<Prefix> = (1..=16u8)
            .map(|i| Prefix::new(sdx_net::Ipv4Addr::new(i, 0, 0, 0), 8))
            .collect();
        let c: Vec<Vec<Prefix>> = vec![
            prefixes[0..8].to_vec(),
            prefixes[4..12].to_vec(),
            prefixes[10..16].to_vec(),
            vec![prefixes[3], prefixes[7], prefixes[11]],
        ];
        let mds = minimum_disjoint_subsets(&c);
        // Parts are pairwise disjoint.
        for (i, a) in mds.iter().enumerate() {
            for b in mds.iter().skip(i + 1) {
                assert!(a.iter().all(|p| !b.contains(p)));
            }
        }
        // Every input set is exactly a union of parts.
        for set in &c {
            for part in &mds {
                let inside = part.iter().filter(|p| set.contains(p)).count();
                assert!(
                    inside == 0 || inside == part.len(),
                    "part straddles an input set"
                );
            }
        }
        // Union preserved.
        let total: usize = mds.iter().map(Vec::len).sum();
        let mut union: Vec<Prefix> = c.concat();
        union.sort();
        union.dedup();
        assert_eq!(total, union.len());
    }

    #[test]
    fn partition_by_signature_groups_equal_signatures() {
        let items = vec![
            (p("1.0.0.0/8"), (1, Some(ParticipantId(2)))),
            (p("2.0.0.0/8"), (1, Some(ParticipantId(2)))),
            (p("3.0.0.0/8"), (1, Some(ParticipantId(3)))),
            (p("4.0.0.0/8"), (2, Some(ParticipantId(2)))),
        ];
        let parts = partition_by_signature(items);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], vec![p("1.0.0.0/8"), p("2.0.0.0/8")]);
    }
}
